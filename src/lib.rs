//! # hopp — a full-system reproduction of HoPP (HPCA 2023)
//!
//! *HoPP: Hardware-Software Co-Designed Page Prefetching for
//! Disaggregated Memory* proposes collecting full, real-time memory
//! access traces in the memory controller — instead of learning only
//! from page faults — and feeding them to a software prefetching stack
//! that runs as a separate data path next to a kernel-based remote
//! memory system.
//!
//! This crate is the façade over the workspace that reproduces the
//! whole system in simulation:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `hopp-types` | page numbers, PIDs, time, access records |
//! | [`trace`] | `hopp-trace` | LLC model, HMTT records, pattern generators |
//! | [`mem`] | `hopp-mem` | frames, page tables, PTE hooks |
//! | [`hw`] | `hopp-hw` | hot page detection, reverse page table (+cache) |
//! | [`kernel`] | `hopp-kernel` | swapcache, LRU reclaim, fault costs, cgroups |
//! | [`net`] | `hopp-net` | RDMA link model, completion queues |
//! | [`fabric`] | `hopp-fabric` | sharded memory pool, placement, faults, failover |
//! | [`core`] | `hopp-core` | STT, SSP/LSP/RSP, policy + execution engines |
//! | [`baselines`] | `hopp-baselines` | Fastswap, Leap, VMA, Depth-N |
//! | [`workloads`] | `hopp-workloads` | the paper's 15 application models |
//! | [`scn`] | `hopp-scn` | `.hst` trace record/replay, scenario DSL |
//! | [`obs`] | `hopp-obs` | event tracing, histograms, trace export |
//! | [`prof`] | `hopp-prof` | host-side span profiler (time + allocation attribution) |
//! | [`sim`] | `hopp-sim` | the integrated simulator and runners |
//!
//! # Quick start
//!
//! ```
//! use hopp::sim::{run_workload, BaselineKind, SystemConfig};
//! use hopp::workloads::WorkloadKind;
//!
//! # fn main() -> hopp::types::Result<()> {
//! // K-means with half its working set in remote memory:
//! let fastswap = run_workload(WorkloadKind::Kmeans, 1_024, 42,
//!     SystemConfig::Baseline(BaselineKind::Fastswap), 0.5)?;
//! let hopp = run_workload(WorkloadKind::Kmeans, 1_024, 42,
//!     SystemConfig::hopp_default(), 0.5)?;
//!
//! // HoPP turns prefetch-hits into plain DRAM hits:
//! assert!(hopp.completion < fastswap.completion);
//! assert!(hopp.coverage() > fastswap.coverage());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and the `experiments` binary
//! in `hopp-bench` for the full table/figure reproduction.

pub use hopp_baselines as baselines;
pub use hopp_core as core;
pub use hopp_fabric as fabric;
pub use hopp_hw as hw;
pub use hopp_kernel as kernel;
pub use hopp_mem as mem;
pub use hopp_net as net;
pub use hopp_obs as obs;
pub use hopp_prof as prof;
pub use hopp_scn as scn;
pub use hopp_sim as sim;
pub use hopp_trace as trace;
pub use hopp_types as types;
pub use hopp_workloads as workloads;
