//! Offline trace study: the §II-B / §VI-D methodology.
//!
//! The paper's motivating analysis captured full memory traces with
//! HMTT offline and studied the stream-pattern mix of each application.
//! This example reproduces that pipeline end to end:
//!
//! 1. run a workload's cacheline accesses through the LLC model,
//! 2. encode each off-chip miss as an HMTT record into the reserved
//!    DRAM ring (with its wrapping 8-bit counters),
//! 3. decode the ring back into a timed physical trace,
//! 4. classify the page-access windows offline with the three-tier
//!    detectors to report each workload's pattern mix.
//!
//! ```text
//! cargo run --release --example offline_trace_study
//! ```

use hopp::core::stt::{StreamTrainingTable, SttConfig};
use hopp::core::three_tier::{ThreeTier, Tier, TierConfig};
use hopp::trace::hmtt::{HmttDecoder, HmttRecord, TraceRing};
use hopp::trace::llc::{LastLevelCache, LlcConfig};
use hopp::trace::AccessStream;
use hopp::types::{HotPage, LineAccess, Nanos, PageFlags, Ppn, Vpn};
use hopp::workloads::WorkloadKind;

fn main() {
    println!("offline stream-pattern study (HMTT capture -> decode -> classify)\n");
    println!(
        "{:<13} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "workload", "records", "lost", "SSP%", "LSP%", "RSP%", "none%"
    );
    for kind in [
        WorkloadKind::Kmeans,
        WorkloadKind::Hpl,
        WorkloadKind::NpbMg,
        WorkloadKind::NpbFt,
        WorkloadKind::GraphBfs,
        WorkloadKind::SparkBayes,
    ] {
        study(kind);
    }
    println!(
        "\n(simple streams dominate overall — the paper's §VI-D observation —\n\
         while HPL adds ladders and NPB-MG adds ripples)"
    );
}

fn study(kind: WorkloadKind) {
    let footprint = 2_048;
    let mut stream = kind.build(hopp::types::Pid::new(1), footprint, 42);
    let mut llc = LastLevelCache::new(LlcConfig::tiny()).unwrap();
    // An identity virtual->physical layout is fine for an offline
    // study: HMTT sees physical addresses; the ring is bounded like the
    // real reserved DRAM area.
    let mut ring = TraceRing::new(1 << 20);
    let mut seqno = 0u64;
    let mut clock = 0u64;

    // Capture phase: every LLC miss becomes an HMTT record.
    while let Some(acc) = stream.next_access() {
        clock += u64::from(acc.think_ns);
        let ppn = Ppn::new(acc.vpn.raw()); // identity mapping
        for line in 0..acc.lines {
            clock += 100;
            if !llc.access(ppn.line(line), acc.kind) {
                let rec = HmttRecord::capture(
                    seqno,
                    &LineAccess {
                        addr: ppn.line(line),
                        kind: acc.kind,
                        at: Nanos::from_nanos(clock),
                    },
                );
                ring.push(rec);
                seqno += 1;
                drain(&mut ring, &mut decoder_of(kind));
            }
        }
    }

    // Decode + classify phase (re-run the ring contents through the
    // decoder and the pattern detectors).
    let mut decoder = HmttDecoder::new();
    let mut stt = StreamTrainingTable::new(SttConfig::default()).unwrap();
    let mut tiers = ThreeTier::new(TierConfig::default());
    let overruns = ring.overruns();
    let mut misses = 0u64;
    let mut last_page: Option<Ppn> = None;
    while let Some(rec) = ring.pop() {
        let access = decoder.decode(rec);
        misses += 1;
        let page = access.addr.ppn();
        if last_page == Some(page) {
            continue; // page-granularity study
        }
        last_page = Some(page);
        let hot = HotPage {
            pid: hopp::types::Pid::new(1),
            vpn: Vpn::new(page.raw()), // identity mapping back
            flags: PageFlags::default(),
            at: access.at,
        };
        if let Some(window) = stt.observe(&hot) {
            tiers.predict(&window);
        }
    }

    let s = tiers.stats();
    let total = (s.for_tier(Tier::Simple)
        + s.for_tier(Tier::Ladder)
        + s.for_tier(Tier::Ripple)
        + s.unclassified)
        .max(1) as f64;
    println!(
        "{:<13} {:>8} {:>8} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
        kind.name(),
        misses,
        overruns + decoder.dropped,
        s.for_tier(Tier::Simple) as f64 / total * 100.0,
        s.for_tier(Tier::Ladder) as f64 / total * 100.0,
        s.for_tier(Tier::Ripple) as f64 / total * 100.0,
        s.unclassified as f64 / total * 100.0,
    );
}

/// The capture loop drains nothing in this offline setup (the ring is
/// sized for the full trace tail); kept as a hook where the prototype's
/// software HPD would consume records on-line.
fn drain(_ring: &mut TraceRing, _dec: &mut HmttDecoder) {}

fn decoder_of(_kind: WorkloadKind) -> HmttDecoder {
    HmttDecoder::new()
}
