//! Pattern explorer: feed the three stream shapes of §II-B directly to
//! HoPP's training stack and watch which tier claims each.
//!
//! ```text
//! cargo run --release --example pattern_explorer
//! ```

use hopp::core::three_tier::Tier;
use hopp::core::{HoppConfig, HoppEngine};
use hopp::trace::patterns::{AccessStream, LadderStream, NoiseStream, RippleStream, SimpleStream};
use hopp::types::{HotPage, Nanos, PageFlags, Pid, Vpn};

/// Replays a page-access stream as a hot-page stream (what the MC
/// pipeline would deliver if every touched page crossed the threshold)
/// and reports the tier mix plus a sample of predictions.
fn explore(name: &str, mut stream: impl AccessStream) {
    let mut engine = HoppEngine::new(HoppConfig::default());
    let mut orders = 0u64;
    let mut sample = Vec::new();
    let mut t = 0u64;
    while let Some(acc) = stream.next_access() {
        t += 1;
        let hot = HotPage {
            pid: acc.pid,
            vpn: acc.vpn,
            flags: PageFlags::default(),
            at: Nanos::from_micros(t),
        };
        for order in engine.on_hot_page(&hot) {
            orders += 1;
            if sample.len() < 5 {
                sample.push(format!("{} -> {}", acc.vpn, order.vpn));
            }
        }
    }
    let tiers = engine.tier_stats();
    println!("\n### {name}");
    println!(
        "  windows classified: SSP={} LSP={} RSP={} unclassified={}",
        tiers.for_tier(Tier::Simple),
        tiers.for_tier(Tier::Ladder),
        tiers.for_tier(Tier::Ripple),
        tiers.unclassified,
    );
    println!("  orders issued: {orders}");
    for s in sample {
        println!("  e.g. hot {s}");
    }
}

fn main() {
    let pid = Pid::new(1);

    // A clean stride-4 scan: SSP territory.
    explore(
        "simple stream (stride 4)",
        SimpleStream::new(pid, Vpn::new(1_000), 4, 200),
    );

    // A tread-heavy ladder: the tread stride holds a majority of the
    // window, so SSP already claims it (and its predictions are right
    // three times out of four).
    explore(
        "shallow ladder (tread 2,2,2 / rise 12) — SSP's majority",
        LadderStream::new(pid, Vpn::new(1_000), &[2, 2, 2], 12, 60),
    );

    // A balanced ladder: three distinct strides cycle, so none reaches
    // the L/2 majority — this is the shape only LSP can follow.
    explore(
        "balanced ladder (tread 2,12 / rise 7) — LSP territory",
        LadderStream::new(pid, Vpn::new(1_000), &[2, 12], 7, 80),
    );

    // Figure 3's ripple: stride-1 distorted by swaps and hops.
    explore(
        "ripple stream (jitter 0.4, hops)",
        RippleStream::new(pid, Vpn::new(1_000), 300, 0.4, 6, 7),
    );

    // Pure interference: nothing should be classified.
    explore(
        "interference (uniform random)",
        NoiseStream::new(pid, Vpn::new(1_000), Vpn::new(100_000), 400, 3),
    );
}
