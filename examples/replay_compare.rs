//! Record once, replay everywhere: capture a workload's page trace to a
//! file, then run every system on the *identical* access sequence.
//!
//! Replaying a fixed trace removes the last source of variation between
//! systems (the workload itself), which is how apples-to-apples
//! prefetcher comparisons should be done — and it is the import path
//! for traces captured outside this repository.
//!
//! ```text
//! cargo run --release --example replay_compare
//! ```

use hopp::sim::{AppSpec, BaselineKind, SimConfig, Simulator, SystemConfig};
use hopp::trace::pagefile;
use hopp::trace::TraceFileStream;
use hopp::types::Pid;
use hopp::workloads::WorkloadKind;

fn main() -> std::io::Result<()> {
    let kind = WorkloadKind::NpbLu;
    let footprint = 4_096;
    let path = std::env::temp_dir().join("hopp_replay_compare.trace");

    // Record.
    let mut stream = kind.build(Pid::new(1), footprint, 42);
    let count = pagefile::save_stream(&path, &mut stream)?;
    println!(
        "recorded {count} accesses of {} to {}\n",
        kind.name(),
        path.display()
    );

    // Replay under each system at 50% local memory.
    let accesses = pagefile::load_file(&path)?;
    let distinct = accesses
        .iter()
        .map(|a| a.vpn.raw())
        .collect::<std::collections::HashSet<_>>()
        .len();
    let limit = distinct / 2;

    let mut local_ns = None;
    println!(
        "{:<13} {:>12} {:>10} {:>8} {:>8} {:>9}",
        "system", "completion", "norm-perf", "major", "p-hits", "coverage"
    );
    for (label, system, full_memory) in [
        (
            "local",
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
            true,
        ),
        (
            "no-prefetch",
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
            false,
        ),
        ("leap", SystemConfig::Baseline(BaselineKind::Leap), false),
        (
            "fastswap",
            SystemConfig::Baseline(BaselineKind::Fastswap),
            false,
        ),
        (
            "depth-32",
            SystemConfig::Baseline(BaselineKind::DepthN(32)),
            false,
        ),
        ("hopp", SystemConfig::hopp_default(), false),
    ] {
        let app = AppSpec {
            pid: Pid::new(1),
            stream: Box::new(TraceFileStream::open(&path)?),
            limit_pages: if full_memory { distinct + 64 } else { limit },
        };
        let report = Simulator::new(SimConfig::with_system(system), vec![app])
            .expect("valid configuration")
            .run()
            .expect("replay run");
        let ns = report.completion.as_nanos() as f64;
        let local = *local_ns.get_or_insert(ns);
        println!(
            "{label:<13} {:>12} {:>10.3} {:>8} {:>8} {:>8.1}%",
            format!("{}", report.completion),
            local / ns,
            report.counters.major_faults,
            report.counters.minor_faults,
            report.coverage() * 100.0
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
