//! Policy tuning: sweep the §III-E knobs (prefetch offset and
//! intensity) on the paper's microbenchmark and see why the dynamic
//! offset wins (Fig 22's "effect of timeliness").
//!
//! ```text
//! cargo run --release --example policy_tuning
//! ```

use hopp::core::{HoppConfig, PolicyConfig};
use hopp::sim::{run_workload, BaselineKind, SystemConfig};
use hopp::workloads::WorkloadKind;

fn run(label: &str, system: SystemConfig, fastswap_ns: f64) {
    let r = run_workload(WorkloadKind::Microbench, 4_096, 42, system, 0.5).expect("sweep run");
    let speedup = 1.0 - r.completion.as_nanos() as f64 / fastswap_ns;
    let timeliness = r
        .hopp
        .map(|h| format!("{}", h.mean_timeliness))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "{label:<22} speedup {:+6.2}%  coverage {:5.1}%  mean timeliness {timeliness}",
        speedup * 100.0,
        r.coverage() * 100.0,
    );
}

fn main() {
    let fastswap = run_workload(
        WorkloadKind::Microbench,
        4_096,
        42,
        SystemConfig::Baseline(BaselineKind::Fastswap),
        0.5,
    )
    .expect("baseline run");
    let base = fastswap.completion.as_nanos() as f64;
    println!(
        "baseline: Fastswap completes the microbenchmark in {}\n",
        fastswap.completion
    );

    // Fixed offsets: too near risks late pages, too far wastes memory.
    for offset in [1.0, 8.0, 64.0, 1_024.0, 20_000.0] {
        run(
            &format!("fixed offset {offset}"),
            SystemConfig::hopp_with(HoppConfig {
                policy: PolicyConfig::fixed_offset(offset),
                ..HoppConfig::default()
            }),
            base,
        );
    }

    // The adaptive controller steers the offset from timeliness.
    run("dynamic offset", SystemConfig::hopp_default(), base);

    // Intensity: pages issued per hot page.
    println!();
    for intensity in [1u32, 2, 4] {
        run(
            &format!("intensity {intensity} (dyn)"),
            SystemConfig::hopp_with(HoppConfig {
                policy: PolicyConfig {
                    intensity,
                    ..PolicyConfig::default()
                },
                ..HoppConfig::default()
            }),
            base,
        );
    }
}
