//! Hardware inspector: drive the MC pipeline (LLC → HPD → RPT) directly
//! with a synthetic miss stream and inspect what the hardware would
//! deliver to software — plus its bandwidth and silicon cost (§III-B,
//! §III-C, §VI-F).
//!
//! ```text
//! cargo run --release --example hardware_inspector
//! ```

use hopp::hw::{HpdConfig, HwCostModel, McPipeline, RptCacheConfig};
use hopp::mem::PteListener;
use hopp::types::{AccessKind, Nanos, Pid, Ppn, Vpn};

fn main() {
    let hpd = HpdConfig::default();
    let rpt = RptCacheConfig::default();
    let mut mc = McPipeline::new(hpd, rpt).expect("valid geometry");

    // The kernel maps 256 pages for pid 7; the PTE hooks keep the RPT
    // current, exactly like the paper's set_pte_at callback.
    for i in 0..256u64 {
        mc.pte_set(Pid::new(7), Vpn::new(0x4000 + i), Ppn::new(i));
    }

    // A streaming phase: pages are read line after line. A page becomes
    // hot at its N-th (8th) read miss.
    let mut hot_pages = Vec::new();
    let mut t = 0u64;
    for page in 0..256u64 {
        for line in 0..24u8 {
            t += 100;
            if let Some(hot) = mc.on_llc_miss(
                Ppn::new(page).line(line),
                AccessKind::Read,
                Nanos::from_nanos(t),
            ) {
                hot_pages.push(hot);
            }
        }
    }

    println!(
        "fed {} read misses, extracted {} hot pages",
        256 * 24,
        hot_pages.len()
    );
    println!("first hot pages:");
    for hot in hot_pages.iter().take(4) {
        println!("  {hot}");
    }

    let h = mc.hpd().stats();
    println!(
        "\nHPD: hot ratio {:.2}% | send-bit drops {} | cold evictions {}",
        h.hot_ratio() * 100.0,
        h.send_bit_drops,
        h.cold_evictions
    );
    let r = mc.rpt().stats();
    println!(
        "RPT: {} lookups, hit rate {:.1}%, {} DRAM reads, {} writebacks",
        r.lookups,
        r.hit_rate() * 100.0,
        r.dram_reads,
        r.dram_writebacks
    );
    let ledger = mc.ledger();
    println!(
        "bandwidth overhead: HPD {:.3}% | RPT {:.4}% of application traffic",
        ledger.hpd_overhead_percent(),
        ledger.rpt_overhead_percent()
    );

    let cost = HwCostModel::default();
    println!(
        "\nsilicon (CACTI, 22nm): HPD {:.6} mm^2 / {:.4} mW; RPT cache {:.4} mm^2 / {:.1} mW",
        cost.hpd_area_mm2(&hpd),
        cost.hpd_static_mw(&hpd),
        cost.rpt_area_mm2(&rpt),
        cost.rpt_static_mw(&rpt)
    );
}
