//! Quickstart: run one workload under Fastswap and under HoPP and
//! compare completion time, faults and prefetch quality.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hopp::sim::{run_local, run_workload, BaselineKind, SystemConfig};
use hopp::workloads::WorkloadKind;

fn main() -> hopp::types::Result<()> {
    let kind = WorkloadKind::Kmeans;
    let footprint = 4_096; // pages (16 MB)
    let seed = 42;
    let ratio = 0.5; // half the working set fits locally

    println!(
        "workload: {} ({footprint} pages, {:.0}% local)",
        kind.name(),
        ratio * 100.0
    );

    let local = run_local(kind, footprint, seed)?;
    println!("\nall-local completion: {}", local.completion);

    for system in [
        SystemConfig::Baseline(BaselineKind::NoPrefetch),
        SystemConfig::Baseline(BaselineKind::Fastswap),
        SystemConfig::hopp_default(),
    ] {
        let r = run_workload(kind, footprint, seed, system, ratio)?;
        let normalized = local.completion.as_nanos() as f64 / r.completion.as_nanos() as f64;
        println!(
            "\n[{}]\n  completion: {} (normalized perf {normalized:.3})\n  major faults: {}  prefetch-hits: {}  dram page touches: {}\n  prefetch accuracy: {:.1}%  coverage: {:.1}%",
            r.system,
            r.completion,
            r.counters.major_faults,
            r.counters.minor_faults,
            r.counters.dram_hits,
            r.accuracy() * 100.0,
            r.coverage() * 100.0,
        );
        if let Some(h) = r.hopp {
            println!(
                "  hopp data path: {} pages injected, {} hit as DRAM-hits, mean timeliness {}",
                h.prefetched, h.prefetch_hits, h.mean_timeliness
            );
        }
    }
    Ok(())
}
