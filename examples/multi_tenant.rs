//! Multi-tenant scenario (Fig 15): two applications share the compute
//! node, each capped by its cgroup at half of its footprint. The hot
//! page trace carries PIDs, so HoPP trains per-application streams even
//! when the accesses interleave on the memory bus.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use hopp::sim::{AppSpec, BaselineKind, SimConfig, Simulator, SystemConfig};
use hopp::types::Pid;
use hopp::workloads::WorkloadKind;

fn run_pair(system: SystemConfig) -> hopp::sim::SimReport {
    let fp = 4_096u64;
    let apps = vec![
        AppSpec {
            pid: Pid::new(1),
            stream: WorkloadKind::Kmeans.build(Pid::new(1), fp, 42),
            limit_pages: (fp / 2) as usize,
        },
        AppSpec {
            pid: Pid::new(2),
            stream: WorkloadKind::GraphPr.build(Pid::new(2), fp, 43),
            limit_pages: (fp / 2) as usize,
        },
    ];
    Simulator::new(SimConfig::with_system(system), apps)
        .expect("valid configuration")
        .run()
        .expect("pair run")
}

fn main() {
    let fastswap = run_pair(SystemConfig::Baseline(BaselineKind::Fastswap));
    let hopp = run_pair(SystemConfig::hopp_default());

    println!("co-running Kmeans-OMP (pid1) + GraphX-PR (pid2), 50% local each\n");
    for (pid, name) in [(Pid::new(1), "Kmeans-OMP"), (Pid::new(2), "GraphX-PR")] {
        let f = fastswap.app_completion(pid).expect("ran");
        let h = hopp.app_completion(pid).expect("ran");
        println!(
            "{name:<11} fastswap {f}  hopp {h}  speedup {:.2}x",
            f.as_nanos() as f64 / h.as_nanos() as f64
        );
    }
    println!(
        "\nshared RDMA link: fastswap moved {} pages, hopp moved {}",
        fastswap.rdma.reads, hopp.rdma.reads
    );
    println!(
        "hopp accuracy {:.1}% coverage {:.1}% (per-PID training on the shared trace)",
        hopp.accuracy() * 100.0,
        hopp.coverage() * 100.0
    );
}
