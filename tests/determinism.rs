//! Determinism regression tests (ISSUE 4, satellite 4).
//!
//! Two guarantees are pinned here:
//!
//! 1. *Replay determinism*: two [`hopp_sim::run_workload_with`] calls
//!    with identical config + seed produce byte-identical serialized
//!    [`hopp_sim::SimReport`]s (`metrics_json`).
//! 2. *Migration safety*: a fixed-seed small-scale report matches a
//!    golden file committed **before** the `hopp-ds` data-structure
//!    migration, proving the `BTreeMap` → `DetMap`/`PageMap`/`Lru`
//!    swap is behaviour-preserving, not just "still deterministic".
//!
//! To regenerate the golden after an *intentional* behaviour change,
//! run `HOPP_BLESS=1 cargo test --test determinism` and commit the
//! updated file with an explanation.

use hopp_sim::{run_workload_with, BaselineKind, SimConfig, SystemConfig};
use hopp_workloads::WorkloadKind;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/kmeans_hopp_small.json"
);

fn small_hopp_report() -> String {
    let config = SimConfig::with_system(SystemConfig::hopp_default());
    run_workload_with(config, WorkloadKind::Kmeans, 2_048, 7, 0.5)
        .expect("small hopp run")
        .metrics_json()
}

#[test]
fn identical_config_and_seed_reports_are_byte_identical() {
    let a = small_hopp_report();
    let b = small_hopp_report();
    assert_eq!(a, b, "same config + seed must replay byte-identically");
}

#[test]
fn identical_fastswap_runs_are_byte_identical() {
    let run = || {
        let config = SimConfig::with_system(SystemConfig::Baseline(BaselineKind::Fastswap));
        run_workload_with(config, WorkloadKind::GraphPr, 1_024, 11, 0.5)
            .expect("small fastswap run")
            .metrics_json()
    };
    assert_eq!(run(), run());
}

#[test]
fn small_scale_report_matches_pre_migration_golden() {
    let got = small_hopp_report();
    if std::env::var_os("HOPP_BLESS").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).expect("golden file (bless with HOPP_BLESS=1)");
    assert_eq!(
        got, want,
        "fixed-seed report drifted from the pre-migration golden; \
         if the behaviour change is intentional, re-bless with HOPP_BLESS=1"
    );
}
