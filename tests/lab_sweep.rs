//! End-to-end checks of the hopp-lab sweep engine's two headline
//! guarantees (also enforced in CI by the `sweep` job):
//!
//! * the rendered sweep artifact is byte-identical at any thread
//!   count — parallelism must never leak into results;
//! * a warm cache makes a re-run at least 5× faster than the cold
//!   run, and the cached artifact is byte-identical to the fresh one.

use std::path::PathBuf;
use std::time::Instant;

use hopp_bench::lab::{self, SweepSpec};

/// A per-test temp cache directory (removed at the end of the test).
fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hopp-lab-sweep-{tag}-{}", std::process::id()))
}

fn spec(threads: usize, cache_dir: Option<PathBuf>) -> SweepSpec {
    let mut spec = SweepSpec::quick();
    spec.footprint = 512;
    spec.spark_footprint = 512;
    spec.threads = threads;
    spec.cache_dir = cache_dir;
    spec
}

#[test]
fn sweep_artifact_is_byte_identical_across_thread_counts() {
    let one = lab::run_sweep(&spec(1, None)).unwrap();
    let four = lab::run_sweep(&spec(4, None)).unwrap();
    assert_eq!(one.cells_failed, 0);
    assert_eq!(four.cells_failed, 0);
    assert_eq!(
        one.json, four.json,
        "thread count leaked into the sweep artifact"
    );
}

#[test]
fn warm_cache_rerun_is_at_least_five_times_faster() {
    let dir = temp_cache("warm");
    let _ = std::fs::remove_dir_all(&dir);

    let started = Instant::now();
    let cold = lab::run_sweep(&spec(2, Some(dir.clone()))).unwrap();
    let cold_wall = started.elapsed();
    assert_eq!(cold.cells_cached, 0, "cache directory was not fresh");
    assert_eq!(cold.cells_failed, 0);

    let started = Instant::now();
    let warm = lab::run_sweep(&spec(2, Some(dir.clone()))).unwrap();
    let warm_wall = started.elapsed();
    assert_eq!(warm.cells_run, 0, "warm run re-simulated a cached cell");
    assert_eq!(warm.cells_cached, cold.cells_run);

    assert_eq!(
        cold.json, warm.json,
        "cached cells rendered differently from fresh ones"
    );
    assert!(
        warm_wall * 5 <= cold_wall,
        "warm re-run not ≥5× faster: cold {cold_wall:?}, warm {warm_wall:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
