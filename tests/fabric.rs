//! The sharded remote-memory pool, end to end: the degenerate pool is
//! bit-identical to the paper's single-link testbed, scripted node
//! faults replay deterministically, and node loss completes via
//! failover instead of killing the run.

use hopp::fabric::{FabricConfig, FaultScript, PlacementKind};
use hopp::sim::{
    run_workload, run_workload_with, run_workload_with_faults, BaselineKind, SimConfig,
    SystemConfig,
};
use hopp::types::{Error, NodeId};
use hopp::workloads::WorkloadKind;

fn pool_config(nodes: usize, replication: usize, system: SystemConfig) -> SimConfig {
    SimConfig {
        fabric: FabricConfig {
            nodes,
            replication,
            ..FabricConfig::default()
        },
        ..SimConfig::with_system(system)
    }
}

/// Acceptance: `--mem-nodes 1` with replication off and no fault script
/// produces metrics bit-identical to the plain single-link simulator.
#[test]
fn single_node_pool_is_bit_identical_to_the_plain_link() {
    for system in [
        SystemConfig::Baseline(BaselineKind::Fastswap),
        SystemConfig::hopp_default(),
    ] {
        let plain = run_workload(WorkloadKind::Kmeans, 1_024, 42, system, 0.5).unwrap();
        let pooled = run_workload_with(
            pool_config(1, 1, system),
            WorkloadKind::Kmeans,
            1_024,
            42,
            0.5,
        )
        .unwrap();
        assert_eq!(
            plain.metrics_json(),
            pooled.metrics_json(),
            "explicit 1-node pool must be a transparent pass-through"
        );
        assert!(pooled.fabric.is_none(), "degenerate pool adds no report");
    }
}

/// Satellite: identical seed + identical fault script ⇒ byte-identical
/// metrics JSON across two runs.
#[test]
fn fault_runs_replay_byte_identically() {
    let script = FaultScript::parse("2:0:slow:3:4,6:2:fail:2,9:1:down").unwrap();
    let run = || {
        run_workload_with_faults(
            pool_config(4, 2, SystemConfig::hopp_default()),
            WorkloadKind::Kmeans,
            1_024,
            42,
            0.5,
            &script,
        )
        .unwrap()
        .metrics_json()
    };
    assert_eq!(run(), run(), "same seed + script must replay exactly");
}

/// Acceptance: a scripted node loss mid-run completes via failover
/// re-reads on the replicas.
#[test]
fn node_loss_completes_via_failover() {
    // 20 ms is mid-run: pages already live on node 1 when it dies.
    let script = FaultScript::parse("20:1:down").unwrap();
    let report = run_workload_with_faults(
        pool_config(4, 2, SystemConfig::Baseline(BaselineKind::Fastswap)),
        WorkloadKind::Kmeans,
        2_048,
        42,
        0.5,
        &script,
    )
    .unwrap();
    let fabric = report.fabric.as_ref().expect("multi-node pool reports");
    assert!(fabric.nodes[1].lost, "the scripted node is marked lost");
    assert!(
        fabric.failovers > 0,
        "reads of node 1's pages must fail over to replicas"
    );
    let healthy = run_workload_with(
        pool_config(4, 2, SystemConfig::Baseline(BaselineKind::Fastswap)),
        WorkloadKind::Kmeans,
        2_048,
        42,
        0.5,
    )
    .unwrap();
    assert_eq!(
        report.counters.accesses, healthy.counters.accesses,
        "the workload ran to completion despite the loss"
    );
    assert!(
        report.completion >= healthy.completion,
        "failover can only cost time"
    );
    // The loss shows up in the metrics JSON for downstream tooling.
    let json = report.metrics_json();
    assert!(json.contains("\"fabric\":{"), "fabric section present");
    assert!(json.contains("\"lost\":true"), "lost node serialized");
}

/// Placement policies shard work across every node; each policy keeps
/// the run's totals identical because placement only picks *where*
/// pages live, never *whether* they move.
#[test]
fn every_placement_policy_uses_all_nodes() {
    for placement in [
        PlacementKind::StaticHash,
        PlacementKind::RoundRobin,
        PlacementKind::StreamAware,
    ] {
        let config = SimConfig {
            fabric: FabricConfig {
                nodes: 4,
                placement,
                ..FabricConfig::default()
            },
            ..SimConfig::with_system(SystemConfig::hopp_default())
        };
        let report = run_workload_with(config, WorkloadKind::Kmeans, 2_048, 42, 0.25).unwrap();
        let fabric = report.fabric.as_ref().expect("multi-node pool reports");
        let busy = fabric.nodes.iter().filter(|n| n.link.reads > 0).count();
        assert!(
            busy >= 2,
            "{}: expected >= 2 nodes serving reads, got {busy}",
            placement.name()
        );
        let node_reads: u64 = fabric.nodes.iter().map(|n| n.link.reads).sum();
        assert_eq!(node_reads, report.rdma.reads, "per-node reads sum to total");
    }
}

/// An unreplicated pool cannot survive losing a node that still holds
/// pages: the run reports a typed [`Error::PageUnreachable`] naming the
/// page and node rather than panicking or fabricating data.
#[test]
fn unreplicated_node_loss_is_a_typed_error() {
    let script = FaultScript::parse("20:1:down").unwrap();
    let err = run_workload_with_faults(
        pool_config(4, 1, SystemConfig::Baseline(BaselineKind::Fastswap)),
        WorkloadKind::Kmeans,
        2_048,
        42,
        0.5,
        &script,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            Error::PageUnreachable {
                primary,
                replication: 1,
                ..
            } if primary == NodeId::new(1)
        ),
        "expected PageUnreachable for node 1, got {err}"
    );
}
