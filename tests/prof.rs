//! End-to-end checks of the host self-profiler (`hopp-prof`) against a
//! real simulated run: attribution quality when enabled, and behavioural
//! invariance of the simulation itself when toggled.

use hopp::prof;
use hopp::sim::{run_workload, SimReport, SystemConfig};
use hopp::types::Result;
use hopp::workloads::WorkloadKind;

fn hopp_run() -> Result<SimReport> {
    run_workload(
        WorkloadKind::Kmeans,
        2_048,
        42,
        SystemConfig::hopp_default(),
        0.5,
    )
}

/// The acceptance bar from the observability PR: with profiling on, at
/// least 90% of the hopp-system run's wall time must land in named
/// component spans below the `sim/run` root — i.e. the root's self time
/// (the part no component claimed) stays under 10%.
#[test]
fn profiler_attributes_most_host_time_to_component_spans() {
    let (result, report) = prof::profile("kmeans", "hopp", "run", false, hopp_run);
    result.expect("hopp run failed");
    let run = report.node("sim/run").expect("no sim/run span");
    assert!(run.count >= 1);
    assert!(run.total_ns > 0, "sim/run measured no time");
    assert!(
        run.self_ns * 10 <= run.total_ns,
        "only {} of {} ns attributed below sim/run ({} ns unattributed self time)",
        run.total_ns - run.self_ns,
        run.total_ns,
        run.self_ns
    );
    // The big component families all showed up.
    for path in [
        "sim/run;sim/step",
        "sim/run;sim/step;sim/drain",
        "sim/run;trace/stream",
    ] {
        assert!(report.node(path).is_some(), "missing span {path}");
    }
    assert!(
        report.nodes.iter().any(|n| n.label == "kernel/reclaim"),
        "no kernel/reclaim span in a 50%-local run"
    );
    assert!(
        report.nodes.iter().any(|n| n.label == "core/train"),
        "no core/train span in a hopp run"
    );
}

/// Toggling the profiler must never change simulated behaviour: the
/// spans only read the host clock, the simulator never reads it back.
#[test]
fn profiling_never_changes_simulated_behaviour() {
    let plain = hopp_run().expect("hopp run failed");
    let (profiled, report) = prof::profile("kmeans", "hopp", "run", true, hopp_run);
    let profiled = profiled.expect("hopp run failed");
    assert!(report.attributed_ns() > 0);
    assert_eq!(plain.completion, profiled.completion);
    assert_eq!(plain.metrics_json(), profiled.metrics_json());
}
