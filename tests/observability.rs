//! End-to-end observability guarantees: determinism of the exported
//! traces, structural validity of the Chrome trace, and the promise
//! that turning observability off (or on) never changes the simulation.

use hopp::obs::{events_to_chrome_trace, events_to_jsonl, ObsLevel};
use hopp::sim::{run_workload_with, SimConfig, SimReport, SystemConfig};
use hopp::workloads::WorkloadKind;

fn run_at(level: ObsLevel) -> SimReport {
    let config = SimConfig {
        obs_level: level,
        ..SimConfig::with_system(SystemConfig::hopp_default())
    };
    run_workload_with(config, WorkloadKind::Kmeans, 1_024, 42, 0.5).expect("obs run")
}

#[test]
fn same_seed_full_runs_export_byte_identical_jsonl() {
    let a = run_at(ObsLevel::Full);
    let b = run_at(ObsLevel::Full);
    assert!(!a.obs.events.is_empty(), "a full run records events");
    let ja = events_to_jsonl(&a.obs.events);
    let jb = events_to_jsonl(&b.obs.events);
    assert_eq!(ja, jb, "same seed + config must trace identically");
    // Every line is a self-contained object with the common keys.
    for line in ja.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"ts\":"));
        assert!(line.contains("\"component\":"));
        assert!(line.contains("\"event\":"));
    }
}

#[test]
fn obs_level_leaves_the_simulation_bit_identical() {
    let off = run_at(ObsLevel::Off);
    let counters = run_at(ObsLevel::Counters);
    let full = run_at(ObsLevel::Full);
    for r in [&counters, &full] {
        assert_eq!(off.counters, r.counters);
        assert_eq!(off.completion, r.completion);
        assert_eq!(off.rdma, r.rdma);
        assert_eq!(off.hpd, r.hpd);
    }
    // And the off path really collects nothing.
    assert_eq!(off.obs.latency.major_fault.count, 0);
    assert!(off.obs.events.is_empty());
    assert!(full.obs.latency.timeliness.count > 0);
}

#[test]
fn chrome_trace_is_valid_json_with_monotonic_ts_per_track() {
    let r = run_at(ObsLevel::Full);
    let trace = events_to_chrome_trace(&r.obs.events);
    let value = json::parse(&trace).expect("trace parses as JSON");
    let json::Value::Object(top) = &value else {
        panic!("top level is an object")
    };
    assert_eq!(
        top.iter()
            .find(|(k, _)| k == "displayTimeUnit")
            .map(|(_, v)| v),
        Some(&json::Value::String("ns".into()))
    );
    let Some((_, json::Value::Array(events))) = top.iter().find(|(k, _)| k == "traceEvents") else {
        panic!("traceEvents is an array")
    };
    assert!(!events.is_empty());
    let mut last_ts: std::collections::HashMap<(i64, i64), f64> = std::collections::HashMap::new();
    for e in events {
        let json::Value::Object(fields) = e else {
            panic!("every trace event is an object")
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let ph = match get("ph") {
            Some(json::Value::String(s)) => s.clone(),
            other => panic!("ph is a string, got {other:?}"),
        };
        if ph == "M" {
            continue; // thread-name metadata carries no ts
        }
        let (Some(json::Value::Number(pid)), Some(json::Value::Number(tid))) =
            (get("pid"), get("tid"))
        else {
            panic!("pid/tid are numbers")
        };
        let Some(json::Value::Number(ts)) = get("ts") else {
            panic!("ts is a number")
        };
        let track = (*pid as i64, *tid as i64);
        if let Some(prev) = last_ts.get(&track) {
            assert!(
                ts >= prev,
                "ts went backwards on track {track:?}: {prev} -> {ts}"
            );
        }
        last_ts.insert(track, *ts);
        if ph == "X" {
            assert!(
                matches!(get("dur"), Some(json::Value::Number(d)) if *d >= 0.0),
                "complete slices carry a non-negative dur"
            );
        }
    }
    assert!(last_ts.len() > 1, "more than one component track is live");
}

/// A dependency-free JSON parser, just enough to validate exporter
/// output (numbers, strings without escapes, bools, arrays, objects).
mod json {
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl From<&str> for Value {
        fn from(s: &str) -> Value {
            Value::String(s.to_string())
        }
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && b[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::String(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {pos}"))
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                return Err(format!("escape at {pos} (exporter never escapes)"));
            }
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos])
            .map_err(|e| e.to_string())?
            .to_string();
        expect(b, pos, b'"')?;
        Ok(s)
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected , or ] at {pos}")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut members = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            members.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected , or }} at {pos}")),
            }
        }
    }

    #[test]
    fn mini_parser_handles_the_shapes_the_exporter_emits() {
        let v = parse("{\"a\":[1, 2.5], \"b\":\"x\", \"c\":true}").unwrap();
        let Value::Object(o) = v else { panic!() };
        assert_eq!(
            o[0].1,
            Value::Array(vec![Value::Number(1.0), Value::Number(2.5)])
        );
        assert_eq!(o[1].1, Value::String("x".into()));
        assert_eq!(o[2].1, Value::Bool(true));
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2] junk").is_err());
    }
}

#[test]
fn metrics_json_parses_and_carries_percentiles() {
    let r = run_at(ObsLevel::Counters);
    let m = json::parse(&r.metrics_json()).expect("metrics JSON parses");
    let json::Value::Object(top) = &m else {
        panic!("object")
    };
    let get = |k: &str| top.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    assert!(matches!(get("system"), Some(json::Value::String(_))));
    assert!(matches!(get("counters"), Some(json::Value::Object(_))));
    let Some(json::Value::Object(latency)) = get("latency") else {
        panic!("latency object")
    };
    for key in [
        "major_fault",
        "prefetch_timeliness",
        "inflight_wait",
        "rdma_read",
        "rdma_write",
    ] {
        let Some((_, json::Value::Object(h))) = latency.iter().find(|(n, _)| n == key) else {
            panic!("latency.{key} present")
        };
        for field in ["count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
            assert!(
                h.iter().any(|(n, _)| n == field),
                "latency.{key}.{field} present"
            );
        }
    }
}
