//! Steady-state allocation regression test (ISSUE 4, satellite 3).
//!
//! The simulator's hot-path collections (`DetMap`/`PageMap`/`Lru`) keep
//! their backing storage across insert/remove churn, and the per-tick
//! scratch buffers (`prefetch_buf`, the HoPP completion buffer, the
//! baseline completion queue) are pre-sized and reused. This test pins
//! that property end to end: once a fixed working set has been swept a
//! few times, *additional* sweeps must allocate almost nothing.
//!
//! Before the `hopp-ds` migration every fault churned `BTreeMap` nodes
//! (in-flight maps, LRU stamp maps, swap-slot contents), so extra
//! passes allocated in proportion to their fault count and this bound
//! failed by an order of magnitude.

// A `GlobalAlloc` impl is unavoidably `unsafe`; this one only counts
// and delegates to the system allocator. Test-only code.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hopp_sim::{AppSpec, SimConfig, Simulator, SystemConfig};
use hopp_trace::AccessStream;
use hopp_types::{PageAccess, Pid, Vpn};

/// Counts every heap allocation made by this test binary.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter has
// no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Sweeps a fixed working set of `pages` pages sequentially, `passes`
/// times. The footprint never changes after the first pass, so every
/// later pass exercises pure steady-state fault/reclaim churn.
struct Sweep {
    pid: Pid,
    pages: u64,
    remaining: u64,
    pos: u64,
}

impl Sweep {
    fn new(pid: Pid, pages: u64, passes: u64) -> Self {
        Sweep {
            pid,
            pages,
            remaining: pages * passes,
            pos: 0,
        }
    }
}

impl AccessStream for Sweep {
    fn next_access(&mut self) -> Option<PageAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let access = PageAccess::read(self.pid, Vpn::new(self.pos));
        self.pos = (self.pos + 1) % self.pages;
        Some(access)
    }

    fn name(&self) -> &str {
        "sweep"
    }
}

const PAGES: u64 = 512;

/// Allocations made by one full construct-and-run cycle.
fn allocs_for(system: SystemConfig, passes: u64) -> u64 {
    let mut config = SimConfig::with_system(system);
    // Timeline samples grow a Vec with run length by design; disable
    // them so the measurement isolates the hot path.
    config.timeline_every = 0;
    // Half the working set fits locally: every pass keeps faulting.
    let apps = vec![AppSpec {
        pid: Pid::new(1),
        stream: Box::new(Sweep::new(Pid::new(1), PAGES, passes)),
        limit_pages: PAGES as usize / 2,
    }];
    let sim = Simulator::new(config, apps).expect("config is valid");
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = sim.run().expect("run succeeds");
    let after = ALLOCS.load(Ordering::Relaxed);
    if passes > 1 {
        assert!(report.counters.major_faults > 0, "workload must swap");
    }
    after - before
}

#[test]
fn fault_path_extra_passes_do_not_grow_allocations() {
    let system = SystemConfig::Baseline(hopp_sim::BaselineKind::Fastswap);
    // Warm up once so lazily-initialized runtime state (stdio locks,
    // etc.) does not pollute the first measurement.
    let _ = allocs_for(system, 1);
    let short = allocs_for(system, 4);
    let long = allocs_for(system, 12);
    // The long run does 3x the passes (and 3x the faults) of the short
    // run on the identical working set. The fault path's collections
    // (in-flight `DetMap`s, LRU lists, swapcache, completion queue) and
    // scratch buffers are all warm after the first pass, so the extra
    // 8 passes may only add a small fraction on top: amortized
    // slab/heap doublings, nothing per-tick. BTreeMap-era node churn
    // made `long` scale ~linearly with the pass count.
    let budget = short / 2;
    assert!(
        long.saturating_sub(short) <= budget,
        "steady-state passes must not allocate per tick: \
         4 passes = {short} allocs, 12 passes = {long} allocs \
         (growth {} > budget {budget})",
        long - short,
    );
}

#[test]
fn hopp_per_fault_allocations_stay_bounded() {
    // The HoPP stack still allocates per *training window* (the STT
    // window snapshot and the order list are built per prediction), so
    // it is not allocation-flat — but the per-tick buffers must keep
    // its growth well below one allocation per access. Pin a coarse
    // ceiling so a regression back to per-access map churn is caught.
    let system = SystemConfig::hopp_default();
    let _ = allocs_for(system, 1);
    let short = allocs_for(system, 4);
    let long = allocs_for(system, 12);
    let extra_accesses = PAGES * 8; // 12 - 4 extra passes
    let growth = long.saturating_sub(short);
    assert!(
        growth <= extra_accesses * 6,
        "hopp steady-state allocation growth regressed: \
         {growth} allocs over {extra_accesses} extra accesses"
    );
}
