//! Failure injection: the stack must fail loudly and precisely when its
//! operating assumptions break — misconfiguration, resource exhaustion,
//! protocol violations — rather than silently producing wrong results.

use hopp::hw::rtl_rpt::{RptRtl, MSHR_ENTRIES};
use hopp::hw::{HpdConfig, McPipeline, RptCacheConfig};
use hopp::kernel::SwapDevice;
use hopp::sim::{
    run_workload_with_faults, AppSpec, BaselineKind, FabricConfig, FaultScript, SimConfig,
    Simulator, SystemConfig,
};
use hopp::trace::hmtt::{HmttRecord, TraceRing};
use hopp::trace::llc::LlcConfig;
use hopp::trace::patterns::SimpleStream;
use hopp::types::{AccessKind, Error, LineAccess, LineAddr, Nanos, NodeId, Pid, Ppn, Vpn};
use hopp::workloads::WorkloadKind;

fn scan_app(pages: u64, limit: usize) -> AppSpec {
    AppSpec {
        pid: Pid::new(1),
        stream: Box::new(SimpleStream::new(Pid::new(1), Vpn::new(1 << 20), 1, pages)),
        limit_pages: limit,
    }
}

#[test]
fn invalid_geometries_are_rejected_up_front() {
    // Every bad knob surfaces at Simulator::new, not mid-run.
    let bad_llc = SimConfig {
        llc: LlcConfig {
            capacity_bytes: 100, // not a multiple of ways * 64B
            ways: 16,
        },
        ..SimConfig::default()
    };
    assert!(Simulator::new(bad_llc, vec![scan_app(512, 512)]).is_err());

    let bad_hpd = SimConfig {
        hpd: HpdConfig::with_threshold(0),
        ..SimConfig::default()
    };
    assert!(Simulator::new(bad_hpd, vec![scan_app(512, 512)]).is_err());

    let bad_rpt = SimConfig {
        rpt: RptCacheConfig {
            capacity_bytes: 24,
            ways: 16,
        },
        ..SimConfig::default()
    };
    assert!(Simulator::new(bad_rpt, vec![scan_app(512, 512)]).is_err());

    let bad_channels = SimConfig {
        channels: 0,
        ..SimConfig::default()
    };
    assert!(Simulator::new(bad_channels, vec![scan_app(512, 512)]).is_err());
}

#[test]
fn zero_cgroup_limit_is_rejected() {
    assert!(Simulator::new(SimConfig::default(), vec![scan_app(512, 0)]).is_err());
}

#[test]
fn remote_exhaustion_is_a_typed_error_not_a_panic() {
    // 2000 pages must spill ~1000 to remote, but the node only holds 64.
    let config = SimConfig {
        remote_capacity_pages: Some(64),
        ..SimConfig::with_system(SystemConfig::Baseline(BaselineKind::NoPrefetch))
    };
    let err = Simulator::new(config, vec![scan_app(2_000, 1_000)])
        .unwrap()
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        Error::RemoteMemoryExhausted { capacity_pages: 64 }
    ));
    assert_eq!(err.to_string(), "remote memory node full (64 pages)");
}

#[test]
fn remote_capacity_that_fits_is_fine() {
    let config = SimConfig {
        remote_capacity_pages: Some(4_096),
        ..SimConfig::with_system(SystemConfig::Baseline(BaselineKind::Fastswap))
    };
    let r = Simulator::new(config, vec![scan_app(2_000, 1_000)])
        .unwrap()
        .run()
        .unwrap();
    assert!(r.counters.reclaimed > 0);
}

#[test]
fn losing_every_replica_surfaces_page_unreachable_with_context() {
    // Unreplicated 2-node pool; node 0 dies mid-run, after pages have
    // been hashed onto it. The first major fault on a page whose primary
    // was node 0 must surface as a typed error carrying the page and
    // node, not a panic or a silent stall.
    let config = SimConfig {
        fabric: FabricConfig {
            nodes: 2,
            replication: 1,
            ..FabricConfig::default()
        },
        ..SimConfig::with_system(SystemConfig::Baseline(BaselineKind::Fastswap))
    };
    let script = FaultScript::parse("20:0:down").unwrap();
    let err = run_workload_with_faults(config, WorkloadKind::Kmeans, 2_048, 42, 0.5, &script)
        .unwrap_err();
    let msg = err.to_string();
    match err {
        Error::PageUnreachable {
            primary,
            replication,
            ..
        } => {
            assert_eq!(primary, NodeId::new(0), "only the downed node is lost");
            assert_eq!(replication, 1);
        }
        other => panic!("expected PageUnreachable, got {other}"),
    }
    assert!(msg.contains("unreachable"), "{msg}");
    assert!(msg.contains("--replication"), "points at the remedy: {msg}");
}

#[test]
fn swap_device_surfaces_exhaustion_as_an_error() {
    let mut dev = SwapDevice::with_capacity(1);
    dev.alloc(Pid::new(1), Vpn::new(1)).unwrap();
    let err = dev.alloc(Pid::new(1), Vpn::new(2)).unwrap_err();
    assert!(matches!(
        err,
        Error::RemoteMemoryExhausted { capacity_pages: 1 }
    ));
    assert_eq!(err.to_string(), "remote memory node full (1 pages)");
}

#[test]
fn hmtt_ring_overrun_is_counted_not_hidden() {
    // A consumer that stalls loses the oldest records, and the loss is
    // observable — the debugging story for an undersized reserved area.
    let mut ring = TraceRing::new(8);
    for i in 0..100u64 {
        ring.push(HmttRecord::capture(
            i,
            &LineAccess {
                addr: LineAddr::new(i),
                kind: AccessKind::Read,
                at: Nanos::from_nanos(i * 64),
            },
        ));
    }
    assert_eq!(ring.overruns(), 92);
    assert_eq!(ring.len(), 8);
    // The survivors are the newest records, in order.
    let first = ring.pop().unwrap();
    assert_eq!(first.seqno(), 92);
}

#[test]
#[should_panic(expected = "MSHR overflow")]
fn rpt_rtl_enforces_its_outstanding_miss_budget() {
    let mut cache = RptRtl::new(RptCacheConfig::default()).unwrap();
    for p in 0..=MSHR_ENTRIES as u64 {
        let _ = cache.lookup(Ppn::new(p));
    }
}

#[test]
fn unresolvable_hot_pages_never_reach_software() {
    // A frame becomes hot but was never mapped (e.g. freed in the race
    // window): the pipeline drops it instead of fabricating an identity.
    let mut mc = McPipeline::new(HpdConfig::with_threshold(1), RptCacheConfig::default()).unwrap();
    let hot = mc.on_llc_miss(Ppn::new(1234).line(0), AccessKind::Read, Nanos::ZERO);
    assert!(hot.is_none());
    assert_eq!(mc.rpt().stats().unresolved, 1);
}

#[test]
fn workload_rejects_meaningless_footprints() {
    let result =
        std::panic::catch_unwind(|| hopp::workloads::WorkloadKind::Hpl.build(Pid::new(1), 16, 0));
    assert!(result.is_err(), "tiny footprints are a configuration bug");
}
