//! End-to-end integration tests through the public facade: the full
//! stack (workload → LLC → MC pipeline → kernel → RDMA → HoPP engines)
//! must reproduce the paper's headline behaviours.

use hopp::sim::{run_local, run_workload, BaselineKind, SimReport, SystemConfig};
use hopp::workloads::WorkloadKind;

const FP: u64 = 1_024;
const SEED: u64 = 42;

fn fastswap(kind: WorkloadKind) -> SimReport {
    run_workload(
        kind,
        FP,
        SEED,
        SystemConfig::Baseline(BaselineKind::Fastswap),
        0.5,
    )
    .expect("fastswap run")
}

fn hopp(kind: WorkloadKind) -> SimReport {
    run_workload(kind, FP, SEED, SystemConfig::hopp_default(), 0.5).expect("hopp run")
}

#[test]
fn hopp_beats_fastswap_on_every_stream_heavy_workload() {
    for kind in [
        WorkloadKind::Kmeans,
        WorkloadKind::NpbLu,
        WorkloadKind::NpbCg,
        WorkloadKind::Microbench,
    ] {
        let fs = fastswap(kind);
        let hp = hopp(kind);
        assert!(
            hp.completion < fs.completion,
            "{}: hopp {} !< fastswap {}",
            kind.name(),
            hp.completion,
            fs.completion
        );
    }
}

#[test]
fn hopp_converts_prefetch_hits_into_dram_hits() {
    let fs = fastswap(WorkloadKind::Kmeans);
    let hp = hopp(WorkloadKind::Kmeans);
    // Fastswap serves re-accesses via the swapcache (minor faults);
    // HoPP's early PTE injection makes them disappear entirely.
    assert!(fs.counters.minor_faults > 1_000);
    assert!(
        hp.counters.minor_faults < fs.counters.minor_faults / 4,
        "hopp minor faults {} vs fastswap {}",
        hp.counters.minor_faults,
        fs.counters.minor_faults
    );
    let h = hp.hopp.expect("hopp metrics present");
    assert!(h.prefetch_hits > 1_000, "injected pages are actually hit");
}

#[test]
fn paper_metrics_bounds_hold_for_all_systems() {
    for system in [
        SystemConfig::Baseline(BaselineKind::NoPrefetch),
        SystemConfig::Baseline(BaselineKind::Fastswap),
        SystemConfig::Baseline(BaselineKind::Leap),
        SystemConfig::Baseline(BaselineKind::Vma),
        SystemConfig::Baseline(BaselineKind::DepthN(16)),
        SystemConfig::hopp_default(),
    ] {
        let r = run_workload(WorkloadKind::NpbIs, FP, SEED, system, 0.5).unwrap();
        assert!((0.0..=1.0).contains(&r.accuracy()), "{}", r.system);
        assert!((0.0..=1.0).contains(&r.coverage()), "{}", r.system);
        assert!(
            (r.coverage_swapcache() + r.coverage_injected() - r.coverage()).abs() < 1e-9,
            "coverage split sums"
        );
    }
}

#[test]
fn local_runs_never_touch_the_network() {
    for kind in [WorkloadKind::Quicksort, WorkloadKind::GraphBfs] {
        let r = run_local(kind, FP, SEED).unwrap();
        assert_eq!(r.counters.major_faults, 0, "{}", kind.name());
        assert_eq!(r.rdma.reads, 0, "{}", kind.name());
        assert_eq!(r.rdma.writes, 0, "{}", kind.name());
    }
}

#[test]
fn runs_are_deterministic() {
    let a = hopp(WorkloadKind::NpbMg);
    let b = hopp(WorkloadKind::NpbMg);
    assert_eq!(a.completion, b.completion);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.rdma, b.rdma);
    assert_eq!(a.hpd, b.hpd);
}

#[test]
fn tighter_memory_never_speeds_things_up() {
    for system in [
        SystemConfig::Baseline(BaselineKind::Fastswap),
        SystemConfig::hopp_default(),
    ] {
        let half = run_workload(WorkloadKind::NpbIs, FP, SEED, system, 0.5).unwrap();
        let quarter = run_workload(WorkloadKind::NpbIs, FP, SEED, system, 0.25).unwrap();
        assert!(
            quarter.completion >= half.completion,
            "{}: 25% {} faster than 50% {}",
            half.system,
            quarter.completion,
            half.completion
        );
    }
}

#[test]
fn accounting_is_conserved() {
    let r = hopp(WorkloadKind::NpbFt);
    let c = r.counters;
    // Every access is exactly one of the outcome classes.
    assert_eq!(
        c.accesses,
        c.dram_hits + c.major_faults + c.minor_faults + c.first_touches,
        "access outcome classes partition the accesses: {c:?}"
    );
    // Remote reads = demand major faults + all prefetch fetches that
    // were actually issued.
    assert_eq!(
        r.rdma.reads,
        c.major_faults + c.baseline_prefetches + c.hopp_prefetches,
        "every remote read is accounted for"
    );
}

#[test]
fn depth_n_injects_eagerly_but_cannot_adapt() {
    let d = run_workload(
        WorkloadKind::NpbFt,
        FP,
        SEED,
        SystemConfig::Baseline(BaselineKind::DepthN(32)),
        0.5,
    )
    .unwrap();
    let f = fastswap(WorkloadKind::NpbFt);
    // The §II-C paradox: on FT's strided phases Depth-32 floods the
    // link with wrong pages — far more remote traffic than Fastswap...
    assert!(d.rdma.reads > f.rdma.reads);
    // ...and (in this workload) a slower completion despite paying no
    // prefetch-hit costs.
    assert!(d.completion > f.completion);
}

#[test]
fn hpd_trace_is_collected_for_baselines_too() {
    // The hardware is passive: it observes the miss stream whether or
    // not HoPP's software consumes it.
    let r = fastswap(WorkloadKind::Kmeans);
    assert!(r.hpd.hot_pages > 0);
    assert!(r.ledger.hpd_overhead_percent() > 0.0);
    assert!(r.ledger.hpd_overhead_percent() < 2.0, "it stays tiny");
}
