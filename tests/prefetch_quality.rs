//! Prefetch-quality invariants across the whole workload catalogue:
//! the qualitative claims of §VI must hold for every workload, not just
//! the ones the figures highlight.

use hopp::sim::{BaselineKind, SimReport, SystemConfig};
use hopp::workloads::WorkloadKind;

const FP: u64 = 512;
const SEED: u64 = 7;

fn run_workload(
    kind: WorkloadKind,
    fp: u64,
    seed: u64,
    system: SystemConfig,
    ratio: f64,
) -> SimReport {
    hopp::sim::run_workload(kind, fp, seed, system, ratio).expect("quality run")
}

#[test]
fn every_workload_runs_under_every_system() {
    for kind in WorkloadKind::ALL {
        for system in [
            SystemConfig::Baseline(BaselineKind::Fastswap),
            SystemConfig::hopp_default(),
        ] {
            let r = run_workload(kind, FP, SEED, system, 0.5);
            assert!(
                r.counters.accesses > 0,
                "{} under {}",
                kind.name(),
                r.system
            );
            assert!(
                r.completion > hopp::types::Nanos::ZERO,
                "{} under {}",
                kind.name(),
                r.system
            );
        }
    }
}

#[test]
fn hopp_never_loses_badly_to_fastswap() {
    // The paper's claim is that HoPP complements Fastswap; it must not
    // regress any workload by more than a few percent (prediction
    // overhead on hostile patterns is bounded by the dedupe checks).
    for kind in WorkloadKind::ALL {
        let fs = run_workload(
            kind,
            FP,
            SEED,
            SystemConfig::Baseline(BaselineKind::Fastswap),
            0.5,
        );
        let hp = run_workload(kind, FP, SEED, SystemConfig::hopp_default(), 0.5);
        let ratio = hp.completion.as_nanos() as f64 / fs.completion.as_nanos() as f64;
        assert!(
            ratio < 1.10,
            "{}: hopp/fastswap completion ratio {ratio:.3}",
            kind.name()
        );
    }
}

#[test]
fn hopp_coverage_dominates_fastswap_on_non_jvm() {
    for kind in WorkloadKind::NON_JVM {
        let fs = run_workload(
            kind,
            FP,
            SEED,
            SystemConfig::Baseline(BaselineKind::Fastswap),
            0.5,
        );
        let hp = run_workload(kind, FP, SEED, SystemConfig::hopp_default(), 0.5);
        assert!(
            hp.coverage() >= fs.coverage() - 0.02,
            "{}: hopp coverage {:.3} < fastswap {:.3}",
            kind.name(),
            hp.coverage(),
            fs.coverage()
        );
    }
}

#[test]
fn injected_pages_show_up_as_dram_hit_coverage() {
    let hp = run_workload(
        WorkloadKind::Kmeans,
        FP,
        SEED,
        SystemConfig::hopp_default(),
        0.5,
    );
    assert!(
        hp.coverage_injected() > hp.coverage_swapcache(),
        "on a clean stream, HoPP's own data path should dominate: inj {:.3} sc {:.3}",
        hp.coverage_injected(),
        hp.coverage_swapcache()
    );
}

#[test]
fn jvm_workloads_have_lower_coverage_than_native_streams() {
    // §VI-B: JVM memory management fragments the streams.
    let native = run_workload(
        WorkloadKind::Kmeans,
        FP,
        SEED,
        SystemConfig::hopp_default(),
        0.5,
    );
    let jvm = run_workload(
        WorkloadKind::SparkBayes,
        FP,
        SEED,
        SystemConfig::hopp_default(),
        0.5,
    );
    assert!(
        jvm.coverage() < native.coverage(),
        "jvm {:.3} vs native {:.3}",
        jvm.coverage(),
        native.coverage()
    );
}

#[test]
fn leap_confused_by_interleaved_streams_microbenchmark() {
    // §VI-E: with two concurrent scan threads, Leap's fault-window
    // stride detection computes wrong strides and underperforms even
    // plain Fastswap.
    let leap = run_workload(
        WorkloadKind::Microbench,
        FP,
        SEED,
        SystemConfig::Baseline(BaselineKind::Leap),
        0.5,
    );
    let fs = run_workload(
        WorkloadKind::Microbench,
        FP,
        SEED,
        SystemConfig::Baseline(BaselineKind::Fastswap),
        0.5,
    );
    assert!(leap.completion > fs.completion);
}

#[test]
fn timeliness_is_measured_for_hopp_hits() {
    let hp = run_workload(
        WorkloadKind::Kmeans,
        FP,
        SEED,
        SystemConfig::hopp_default(),
        0.5,
    );
    let m = hp.hopp.expect("hopp ran");
    assert!(m.prefetch_hits > 0);
    assert!(
        m.mean_timeliness > hopp::types::Nanos::ZERO,
        "hits arrive before use, so timeliness is positive"
    );
}
