//! Integration of the hardware pipeline with the memory substrate:
//! kernel-maintained page tables feed the RPT via PTE hooks, the LLC
//! filters the miss stream, and hot pages come out with the right
//! identities — across the `hopp-mem`, `hopp-trace` and `hopp-hw`
//! crates.

use hopp::hw::{HpdConfig, McPipeline, RptCacheConfig};
use hopp::mem::{AddressSpace, FrameAllocator};
use hopp::trace::llc::{LastLevelCache, LlcConfig};
use hopp::types::{AccessKind, HotPage, Nanos, Pid, SwapSlot, Vpn};

/// A miniature machine: 64 frames, a tiny LLC, the MC pipeline.
struct Rig {
    frames: FrameAllocator,
    space: AddressSpace,
    llc: LastLevelCache,
    mc: McPipeline,
    clock: u64,
}

impl Rig {
    fn new() -> Self {
        Rig {
            frames: FrameAllocator::new(64),
            space: AddressSpace::new(Pid::new(9)),
            llc: LastLevelCache::new(LlcConfig::tiny()).unwrap(),
            mc: McPipeline::new(HpdConfig::default(), RptCacheConfig::default()).unwrap(),
            clock: 0,
        }
    }

    fn map(&mut self, vpn: u64) {
        let ppn = self.frames.alloc(Pid::new(9), Vpn::new(vpn)).unwrap();
        assert!(self
            .space
            .map_present(Vpn::new(vpn), ppn, &mut self.mc)
            .is_none());
    }

    /// Touches `lines` cachelines of a mapped page; returns hot events.
    fn touch(&mut self, vpn: u64, lines: u8) -> Vec<HotPage> {
        let mapping = self.space.lookup(Vpn::new(vpn)).expect("mapped");
        let hopp_mem_pte = match mapping {
            hopp::mem::Mapping::Present(pte) => pte,
            hopp::mem::Mapping::Swapped(_) => panic!("page swapped"),
        };
        let mut hot = Vec::new();
        for line in 0..lines {
            self.clock += 100;
            let addr = hopp_mem_pte.ppn.line(line);
            if !self.llc.access(addr, AccessKind::Read) {
                if let Some(h) =
                    self.mc
                        .on_llc_miss(addr, AccessKind::Read, Nanos::from_nanos(self.clock))
                {
                    hot.push(h);
                }
            }
        }
        hot
    }
}

#[test]
fn mapped_pages_become_hot_with_correct_identity() {
    let mut rig = Rig::new();
    for vpn in 100..110 {
        rig.map(vpn);
    }
    let mut all_hot = Vec::new();
    for vpn in 100..110 {
        all_hot.extend(rig.touch(vpn, 16));
    }
    assert_eq!(all_hot.len(), 10, "each page crosses the threshold once");
    for (i, hot) in all_hot.iter().enumerate() {
        assert_eq!(hot.pid, Pid::new(9));
        assert_eq!(hot.vpn, Vpn::new(100 + i as u64));
    }
}

#[test]
fn llc_hits_are_invisible_to_the_mc() {
    let mut rig = Rig::new();
    rig.map(5);
    // First pass: 16 cold misses -> hot at the 8th.
    assert_eq!(rig.touch(5, 16).len(), 1);
    let before = rig.mc.hpd().stats().reads;
    // Second pass: all lines now hit in the LLC; no misses reach HPD.
    assert!(rig.touch(5, 16).is_empty());
    assert_eq!(rig.mc.hpd().stats().reads, before);
}

#[test]
fn swap_out_updates_rpt_through_the_hook() {
    let mut rig = Rig::new();
    rig.map(7);
    assert_eq!(rig.touch(7, 8).len(), 1);
    // The kernel reclaims the page: pte_clear flows into the RPT.
    let pte = rig
        .space
        .swap_out(Vpn::new(7), SwapSlot::new(0), &mut rig.mc)
        .unwrap();
    rig.llc.invalidate_page(pte.ppn);
    rig.mc.on_page_reclaimed(pte.ppn);
    rig.frames.free(pte.ppn).unwrap();

    // The frame is recycled for a different page of the same process.
    let ppn2 = rig.frames.alloc(Pid::new(9), Vpn::new(400)).unwrap();
    assert_eq!(ppn2, pte.ppn, "LIFO frame reuse");
    assert!(rig
        .space
        .map_present(Vpn::new(400), ppn2, &mut rig.mc)
        .is_none());
    let hot = rig.touch(400, 16);
    assert_eq!(hot.len(), 1);
    assert_eq!(hot[0].vpn, Vpn::new(400), "RPT resolves the new owner");
}

#[test]
fn rpt_bootstrap_covers_preexisting_mappings() {
    let mut frames = FrameAllocator::new(16);
    let mut space = AddressSpace::new(Pid::new(3));
    // Pages mapped *before* HoPP starts: no hooks ran.
    let mut quiet_mc = ();
    for vpn in 0..4u64 {
        let ppn = frames.alloc(Pid::new(3), Vpn::new(vpn)).unwrap();
        assert!(space
            .map_present(Vpn::new(vpn), ppn, &mut quiet_mc)
            .is_none());
    }
    // HoPP boots: it walks the page tables (the frame owner table).
    let mut mc = McPipeline::new(HpdConfig::with_threshold(1), RptCacheConfig::default()).unwrap();
    mc.bootstrap_rpt(frames.iter_owned());
    let hot = mc.on_llc_miss(
        hopp::types::Ppn::new(2).line(0),
        AccessKind::Read,
        Nanos::ZERO,
    );
    assert_eq!(hot.unwrap().vpn, Vpn::new(2));
}
