//! Smoke tests over every experiment generator at a tiny scale: each
//! must run, and the qualitative relationships the paper claims must
//! hold even at this size. This is the regression net under the
//! `experiments` binary.

use hopp_bench::experiments as ex;
use hopp_bench::Scale;
use hopp_workloads::WorkloadKind;

fn tiny() -> Scale {
    Scale {
        footprint: 768,
        spark_footprint: 768,
        seed: 5,
    }
}

#[test]
fn table2_ratio_is_positive_and_bounded() {
    for (kind, series) in ex::table2(&tiny()).unwrap() {
        for (n, ratio) in series {
            assert!(
                (0.0..=100.0).contains(&ratio),
                "{} N={n}: ratio {ratio}",
                kind.name()
            );
        }
    }
}

#[test]
fn table3_is_monotone_in_capacity() {
    for (kind, series) in ex::table3(&tiny()).unwrap() {
        for w in series.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 0.02,
                "{}: hit rate fell from {} ({}KB) to {} ({}KB)",
                kind.name(),
                w[0].1,
                w[0].0,
                w[1].1,
                w[1].0
            );
        }
    }
}

#[test]
fn table5_overheads_are_fractions_of_a_percent() {
    for (kind, hpd, rpt) in ex::table5(&tiny()).unwrap() {
        assert!(hpd > 0.0 && hpd < 2.0, "{}: HPD {hpd}%", kind.name());
        assert!((0.0..1.0).contains(&rpt), "{}: RPT {rpt}%", kind.name());
        assert!(hpd > rpt, "{}: HPD must dominate RPT traffic", kind.name());
    }
}

#[test]
fn fig9_hopp_never_loses_to_fastswap() {
    let (half, quarter) = ex::fig9_matrix(&tiny()).unwrap();
    for rec in half.iter().chain(&quarter) {
        let fs = rec.normalized(&rec.fastswap);
        let hp = rec.normalized(&rec.hopp);
        assert!(
            hp >= fs - 0.03,
            "{} @{:.0}%: hopp {hp:.3} vs fastswap {fs:.3}",
            rec.workload.name(),
            rec.ratio * 100.0
        );
    }
}

#[test]
fn fig12_spark_group_runs_and_hopp_leads() {
    let recs = ex::fig12_matrix(&tiny()).unwrap();
    assert_eq!(recs.len(), WorkloadKind::SPARK.len());
    let avg_fs: f64 =
        recs.iter().map(|r| r.normalized(&r.fastswap)).sum::<f64>() / recs.len() as f64;
    let avg_hp: f64 = recs.iter().map(|r| r.normalized(&r.hopp)).sum::<f64>() / recs.len() as f64;
    assert!(avg_hp > avg_fs, "hopp {avg_hp:.3} vs fastswap {avg_fs:.3}");
}

#[test]
fn fig15_every_coscheduled_app_speeds_up() {
    for (pair, speedups) in ex::fig15(&tiny()).unwrap() {
        for (kind, s) in speedups {
            assert!(s > 0.95, "{pair}: {} speedup {s:.3}", kind.name());
        }
    }
}

#[test]
fn fig16_17_depth_n_pays_in_remote_traffic() {
    let rows = ex::fig16_17(&tiny()).unwrap();
    for row in &rows {
        for (name, np, remote) in &row.systems {
            assert!(
                *np > 0.0 && *np <= 1.05,
                "{} {name}: np {np}",
                row.workload.name()
            );
            assert!(*remote > 0.0, "{} {name}", row.workload.name());
        }
    }
    // The Depth-32 blow-up on FT survives scaling down.
    let ft = rows
        .iter()
        .find(|r| r.workload == WorkloadKind::NpbFt)
        .expect("FT present");
    let d32 = ft
        .systems
        .iter()
        .find(|(n, _, _)| *n == "Depth-32")
        .unwrap();
    let hopp = ft.systems.iter().find(|(n, _, _)| *n == "HoPP").unwrap();
    assert!(
        d32.2 > hopp.2,
        "Depth-32 remote {} should exceed HoPP {}",
        d32.2,
        hopp.2
    );
}

#[test]
fn fig18_20_tiers_never_hurt_much_and_stay_accurate() {
    for row in ex::fig18_20(&tiny()).unwrap() {
        assert!(
            row.speedup[2] >= row.speedup[0] - 0.05,
            "{}: full tiers {:?} vs ssp-only",
            row.workload.name(),
            row.speedup
        );
        for (i, acc) in row.tier_accuracy.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(acc),
                "{} tier {i}: accuracy {acc}",
                row.workload.name()
            );
        }
        let total_cov: f64 = row.tier_coverage.iter().sum();
        assert!(total_cov <= 1.0 + 1e-9);
    }
}

#[test]
fn fig21_points_are_well_formed() {
    let points = ex::fig21(&tiny()).unwrap();
    assert_eq!(
        points.len(),
        2 * (WorkloadKind::NON_JVM.len() + WorkloadKind::SPARK.len())
    );
    for p in points {
        assert!((0.0..=1.0).contains(&p.accuracy));
        assert!((0.0..=1.0).contains(&p.coverage));
        assert!(p.normalized > 0.0 && p.normalized <= 1.05);
    }
}

#[test]
fn fig22_orderings_hold() {
    let rows = ex::fig22(&tiny()).unwrap();
    let get = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1;
    assert!(
        get("Leap") < 0.0,
        "Leap loses to Fastswap under concurrency"
    );
    assert!(get("HoPP (dynamic)") > get("VMA"));
    assert!(get("HoPP (dynamic)") > get("Leap"));
    // Under volatility the controller beats the pinned offset.
    let volatile = ex::fig22_volatile(&tiny()).unwrap();
    let getv = |name: &str| volatile.iter().find(|(n, _)| *n == name).unwrap().1;
    assert!(getv("HoPP (dynamic)") > getv("HoPP (offset=20K)"));
}

#[test]
fn motivate_full_trace_beats_leap() {
    for (kind, leap, full) in ex::motivate(&tiny()).unwrap() {
        assert!(
            full[1] >= leap[1],
            "{}: full-trace coverage {} < leap {}",
            kind.name(),
            full[1],
            leap[1]
        );
    }
}

#[test]
fn warmup_shows_hopp_quieting_down() {
    let data = ex::warmup(&tiny()).unwrap();
    let hopp = &data.iter().find(|(n, _)| *n == "HoPP").unwrap().1;
    let fastswap = &data.iter().find(|(n, _)| *n == "Fastswap").unwrap().1;
    let tail = hopp.len() / 2;
    let hopp_late: u64 = hopp[tail..].iter().sum();
    let fs_late: u64 = fastswap[tail..].iter().sum();
    assert!(
        hopp_late < fs_late,
        "trained HoPP ({hopp_late}) must fault less than Fastswap ({fs_late})"
    );
}

#[test]
fn extension_sweeps_run_at_tiny_scale() {
    // These must not panic and must produce rows; their stronger claims
    // are validated at full scale by the experiments binary.
    assert!(!ex::intensity_sweep(&tiny()).unwrap().is_empty());
    assert!(!ex::channels_sweep(&tiny()).unwrap().is_empty());
    assert!(!ex::hugepage_study(&tiny()).unwrap().is_empty());
    assert!(!ex::markov_study(&tiny()).unwrap().is_empty());
    assert!(!ex::reclaim_study(&tiny()).unwrap().is_empty());
    assert!(!ex::stt_sensitivity(&tiny()).unwrap().is_empty());
    assert!(!ex::leap_window(&tiny()).unwrap().is_empty());
}

#[test]
fn hwcost_reports_paper_constants() {
    let rows = ex::hwcost();
    assert!((rows[0].1 - 0.000252).abs() < 1e-9);
    assert!((rows[0].2 - 0.0959).abs() < 1e-9);
    assert!((rows[1].1 - 0.0673).abs() < 1e-9);
    assert!((rows[1].2 - 21.4).abs() < 1e-9);
}
