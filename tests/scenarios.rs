//! End-to-end checks of the hopp-scn contracts (docs/scenarios.md),
//! mirrored in CI by the `scenario` job:
//!
//! * a recorded `.hst` trace replays with *bit-identical* metrics —
//!   for catalogue workloads and DSL scenarios alike;
//! * the widened workload axis (`--full --scenarios`) flows 20+
//!   entries into the quality scoreboard rows;
//! * the sweep cell cache keys on scenario file *contents*: editing a
//!   scenario invalidates its cached cells, renaming it does not.

use std::path::PathBuf;

use hopp_bench::experiments as ex;
use hopp_bench::lab::{self, SweepSpec};
use hopp_bench::Scale;
use hopp_scn::{HstHeader, HstReader, HstStream, HstWriter, Scenario, WorkloadSource};
use hopp_sim::runner::SOLO_PID;
use hopp_sim::{SimConfig, SystemConfig};
use hopp_workloads::WorkloadKind;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn tiny() -> Scale {
    Scale {
        footprint: 768,
        spark_footprint: 768,
        seed: 5,
    }
}

/// Records `source`'s stream to an in-memory `.hst`, then runs the live
/// stream and the replayed trace through identical simulators and
/// demands byte-identical metrics JSON.
fn assert_replay_bit_identical(source: &WorkloadSource) {
    let scale = tiny();
    let fp = source.footprint(scale.footprint, scale.spark_footprint);

    let mut live_stream = source.build(SOLO_PID, fp, scale.seed);
    let header = HstHeader {
        pid: SOLO_PID,
        footprint_pages: fp,
        seed: scale.seed,
        source: source.name().to_string(),
    };
    let mut writer = HstWriter::new(Vec::new(), &header).expect("write header");
    while let Some(a) = live_stream.next_access() {
        writer.push(&a).expect("encode access");
    }
    let bytes = writer.finish().expect("finish trace");

    let run = |stream: Box<dyn hopp_trace::AccessStream>| {
        hopp_sim::run_stream_with(
            SimConfig::with_system(SystemConfig::hopp_default()),
            SOLO_PID,
            stream,
            fp,
            0.5,
        )
        .expect("simulation succeeds")
    };
    let live = run(source.build(SOLO_PID, fp, scale.seed));
    let reader = HstReader::new(std::io::Cursor::new(bytes)).expect("read header");
    assert_eq!(reader.header().source, source.name());
    let replayed = run(Box::new(HstStream::new(reader)));

    assert_eq!(
        live.metrics_json(),
        replayed.metrics_json(),
        "{}: replayed metrics diverged from the live run",
        source.name()
    );
}

#[test]
fn recorded_catalogue_trace_replays_bit_identically() {
    assert_replay_bit_identical(&WorkloadSource::Catalogue(WorkloadKind::Kmeans));
}

#[test]
fn recorded_scenario_trace_replays_bit_identically() {
    let scn = Scenario::from_file(&repo_path("scenarios/phase-shift.toml"))
        .expect("checked-in scenario parses");
    assert_replay_bit_identical(&WorkloadSource::Scenario(scn));
}

#[test]
fn full_axis_with_scenarios_feeds_twenty_plus_quality_rows() {
    let scenarios = hopp_scn::load_dir(&repo_path("scenarios")).expect("scenarios/ parses");
    assert!(
        scenarios.len() >= 6,
        "expected the checked-in scenario set, got {}",
        scenarios.len()
    );
    let axis = ex::full_bench_workloads(&scenarios);
    assert!(
        axis.len() >= 20,
        "--full --scenarios axis has only {} entries",
        axis.len()
    );

    let rows = ex::quality_over(&tiny(), &axis).expect("quality sweep runs");
    assert_eq!(
        rows.len(),
        axis.len() * ex::quality_systems().len(),
        "one row per (workload, system)"
    );
    let names: std::collections::BTreeSet<&str> =
        rows.iter().map(|r| r.workload.as_str()).collect();
    assert!(
        names.len() >= 20,
        "only {} distinct workloads reached the scoreboard",
        names.len()
    );
    for row in &rows {
        assert!(
            row.accesses > 0,
            "{}/{}: empty run",
            row.workload,
            row.system
        );
    }
}

/// A minimal scenario used by the cache test. `name` is pinned so the
/// cache tag survives a file rename; `length` is the knob the test
/// turns to change the file's contents.
fn tweak_toml(length: u64) -> String {
    format!(
        "[scenario]\nname = \"tweak\"\nseed = 3\nfootprint = 512\n\n\
         [[phase]]\n\n\
         [[phase.mix]]\npattern = \"simple\"\nstart = 0\nlen = {length}\nstride = 1\n"
    )
}

fn scenario_spec(dir: &std::path::Path, file: &str) -> SweepSpec {
    let scn = Scenario::from_file(&dir.join(file)).expect("tweak scenario parses");
    let mut spec = SweepSpec::quick();
    spec.workloads = vec![WorkloadSource::Scenario(scn)];
    spec.seeds = vec![42];
    spec.threads = 1;
    spec.cache_dir = Some(dir.join("cache"));
    spec
}

#[test]
fn editing_a_scenario_invalidates_its_cached_cells_renaming_does_not() {
    let dir = std::env::temp_dir().join(format!("hopp-scn-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    std::fs::write(dir.join("tweak.toml"), tweak_toml(1500)).expect("write scenario");

    let cold = lab::run_sweep(&scenario_spec(&dir, "tweak.toml")).unwrap();
    assert_eq!(cold.cells_failed, 0);
    assert_eq!(cold.cells_cached, 0, "cache directory was not fresh");
    assert!(cold.cells_run > 0);

    // Same path, same bytes: fully cached.
    let warm = lab::run_sweep(&scenario_spec(&dir, "tweak.toml")).unwrap();
    assert_eq!(warm.cells_run, 0, "unchanged scenario re-simulated");
    assert_eq!(warm.cells_cached, cold.cells_run);
    assert_eq!(cold.json, warm.json);

    // New path, same bytes: the tag is (name, content hash), so the
    // rename changes nothing and every cell is still served from cache.
    std::fs::copy(dir.join("tweak.toml"), dir.join("renamed.toml")).expect("copy scenario");
    let renamed = lab::run_sweep(&scenario_spec(&dir, "renamed.toml")).unwrap();
    assert_eq!(renamed.cells_run, 0, "rename alone invalidated the cache");
    assert_eq!(renamed.json, cold.json);

    // Same path, different bytes: every cached cell is invalid.
    std::fs::write(dir.join("tweak.toml"), tweak_toml(1800)).expect("rewrite scenario");
    let edited = lab::run_sweep(&scenario_spec(&dir, "tweak.toml")).unwrap();
    assert_eq!(edited.cells_cached, 0, "stale cells served after an edit");
    assert_eq!(edited.cells_run, cold.cells_run);
    assert_ne!(edited.json, cold.json, "the edit changed the workload");

    let _ = std::fs::remove_dir_all(&dir);
}
