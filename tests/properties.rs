//! Property-based tests of the core data-structure invariants.
//!
//! Each test runs the invariant over many randomized inputs drawn from
//! the workspace's own deterministic [`SplitMix64`] generator (the
//! environment builds with zero external crates, so `proptest` is not
//! available). `CASES` seeds per property keeps the search broad while
//! staying fast; failures print the offending case seed so a run can be
//! reproduced by pinning it.

use hopp::core::metrics::PrefetchMetrics;
use hopp::core::policy::{PolicyConfig, PolicyEngine};
use hopp::core::stt::{StreamTrainingTable, SttConfig};
use hopp::core::{MarkovConfig, MarkovEngine};
use hopp::hw::rtl::HpdRtl;
use hopp::hw::{HotPageDetector, HpdConfig};
use hopp::kernel::{LruLists, LruTier, SwapDevice};
use hopp::net::CompletionQueue;
use hopp::trace::hmtt::{file as hmtt_file, HmttRecord};
use hopp::trace::llc::{LastLevelCache, LlcConfig};
use hopp::types::rng::SplitMix64;
use hopp::types::{AccessKind, HotPage, LineAccess, LineAddr, Nanos, PageFlags, Pid, Ppn, Vpn};

/// Randomized cases per property.
const CASES: u64 = 32;

/// Runs `body` for `CASES` independently seeded generators.
fn for_cases(tag: u64, body: impl Fn(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(tag.wrapping_mul(0x5851_F42D_4C95_7F2D) + case);
        body(&mut rng);
    }
}

fn hot(pid: u16, vpn: u64, at: u64) -> HotPage {
    HotPage {
        pid: Pid::new(pid),
        vpn: Vpn::new(vpn),
        flags: PageFlags::default(),
        at: Nanos::from_nanos(at),
    }
}

/// The HPD can never emit more hot pages than reads/N: every emission
/// consumes at least `N` read misses of that page since its
/// (re-)insertion.
#[test]
fn hpd_hot_pages_bounded_by_reads_over_n() {
    for_cases(1, |rng| {
        let n = rng.gen_range(1..33) as u32;
        let len = rng.gen_range(0..2_000);
        let mut hpd = HotPageDetector::new(HpdConfig::with_threshold(n)).unwrap();
        for _ in 0..len {
            let page = rng.gen_range(0..64);
            let line = rng.gen_range(0..64) as u8;
            let kind = if rng.gen_bool(0.5) {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            hpd.on_miss(Ppn::new(page).line(line), kind);
        }
        let s = hpd.stats();
        assert!(s.hot_pages <= s.reads / u64::from(n));
    });
}

/// Immediately re-accessing a line always hits the LLC.
#[test]
fn llc_immediate_reaccess_hits() {
    for_cases(2, |rng| {
        let len = rng.gen_range(1..500);
        let mut llc = LastLevelCache::new(LlcConfig::tiny()).unwrap();
        for _ in 0..len {
            let addr = Ppn::new(rng.gen_range(0..10_000)).line(rng.gen_range(0..64) as u8);
            llc.access(addr, AccessKind::Read);
            assert!(llc.access(addr, AccessKind::Read));
        }
    });
}

/// LLC stats partition the accesses.
#[test]
fn llc_stats_partition() {
    for_cases(3, |rng| {
        let len = rng.gen_range(0..1_000);
        let mut llc = LastLevelCache::new(LlcConfig::tiny()).unwrap();
        for _ in 0..len {
            llc.access(LineAddr::new(rng.gen_range(0..100_000)), AccessKind::Read);
        }
        assert_eq!(llc.stats().total(), len);
    });
}

/// Untouched inactive pages leave the LRU in insertion order, and every
/// inactive page leaves before any active page.
#[test]
fn lru_eviction_order() {
    for_cases(4, |rng| {
        let len = rng.gen_range(0..200);
        let mut lru = LruLists::new();
        let mut expect_inactive = Vec::new();
        let mut expect_active = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..len {
            let p = rng.gen_range(0..1_000);
            let active = rng.gen_bool(0.5);
            if !seen.insert(p) {
                continue; // re-inserts would reorder; keep the model simple
            }
            let tier = if active {
                LruTier::Active
            } else {
                LruTier::Inactive
            };
            lru.insert(Ppn::new(p), tier);
            if active {
                expect_active.push(Ppn::new(p));
            } else {
                expect_inactive.push(Ppn::new(p));
            }
        }
        let mut order = Vec::new();
        while let Some(ppn) = lru.pop_evict() {
            order.push(ppn);
        }
        expect_inactive.extend(expect_active);
        assert_eq!(order, expect_inactive);
    });
}

/// Live swap slots are always unique.
#[test]
fn swap_slots_are_unique() {
    for_cases(5, |rng| {
        let len = rng.gen_range(0..300);
        let mut dev = SwapDevice::new();
        let mut live: Vec<hopp::types::SwapSlot> = Vec::new();
        let mut i = 0u64;
        for _ in 0..len {
            if rng.gen_bool(0.5) || live.is_empty() {
                i += 1;
                let slot = dev.alloc(Pid::new(1), Vpn::new(i)).unwrap();
                assert!(!live.contains(&slot), "slot reused while live");
                live.push(slot);
            } else {
                let slot = live.swap_remove(i as usize % live.len());
                dev.free(slot);
            }
        }
        assert_eq!(dev.used_slots(), live.len());
    });
}

/// Completions pop in nondecreasing due-time order.
#[test]
fn completion_queue_is_time_ordered() {
    for_cases(6, |rng| {
        let len = rng.gen_range(0..200);
        let mut cq = CompletionQueue::new();
        for i in 0..len {
            cq.push(Nanos::from_nanos(rng.gen_range(0..1_000_000)), i);
        }
        let mut last = Nanos::ZERO;
        while let Some((due, _)) = cq.pop_any() {
            assert!(due >= last);
            last = due;
        }
    });
}

/// Every STT window is internally consistent: `L` VPNs, `L-1` strides,
/// each stride the difference of its neighbours, and the clustering
/// bound respected between consecutive history entries.
#[test]
fn stt_windows_are_consistent() {
    for_cases(7, |rng| {
        let history = rng.gen_range(4..17) as usize;
        let len = rng.gen_range(0..500);
        let config = SttConfig {
            history,
            ..SttConfig::default()
        };
        let mut stt = StreamTrainingTable::new(config).unwrap();
        for i in 0..len {
            let v = rng.gen_range(0..100_000);
            if let Some(w) = stt.observe(&hot(1, v, i)) {
                assert_eq!(w.vpn_history.len(), history);
                assert_eq!(w.stride_history.len(), history - 1);
                for i in 0..history - 1 {
                    assert_eq!(
                        w.stride_history[i],
                        w.vpn_history[i + 1].stride_from(w.vpn_history[i])
                    );
                    assert!(
                        w.stride_history[i].unsigned_abs() <= config.delta_stream,
                        "clustering bound violated"
                    );
                    assert_ne!(w.stride_history[i], 0, "duplicates are deduped");
                }
                assert_eq!(w.vpn_a(), Vpn::new(v));
            }
        }
    });
}

/// Metrics stay in range whatever the event order.
#[test]
fn metrics_bounds() {
    for_cases(8, |rng| {
        let len = rng.gen_range(0..500);
        let mut m = PrefetchMetrics::new();
        let mut t = 0u64;
        for _ in 0..len {
            t += 1;
            let (pid, vpn) = (Pid::new(1), Vpn::new(rng.gen_range(0..50)));
            match rng.gen_range(0..4) {
                0 => m.on_prefetch_arrival(pid, vpn, Nanos::from_nanos(t)),
                1 => {
                    m.on_first_access(pid, vpn, Nanos::from_nanos(t));
                }
                2 => m.on_demand_remote(),
                _ => {
                    m.on_evicted_unused(pid, vpn);
                }
            }
        }
        assert!(m.prefetch_hits() <= m.prefetched());
        assert!((0.0..=1.0).contains(&m.accuracy()));
        assert!((0.0..=1.0).contains(&m.coverage()));
        assert!(m.pending() as u64 <= m.prefetched());
    });
}

/// Vpn stride/offset roundtrips for arbitrary pairs.
#[test]
fn vpn_stride_offset_roundtrip() {
    for_cases(9, |rng| {
        let (va, vb) = (
            Vpn::new(rng.gen_range(0..1_000_000)),
            Vpn::new(rng.gen_range(0..1_000_000)),
        );
        let stride = vb.stride_from(va);
        assert_eq!(va.offset(stride), Some(vb));
    });
}

/// The RTL HPD emits exactly the behavioural model's hot pages (in
/// order) whenever set pressure stays below the associativity, for
/// arbitrary access sequences over 32 pages.
#[test]
fn rtl_hpd_matches_behavioural_without_pressure() {
    for_cases(10, |rng| {
        let n = rng.gen_range(1..17) as u32;
        let len = rng.gen_range(0..2_000);
        let mut behav = HotPageDetector::new(HpdConfig::with_threshold(n)).unwrap();
        let mut rtl = HpdRtl::new(HpdConfig::with_threshold(n)).unwrap();
        let mut behav_hot = Vec::new();
        let mut rtl_hot = Vec::new();
        for _ in 0..len {
            let page = rng.gen_range(0..32);
            let line = rng.gen_range(0..64) as u8;
            let kind = if rng.gen_bool(0.5) {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            if let Some(h) = behav.on_miss(Ppn::new(page).line(line), kind) {
                behav_hot.push(h);
            }
            if let Some(h) = rtl.clock(Some((Ppn::new(page).line(line), kind))).hot {
                rtl_hot.push(h);
            }
        }
        if let Some(h) = rtl.clock(None).hot {
            rtl_hot.push(h);
        }
        assert_eq!(behav_hot, rtl_hot);
    });
}

/// The policy engine's offset stays within `[1, max_offset]` no matter
/// what timeliness samples arrive.
#[test]
fn policy_offset_stays_bounded() {
    for_cases(11, |rng| {
        let len = rng.gen_range(0..300);
        let config = PolicyConfig::default();
        let mut pe = PolicyEngine::new(config);
        // Forge one stream id via a tiny STT.
        let mut stt = StreamTrainingTable::new(SttConfig {
            history: 4,
            ..SttConfig::default()
        })
        .unwrap();
        let mut stream = None;
        for k in 0..4u64 {
            stream = stt.observe(&hot(1, k, 0)).map(|w| w.stream).or(stream);
        }
        let stream = stream.unwrap();
        for _ in 0..len {
            pe.record_timeliness(stream, Nanos::from_nanos(rng.gen_range(0..10_000_000)));
            let offset = pe.offset_of(stream);
            assert!(
                (1.0..=config.max_offset).contains(&offset),
                "offset {offset}"
            );
        }
    });
}

/// Markov prediction chains never revisit a page (no infinite
/// self-feeding loops), for arbitrary transition training.
#[test]
fn markov_chains_are_acyclic() {
    for_cases(12, |rng| {
        let depth = rng.gen_range(1..9) as u32;
        let len = rng.gen_range(0..300);
        let mut m = MarkovEngine::new(MarkovConfig {
            depth,
            ..MarkovConfig::default()
        });
        for _ in 0..len {
            let v = rng.gen_range(0..16);
            let orders = m.on_hot_page(&hot(1, v, 0));
            assert!(orders.len() <= depth as usize);
            let mut seen = std::collections::HashSet::new();
            seen.insert(v);
            for o in &orders {
                assert!(seen.insert(o.vpn.raw()), "chain revisited {:?}", o.vpn);
            }
        }
    });
}

/// HMTT trace files roundtrip arbitrary record sets.
#[test]
fn hmtt_file_roundtrip() {
    for_cases(13, |rng| {
        let len = rng.gen_range(0..200);
        let records: Vec<HmttRecord> = (0..len)
            .map(|i| {
                let r = rng.next_u64();
                HmttRecord::capture(
                    i,
                    &LineAccess {
                        addr: LineAddr::new(r),
                        kind: if r & 1 == 0 {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        },
                        at: Nanos::from_nanos(r % 1_000_000),
                    },
                )
            })
            .collect();
        let mut buf = Vec::new();
        hmtt_file::write(&mut buf, &records).unwrap();
        assert_eq!(hmtt_file::read(&buf[..]).unwrap(), records);
    });
}
