//! Property-based tests of the core data-structure invariants.

use hopp::core::metrics::PrefetchMetrics;
use hopp::core::policy::{PolicyConfig, PolicyEngine};
use hopp::core::stt::{StreamTrainingTable, SttConfig};
use hopp::core::{MarkovConfig, MarkovEngine};
use hopp::hw::rtl::HpdRtl;
use hopp::hw::{HotPageDetector, HpdConfig};
use hopp::kernel::{LruLists, LruTier, SwapDevice};
use hopp::net::CompletionQueue;
use hopp::trace::hmtt::{file as hmtt_file, HmttRecord};
use hopp::trace::llc::{LastLevelCache, LlcConfig};
use hopp::types::{AccessKind, HotPage, LineAccess, LineAddr, Nanos, PageFlags, Pid, Ppn, Vpn};
use proptest::prelude::*;

proptest! {
    /// The HPD can never emit more hot pages than reads/N: every
    /// emission consumes at least `N` read misses of that page since
    /// its (re-)insertion.
    #[test]
    fn hpd_hot_pages_bounded_by_reads_over_n(
        accesses in prop::collection::vec((0u64..64, 0u8..64, any::<bool>()), 0..2_000),
        n in 1u32..=32,
    ) {
        let mut hpd = HotPageDetector::new(HpdConfig::with_threshold(n)).unwrap();
        for (page, line, is_read) in accesses {
            let kind = if is_read { AccessKind::Read } else { AccessKind::Write };
            hpd.on_miss(Ppn::new(page).line(line), kind);
        }
        let s = hpd.stats();
        prop_assert!(s.hot_pages <= s.reads / u64::from(n));
    }

    /// Immediately re-accessing a line always hits the LLC.
    #[test]
    fn llc_immediate_reaccess_hits(
        lines in prop::collection::vec((0u64..10_000, 0u8..64), 1..500),
    ) {
        let mut llc = LastLevelCache::new(LlcConfig::tiny()).unwrap();
        for (page, line) in lines {
            let addr = Ppn::new(page).line(line);
            llc.access(addr, AccessKind::Read);
            prop_assert!(llc.access(addr, AccessKind::Read));
        }
    }

    /// LLC stats partition the accesses.
    #[test]
    fn llc_stats_partition(
        lines in prop::collection::vec(0u64..100_000, 0..1_000),
    ) {
        let mut llc = LastLevelCache::new(LlcConfig::tiny()).unwrap();
        for raw in &lines {
            llc.access(hopp::types::LineAddr::new(*raw), AccessKind::Read);
        }
        let s = llc.stats();
        prop_assert_eq!(s.total(), lines.len() as u64);
    }

    /// Untouched inactive pages leave the LRU in insertion order, and
    /// every inactive page leaves before any active page.
    #[test]
    fn lru_eviction_order(pages in prop::collection::vec((0u64..1_000, any::<bool>()), 0..200)) {
        let mut lru = LruLists::new();
        let mut expect_inactive = Vec::new();
        let mut expect_active = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (p, active) in pages {
            if !seen.insert(p) {
                continue; // re-inserts would reorder; keep the model simple
            }
            let tier = if active { LruTier::Active } else { LruTier::Inactive };
            lru.insert(Ppn::new(p), tier);
            if active {
                expect_active.push(Ppn::new(p));
            } else {
                expect_inactive.push(Ppn::new(p));
            }
        }
        let mut order = Vec::new();
        while let Some(ppn) = lru.pop_evict() {
            order.push(ppn);
        }
        expect_inactive.extend(expect_active);
        prop_assert_eq!(order, expect_inactive);
    }

    /// Live swap slots are always unique.
    #[test]
    fn swap_slots_are_unique(ops in prop::collection::vec(any::<bool>(), 0..300)) {
        let mut dev = SwapDevice::new();
        let mut live: Vec<hopp::types::SwapSlot> = Vec::new();
        let mut i = 0u64;
        for alloc in ops {
            if alloc || live.is_empty() {
                i += 1;
                let slot = dev.alloc(Pid::new(1), Vpn::new(i)).unwrap();
                prop_assert!(!live.contains(&slot), "slot reused while live");
                live.push(slot);
            } else {
                let slot = live.swap_remove(i as usize % live.len());
                dev.free(slot);
            }
        }
        prop_assert_eq!(dev.used_slots(), live.len());
    }

    /// Completions pop in nondecreasing due-time order.
    #[test]
    fn completion_queue_is_time_ordered(
        dues in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut cq = CompletionQueue::new();
        for (i, d) in dues.iter().enumerate() {
            cq.push(Nanos::from_nanos(*d), i);
        }
        let mut last = Nanos::ZERO;
        while let Some((due, _)) = cq.pop_any() {
            prop_assert!(due >= last);
            last = due;
        }
    }

    /// Every STT window is internally consistent: `L` VPNs, `L-1`
    /// strides, each stride the difference of its neighbours, and the
    /// clustering bound respected between consecutive history entries.
    #[test]
    fn stt_windows_are_consistent(
        vpns in prop::collection::vec(0u64..100_000, 0..500),
        history in 4usize..=16,
    ) {
        let config = SttConfig { history, ..SttConfig::default() };
        let mut stt = StreamTrainingTable::new(config).unwrap();
        for (i, v) in vpns.iter().enumerate() {
            let hot = HotPage {
                pid: Pid::new(1),
                vpn: Vpn::new(*v),
                flags: PageFlags::default(),
                at: Nanos::from_nanos(i as u64),
            };
            if let Some(w) = stt.observe(&hot) {
                prop_assert_eq!(w.vpn_history.len(), history);
                prop_assert_eq!(w.stride_history.len(), history - 1);
                for i in 0..history - 1 {
                    prop_assert_eq!(
                        w.stride_history[i],
                        w.vpn_history[i + 1].stride_from(w.vpn_history[i])
                    );
                    prop_assert!(
                        w.stride_history[i].unsigned_abs() <= config.delta_stream,
                        "clustering bound violated"
                    );
                    prop_assert_ne!(w.stride_history[i], 0, "duplicates are deduped");
                }
                prop_assert_eq!(w.vpn_a(), Vpn::new(*v));
            }
        }
    }

    /// Metrics stay in range whatever the event order.
    #[test]
    fn metrics_bounds(ops in prop::collection::vec((0u8..4, 0u64..50), 0..500)) {
        let mut m = PrefetchMetrics::new();
        let mut t = 0u64;
        for (op, page) in ops {
            t += 1;
            let (pid, vpn) = (Pid::new(1), Vpn::new(page));
            match op {
                0 => m.on_prefetch_arrival(pid, vpn, Nanos::from_nanos(t)),
                1 => { m.on_first_access(pid, vpn, Nanos::from_nanos(t)); }
                2 => m.on_demand_remote(),
                _ => m.on_evicted_unused(pid, vpn),
            }
        }
        prop_assert!(m.prefetch_hits() <= m.prefetched());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        prop_assert!((0.0..=1.0).contains(&m.coverage()));
        prop_assert!(m.pending() as u64 <= m.prefetched());
    }

    /// Vpn stride/offset roundtrips for arbitrary pairs.
    #[test]
    fn vpn_stride_offset_roundtrip(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (va, vb) = (Vpn::new(a), Vpn::new(b));
        let stride = vb.stride_from(va);
        prop_assert_eq!(va.offset(stride), Some(vb));
    }

    /// The RTL HPD emits exactly the behavioural model's hot pages (in
    /// order) whenever set pressure stays below the associativity, for
    /// arbitrary access sequences over 32 pages.
    #[test]
    fn rtl_hpd_matches_behavioural_without_pressure(
        accesses in prop::collection::vec((0u64..32, 0u8..64, any::<bool>()), 0..2_000),
        n in 1u32..=16,
    ) {
        let mut behav = HotPageDetector::new(HpdConfig::with_threshold(n)).unwrap();
        let mut rtl = HpdRtl::new(HpdConfig::with_threshold(n)).unwrap();
        let mut behav_hot = Vec::new();
        let mut rtl_hot = Vec::new();
        for (page, line, is_read) in accesses {
            let kind = if is_read { AccessKind::Read } else { AccessKind::Write };
            if let Some(h) = behav.on_miss(Ppn::new(page).line(line), kind) {
                behav_hot.push(h);
            }
            if let Some(h) = rtl.clock(Some((Ppn::new(page).line(line), kind))).hot {
                rtl_hot.push(h);
            }
        }
        if let Some(h) = rtl.clock(None).hot {
            rtl_hot.push(h);
        }
        prop_assert_eq!(behav_hot, rtl_hot);
    }

    /// The policy engine's offset stays within `[1, max_offset]` no
    /// matter what timeliness samples arrive.
    #[test]
    fn policy_offset_stays_bounded(samples in prop::collection::vec(0u64..10_000_000, 0..300)) {
        let config = PolicyConfig::default();
        let mut pe = PolicyEngine::new(config);
        // Forge one stream id via a tiny STT.
        let mut stt = StreamTrainingTable::new(SttConfig { history: 4, ..SttConfig::default() })
            .unwrap();
        let mut stream = None;
        for k in 0..4u64 {
            stream = stt
                .observe(&HotPage {
                    pid: Pid::new(1),
                    vpn: Vpn::new(k),
                    flags: PageFlags::default(),
                    at: Nanos::ZERO,
                })
                .map(|w| w.stream)
                .or(stream);
        }
        let stream = stream.unwrap();
        for t in samples {
            pe.record_timeliness(stream, Nanos::from_nanos(t));
            let offset = pe.offset_of(stream);
            prop_assert!((1.0..=config.max_offset).contains(&offset), "offset {offset}");
        }
    }

    /// Markov prediction chains never revisit a page (no infinite
    /// self-feeding loops), for arbitrary transition training.
    #[test]
    fn markov_chains_are_acyclic(
        seq in prop::collection::vec(0u64..16, 0..300),
        depth in 1u32..=8,
    ) {
        let mut m = MarkovEngine::new(MarkovConfig { depth, ..MarkovConfig::default() });
        for &v in &seq {
            let orders = m.on_hot_page(&HotPage {
                pid: Pid::new(1),
                vpn: Vpn::new(v),
                flags: PageFlags::default(),
                at: Nanos::ZERO,
            });
            prop_assert!(orders.len() <= depth as usize);
            let mut seen = std::collections::HashSet::new();
            seen.insert(v);
            for o in &orders {
                prop_assert!(seen.insert(o.vpn.raw()), "chain revisited {:?}", o.vpn);
            }
        }
    }

    /// HMTT trace files roundtrip arbitrary record sets.
    #[test]
    fn hmtt_file_roundtrip(raws in prop::collection::vec(any::<u64>(), 0..200)) {
        let records: Vec<HmttRecord> = raws
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                HmttRecord::capture(
                    i as u64,
                    &LineAccess {
                        addr: LineAddr::new(r),
                        kind: if r & 1 == 0 { AccessKind::Read } else { AccessKind::Write },
                        at: Nanos::from_nanos(r % 1_000_000),
                    },
                )
            })
            .collect();
        let mut buf = Vec::new();
        hmtt_file::write(&mut buf, &records).unwrap();
        prop_assert_eq!(hmtt_file::read(&buf[..]).unwrap(), records);
    }
}
