//! Fixture: host time laundered through bindings into sim state.

pub struct State { pub ns: u64 }

fn host_probe() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn poll(state: &mut State) {
    let t = Instant::now();
    let dt = t.elapsed();
    state.ns = dt.as_nanos() as u64;
    state.ns = host_probe();
}
