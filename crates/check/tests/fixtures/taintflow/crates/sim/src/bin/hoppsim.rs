//! Fixture CLI: implements --llc-kb.

fn main() {
    let _flags = ["--llc-kb"];
}
