//! Fixture SimConfig: fully documented, no drift.

/// Machine configuration.
pub struct SimConfig {
    /// Documented knob.
    pub llc: usize,
}
