//! Fixture lab pool: the one file allowed to touch thread primitives.

fn pool() {
    std::thread::scope(|_s| {});
    std::thread::spawn(|| {});
}
