//! Fixture exporter: harness crate with an ad-hoc thread.

fn export() {
    std::thread::spawn(|| {});
}
