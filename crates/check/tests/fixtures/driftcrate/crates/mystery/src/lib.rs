//! Fixture: a crate directory that neither classification list names.

pub fn answer() -> u64 {
    42
}
