//! Fixture SimConfig with every field documented.

/// Machine configuration.
pub struct SimConfig {
    /// Documented knob.
    pub llc: usize,
    /// Also documented here, unlike the seeded fixture.
    pub ghost: usize,
}
