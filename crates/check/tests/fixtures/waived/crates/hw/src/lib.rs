//! Fixture: a trailing waiver suppresses the finding on its own line.

use std::collections::HashMap; // hopp-check: allow(determinism): fixture exercising the trailing-waiver path

/// Unused alias so the file has more than the waived line.
pub type Tally = HashMap<u64, u64>; // hopp-check: allow(determinism): second use, second waiver
