//! Fixture: a standalone waiver suppresses the finding on the next line.

/// Panics on an empty slice; waived because this is a fixture.
pub fn head(xs: &[u64]) -> u64 {
    // hopp-check: allow(panic-policy): fixture exercising the standalone-waiver path
    *xs.first().unwrap()
}
