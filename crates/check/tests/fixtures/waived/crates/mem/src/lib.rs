//! Fixture: a unit-hygiene waiver on a raw cast into an ID newtype.

use hopp_types::Vpn;

/// Launders a loop index into a page number; waived for the fixture.
pub fn vpn_of(i: usize) -> Vpn {
    Vpn::new(i as u64) // hopp-check: allow(unit-hygiene): fixture exercising the cast waiver
}
