//! Fixture: hash-order iteration writing artifact bytes.

pub fn export(rows: &[(u64, u64)]) -> String {
    let mut index = HashMap::new();
    let mut out = String::new();
    for (k, v) in &index {
        out.push_str("row");
    }
    let mut sorted = BTreeMap::new();
    for (k, v) in &sorted {
        out.push_str("row");
    }
    for (k, v) in &index {
        let mut local = String::new();
        local.push_str("row");
    }
    out
}
