//! Fixture: stale and reason-less waivers are themselves findings.

// hopp-check: allow(determinism): nothing on the next line trips the rule
pub fn fine() -> u64 {
    42
}

/// A reason-less waiver suppresses nothing and is flagged itself.
pub fn sloppy(a: Option<u64>) -> u64 {
    // hopp-check: allow(panic-policy)
    a.unwrap()
}
