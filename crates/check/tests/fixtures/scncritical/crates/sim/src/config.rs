//! Fixture SimConfig, fully documented.

/// Machine configuration.
pub struct SimConfig {
    /// Documented knob.
    pub llc: usize,
}
