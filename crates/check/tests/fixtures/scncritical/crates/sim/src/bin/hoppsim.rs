//! Fixture CLI: implements only --llc-kb.

fn main() {
    let _flags = ["--llc-kb"];
}
