//! Fixture scenario engine: sim-critical, so bad input must travel as
//! a typed error, never a panic.

fn parse_footprint(doc: &str) -> u64 {
    doc.trim().parse().unwrap()
}
