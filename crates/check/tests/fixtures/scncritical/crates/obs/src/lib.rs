//! Fixture exporter: harness crate, exempt from the panic policy.

fn parse_footprint(doc: &str) -> u64 {
    doc.trim().parse().unwrap()
}
