//! Fixture: one determinism violation in a sim-critical crate.

use std::collections::HashMap;

/// The deterministic replacement the real code would use.
pub type Tally = std::collections::BTreeMap<u64, u64>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_maps_in_test_code_are_exempt() {
        let mut m = HashMap::new();
        m.insert(1u64, 1u64);
        assert_eq!(m.len(), 1);
    }
}
