//! Fixture: one panic-policy violation in a sim-critical crate.

/// Panics on an empty slice instead of returning a typed error.
pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
