//! Fixture: one unit-hygiene violation (raw cast into an ID newtype).

use hopp_types::Vpn;

/// Launders a loop index into a page number.
pub fn vpn_of(i: usize) -> Vpn {
    Vpn::new(i as u64)
}
