//! Fixture SimConfig with one undocumented field.

/// Machine configuration.
pub struct SimConfig {
    /// Documented knob.
    pub llc: usize,
    /// Undocumented knob: the seeded config-drift violation.
    pub ghost: usize,
}
