//! Fixture sim-critical code: `hopp_prof::span` guards are the
//! sanctioned host-timing probe, raw host-clock reads are not.

pub fn reclaim_frame() {
    let _prof = hopp_prof::span("kernel/reclaim");
    let t0 = std::time::Instant::now();
    let ns = hopp_prof::host_now_ns();
    observe(t0, ns);
}
