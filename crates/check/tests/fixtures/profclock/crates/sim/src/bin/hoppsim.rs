//! Fixture CLI: `usage()` lists --prof-json but forgot --prof-folded.

fn usage() -> ! {
    eprintln!(
        "usage: hoppsim [options]\n\
         \n  --llc-kb <n>        LLC capacity in KiB\
         \n  --prof-json <file>  write the host self-profile as JSON\
         \n  --help              show this message"
    );
    std::process::exit(2);
}

fn main() {
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--llc-kb" => drop(it.next()),
            "--prof-json" => drop(it.next()),
            "--prof-folded" => drop(it.next()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
}
