//! Fixture SimConfig: fully documented, no field drift.

/// Machine configuration.
pub struct SimConfig {
    /// LLC capacity.
    pub llc: usize,
}
