//! Fixture: one waiver suppresses exactly one finding, not a region.

/// Two unwraps on consecutive lines; the waiver covers only the first.
pub fn both(a: Option<u64>, b: Option<u64>) -> u64 {
    // hopp-check: allow(panic-policy): fixture: the waiver must cover only the next line
    let x = a.unwrap();
    let y = b.unwrap();
    x + y
}
