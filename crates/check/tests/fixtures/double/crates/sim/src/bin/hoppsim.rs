//! Fixture CLI: implements both documented flags.

fn main() {
    let _flags = ["--llc-kb", "--ghost"];
}
