//! Fixture: a sim-critical crate using the deterministic collections.
//! Nothing here may produce a finding — `hopp_ds` types are the
//! checker-endorsed replacements for the banned default-hasher ones.

use hopp_ds::{DetMap, Lru, PageMap};

/// Hot-path state built only from deterministic collections.
pub struct HotState {
    pub inflight: DetMap<u64, u64>,
    pub frames: PageMap<usize, u32>,
    pub recency: Lru,
}
