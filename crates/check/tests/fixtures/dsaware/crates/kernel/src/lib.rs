//! Fixture: the same shape of state built on the banned collection.

use std::collections::HashMap;

/// Non-deterministic twin of the `ds` fixture's `HotState`.
pub struct BadState {
    pub inflight: HashMap<u64, u64>,
}
