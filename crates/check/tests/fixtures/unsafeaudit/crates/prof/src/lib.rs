//! Fixture: unsafe blocks with and without SAFETY justification.

pub fn read_ok(p: *const u8) -> u8 {
    // SAFETY: the caller promises `p` is valid for reads.
    unsafe { *p }
}

pub fn read_bad(p: *const u8) -> u8 {
    unsafe { *p }
}
