//! Property test: the lexer's per-line scope depths agree with naive
//! brace counting on arbitrary token streams.
//!
//! The generator composes random programs from snippets whose true
//! brace delta is known by construction — including strings, char
//! literals, raw strings, line comments and *nested multi-line block
//! comments* that all contain decoy braces. While generating, it
//! tracks the ground-truth depth at the start of every emitted line;
//! the lexer's [`hopp_check::lexer::Line::depth_start`] and the
//! [`hopp_check::lexer::tokenize`] bracket stream must both reproduce
//! it exactly. No external proptest crate (the build container is
//! offline): a SplitMix64 generator with fixed seeds keeps the runs
//! deterministic and the failures replayable by seed.

use hopp_check::lexer;

/// SplitMix64: tiny, well-distributed, and deterministic per seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One generator snippet: lines plus each line's true brace delta.
type Snippet = &'static [(&'static str, i32)];

/// Snippets whose decoy braces (in literals and comments) must not
/// move the depth; a few open or close real scopes.
const SNIPPETS: &[Snippet] = &[
    &[("let x = 1;", 0)],
    &[("fn f() {", 1)],
    &[("if a == b { let y = 2; }", 0)],
    &[("let s = \"brace { in } string\";", 0)],
    &[("let open = '{'; let close = '}';", 0)],
    &[("// line comment { with } stray braces", 0)],
    &[("let r = r#\"raw { \" } string\"#;", 0)],
    &[("struct S { a: u64 }", 0)],
    &[("let esc = \"escaped \\\" quote { \";", 0)],
    &[
        ("/* block { comment", 0),
        ("still /* nested { */ junk", 0),
        ("end } */ let z = 3;", 0),
    ],
    &[("match v {", 1), ("    _ => {}", 0), ("}", -1)],
    &[
        ("impl S {", 1),
        ("    fn m(&self) -> u64 { self.a }", 0),
        ("}", -1),
    ],
];

/// The close-a-scope snippet, only legal while a scope is open.
const CLOSE: Snippet = &[("}", -1)];

/// Generates one program and its ground-truth per-line start depths.
fn generate(seed: u64, len: usize) -> (String, Vec<i32>) {
    let mut rng = Rng(seed);
    let mut src = String::new();
    let mut expected = Vec::new();
    let mut depth: i32 = 0;
    for _ in 0..len {
        let snippet = if depth > 0 && rng.below(4) == 0 {
            CLOSE
        } else {
            SNIPPETS[rng.below(SNIPPETS.len())]
        };
        if snippet
            .iter()
            .scan(depth, |d, (_, delta)| {
                *d += delta;
                Some(*d)
            })
            .any(|d| d < 0)
        {
            continue; // A bare close at depth 0 would be invalid Rust.
        }
        for (line, delta) in snippet {
            expected.push(depth);
            src.push_str(line);
            src.push('\n');
            depth += delta;
        }
    }
    while depth > 0 {
        expected.push(depth);
        src.push_str("}\n");
        depth -= 1;
    }
    // The trailing newline yields one final empty line at module level.
    expected.push(0);
    (src, expected)
}

#[test]
fn line_depths_match_ground_truth_across_random_programs() {
    for seed in 0..250u64 {
        let (src, expected) = generate(seed, 40);
        let lexed = lexer::lex(&src);
        let got: Vec<i32> = lexed.lines.iter().map(|l| l.depth_start).collect();
        assert_eq!(
            got, expected,
            "seed {seed}: depth_start diverged from generator truth\n{src}"
        );
    }
}

#[test]
fn token_brackets_reproduce_the_same_depths() {
    for seed in 0..250u64 {
        let (src, expected) = generate(seed, 40);
        let toks = lexer::tokenize(&lexer::lex(&src));
        // Replay the token stream's `{`/`}` and sample the depth at the
        // start of each line: it must match both the generator and the
        // lexer's own depth_start (the dataflow walker trusts this).
        let mut depth: i32 = 0;
        let mut line = 1usize;
        let mut got = Vec::with_capacity(expected.len());
        for t in &toks {
            while line <= t.line {
                got.push(depth);
                line += 1;
            }
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
        }
        while got.len() < expected.len() {
            got.push(depth);
        }
        assert_eq!(
            got, expected,
            "seed {seed}: tokenize bracket replay diverged\n{src}"
        );
        assert_eq!(depth, 0, "seed {seed}: program is balanced");
    }
}
