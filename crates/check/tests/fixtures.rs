//! Fixture tests: each checker rule fires on a seeded violation with an
//! exact `file:line`, and waivers behave as documented — one finding per
//! waiver, reasons mandatory, stale waivers flagged.
//!
//! Each fixture under `tests/fixtures/` is a miniature fake workspace
//! (`crates/*/src`, `crates/sim/src/bin`, `docs/`) handed to
//! [`hopp_check::run`] as its root. The `.rs` files inside are never
//! compiled and never scanned by the real workspace check (which skips
//! `tests/` trees), so they can carry deliberate violations.

use std::path::PathBuf;

use hopp_check::{CheckReport, Finding, Rule};

fn check(fixture: &str) -> CheckReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    hopp_check::run(&root).expect("fixture workspace is readable")
}

fn brief(f: &Finding) -> (Rule, &str, usize) {
    (f.rule, f.file.as_str(), f.line)
}

#[test]
fn seeded_violations_fire_once_each_with_file_and_line() {
    let report = check("seeded");
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![
            (Rule::Determinism, "crates/hw/src/lib.rs", 3),
            (Rule::PanicPolicy, "crates/kernel/src/lib.rs", 5),
            (Rule::UnitHygiene, "crates/mem/src/lib.rs", 7),
            (Rule::ConfigDrift, "crates/sim/src/config.rs", 8),
        ],
        "one finding per rule, at the seeded file:line\n{}",
        report.render()
    );
    assert_eq!(report.files_checked, 5);
    assert_eq!(report.waiver_budget(), 0);

    // Findings render as `file:line: [rule] message` so editors can jump.
    let shown = report.findings[0].to_string();
    assert!(
        shown.starts_with("crates/hw/src/lib.rs:3: [determinism] "),
        "unexpected rendering: {shown}"
    );
    assert!(shown.contains("HashMap"), "names the offender: {shown}");

    // The `#[cfg(test)]` HashMap in the same file stays exempt: line 3
    // is the only determinism finding.
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::Determinism)
            .count(),
        1
    );
}

#[test]
fn seeded_config_drift_points_at_the_undocumented_field() {
    let report = check("seeded");
    let drift: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::ConfigDrift)
        .collect();
    assert_eq!(drift.len(), 1);
    assert!(
        drift[0].message.contains("ghost"),
        "names the field: {}",
        drift[0].message
    );
}

#[test]
fn reasoned_waivers_suppress_exactly_their_findings() {
    let report = check("waived");
    assert!(
        report.is_clean(),
        "every seeded violation is waived\n{}",
        report.render()
    );
    // Trailing waivers (hw x2, mem x1) and a standalone waiver (kernel)
    // each spent exactly one budget entry under their rule.
    assert_eq!(report.waived.get("determinism"), Some(&2));
    assert_eq!(report.waived.get("panic-policy"), Some(&1));
    assert_eq!(report.waived.get("unit-hygiene"), Some(&1));
    assert_eq!(report.waiver_budget(), 4);
    assert_eq!(report.files_checked, 5);
}

#[test]
fn one_waiver_covers_one_line_not_a_region() {
    let report = check("double");
    // Two consecutive unwraps, one waiver: the first is suppressed, the
    // second still fires.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![(Rule::PanicPolicy, "crates/kernel/src/lib.rs", 7)],
        "{}",
        report.render()
    );
    assert_eq!(report.waived.get("panic-policy"), Some(&1));
}

#[test]
fn stale_and_reasonless_waivers_are_findings() {
    let report = check("stale");
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![
            // The waiver with nothing to waive, reported at its own line.
            (Rule::Determinism, "crates/core/src/lib.rs", 3),
            // The reason-less waiver, also at its own line ...
            (Rule::PanicPolicy, "crates/core/src/lib.rs", 10),
            // ... which therefore does NOT suppress the unwrap below it.
            (Rule::PanicPolicy, "crates/core/src/lib.rs", 11),
        ],
        "{}",
        report.render()
    );
    assert!(
        report.findings[0].message.contains("unused waiver"),
        "{}",
        report.findings[0].message
    );
    assert!(
        report.findings[0].message.contains("line 4"),
        "says which line it targeted: {}",
        report.findings[0].message
    );
    assert!(
        report.findings[1].message.contains("no reason"),
        "{}",
        report.findings[1].message
    );
    assert_eq!(report.waiver_budget(), 0, "nothing legitimate was waived");
}

#[test]
fn hopp_ds_collections_pass_where_hashmap_fires() {
    let report = check("dsaware");
    // The `ds` crate is sim-critical, yet its `DetMap`/`PageMap`/`Lru`
    // usage produces nothing; the `HashMap` twin fires at each use site
    // with a steer that names the deterministic replacement.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![
            (Rule::Determinism, "crates/kernel/src/lib.rs", 3),
            (Rule::Determinism, "crates/kernel/src/lib.rs", 7),
        ],
        "{}",
        report.render()
    );
    assert!(
        report.findings[0].message.contains("hopp_ds::DetMap"),
        "steer recommends the deterministic map: {}",
        report.findings[0].message
    );
    assert_eq!(report.files_checked, 4);
}

#[test]
fn thread_policy_spares_only_the_lab_pool() {
    let report = check("labthread");
    // `crates/bench/src/lab.rs` uses both `thread::scope` and
    // `thread::spawn` and is spared (the sanctioned pool); the same
    // `thread::spawn` in the obs harness crate — exempt from the full
    // sim-critical determinism rule — still fires the workspace-wide
    // thread policy.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![(Rule::Determinism, "crates/obs/src/lib.rs", 4)],
        "ad-hoc spawn flagged, lab pool spared\n{}",
        report.render()
    );
    assert!(
        report.findings[0].message.contains("lab::run_indexed"),
        "steer names the sanctioned pool: {}",
        report.findings[0].message
    );
    assert_eq!(report.files_checked, 4);
    assert_eq!(report.waiver_budget(), 0);
}

#[test]
fn scenario_engine_is_sim_critical() {
    let report = check("scncritical");
    // `crates/scenario` parses user-written TOML and binary traces in
    // the simulated clock domain, so it sits on the sim-critical list:
    // its `.unwrap()` fires the panic policy, while the byte-identical
    // twin in the `obs` harness crate stays exempt.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![(Rule::PanicPolicy, "crates/scenario/src/lib.rs", 5)],
        "scenario unwrap fires once, harness twin spared\n{}",
        report.render()
    );
    assert!(
        report.findings[0].message.contains("typed error"),
        "steers toward typed errors: {}",
        report.findings[0].message
    );
    assert_eq!(report.files_checked, 4);
    assert_eq!(report.waiver_budget(), 0);
}

#[test]
fn prof_spans_pass_where_raw_host_clock_reads_fire() {
    let report = check("profclock");
    // The `hopp_prof::span("kernel/reclaim")` guard on line 5 is the
    // sanctioned host-timing probe and produces nothing; the raw
    // `Instant::now()` / `host_now_ns()` reads right below it each fire.
    // The CLI fixture ships a `usage()` that forgot `--prof-folded`, so
    // the usage-drift sub-check points at that arm.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![
            (Rule::Determinism, "crates/kernel/src/lib.rs", 6),
            (Rule::Determinism, "crates/kernel/src/lib.rs", 7),
            (Rule::ConfigDrift, "crates/sim/src/bin/hoppsim.rs", 19),
        ],
        "span guard spared, raw reads and the undocumented flag flagged\n{}",
        report.render()
    );
    assert!(
        report.findings[1].message.contains("hopp_prof::span"),
        "steer names the sanctioned probe: {}",
        report.findings[1].message
    );
    assert!(
        report.findings[2].message.contains("--prof-folded")
            && report.findings[2].message.contains("usage()"),
        "names the flag and the missing surface: {}",
        report.findings[2].message
    );
    assert_eq!(report.files_checked, 3);
    assert_eq!(report.waiver_budget(), 0);
}

#[test]
fn taint_flow_catches_laundering_the_identifier_ban_cannot_see() {
    let report = check("taintflow");
    // Lines 6 and 11 read `Instant::now()` directly — the v1 identifier
    // ban sees those. Lines 7, 13 and 14 are where the *value* escapes:
    // a tainted function return, a one-hop field sink, and a call-sink
    // through that tainted function.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![
            (Rule::Determinism, "crates/hw/src/lib.rs", 6),
            (Rule::DeterminismTaint, "crates/hw/src/lib.rs", 7),
            (Rule::Determinism, "crates/hw/src/lib.rs", 11),
            (Rule::DeterminismTaint, "crates/hw/src/lib.rs", 13),
            (Rule::DeterminismTaint, "crates/hw/src/lib.rs", 14),
        ],
        "{}",
        report.render()
    );
    // The sink lines carry NO banned identifier — a per-line lexer has
    // nothing to match there. Only the dataflow walk reaches them.
    let src = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures/taintflow/crates/hw/src/lib.rs"),
    )
    .expect("fixture readable");
    for sink in [13, 14] {
        let line = src.lines().nth(sink - 1).expect("sink line exists");
        for banned in ["Instant", "SystemTime", "host_now_ns", "rand", "env::var"] {
            assert!(
                !line.contains(banned),
                "line {sink} must be invisible to the identifier ban: {line}"
            );
        }
    }
    // Messages trace the flow back to its origin line.
    assert!(
        report.findings[3].message.contains("`Instant` (line 11)"),
        "sink names its origin: {}",
        report.findings[3].message
    );
    assert!(
        report.findings[1].message.contains("host_probe"),
        "return finding names the function: {}",
        report.findings[1].message
    );
    assert_eq!(report.files_checked, 3);
}

#[test]
fn ordering_sensitivity_fires_on_hash_iteration_with_escaping_writes() {
    let report = check("orderflow");
    // One finding, at the first loop's `for` header: it iterates a
    // `HashMap` and appends to a string that outlives the loop. The
    // `BTreeMap` twin and the loop-local-only `HashMap` loop are spared.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![(Rule::OrderingSensitivity, "crates/obs/src/lib.rs", 6)],
        "{}",
        report.render()
    );
    assert!(
        report.findings[0].message.contains("hopp_ds::DetMap")
            && report.findings[0].message.contains("`index`"),
        "steer names the binding and the fix: {}",
        report.findings[0].message
    );
    // obs is a harness crate: no blanket-HashMap determinism finding.
    assert!(report.findings.iter().all(|f| f.rule != Rule::Determinism));
    assert_eq!(report.files_checked, 3);
}

#[test]
fn unsafe_audit_requires_an_adjacent_safety_comment() {
    let report = check("unsafeaudit");
    // The justified block on line 5 passes; the bare one on line 9 fires.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![(Rule::UnsafeAudit, "crates/prof/src/lib.rs", 9)],
        "{}",
        report.render()
    );
    assert!(
        report.findings[0].message.contains("SAFETY:"),
        "{}",
        report.findings[0].message
    );
    assert_eq!(report.files_checked, 3);
}

#[test]
fn unclassified_crates_are_config_drift() {
    let report = check("driftcrate");
    // `crates/mystery` exists on disk but neither SIM_CRITICAL_CRATES
    // nor HARNESS_CRATES names it, so it would silently skip the
    // sim-critical analyses; the classification check refuses that.
    let got: Vec<_> = report.findings.iter().map(brief).collect();
    assert_eq!(
        got,
        vec![(Rule::ConfigDrift, "crates/mystery", 1)],
        "{}",
        report.render()
    );
    assert!(
        report.findings[0].message.contains("SIM_CRITICAL_CRATES")
            && report.findings[0].message.contains("HARNESS_CRATES"),
        "names both lists: {}",
        report.findings[0].message
    );
    assert_eq!(report.files_checked, 3);
}

#[test]
fn the_real_workspace_crate_list_is_fully_classified() {
    // The classification lists in rules.rs are asserted against the
    // actual `crates/` members at check time; this pins the inverse —
    // every list entry corresponds to a real directory — against the
    // real workspace this test runs in.
    let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("crates/check sits two levels below the workspace root");
    for name in hopp_check::SIM_CRITICAL_CRATES
        .iter()
        .chain(hopp_check::HARNESS_CRATES.iter())
    {
        assert!(
            ws.join("crates").join(name).is_dir(),
            "`{name}` is classified but crates/{name} does not exist"
        );
    }
}

#[test]
fn missing_config_surfaces_are_reported_not_fatal() {
    // A root with no crates/ directory at all is an IO error ...
    let bogus = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/does-not-exist");
    assert!(hopp_check::run(&bogus).is_err());
}
