#![warn(missing_docs)]
//! `hopp-check` — workspace-local static analysis for the HoPP stack.
//!
//! The simulation's value rests on *deterministic*, cycle-approximate
//! replay: identical seeds and fault scripts must produce byte-identical
//! reports. Tests catch regressions after the fact; this crate stops the
//! common ways of breaking that contract from compiling into `main` at
//! all, as machine-checkable rules over the whole workspace:
//!
//! * [`Rule::Determinism`] — no wall-clock time, OS randomness, threads
//!   or default-hasher `HashMap`/`HashSet` in sim-critical crates; and,
//!   workspace-wide, no ad-hoc `thread::spawn`/`thread::scope` anywhere
//!   outside the sanctioned hopp-lab pool (`crates/bench/src/lab.rs`),
//!   whose indexed-slot design keeps output byte-identical at any
//!   thread count. One carve-out: `hopp_prof::span(..)` guards may time
//!   host work even in sim-critical crates, because the guard never
//!   returns the measured value (raw reads like `Instant::now()` or
//!   `hopp_prof::host_now_ns()` stay banned);
//! * [`Rule::DeterminismTaint`] — scope-aware taint tracking: a value
//!   *derived* from a banned host source (through let-bindings,
//!   reassignments and same-file function returns) must not flow into
//!   a sim-state field assignment or out of a function. The identifier
//!   ban above sees `Instant::now()`; this sees `state.ns = t.elapsed()`
//!   two statements later;
//! * [`Rule::OrderingSensitivity`] — iterating an unordered
//!   `HashMap`/`HashSet` must not mutate state or emit output that
//!   outlives the loop, *workspace-wide*: harness crates escape the
//!   blanket `HashMap` ban, but artifact bytes must not depend on hash
//!   order. `hopp_ds` types and `BTreeMap` iterate deterministically
//!   and are never flagged;
//! * [`Rule::PanicPolicy`] — no `unwrap`/`expect`/`panic!` in non-test
//!   hot-path code; failures travel as [`hopp_types::Error`]-style typed
//!   errors instead;
//! * [`Rule::UnitHygiene`] — no raw `as` casts into or out of the ID
//!   newtypes (`Vpn`, `Ppn`, …) outside `crates/types`; use the explicit
//!   conversion methods;
//! * [`Rule::UnsafeAudit`] — every `unsafe` carries an adjacent
//!   `// SAFETY:` comment (same line or up to three lines above);
//! * [`Rule::ConfigDrift`] — every `SimConfig` field is documented in
//!   `docs/config.md` and reachable from a `hoppsim` CLI flag, every
//!   CLI flag with a match arm is listed in `usage()`, and every
//!   workspace crate is classified sim-critical or harness in
//!   [`rules`](SIM_CRITICAL_CRATES)' lists (a new crate cannot silently
//!   skip analysis).
//!
//! Individual findings can be waived in place with
//! `// hopp-check: allow(<rule>): <reason>`; each waiver suppresses
//! exactly one finding (the first on its target line) and must carry a
//! reason. Unused waivers are themselves findings, so the waiver budget
//! only ever shrinks. Run via `cargo xtask check`; `--sarif <path>`
//! exports SARIF 2.1.0 ([`sarif`]), `--waivers` prints the per-rule
//! waiver/budget table, and the committed `check-baseline.json`
//! ([`baseline`]) ratchets the finding count monotonically downward.
//!
//! The checker is dependency-free by design (the build environment is
//! offline): instead of `syn` it uses a small comment/string/test-aware
//! lexer plus a brace/scope-tracking token pass ([`lexer`]), which is
//! exact for the token-level invariants enforced here and a sound
//! best-effort for the dataflow analyses.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
mod dataflow;
pub mod json;
pub mod lexer;
mod rules;
pub mod sarif;

pub use rules::{HARNESS_CRATES, SIM_CRITICAL_CRATES};

/// The rules `hopp-check` enforces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rule {
    /// Wall-clock, randomness, threads, unordered hashing in sim code.
    Determinism,
    /// Host state laundered through bindings into sim state/returns.
    DeterminismTaint,
    /// Hash-order iteration driving state mutation or output.
    OrderingSensitivity,
    /// `unwrap()`/`expect()`/`panic!` in non-test hot-path code.
    PanicPolicy,
    /// Raw `as` casts into/out of ID newtypes outside `crates/types`.
    UnitHygiene,
    /// `unsafe` without an adjacent `// SAFETY:` justification.
    UnsafeAudit,
    /// `SimConfig` fields without a CLI flag or documentation row,
    /// and workspace crates missing a sim-critical/harness class.
    ConfigDrift,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::Determinism,
        Rule::DeterminismTaint,
        Rule::OrderingSensitivity,
        Rule::PanicPolicy,
        Rule::UnitHygiene,
        Rule::UnsafeAudit,
        Rule::ConfigDrift,
    ];

    /// The rule's waiver name (`allow(<name>)`), also the SARIF ruleId.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::OrderingSensitivity => "ordering-sensitivity",
            Rule::PanicPolicy => "panic-policy",
            Rule::UnitHygiene => "unit-hygiene",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::ConfigDrift => "config-drift",
        }
    }

    /// Stable short rule ID (`HC01`…), never reused or renumbered —
    /// baselines and SARIF dashboards key on it.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Determinism => "HC01",
            Rule::DeterminismTaint => "HC02",
            Rule::OrderingSensitivity => "HC03",
            Rule::PanicPolicy => "HC04",
            Rule::UnitHygiene => "HC05",
            Rule::UnsafeAudit => "HC06",
            Rule::ConfigDrift => "HC07",
        }
    }

    /// One-line description (SARIF rule metadata).
    pub fn describe(self) -> &'static str {
        match self {
            Rule::Determinism => {
                "No wall-clock time, OS randomness, threads or default-hasher collections \
                 in sim-critical crates; no ad-hoc threads anywhere outside the hopp-lab pool."
            }
            Rule::DeterminismTaint => {
                "Values derived from host time/randomness must not flow through bindings \
                 into sim state fields or function returns (scope-aware taint tracking)."
            }
            Rule::OrderingSensitivity => {
                "Iterating an unordered HashMap/HashSet must not mutate state or emit \
                 output that outlives the loop; hash order varies per process."
            }
            Rule::PanicPolicy => {
                "No unwrap/expect/panic!/unreachable!/todo! in non-test sim-critical code; \
                 failures travel as typed errors."
            }
            Rule::UnitHygiene => {
                "No raw `as` casts into or out of the ID newtypes outside crates/types; \
                 use the explicit conversion methods."
            }
            Rule::UnsafeAudit => {
                "Every `unsafe` carries an adjacent `// SAFETY:` comment stating the \
                 invariant that makes it sound."
            }
            Rule::ConfigDrift => {
                "SimConfig fields, docs/config.md rows, hoppsim flags and the sim-critical \
                 crate classification must not drift apart."
            }
        }
    }

    fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found and what to use instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One waiver comment, as seen by the checker (for the `--waivers`
/// table and stale-waiver reporting).
#[derive(Clone, Debug)]
pub struct WaiverRecord {
    /// Workspace-relative file the waiver sits in.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// The waived rule.
    pub rule: Rule,
    /// The reason text after `allow(<rule>):` (may be empty).
    pub reason: String,
    /// True when the waiver suppressed a finding this run.
    pub used: bool,
}

/// Outcome of a whole-workspace check.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Unwaived findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Waivers that suppressed a finding, per rule.
    pub waived: BTreeMap<&'static str, usize>,
    /// Every waiver comment seen, in file order (used and stale).
    pub waivers: Vec<WaiverRecord>,
    /// Source files analysed.
    pub files_checked: usize,
}

impl CheckReport {
    /// Total waivers spent across all rules (the waiver budget).
    pub fn waiver_budget(&self) -> usize {
        self.waived.values().sum()
    }

    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable summary (findings then budget).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::new();
        for f in &self.findings {
            let _ = writeln!(o, "{f}");
        }
        let _ = writeln!(
            o,
            "hopp-check: {} file(s), {} finding(s), {} waiver(s) spent",
            self.files_checked,
            self.findings.len(),
            self.waiver_budget()
        );
        for rule in Rule::ALL {
            let waived = self.waived.get(rule.name()).copied().unwrap_or(0);
            let found = self.findings.iter().filter(|f| f.rule == rule).count();
            let _ = writeln!(
                o,
                "  {:<20} {found} finding(s), {waived} waived",
                rule.name()
            );
        }
        o
    }

    /// Renders the per-rule waiver/budget table (`--waivers`): every
    /// waiver comment in the workspace with its location, reason and
    /// whether it suppressed a finding this run.
    pub fn render_waivers(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::new();
        let _ = writeln!(
            o,
            "hopp-check waivers: {} comment(s), {} spent",
            self.waivers.len(),
            self.waiver_budget()
        );
        for rule in Rule::ALL {
            let of_rule: Vec<&WaiverRecord> =
                self.waivers.iter().filter(|w| w.rule == rule).collect();
            let spent = self.waived.get(rule.name()).copied().unwrap_or(0);
            let _ = writeln!(
                o,
                "  {:<20} {} waiver(s), {spent} spent",
                rule.name(),
                of_rule.len()
            );
            for w in of_rule {
                let status = if w.used { "used " } else { "STALE" };
                let reason = if w.reason.is_empty() {
                    "<no reason>"
                } else {
                    &w.reason
                };
                let _ = writeln!(o, "    {status} {}:{}  {reason}", w.file, w.line);
            }
        }
        o
    }
}

/// A parsed waiver comment.
#[derive(Clone, Debug)]
struct Waiver {
    rule: Rule,
    /// Line the waiver applies to (its own line, or the next code line
    /// for standalone comment lines).
    target_line: usize,
    /// Line the waiver text sits on (for unused-waiver findings).
    at_line: usize,
    used: bool,
    /// The reason text after `allow(<rule>):` (empty = reason-less).
    reason: String,
}

impl Waiver {
    fn has_reason(&self) -> bool {
        !self.reason.is_empty()
    }
}

/// What the scanner knows about one file.
struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    rel: String,
    /// Crate name (`hw`, `kernel`, …) or `"hopp"` for the root package.
    krate: &'a str,
    lexed: lexer::LexedFile,
    waivers: Vec<Waiver>,
}

/// Runs every rule over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns an IO error message when the workspace layout cannot be read.
pub fn run(root: &Path) -> Result<CheckReport, String> {
    let mut report = CheckReport::default();
    let mut findings = Vec::new();
    let mut files = collect_workspace_files(root)?;
    files.sort();
    for (krate, path) in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = relative_to(root, path);
        let mut ctx = FileContext {
            rel,
            krate,
            lexed: lexer::lex(&src),
            waivers: Vec::new(),
        };
        collect_waivers(&mut ctx);
        rules::check_file(&mut ctx, &mut findings);
        settle_waivers(&ctx, &mut findings, &mut report);
        report.files_checked += 1;
    }
    rules::check_config_drift(root, &mut findings);
    rules::check_crate_classification(root, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.findings = findings;
    Ok(report)
}

/// Collects `(crate-name, path)` for every `.rs` file the rules cover:
/// each workspace crate's `src/` and `benches/`, plus the root
/// package's `src/` and `examples/`. Integration-test trees are
/// excluded wholesale (they are test code by definition).
fn collect_workspace_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        for sub in ["src", "benches"] {
            walk_rs(&path.join(sub), &mut |p| out.push((name.clone(), p)));
        }
    }
    for sub in ["src", "examples"] {
        walk_rs(&root.join(sub), &mut |p| out.push(("hopp".to_string(), p)));
    }
    Ok(out)
}

fn walk_rs(dir: &Path, f: &mut impl FnMut(PathBuf)) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, f);
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(path);
        }
    }
}

fn relative_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parses `hopp-check: allow(<rule>): <reason>` waivers out of comments.
fn collect_waivers(ctx: &mut FileContext<'_>) {
    const TAG: &str = "hopp-check: allow(";
    for (idx, line) in ctx.lexed.lines.iter().enumerate() {
        let Some(pos) = line.comment.find(TAG) else {
            continue;
        };
        let rest = &line.comment[pos + TAG.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let Some(rule) = Rule::parse(&rest[..close]) else {
            continue;
        };
        let after = rest[close + 1..].trim_start_matches(':').trim();
        // A standalone comment line waives the next line; a trailing
        // comment waives its own line.
        let target_line = if line.code.trim().is_empty() {
            idx + 2
        } else {
            idx + 1
        };
        ctx.waivers.push(Waiver {
            rule,
            target_line,
            at_line: idx + 1,
            used: false,
            reason: after.to_string(),
        });
    }
}

/// Applies waivers to findings in `ctx`'s file: each waiver suppresses
/// the first matching finding on its target line. Unused or reason-less
/// waivers become findings themselves.
fn settle_waivers(ctx: &FileContext<'_>, findings: &mut Vec<Finding>, report: &mut CheckReport) {
    let waived = &mut report.waived;
    let mut waivers: Vec<Waiver> = ctx.waivers.clone();
    findings.retain(|f| {
        if f.file != ctx.rel {
            return true;
        }
        for w in waivers.iter_mut() {
            if !w.used && w.has_reason() && w.rule == f.rule && w.target_line == f.line {
                w.used = true;
                *waived.entry(f.rule.name()).or_insert(0) += 1;
                return false;
            }
        }
        true
    });
    for w in &waivers {
        if !w.has_reason() {
            findings.push(Finding {
                rule: w.rule,
                file: ctx.rel.clone(),
                line: w.at_line,
                message: format!(
                    "waiver for `{}` has no reason; write `hopp-check: allow({}): <why>`",
                    w.rule, w.rule
                ),
            });
        } else if !w.used {
            findings.push(Finding {
                rule: w.rule,
                file: ctx.rel.clone(),
                line: w.at_line,
                message: format!(
                    "unused waiver: no `{}` finding on line {}; delete it",
                    w.rule, w.target_line
                ),
            });
        }
        report.waivers.push(WaiverRecord {
            file: ctx.rel.clone(),
            line: w.at_line,
            rule: w.rule,
            reason: w.reason.clone(),
            used: w.used,
        });
    }
}
