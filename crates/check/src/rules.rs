//! The four rule implementations.

use std::path::Path;

use crate::lexer::Line;
use crate::{FileContext, Finding, Rule};

/// Crates whose code runs inside the simulated clock domain. Everything
/// here must be deterministic and panic-free; harness crates (`trace`
/// file IO, `obs` exporters, `workloads` generators, `bench`, the
/// checker itself) are exempt from those two rules but not from unit
/// hygiene.
pub const SIM_CRITICAL_CRATES: [&str; 10] = [
    "hw",
    "kernel",
    "mem",
    "net",
    "fabric",
    "core",
    "sim",
    "baselines",
    "ds",
    "scenario",
];

/// Crates that are host-side tooling by design: measurement harnesses,
/// exporters, generators and the checker itself. Exempt from the
/// sim-critical determinism/panic rules (but not from unit hygiene,
/// ordering-sensitivity or the unsafe audit).
///
/// Together with [`SIM_CRITICAL_CRATES`] this must cover every
/// directory under `crates/`: [`check_crate_classification`] fails the
/// check when a workspace member is in neither list, so a new crate
/// cannot silently skip analysis.
pub const HARNESS_CRATES: [&str; 8] = [
    "bench",
    "check",
    "obs",
    "prof",
    "trace",
    "types",
    "workloads",
    "xtask",
];

/// ID newtypes whose raw values must not be `as`-cast outside
/// `crates/types` (the one place allowed to define conversions).
const ID_NEWTYPES: [&str; 6] = ["Vpn", "Ppn", "Pid", "NodeId", "LineAddr", "SwapSlot"];

/// Identifiers banned in sim-critical code: wall-clock time, OS
/// randomness and threading have no place inside the simulated clock
/// domain, and default-hasher collections iterate in a random order.
///
/// Carve-out: `hopp_prof::span(..)` scope guards are the one sanctioned
/// host-timing probe in sim-critical code. The guard records host time
/// into thread-local profiler state but never returns the measured
/// value, so host time cannot leak into simulated state; the raw reads
/// (`Instant`, `hopp_prof::host_now_ns`) stay banned.
const DETERMINISM_BANS: [(&str, &str); 8] = [
    (
        "Instant",
        "wall-clock time in sim code; simulated time is `Nanos` carried by the event loop",
    ),
    (
        "SystemTime",
        "wall-clock time in sim code; simulated time is `Nanos` carried by the event loop",
    ),
    (
        "thread::spawn",
        "threads in sim code break deterministic replay; the simulator is single-threaded by design",
    ),
    (
        "thread::scope",
        "threads in sim code break deterministic replay; the simulator is single-threaded by design",
    ),
    (
        "host_now_ns",
        "raw host-clock read in sim code; use a `hopp_prof::span(..)` guard, which times \
         host work without ever handing the measured value back to the caller",
    ),
    (
        "rand::",
        "OS randomness in sim code; use the seeded `hopp_types::rng` SplitMix64",
    ),
    (
        "HashMap",
        "default-hasher map iterates in random order; use `hopp_ds::DetMap` (seeded hash, \
         insertion-order iteration), `hopp_ds::PageMap` for dense page keys, or `BTreeMap`",
    ),
    (
        "HashSet",
        "default-hasher set iterates in random order; use `hopp_ds::DetMap<K, ()>` or `BTreeSet`",
    ),
];

/// Thread primitives banned *everywhere* in the workspace except the
/// one sanctioned home: the hopp-lab pool in `crates/bench/src/lab.rs`.
/// Harness crates are exempt from the sim-critical determinism rule,
/// but ad-hoc threading there still produces artifacts whose byte
/// stability nobody audited — so parallel work must route through the
/// pool, which guarantees grid-order aggregation at any thread count.
const THREAD_BANS: [(&str, &str); 2] = [
    (
        "thread::spawn",
        "ad-hoc threads outside the sanctioned pool; route parallel work through \
         `hopp_bench::lab::run_indexed` (crates/bench/src/lab.rs), which preserves \
         deterministic output order",
    ),
    (
        "thread::scope",
        "ad-hoc threads outside the sanctioned pool; route parallel work through \
         `hopp_bench::lab::run_indexed` (crates/bench/src/lab.rs), which preserves \
         deterministic output order",
    ),
];

/// Panicking forms banned in non-test hot-path code. `assert!` /
/// `debug_assert!` stay allowed: they state contracts, while these
/// forms swallow recoverable failures that should travel as errors.
const PANIC_BANS: [(&str, &str); 5] = [
    (
        ".unwrap()",
        "propagate a typed error (`?`) or handle the `None`/`Err` case",
    ),
    (
        ".expect(",
        "propagate a typed error (`?`) instead of panicking with a message",
    ),
    (
        "panic!(",
        "return a typed `hopp_types::Error` so callers can report context",
    ),
    (
        "unreachable!(",
        "make the invariant a type or return a typed error",
    ),
    ("todo!(", "unimplemented code must not ship in hot paths"),
];

/// Runs the per-file rules over one lexed file.
pub fn check_file(ctx: &mut FileContext<'_>, findings: &mut Vec<Finding>) {
    let sim_critical = SIM_CRITICAL_CRATES.contains(&ctx.krate);
    // The whole `benches/` tree is measurement harness, not sim code.
    let is_bench = ctx.rel.contains("/benches/");
    // The one sanctioned home for threads in the whole workspace.
    let is_lab_pool = ctx.rel == "crates/bench/src/lab.rs";
    for (idx, line) in ctx.lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let lineno = idx + 1;
        if sim_critical && !is_bench {
            check_determinism(ctx, line, lineno, findings);
            check_panic_policy(ctx, line, lineno, findings);
        } else if !is_lab_pool {
            // Harness code escapes the full determinism rule, but not
            // the workspace-wide thread policy: parallelism must route
            // through the hopp-lab pool so output stays byte-stable.
            check_thread_policy(ctx, line, lineno, findings);
        }
        if ctx.krate != "types" && ctx.krate != "check" {
            check_unit_hygiene(ctx, line, lineno, findings);
        }
    }
    // The scope-aware passes: determinism taint-flow (sim-critical
    // only) and ordering-sensitivity (everywhere), then the line-level
    // unsafe audit (everywhere).
    let toks = crate::lexer::tokenize(&ctx.lexed);
    crate::dataflow::check_dataflow(ctx, &toks, sim_critical && !is_bench, findings);
    crate::dataflow::check_unsafe_audit(ctx, findings);
}

fn check_determinism(
    ctx: &FileContext<'_>,
    line: &Line,
    lineno: usize,
    findings: &mut Vec<Finding>,
) {
    for (needle, steer) in DETERMINISM_BANS {
        if contains_ident(&line.code, needle) {
            findings.push(Finding {
                rule: Rule::Determinism,
                file: ctx.rel.clone(),
                line: lineno,
                message: format!("`{needle}`: {steer}"),
            });
        }
    }
}

fn check_thread_policy(
    ctx: &FileContext<'_>,
    line: &Line,
    lineno: usize,
    findings: &mut Vec<Finding>,
) {
    for (needle, steer) in THREAD_BANS {
        if contains_ident(&line.code, needle) {
            findings.push(Finding {
                rule: Rule::Determinism,
                file: ctx.rel.clone(),
                line: lineno,
                message: format!("`{needle}`: {steer}"),
            });
        }
    }
}

fn check_panic_policy(
    ctx: &FileContext<'_>,
    line: &Line,
    lineno: usize,
    findings: &mut Vec<Finding>,
) {
    for (needle, steer) in PANIC_BANS {
        if line.code.contains(needle) {
            findings.push(Finding {
                rule: Rule::PanicPolicy,
                file: ctx.rel.clone(),
                line: lineno,
                message: format!("`{}`: {steer}", needle.trim_end_matches('(')),
            });
        }
    }
}

fn check_unit_hygiene(
    ctx: &FileContext<'_>,
    line: &Line,
    lineno: usize,
    findings: &mut Vec<Finding>,
) {
    // Casting a newtype's raw value: `x.raw() as usize` loses the unit.
    if line.code.contains(".raw() as ") {
        findings.push(Finding {
            rule: Rule::UnitHygiene,
            file: ctx.rel.clone(),
            line: lineno,
            message: "`.raw() as …` cast loses the ID's unit; add/use an explicit \
                      conversion method on the newtype (e.g. `Ppn::index()`)"
                .to_string(),
        });
    }
    // Constructing a newtype from a cast: `NodeId::new(i as u16)` can
    // silently truncate and hides unit conversions from review.
    for ty in ID_NEWTYPES {
        let needle = format!("{ty}::new(");
        let mut start = 0;
        while let Some(pos) = line.code[start..].find(&needle) {
            let open = start + pos + needle.len() - 1;
            let args = argument_span(&line.code, open);
            if args.contains(" as ") {
                findings.push(Finding {
                    rule: Rule::UnitHygiene,
                    file: ctx.rel.clone(),
                    line: lineno,
                    message: format!(
                        "`{ty}::new(… as …)` builds an ID from a raw cast; use an explicit \
                         conversion constructor on `{ty}` (defined in `crates/types`)"
                    ),
                });
                break;
            }
            start = open + 1;
        }
    }
}

/// The text between the paren at `open` and its match (or end of line).
fn argument_span(code: &str, open: usize) -> &str {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return &code[open + 1..i];
                }
            }
            _ => {}
        }
    }
    &code[open + 1..]
}

/// Word-boundary containment: `HashMap` matches `HashMap::new` but not
/// `MyHashMapLike` or `hash_map`.
fn contains_ident(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = code[..at].chars().next_back().unwrap_or(' ');
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + needle.len();
        let after_ok = end >= code.len() || {
            let c = code[end..].chars().next().unwrap_or(' ');
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Rule 4: every `SimConfig` field must be documented in
/// `docs/config.md` with a CLI flag that actually exists in the
/// `hoppsim` binary's source. The docs table *is* the mapping; drift in
/// any of the three places (struct, docs, CLI) surfaces here.
///
/// Sub-check: when the CLI ships a `fn usage()` help text, every flag
/// with a match arm must be listed in it — an arm with no usage line is
/// invisible to users and drifts out of the docs unnoticed. Gated on
/// `fn usage(` being present so minimal fixtures stay valid.
pub fn check_config_drift(root: &Path, findings: &mut Vec<Finding>) {
    let config_rs = root.join("crates/sim/src/config.rs");
    let hoppsim_rs = root.join("crates/sim/src/bin/hoppsim.rs");
    let docs_md = root.join("docs/config.md");
    let mut missing = |file: &Path, what: &str| {
        findings.push(Finding {
            rule: Rule::ConfigDrift,
            file: crate::relative_to(root, file),
            line: 1,
            message: format!("{what} not found; the config-drift rule needs it"),
        });
    };
    let Ok(config_src) = std::fs::read_to_string(&config_rs) else {
        missing(&config_rs, "SimConfig source");
        return;
    };
    let Ok(hoppsim_src) = std::fs::read_to_string(&hoppsim_rs) else {
        missing(&hoppsim_rs, "hoppsim CLI source");
        return;
    };
    let Ok(docs_src) = std::fs::read_to_string(&docs_md) else {
        missing(&docs_md, "docs/config.md mapping table");
        return;
    };

    let fields = sim_config_fields(&config_src);
    let rows = config_table_rows(&docs_src);
    let docs_rel = crate::relative_to(root, &docs_md);

    for (field, lineno) in &fields {
        match rows.iter().find(|(f, _, _)| f == field) {
            None => findings.push(Finding {
                rule: Rule::ConfigDrift,
                file: crate::relative_to(root, &config_rs),
                line: *lineno,
                message: format!(
                    "`SimConfig::{field}` has no row in docs/config.md; document it and its \
                     CLI flag"
                ),
            }),
            Some((_, flag, row_line)) => {
                if !hoppsim_src.contains(flag.as_str()) {
                    findings.push(Finding {
                        rule: Rule::ConfigDrift,
                        file: docs_rel.clone(),
                        line: *row_line,
                        message: format!(
                            "`SimConfig::{field}` is documented with flag `{flag}`, but hoppsim \
                             does not implement that flag"
                        ),
                    });
                }
            }
        }
    }
    for (field, _, row_line) in &rows {
        if !fields.iter().any(|(f, _)| f == field) {
            findings.push(Finding {
                rule: Rule::ConfigDrift,
                file: docs_rel.clone(),
                line: *row_line,
                message: format!(
                    "docs/config.md documents `{field}`, which is not a SimConfig field; \
                     remove the stale row"
                ),
            });
        }
    }

    if hoppsim_src.contains("fn usage(") {
        let listed = usage_region_flags(&hoppsim_src);
        let hoppsim_rel = crate::relative_to(root, &hoppsim_rs);
        for (flag, lineno) in cli_arm_flags(&hoppsim_src) {
            if !listed.iter().any(|l| l == &flag) {
                findings.push(Finding {
                    rule: Rule::ConfigDrift,
                    file: hoppsim_rel.clone(),
                    line: lineno,
                    message: format!(
                        "CLI flag `{flag}` has a match arm but no `usage()` line; list it \
                         so the help text and docs/config.md can track it"
                    ),
                });
            }
        }
    }
}

/// Extracts `(flag, line)` for every CLI match arm (`"--x" => …`, or
/// `"--x" | "-y" => …`): lines whose trimmed form opens with a string
/// literal and that contain `=>`, taking only flags left of the arrow
/// so `value("--x")` calls in the arm body are not double-counted.
fn cli_arm_flags(src: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let t = line.trim_start();
        if !t.starts_with('"') {
            continue;
        }
        let Some(arrow) = t.find("=>") else { continue };
        for flag in flag_tokens(&t[..arrow]) {
            out.push((flag, idx + 1));
        }
    }
    out
}

/// Flags listed in the `usage()` help text: everything between
/// `fn usage(` and the function's closing brace in column 0.
fn usage_region_flags(src: &str) -> Vec<String> {
    let mut flags = Vec::new();
    let mut inside = false;
    for line in src.lines() {
        if line.contains("fn usage(") {
            inside = true;
            continue;
        }
        if inside {
            if line.starts_with('}') {
                break;
            }
            flags.extend(flag_tokens(line));
        }
    }
    flags
}

/// `--[a-z][a-z0-9-]*` tokens in `s` (long flags only; `-h` shorthands
/// are aliases of a long flag and not tracked).
fn flag_tokens(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if bytes[i] == b'-' && bytes[i + 1] == b'-' && bytes[i + 2].is_ascii_lowercase() {
            if i > 0 && bytes[i - 1] == b'-' {
                i += 1;
                continue;
            }
            let mut end = i + 2;
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase()
                    || bytes[end].is_ascii_digit()
                    || bytes[end] == b'-')
            {
                end += 1;
            }
            out.push(s[i..end].trim_end_matches('-').to_string());
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

/// Extracts `(field, line)` pairs from `pub struct SimConfig { … }`.
fn sim_config_fields(src: &str) -> Vec<(String, usize)> {
    let lexed = crate::lexer::lex(src);
    let mut fields = Vec::new();
    let mut inside = false;
    let mut depth = 0i32;
    for (idx, line) in lexed.lines.iter().enumerate() {
        let code = line.code.trim();
        if code.starts_with("pub struct SimConfig") {
            inside = true;
        }
        if inside {
            if let Some(rest) = code.strip_prefix("pub ") {
                if let Some(colon) = rest.find(':') {
                    let name = rest[..colon].trim();
                    if depth == 1
                        && !name.contains('(')
                        && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                        && !name.is_empty()
                    {
                        fields.push((name.to_string(), idx + 1));
                    }
                }
            }
            for c in line.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            return fields;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Every directory under `crates/` must be classified: either
/// sim-critical (full determinism/panic rules) or harness (exempt from
/// those two). An unclassified crate is a finding — previously the
/// hand-maintained [`SIM_CRITICAL_CRATES`] list could silently go
/// stale when a crate was added, leaving it unanalysed.
///
/// The reverse direction (a list entry whose directory no longer
/// exists) is only checked when the root carries a `Cargo.toml`, so
/// fixture mini-workspaces with a handful of crates stay valid.
pub fn check_crate_classification(root: &Path, findings: &mut Vec<Finding>) {
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return; // absence of crates/ is reported by the file walker
    };
    let mut members: Vec<String> = entries
        .flatten()
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    members.sort();
    for name in &members {
        let classified =
            SIM_CRITICAL_CRATES.contains(&name.as_str()) || HARNESS_CRATES.contains(&name.as_str());
        if !classified {
            findings.push(Finding {
                rule: Rule::ConfigDrift,
                file: format!("crates/{name}"),
                line: 1,
                message: format!(
                    "crate `{name}` is not classified in crates/check/src/rules.rs; add it \
                     to SIM_CRITICAL_CRATES (runs inside the simulated clock domain) or \
                     HARNESS_CRATES (host-side tooling) so the checker knows which rules \
                     apply"
                ),
            });
        }
    }
    if root.join("Cargo.toml").exists() {
        for (list, entry) in SIM_CRITICAL_CRATES
            .iter()
            .map(|c| ("SIM_CRITICAL_CRATES", *c))
            .chain(HARNESS_CRATES.iter().map(|c| ("HARNESS_CRATES", *c)))
        {
            if !members.iter().any(|m| m == entry) {
                findings.push(Finding {
                    rule: Rule::ConfigDrift,
                    file: "crates/check/src/rules.rs".to_string(),
                    line: 1,
                    message: format!(
                        "{list} entry `{entry}` has no crates/{entry}/ directory; remove \
                         the stale entry"
                    ),
                });
            }
        }
    }
}

/// Parses `| field | --flag | … |` rows out of the docs table.
fn config_table_rows(src: &str) -> Vec<(String, String, usize)> {
    let mut rows = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let field = cells[0].trim_matches('`').to_string();
        let flag = cells[1].trim_matches('`').to_string();
        if field.is_empty() || field == "field" || field.starts_with('-') {
            continue; // header or separator row
        }
        rows.push((field, flag, idx + 1));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_matching_respects_word_boundaries() {
        assert!(contains_ident("let m = HashMap::new();", "HashMap"));
        assert!(contains_ident("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_ident("struct MyHashMapLike;", "HashMap"));
        assert!(!contains_ident("let hash_map = 1;", "HashMap"));
        assert!(contains_ident("std::thread::spawn(f)", "thread::spawn"));
    }

    #[test]
    fn argument_span_matches_parens() {
        let code = "NodeId::new(f(x) as u16, y)";
        let open = code.find("new(").unwrap() + 3;
        assert_eq!(argument_span(code, open), "f(x) as u16, y");
    }

    #[test]
    fn sim_config_fields_parse() {
        let src = "\
/// Docs.
pub struct SimConfig {
    /// The LLC.
    pub llc: LlcConfig,
    pub channels: usize,
}
pub struct Other { pub nope: u8 }
";
        let fields = sim_config_fields(src);
        assert_eq!(
            fields.iter().map(|(f, _)| f.as_str()).collect::<Vec<_>>(),
            ["llc", "channels"]
        );
    }

    #[test]
    fn cli_arm_flags_take_only_the_pattern_side() {
        let src = "\
fn main() {
    match flag.as_str() {
        \"--llc-kb\" => drop(value(\"--other\")),
        \"--help\" | \"-h\" => usage(),
        \"bursty\" => {}
        _ => usage(),
    }
}
";
        let got = cli_arm_flags(src);
        assert_eq!(
            got,
            vec![("--llc-kb".to_string(), 3), ("--help".to_string(), 4)]
        );
    }

    #[test]
    fn usage_flags_stop_at_the_closing_brace() {
        let src = "\
fn usage() -> ! {
    eprintln!(\"--a <n>  thing\\n  --b  other (see --c)\");
}

fn main() {
    let _ = \"--not-usage\";
}
";
        assert_eq!(usage_region_flags(src), ["--a", "--b", "--c"]);
    }

    #[test]
    fn flag_tokens_need_exactly_two_dashes() {
        assert_eq!(flag_tokens("--x ---y -z --ok-2"), ["--x", "--ok-2"]);
        assert!(flag_tokens("a - b").is_empty());
    }

    #[test]
    fn config_rows_skip_headers() {
        let rows = config_table_rows("| field | flag |\n|---|---|\n| `llc` | `--llc-kb` |\n");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "llc");
        assert_eq!(rows[0].1, "--llc-kb");
    }
}
