//! The ratchet baseline: finding counts only ever go down.
//!
//! `check-baseline.json` (committed at the workspace root) records
//! every known finding and the per-rule waiver budget at the time it
//! was last regenerated. On each run the checker diffs the live report
//! against it:
//!
//! * a finding whose fingerprint is **not** in the baseline fails the
//!   run — new debt is never admitted silently;
//! * a baseline entry with **no** live finding also fails the run, with
//!   instructions to rerun `cargo xtask check --update-baseline` — the
//!   ratchet clicks down and the fixed finding can never come back;
//! * the per-rule waiver budget ratchets the same way: spending more
//!   waivers than the baseline fails, spending fewer requires an
//!   update.
//!
//! Findings are matched by [`fingerprint`] — an FNV-1a 64 hash over
//! `rule \0 file \0 message`, deliberately excluding the line number so
//! unrelated edits that shift a finding up or down the file do not
//! churn the baseline. Two identical findings in one file hash alike;
//! the diff therefore compares hash *multisets*, not sets.

use std::collections::BTreeMap;

use crate::{json, CheckReport, Finding};

/// Format version stamped into the file; bump on breaking changes.
pub const VERSION: usize = 1;

/// One remembered finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Entry {
    /// Rule name (`determinism-taint`, …).
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// The finding message, verbatim.
    pub message: String,
    /// [`fingerprint`] of the above (16 hex digits).
    pub hash: String,
}

/// The committed ratchet state.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Per-rule waiver budget at capture time.
    pub waived: BTreeMap<String, usize>,
    /// Known findings, sorted by `(file, rule, message)`.
    pub entries: Vec<Entry>,
}

/// Content hash of a finding: FNV-1a 64 over `rule \0 file \0 message`.
///
/// The line number is deliberately left out so findings keep their
/// identity across unrelated edits that only shift them vertically.
pub fn fingerprint(f: &Finding) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [
        f.rule.name().as_bytes(),
        f.file.as_bytes(),
        f.message.as_bytes(),
    ] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0;
        h = h.wrapping_mul(0x0000_0100_0000_01b3); // NUL separator
    }
    format!("{h:016x}")
}

impl Baseline {
    /// Captures the live report as a new baseline.
    pub fn from_report(report: &CheckReport) -> Baseline {
        let mut entries: Vec<Entry> = report
            .findings
            .iter()
            .map(|f| Entry {
                rule: f.rule.name().to_string(),
                file: f.file.clone(),
                message: f.message.clone(),
                hash: fingerprint(f),
            })
            .collect();
        entries.sort_by(|a, b| (&a.file, &a.rule, &a.message).cmp(&(&b.file, &b.rule, &b.message)));
        Baseline {
            waived: report
                .waived
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            entries,
        }
    }

    /// Parses a baseline file.
    ///
    /// # Errors
    ///
    /// Returns a message when the JSON is malformed or the version is
    /// unknown.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v = json::parse(src).map_err(|e| format!("check-baseline.json: {e}"))?;
        let version = v
            .get("version")
            .and_then(json::Value::as_usize)
            .ok_or("check-baseline.json: missing \"version\"")?;
        if version != VERSION {
            return Err(format!(
                "check-baseline.json: version {version} (this checker writes {VERSION}); \
                 regenerate with `cargo xtask check --update-baseline`"
            ));
        }
        let mut out = Baseline::default();
        if let Some(w) = v.get("waived").and_then(json::Value::as_obj) {
            for (rule, n) in w {
                let n = n
                    .as_usize()
                    .ok_or_else(|| format!("check-baseline.json: bad count for {rule}"))?;
                out.waived.insert(rule.clone(), n);
            }
        }
        if let Some(arr) = v.get("findings").and_then(json::Value::as_arr) {
            for e in arr {
                let field = |k: &str| {
                    e.get(k)
                        .and_then(json::Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("check-baseline.json: entry missing \"{k}\""))
                };
                out.entries.push(Entry {
                    rule: field("rule")?,
                    file: field("file")?,
                    message: field("message")?,
                    hash: field("hash")?,
                });
            }
        }
        Ok(out)
    }

    /// Renders the deterministic on-disk form.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut o = String::new();
        let _ = writeln!(o, "{{");
        let _ = writeln!(o, "  \"version\": {VERSION},");
        let _ = writeln!(o, "  \"waived\": {{");
        for (i, (rule, n)) in self.waived.iter().enumerate() {
            let comma = if i + 1 < self.waived.len() { "," } else { "" };
            let _ = writeln!(o, "    \"{}\": {n}{comma}", json::escape(rule));
        }
        let _ = writeln!(o, "  }},");
        let _ = writeln!(o, "  \"findings\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                o,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"hash\": \"{}\", \"message\": \"{}\"}}{comma}",
                json::escape(&e.rule),
                json::escape(&e.file),
                json::escape(&e.hash),
                json::escape(&e.message)
            );
        }
        let _ = writeln!(o, "  ]");
        let _ = writeln!(o, "}}");
        o
    }

    /// Diffs a live report against the ratchet. An empty vec means the
    /// run is admissible; each entry is one human-readable breach.
    pub fn diff(&self, report: &CheckReport) -> Vec<String> {
        let mut breaches = Vec::new();

        // Finding multisets, keyed by fingerprint.
        let mut base: BTreeMap<&str, (usize, &Entry)> = BTreeMap::new();
        for e in &self.entries {
            base.entry(&e.hash).or_insert((0, e)).0 += 1;
        }
        let mut live: BTreeMap<String, (usize, &Finding)> = BTreeMap::new();
        for f in &report.findings {
            live.entry(fingerprint(f)).or_insert((0, f)).0 += 1;
        }
        for (hash, (n, f)) in &live {
            let known = base.get(hash.as_str()).map_or(0, |(n, _)| *n);
            if *n > known {
                breaches.push(format!("new finding ({} over baseline): {f}", n - known));
            }
        }
        for (hash, (n, e)) in &base {
            let seen = live.get(*hash).map_or(0, |(n, _)| *n);
            if seen < *n {
                breaches.push(format!(
                    "baseline finding no longer occurs ({}x {}:{}\u{2026} \"{}\"); \
                     ratchet down with `cargo xtask check --update-baseline`",
                    n - seen,
                    e.rule,
                    e.file,
                    truncate(&e.message, 60)
                ));
            }
        }

        // Waiver budget, per rule.
        let mut rules: Vec<&str> = self.waived.keys().map(String::as_str).collect();
        for r in report.waived.keys() {
            if !self.waived.contains_key(*r) {
                rules.push(r);
            }
        }
        rules.sort_unstable();
        rules.dedup();
        for rule in rules {
            let was = self.waived.get(rule).copied().unwrap_or(0);
            let now = report.waived.get(rule).copied().unwrap_or(0);
            if now > was {
                breaches.push(format!(
                    "waiver budget for `{rule}` grew: {was} -> {now}; \
                     remove the new waiver or fix the finding"
                ));
            } else if now < was {
                breaches.push(format!(
                    "waiver budget for `{rule}` shrank: {was} -> {now}; \
                     ratchet down with `cargo xtask check --update-baseline`"
                ));
            }
        }
        breaches
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn finding(rule: Rule, file: &str, msg: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 10,
            message: msg.to_string(),
        }
    }

    fn report(findings: Vec<Finding>, waived: &[(&'static str, usize)]) -> CheckReport {
        CheckReport {
            findings,
            waived: waived.iter().copied().collect(),
            ..CheckReport::default()
        }
    }

    #[test]
    fn fingerprint_ignores_the_line_number() {
        let mut a = finding(Rule::PanicPolicy, "crates/hw/src/lib.rs", "uses `unwrap()`");
        let b = a.clone();
        a.line = 99;
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = finding(Rule::PanicPolicy, "crates/hw/src/lib.rs", "uses `expect()`");
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn fingerprint_separates_fields() {
        // "ab" + "c" must not collide with "a" + "bc".
        let a = finding(Rule::Determinism, "ab", "c");
        let b = finding(Rule::Determinism, "a", "bc");
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn render_parse_round_trips() {
        let rep = report(
            vec![
                finding(Rule::PanicPolicy, "crates/hw/src/lib.rs", "uses `unwrap()`"),
                finding(
                    Rule::UnsafeAudit,
                    "crates/prof/src/alloc.rs",
                    "bare `unsafe`",
                ),
            ],
            &[("panic-policy", 11), ("unit-hygiene", 1)],
        );
        let base = Baseline::from_report(&rep);
        let parsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(parsed.entries, base.entries);
        assert_eq!(parsed.waived, base.waived);
        assert!(parsed.diff(&rep).is_empty(), "round trip diffs clean");
    }

    #[test]
    fn a_new_finding_breaches_the_ratchet() {
        let base = Baseline::from_report(&report(vec![], &[]));
        let rep = report(
            vec![finding(
                Rule::Determinism,
                "crates/hw/src/lib.rs",
                "uses `Instant`",
            )],
            &[],
        );
        let breaches = base.diff(&rep);
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].starts_with("new finding"), "{}", breaches[0]);
    }

    #[test]
    fn a_fixed_finding_demands_a_baseline_update() {
        let old = report(
            vec![finding(
                Rule::PanicPolicy,
                "crates/hw/src/lib.rs",
                "uses `unwrap()`",
            )],
            &[],
        );
        let base = Baseline::from_report(&old);
        let breaches = base.diff(&report(vec![], &[]));
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].contains("--update-baseline"), "{}", breaches[0]);
    }

    #[test]
    fn duplicate_findings_diff_as_a_multiset() {
        let two = report(
            vec![
                finding(Rule::PanicPolicy, "crates/hw/src/lib.rs", "uses `unwrap()`"),
                finding(Rule::PanicPolicy, "crates/hw/src/lib.rs", "uses `unwrap()`"),
            ],
            &[],
        );
        let one = report(
            vec![finding(
                Rule::PanicPolicy,
                "crates/hw/src/lib.rs",
                "uses `unwrap()`",
            )],
            &[],
        );
        let base = Baseline::from_report(&one);
        assert_eq!(base.diff(&two).len(), 1, "second copy is new debt");
        assert_eq!(Baseline::from_report(&two).diff(&one).len(), 1);
    }

    #[test]
    fn waiver_budget_ratchets_both_ways() {
        let base = Baseline::from_report(&report(vec![], &[("panic-policy", 11)]));
        let grew = base.diff(&report(vec![], &[("panic-policy", 12)]));
        assert_eq!(grew.len(), 1);
        assert!(grew[0].contains("grew"), "{}", grew[0]);
        let shrank = base.diff(&report(vec![], &[("panic-policy", 10)]));
        assert_eq!(shrank.len(), 1);
        assert!(shrank[0].contains("shrank"), "{}", shrank[0]);
        assert!(base
            .diff(&report(vec![], &[("panic-policy", 11)]))
            .is_empty());
    }

    #[test]
    fn unknown_versions_are_rejected() {
        assert!(Baseline::parse("{\"version\": 99}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
