//! A minimal Rust lexer for scope-aware static analysis.
//!
//! The container this repo builds in has no crates.io access, so the
//! checker cannot use `syn`. For the invariants `hopp-check` enforces
//! (named-identifier bans, method-call bans, cast hygiene, and the v2
//! dataflow analyses) a full AST is unnecessary. The lexer provides two
//! views of a file:
//!
//! * a **line view**: for every source line, the *code* with comments
//!   and literal contents blanked out (so `"HashMap"` in a string never
//!   trips the determinism rule), the *comment text* (where waivers
//!   live), whether the line sits inside a `#[cfg(test)]` region or
//!   `#[test]` function, and the brace-scope depth at the line start;
//! * a **token view** ([`tokenize`]): the blanked code stream split
//!   into identifier / literal / operator / bracket tokens, each tagged
//!   with its 1-based source line. The dataflow analyses
//!   (`determinism-taint`, `ordering-sensitivity`) walk this stream
//!   with an explicit scope stack instead of re-parsing lines.
//!
//! The lexer is a single character-level state machine over the file,
//! followed by a brace-depth pass that marks test regions and records
//! per-line scope depths.

/// One analysed source line.
#[derive(Clone, Debug)]
pub struct Line {
    /// Source code with comments removed and string/char literal
    /// contents blanked (quotes preserved, so structure survives).
    pub code: String,
    /// Comment text on this line (`//`, `///`, `//!` and block
    /// comment fragments), concatenated.
    pub comment: String,
    /// True when the line is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// Brace-scope depth at the start of the line (0 = module level).
    /// Braces inside strings, chars and comments do not count.
    pub depth_start: i32,
}

/// A lexed file: per-line code/comment split plus test-region marks.
#[derive(Clone, Debug)]
pub struct LexedFile {
    /// Lines, index 0 = source line 1.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lexes one file's source text.
pub fn lex(src: &str) -> LexedFile {
    let (code, comment) = split_code_comments(src);
    let code_lines: Vec<&str> = code.split('\n').collect();
    let comment_lines: Vec<&str> = comment.split('\n').collect();
    let tests = mark_test_regions(&code_lines);
    let depths = line_start_depths(&code_lines);
    let lines = code_lines
        .iter()
        .enumerate()
        .map(|(i, c)| Line {
            code: (*c).to_string(),
            comment: comment_lines.get(i).copied().unwrap_or("").to_string(),
            in_test: tests[i],
            depth_start: depths[i],
        })
        .collect();
    LexedFile { lines }
}

/// Brace-scope depth at the start of each (comment/literal-blanked)
/// code line. Literal and comment braces were already removed from the
/// code stream, so plain counting is exact here.
fn line_start_depths(code_lines: &[&str]) -> Vec<i32> {
    let mut depths = Vec::with_capacity(code_lines.len());
    let mut depth: i32 = 0;
    for line in code_lines {
        depths.push(depth);
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    depths
}

/// What a [`Tok`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `HashMap`, `t0`, …).
    Ident,
    /// Numeric literal (`42`, `0x1f`, `1_024`).
    Num,
    /// String literal (contents blanked by the lexer).
    Str,
    /// Char literal (contents blanked by the lexer).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator or punctuation, maximal-munch (`::`, `=>`, `+=`, `=`).
    Op,
    /// Opening bracket: `{`, `(` or `[`.
    Open,
    /// Closing bracket: `}`, `)` or `]`.
    Close,
}

/// One token of the blanked code stream.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token text (literal contents already blanked to `_`).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Token class.
    pub kind: TokKind,
}

impl Tok {
    /// True when the token is this exact identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is this exact operator/punctuation.
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }
}

/// Multi-char operators, longest first so maximal munch wins.
const MULTI_OPS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "..",
];

/// Tokenizes the blanked code stream of a lexed file. Comments and
/// literal contents are already gone, so this is a plain scanner; the
/// scope structure (every `{`/`}` token) is exact.
pub fn tokenize(lexed: &LexedFile) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    kind: TokKind::Ident,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    kind: TokKind::Num,
                });
                continue;
            }
            if c == '"' {
                let start = i;
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                i = (i + 1).min(chars.len());
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                    kind: TokKind::Str,
                });
                continue;
            }
            if c == '\'' {
                // Blanked char literal ('_' / '__') vs lifetime ('a).
                if is_char_literal(&chars, i) {
                    let start = i;
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i = (i + 1).min(chars.len());
                    toks.push(Tok {
                        text: chars[start..i].iter().collect(),
                        line: lineno,
                        kind: TokKind::Char,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        text: chars[start..i].iter().collect(),
                        line: lineno,
                        kind: TokKind::Lifetime,
                    });
                }
                continue;
            }
            if matches!(c, '{' | '(' | '[') {
                toks.push(Tok {
                    text: c.to_string(),
                    line: lineno,
                    kind: TokKind::Open,
                });
                i += 1;
                continue;
            }
            if matches!(c, '}' | ')' | ']') {
                toks.push(Tok {
                    text: c.to_string(),
                    line: lineno,
                    kind: TokKind::Close,
                });
                i += 1;
                continue;
            }
            let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
            let mut matched = 1;
            for op in MULTI_OPS {
                if rest.starts_with(op) {
                    matched = op.len();
                    break;
                }
            }
            toks.push(Tok {
                text: chars[i..i + matched].iter().collect(),
                line: lineno,
                kind: TokKind::Op,
            });
            i += matched;
        }
    }
    toks
}

/// Splits source into parallel code and comment streams of identical
/// line structure. Literal contents are blanked in the code stream.
fn split_code_comments(src: &str) -> (String, String) {
    let mut code = String::with_capacity(src.len());
    let mut comment = String::with_capacity(src.len() / 4);
    let mut state = State::Normal;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            // Newlines go to both streams to keep line numbers aligned.
            code.push('\n');
            comment.push('\n');
            if state == State::LineComment {
                state = State::Normal;
            }
            i += 1;
            continue;
        }
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comment.push(' ');
                    i += 1;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    // Raw string? Look back for r / r# prefixes already
                    // emitted; simpler: handled at the 'r' below.
                    state = State::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            code.push('_');
                        }
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                    continue;
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is 'ident not
                    // followed by a closing quote; a char literal closes
                    // within a few chars (escapes included).
                    if is_char_literal(&chars, i) {
                        state = State::Char;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                _ => {
                    code.push(c);
                    i += 1;
                    continue;
                }
            },
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
                continue;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    let d = depth - 1;
                    if d == 0 {
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(d);
                    }
                    comment.push(' ');
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push(' ');
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                comment.push(c);
                code.push(' ');
                i += 1;
                continue;
            }
            State::Str => {
                if c == '\\' {
                    code.push('_');
                    if next.is_some() && next != Some('\n') {
                        code.push('_');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                if c == '"' {
                    state = State::Normal;
                    code.push('"');
                } else {
                    code.push('_');
                }
                i += 1;
                continue;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            code.push('_');
                        }
                        state = State::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push('_');
                i += 1;
                continue;
            }
            State::Char => {
                if c == '\\' && next.is_some() && next != Some('\n') {
                    code.push('_');
                    code.push('_');
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Normal;
                    code.push('\'');
                } else {
                    code.push('_');
                }
                i += 1;
                continue;
            }
        }
        // Keep the comment stream line-aligned: pad nothing here; the
        // comment stream only receives characters in comment states and
        // newlines above.
        let _ = &comment;
    }
    (code, comment)
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime) at
/// position `i` of a `'`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)]` regions or `#[test]` functions by
/// brace counting over the comment-stripped code stream.
fn mark_test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut marks = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depths at which a test region's opening brace sits.
    let mut test_depths: Vec<i64> = Vec::new();
    // A test attribute was seen; the next `{` opens its region.
    let mut pending = false;
    for (idx, line) in code_lines.iter().enumerate() {
        let has_attr = line.contains("#[cfg(test)]") || line.contains("#[test]");
        if has_attr {
            pending = true;
        }
        marks[idx] = !test_depths.is_empty() || pending;
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        test_depths.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                }
                _ => {}
            }
        }
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_out_of_code() {
        let f = lex("let x = 1; // trailing words\n/* block */ let y = 2;\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("trailing"));
        assert!(f.lines[0].comment.contains("trailing words"));
        assert!(f.lines[1].code.contains("let y = 2;"));
        assert!(f.lines[1].comment.contains("block"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = lex("let s = \"HashMap::new() // not a comment\";\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.is_empty());
        assert!(f.lines[0].code.contains('"'), "quotes survive");
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let f = lex("let s = r#\"x \" y\"#; let t = \"a\\\"b\"; let u = 'c';\n");
        let code = &f.lines[0].code;
        assert!(!code.contains("x \" y"));
        assert!(code.contains("let t"));
        assert!(code.contains("let u"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'z';\n");
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[1].code.contains('z'));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line itself");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "region closed");
    }

    #[test]
    fn nested_block_comments_terminate() {
        let f = lex("/* a /* b */ c */ let x = 1;\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains('a'));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let f = lex("/* one\ntwo */ let k = 3;\n");
        assert!(f.lines[0].code.trim().is_empty());
        assert!(f.lines[1].code.contains("let k = 3;"));
        assert!(f.lines[0].comment.contains("one"));
    }

    #[test]
    fn depth_ignores_braces_in_literals_and_comments() {
        let src = "fn f() {\n    let s = \"{{{\"; // }}}\n    let c = '{';\n}\nfn g() {}\n";
        let f = lex(src);
        let depths: Vec<i32> = f.lines.iter().map(|l| l.depth_start).collect();
        assert_eq!(depths, [0, 1, 1, 1, 0, 0]);
    }

    #[test]
    fn tokenize_classifies_and_munches_operators() {
        let f = lex("let ns = t0.elapsed().as_nanos() as u64;\nif a == b && c != d { x += 1 }\n");
        let toks = tokenize(&f);
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"elapsed"));
        assert!(texts.contains(&"=="));
        assert!(texts.contains(&"&&"));
        assert!(texts.contains(&"!="));
        assert!(texts.contains(&"+="));
        // `==` must not be split into two `=` tokens.
        assert_eq!(toks.iter().filter(|t| t.is_op("=")).count(), 1);
        // Line tags are 1-based source lines.
        let eq = toks.iter().find(|t| t.is_op("==")).unwrap();
        assert_eq!(eq.line, 2);
    }

    #[test]
    fn tokenize_keeps_lifetimes_apart_from_chars() {
        let f = lex("fn f<'a>(x: &'a str) -> char { 'z' }\n");
        let toks = tokenize(&f);
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
        // The generic's `<`/`>` arrive as plain ops; `(` and `{` as Open.
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Open).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Close).count(), 2);
    }

    #[test]
    fn tokenize_blanks_string_contents() {
        let f = lex("let s = \"HashMap { }\";\n");
        let toks = tokenize(&f);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(!s.text.contains("HashMap"));
        assert!(!toks.iter().any(|t| t.kind == TokKind::Open));
    }
}
