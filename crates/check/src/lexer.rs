//! A minimal Rust lexer for line-oriented static analysis.
//!
//! The container this repo builds in has no crates.io access, so the
//! checker cannot use `syn`. For the invariants `hopp-check` enforces
//! (named-identifier bans, method-call bans, cast hygiene) a full AST
//! is unnecessary: it suffices to know, for every source line,
//!
//! * the *code* on that line with comments and literal contents blanked
//!   out (so `"HashMap"` in a string never trips the determinism rule),
//! * the *comment text* on that line (where waivers live), and
//! * whether the line sits inside a `#[cfg(test)]` region or `#[test]`
//!   function (where the panic policy does not apply).
//!
//! The lexer is a single character-level state machine over the file,
//! followed by a brace-depth pass that marks test regions.

/// One analysed source line.
#[derive(Clone, Debug)]
pub struct Line {
    /// Source code with comments removed and string/char literal
    /// contents blanked (quotes preserved, so structure survives).
    pub code: String,
    /// Comment text on this line (`//`, `///`, `//!` and block
    /// comment fragments), concatenated.
    pub comment: String,
    /// True when the line is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// A lexed file: per-line code/comment split plus test-region marks.
#[derive(Clone, Debug)]
pub struct LexedFile {
    /// Lines, index 0 = source line 1.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lexes one file's source text.
pub fn lex(src: &str) -> LexedFile {
    let (code, comment) = split_code_comments(src);
    let code_lines: Vec<&str> = code.split('\n').collect();
    let comment_lines: Vec<&str> = comment.split('\n').collect();
    let tests = mark_test_regions(&code_lines);
    let lines = code_lines
        .iter()
        .enumerate()
        .map(|(i, c)| Line {
            code: (*c).to_string(),
            comment: comment_lines.get(i).copied().unwrap_or("").to_string(),
            in_test: tests[i],
        })
        .collect();
    LexedFile { lines }
}

/// Splits source into parallel code and comment streams of identical
/// line structure. Literal contents are blanked in the code stream.
fn split_code_comments(src: &str) -> (String, String) {
    let mut code = String::with_capacity(src.len());
    let mut comment = String::with_capacity(src.len() / 4);
    let mut state = State::Normal;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            // Newlines go to both streams to keep line numbers aligned.
            code.push('\n');
            comment.push('\n');
            if state == State::LineComment {
                state = State::Normal;
            }
            i += 1;
            continue;
        }
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    comment.push(' ');
                    i += 1;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    // Raw string? Look back for r / r# prefixes already
                    // emitted; simpler: handled at the 'r' below.
                    state = State::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        for _ in i..=j {
                            code.push('_');
                        }
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                    continue;
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is 'ident not
                    // followed by a closing quote; a char literal closes
                    // within a few chars (escapes included).
                    if is_char_literal(&chars, i) {
                        state = State::Char;
                    }
                    code.push('\'');
                    i += 1;
                    continue;
                }
                _ => {
                    code.push(c);
                    i += 1;
                    continue;
                }
            },
            State::LineComment => {
                comment.push(c);
                code.push(' ');
                i += 1;
                continue;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    let d = depth - 1;
                    if d == 0 {
                        state = State::Normal;
                    } else {
                        state = State::BlockComment(d);
                    }
                    comment.push(' ');
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment.push(' ');
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                comment.push(c);
                code.push(' ');
                i += 1;
                continue;
            }
            State::Str => {
                if c == '\\' {
                    code.push('_');
                    if next.is_some() && next != Some('\n') {
                        code.push('_');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                if c == '"' {
                    state = State::Normal;
                    code.push('"');
                } else {
                    code.push('_');
                }
                i += 1;
                continue;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            code.push('_');
                        }
                        state = State::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                code.push('_');
                i += 1;
                continue;
            }
            State::Char => {
                if c == '\\' && next.is_some() && next != Some('\n') {
                    code.push('_');
                    code.push('_');
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Normal;
                    code.push('\'');
                } else {
                    code.push('_');
                }
                i += 1;
                continue;
            }
        }
        // Keep the comment stream line-aligned: pad nothing here; the
        // comment stream only receives characters in comment states and
        // newlines above.
        let _ = &comment;
    }
    (code, comment)
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime) at
/// position `i` of a `'`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)]` regions or `#[test]` functions by
/// brace counting over the comment-stripped code stream.
fn mark_test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut marks = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depths at which a test region's opening brace sits.
    let mut test_depths: Vec<i64> = Vec::new();
    // A test attribute was seen; the next `{` opens its region.
    let mut pending = false;
    for (idx, line) in code_lines.iter().enumerate() {
        let has_attr = line.contains("#[cfg(test)]") || line.contains("#[test]");
        if has_attr {
            pending = true;
        }
        marks[idx] = !test_depths.is_empty() || pending;
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        test_depths.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                }
                _ => {}
            }
        }
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_out_of_code() {
        let f = lex("let x = 1; // trailing words\n/* block */ let y = 2;\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains("trailing"));
        assert!(f.lines[0].comment.contains("trailing words"));
        assert!(f.lines[1].code.contains("let y = 2;"));
        assert!(f.lines[1].comment.contains("block"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = lex("let s = \"HashMap::new() // not a comment\";\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.is_empty());
        assert!(f.lines[0].code.contains('"'), "quotes survive");
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let f = lex("let s = r#\"x \" y\"#; let t = \"a\\\"b\"; let u = 'c';\n");
        let code = &f.lines[0].code;
        assert!(!code.contains("x \" y"));
        assert!(code.contains("let t"));
        assert!(code.contains("let u"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'z';\n");
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[1].code.contains('z'));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line itself");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "region closed");
    }

    #[test]
    fn nested_block_comments_terminate() {
        let f = lex("/* a /* b */ c */ let x = 1;\n");
        assert!(f.lines[0].code.contains("let x = 1;"));
        assert!(!f.lines[0].code.contains('a'));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let f = lex("/* one\ntwo */ let k = 3;\n");
        assert!(f.lines[0].code.trim().is_empty());
        assert!(f.lines[1].code.contains("let k = 3;"));
        assert!(f.lines[0].comment.contains("one"));
    }
}
