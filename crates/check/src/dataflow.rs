//! Scope-aware dataflow analyses over the token stream.
//!
//! The v1 checker was line-regex lexing: it could ban the identifier
//! `Instant`, but not see the *value* of `Instant::now()` laundered
//! through a `let` binding into sim state two lines later. The three
//! analyses here walk the [`crate::lexer::tokenize`] stream with an
//! explicit brace-scope stack instead:
//!
//! * **determinism-taint** — values originating from banned host
//!   sources (`Instant`, `SystemTime`, `host_now_ns`, `rand::`,
//!   `thread::current`, `env::var*`) are tracked through let-bindings,
//!   reassignments and same-file function returns; a tainted value
//!   flowing into a field assignment or out of a function is a finding
//!   at the *sink* line, which no identifier ban can see. Sim-critical
//!   crates only (harness code may time itself).
//! * **ordering-sensitivity** — a `for` loop iterating an unordered
//!   `HashMap`/`HashSet` binding whose body mutates state or emits
//!   output that outlives the loop is flagged, workspace-wide: harness
//!   crates escape the blanket `HashMap` ban, but artifact bytes they
//!   write must still not depend on hash-iteration order. `hopp_ds`
//!   types (`DetMap`, `PageMap`, `Lru`) and `BTreeMap`/`BTreeSet`
//!   iterate deterministically and are never tracked.
//! * **unsafe-audit** — every `unsafe` token must carry a `// SAFETY:`
//!   comment on its own line or within the three lines above it,
//!   workspace-wide (today only `crates/prof/src/alloc.rs` is allowed
//!   `unsafe` at all, via `#![allow(unsafe_code)]`).
//!
//! The analyses are intentionally intra-file and heuristic (this is a
//! lexer-level tool, not a type checker): they segment statements on
//! `;` and braces, so exotic expression-level control flow may escape.
//! What they claim, they claim exactly — every finding names the sink
//! line and the origin of the offending value — and the fixture
//! mini-workspaces in `tests/fixtures/{taintflow,orderflow,unsafeaudit}`
//! pin the behaviour file:line by file:line.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::{FileContext, Finding, Rule};

/// Where a tainted value originally came from.
#[derive(Clone, Debug)]
struct Origin {
    /// Human name of the banned source (`Instant`, `host_now_ns`, …).
    source: String,
    /// Line the source was read on.
    line: usize,
}

/// One lexical scope: bindings declared inside it die when it closes.
#[derive(Default)]
struct ScopeFrame {
    /// Paren/bracket nesting of the enclosing statement when this
    /// scope opened (restored on close, so `;` inside a closure body
    /// passed as a call argument still terminates statements).
    saved_paren: i32,
    /// Function body scope: the function's name (for return-taint).
    fn_name: Option<String>,
    /// Loop scope currently under ordering watch.
    watch: Option<Watch>,
    /// Variables tainted in this scope, with their origin.
    tainted: BTreeMap<String, Origin>,
    /// Variables re-bound clean in this scope (shadowing outer taint).
    clean: BTreeSet<String>,
    /// Unordered-collection bindings (name -> type name).
    unordered: BTreeMap<String, String>,
    /// Every name `let`-bound in this scope (ordering locality check).
    locals: BTreeSet<String>,
}

/// An ordering-sensitivity watch on a `for` loop body.
struct Watch {
    /// Collection variable being iterated.
    coll: String,
    /// Collection type name (`HashMap` / `HashSet`).
    ty: String,
    /// Line of the `for` header.
    for_line: usize,
    /// A finding was already emitted for this loop.
    reported: bool,
}

/// Host-state sources: single identifiers...
const TAINT_IDENT_SOURCES: [&str; 3] = ["Instant", "SystemTime", "host_now_ns"];
/// ...and `a::b` identifier pairs.
const TAINT_PATH_SOURCES: [(&str, &str); 5] = [
    ("rand", "random"),
    ("thread", "current"),
    ("env", "var"),
    ("env", "vars"),
    ("env", "var_os"),
];

/// Unordered collection types the ordering analysis tracks.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods whose call inside a watched loop counts as a mutation when
/// the receiver outlives the loop.
const MUTATING_METHODS: [&str; 9] = [
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "send",
    "emit",
    "write",
    "write_all",
];

/// Output macros whose emission order is the artifact byte order.
const OUTPUT_MACROS: [&str; 5] = ["write", "writeln", "print", "println", "eprintln"];

/// Runs determinism-taint (sim-critical files only) and
/// ordering-sensitivity (all files) over one tokenized file.
pub fn check_dataflow(
    ctx: &FileContext<'_>,
    toks: &[Tok],
    sim_critical: bool,
    findings: &mut Vec<Finding>,
) {
    // Pass 1 learns which same-file functions return tainted values
    // (so calls defined before their callee still resolve); pass 2
    // re-walks with that knowledge and emits the findings.
    let mut tainted_fns = BTreeSet::new();
    if sim_critical {
        walk(ctx, toks, sim_critical, &mut tainted_fns, None);
    }
    walk(ctx, toks, sim_critical, &mut tainted_fns, Some(findings));
}

/// One walk over the token stream. With `findings` absent this is the
/// learning pass (it only records tainted-returning functions).
fn walk(
    ctx: &FileContext<'_>,
    toks: &[Tok],
    sim_critical: bool,
    tainted_fns: &mut BTreeSet<String>,
    mut findings: Option<&mut Vec<Finding>>,
) {
    let mut scopes: Vec<ScopeFrame> = vec![ScopeFrame::default()];
    let mut stmt: Vec<usize> = Vec::new();
    let mut paren_depth: i32 = 0;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Open if t.text == "{" => {
                let mut frame = open_scope(
                    ctx,
                    toks,
                    &stmt,
                    &mut scopes,
                    sim_critical,
                    tainted_fns,
                    findings.as_deref_mut(),
                );
                frame.saved_paren = paren_depth;
                paren_depth = 0;
                scopes.push(frame);
                stmt.clear();
            }
            TokKind::Close if t.text == "}" => {
                // Tail expression of the closing scope.
                process_stmt(
                    ctx,
                    toks,
                    &stmt,
                    &mut scopes,
                    sim_critical,
                    true,
                    tainted_fns,
                    findings.as_deref_mut(),
                );
                stmt.clear();
                if scopes.len() > 1 {
                    let closed = scopes.pop().expect("guarded by len check");
                    paren_depth = closed.saved_paren;
                }
            }
            TokKind::Open => {
                paren_depth += 1;
                stmt.push(i);
            }
            TokKind::Close => {
                paren_depth -= 1;
                stmt.push(i);
            }
            TokKind::Op if t.text == ";" && paren_depth <= 0 => {
                process_stmt(
                    ctx,
                    toks,
                    &stmt,
                    &mut scopes,
                    sim_critical,
                    false,
                    tainted_fns,
                    findings.as_deref_mut(),
                );
                stmt.clear();
            }
            _ => stmt.push(i),
        }
        i += 1;
    }
}

/// Handles the statement header that opens a `{` scope and builds the
/// new scope frame (`fn` bodies, watched `for` loops, plain blocks).
#[allow(clippy::too_many_arguments)]
fn open_scope(
    ctx: &FileContext<'_>,
    toks: &[Tok],
    stmt: &[usize],
    scopes: &mut [ScopeFrame],
    sim_critical: bool,
    tainted_fns: &mut BTreeSet<String>,
    findings: Option<&mut Vec<Finding>>,
) -> ScopeFrame {
    let mut frame = ScopeFrame::default();
    let kw = |name: &str| stmt.iter().take(4).any(|&k| toks[k].is_ident(name));
    if kw("fn") {
        // `pub fn name(args)` — record the name for return-taint and
        // any unordered-typed parameters for the ordering analysis.
        if let Some(pos) = stmt.iter().position(|&k| toks[k].is_ident("fn")) {
            if let Some(&name_idx) = stmt.get(pos + 1) {
                if toks[name_idx].kind == TokKind::Ident {
                    frame.fn_name = Some(toks[name_idx].text.clone());
                }
            }
        }
        for w in stmt.windows(3) {
            let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
            // `name: ... HashMap<` anywhere in the signature: the
            // middle of the type is noise, the `name :` prefix and the
            // type word are the anchors.
            if a.kind == TokKind::Ident && b.is_op(":") && c.kind == TokKind::Ident {
                // Look ahead a few tokens for an unordered type word.
                let start = w[2];
                let ty = stmt
                    .iter()
                    .filter(|&&k| k >= start && k <= start + 3)
                    .map(|&k| toks[k].text.as_str())
                    .find(|t| UNORDERED_TYPES.contains(t));
                if let Some(ty) = ty {
                    frame.unordered.insert(a.text.clone(), ty.to_string());
                }
            }
        }
        return frame;
    }
    if stmt.first().is_some_and(|&k| toks[k].is_ident("for")) {
        // `for PAT in EXPR` — pattern idents are loop locals; if EXPR
        // iterates a tracked unordered collection, watch the body.
        let in_pos = stmt.iter().position(|&k| toks[k].is_ident("in"));
        if let Some(p) = in_pos {
            for &k in &stmt[1..p] {
                if toks[k].kind == TokKind::Ident {
                    frame.locals.insert(toks[k].text.clone());
                }
            }
            let expr = &stmt[p + 1..];
            for &k in expr {
                let tok = &toks[k];
                if tok.kind != TokKind::Ident {
                    continue;
                }
                if let Some(ty) = lookup_unordered(scopes, &tok.text) {
                    frame.watch = Some(Watch {
                        coll: tok.text.clone(),
                        ty,
                        for_line: toks[stmt[0]].line,
                        reported: false,
                    });
                    break;
                }
            }
        }
        return frame;
    }
    // Any other header (`if`, `match`, struct literal, closure body,
    // bare block): analyse it as a statement fragment so taint in the
    // header (e.g. `if tainted > 0`) is not lost, then open a plain
    // scope.
    process_stmt(
        ctx,
        toks,
        stmt,
        scopes,
        sim_critical,
        false,
        tainted_fns,
        findings,
    );
    frame
}

/// Analyses one statement (tokens between terminators).
#[allow(clippy::too_many_arguments)]
fn process_stmt(
    ctx: &FileContext<'_>,
    toks: &[Tok],
    stmt: &[usize],
    scopes: &mut [ScopeFrame],
    sim_critical: bool,
    is_tail: bool,
    tainted_fns: &mut BTreeSet<String>,
    mut findings: Option<&mut Vec<Finding>>,
) {
    if stmt.is_empty() {
        return;
    }
    let first = &toks[stmt[0]];
    let in_test = line_in_test(ctx, first.line);

    // Ordering-sensitivity: inside a watched loop, any mutation whose
    // target outlives the loop pins the artifact to hash order.
    if !in_test {
        if let Some(mutated_at) = mutation_outliving_watch(toks, stmt, scopes) {
            if let Some(w) = innermost_watch_mut(scopes) {
                if !w.reported {
                    w.reported = true;
                    if let Some(f) = findings.as_deref_mut() {
                        f.push(Finding {
                            rule: Rule::OrderingSensitivity,
                            file: ctx.rel.clone(),
                            line: w.for_line,
                            message: format!(
                                "iterating unordered `{}` `{}` mutates state that outlives the \
                                 loop (line {mutated_at}); hash order varies per process — use \
                                 `hopp_ds::DetMap` (insertion-order iteration) or `BTreeMap`, \
                                 or collect and sort the keys first",
                                w.ty, w.coll
                            ),
                        });
                    }
                }
            }
        }
    }

    // Determinism-taint: sim-critical files only.
    if !sim_critical || in_test {
        // Still track `let` locals + unordered bindings for ordering.
        track_bindings_only(toks, stmt, scopes);
        return;
    }

    let skip = |name: &str| first.is_ident(name);
    if skip("use") || skip("mod") || skip("struct") || skip("enum") || skip("impl") {
        return;
    }

    if first.is_ident("let") {
        let (pattern, expr) = split_let(toks, stmt);
        track_unordered_let(toks, stmt, scopes);
        let names: Vec<String> = pattern
            .iter()
            .filter(|&&k| {
                toks[k].kind == TokKind::Ident && !matches!(toks[k].text.as_str(), "mut" | "ref")
            })
            .map(|&k| toks[k].text.clone())
            .collect();
        let top = scopes.last_mut().expect("scope stack never empty");
        top.locals.extend(names.iter().cloned());
        match expr_taint(toks, expr, scopes, tainted_fns) {
            Some(origin) => {
                let top = scopes.last_mut().expect("scope stack never empty");
                for n in names {
                    top.clean.remove(&n);
                    top.tainted.insert(n, origin.clone());
                }
            }
            None => {
                let top = scopes.last_mut().expect("scope stack never empty");
                for n in names {
                    top.tainted.remove(&n);
                    top.clean.insert(n);
                }
            }
        }
        return;
    }

    if first.is_ident("return") || is_tail {
        let expr: Vec<usize> = if first.is_ident("return") {
            stmt[1..].to_vec()
        } else {
            stmt.to_vec()
        };
        if let Some(origin) = expr_taint(toks, &expr, scopes, tainted_fns) {
            // Only a *function's own* tail/return launders the value
            // out of the file's dataflow; inner-block tails just stay
            // local, so require the innermost fn scope for tails.
            let fn_name = if is_tail && !first.is_ident("return") {
                scopes.last().and_then(|s| s.fn_name.clone())
            } else {
                scopes.iter().rev().find_map(|s| s.fn_name.clone())
            };
            if let Some(name) = fn_name {
                tainted_fns.insert(name.clone());
                if let Some(f) = findings {
                    f.push(Finding {
                        rule: Rule::DeterminismTaint,
                        file: ctx.rel.clone(),
                        line: toks[expr.first().copied().unwrap_or(stmt[0])].line,
                        message: format!(
                            "`{name}` returns a value derived from `{}` (line {}); callers \
                             absorb host state — return simulated `Nanos` carried by the \
                             event loop instead",
                            origin.source, origin.line
                        ),
                    });
                }
            }
        }
        return;
    }

    // Assignment: `PLACE = EXPR` / `PLACE op= EXPR`.
    if let Some(eq) = top_level_assign_op(toks, stmt) {
        let (lhs, rhs) = (&stmt[..eq], &stmt[eq + 1..]);
        if let Some(origin) = expr_taint(toks, rhs, scopes, tainted_fns) {
            let simple_var = lhs.len() == 1 && toks[lhs[0]].kind == TokKind::Ident;
            if simple_var {
                let name = toks[lhs[0]].text.clone();
                let top = scopes.last_mut().expect("scope stack never empty");
                top.clean.remove(&name);
                top.tainted.insert(name, origin);
            } else if let Some(f) = findings {
                let place: String = lhs
                    .iter()
                    .take(6)
                    .map(|&k| toks[k].text.as_str())
                    .collect::<Vec<_>>()
                    .join("");
                f.push(Finding {
                    rule: Rule::DeterminismTaint,
                    file: ctx.rel.clone(),
                    line: toks[stmt[eq]].line,
                    message: format!(
                        "`{place}` absorbs a value derived from `{}` (line {}); host \
                         time/randomness must not flow into sim state — thread simulated \
                         `Nanos` through the event loop instead",
                        origin.source, origin.line
                    ),
                });
            }
        } else if lhs.len() == 1 && toks[lhs[0]].kind == TokKind::Ident && toks[stmt[eq]].is_op("=")
        {
            // Clean plain reassignment scrubs the variable.
            let name = toks[lhs[0]].text.clone();
            let top = scopes.last_mut().expect("scope stack never empty");
            top.tainted.remove(&name);
            top.clean.insert(name);
        }
    }
}

/// Binding bookkeeping for non-taint files (harness crates still need
/// `let` locals and unordered-collection tracking for ordering).
fn track_bindings_only(toks: &[Tok], stmt: &[usize], scopes: &mut [ScopeFrame]) {
    if !toks[stmt[0]].is_ident("let") {
        return;
    }
    let (pattern, _) = split_let(toks, stmt);
    let names: Vec<String> = pattern
        .iter()
        .filter(|&&k| {
            toks[k].kind == TokKind::Ident && !matches!(toks[k].text.as_str(), "mut" | "ref")
        })
        .map(|&k| toks[k].text.clone())
        .collect();
    let top = scopes.last_mut().expect("scope stack never empty");
    top.locals.extend(names);
    track_unordered_let(toks, stmt, scopes);
}

/// Records `let`-bound unordered collections: an explicit
/// `: HashMap<…>` annotation, a `HashMap::new()/with_capacity/default/
/// from` constructor, or a statement-final `.collect::<HashMap<…>>()`.
/// A set immediately reduced further (e.g. `.collect::<HashSet<_>>()
/// .len()`) is not a collection binding and stays untracked.
fn track_unordered_let(toks: &[Tok], stmt: &[usize], scopes: &mut [ScopeFrame]) {
    if !toks[stmt[0]].is_ident("let") {
        return;
    }
    let (pattern, expr) = split_let(toks, stmt);
    let name = match pattern
        .iter()
        .filter(|&&k| {
            toks[k].kind == TokKind::Ident && !matches!(toks[k].text.as_str(), "mut" | "ref")
        })
        .map(|&k| toks[k].text.clone())
        .collect::<Vec<_>>()
        .as_slice()
    {
        [one] => one.clone(),
        _ => return,
    };
    // Annotation: first type word after `:` (skipping `&`/`mut`).
    let mut annotated = None;
    if let Some(p) = stmt.iter().position(|&k| toks[k].is_op(":")) {
        annotated = stmt[p + 1..]
            .iter()
            .take(3)
            .map(|&k| toks[k].text.as_str())
            .find(|t| UNORDERED_TYPES.contains(t))
            .map(str::to_string);
    }
    // Constructor: `HashMap` `::` `new|with_capacity|default|from`.
    let constructed = expr.windows(3).find_map(|w| {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        (UNORDERED_TYPES.contains(&a.text.as_str())
            && b.is_op("::")
            && matches!(
                c.text.as_str(),
                "new" | "with_capacity" | "default" | "from"
            ))
        .then(|| a.text.clone())
    });
    // Statement-final collect: `.collect::<HashMap<…>>()` with nothing
    // but the closing parens after it.
    let collected = expr
        .windows(2)
        .enumerate()
        .find_map(|(at, w)| {
            let (a, b) = (&toks[w[0]], &toks[w[1]]);
            (a.is_ident("collect") && b.is_op("::")).then_some(at)
        })
        .and_then(|at| {
            let rest = &expr[at..];
            let ty = rest
                .iter()
                .take(6)
                .map(|&k| toks[k].text.as_str())
                .find(|t| UNORDERED_TYPES.contains(t))?;
            let tail_ok = rest.iter().all(|&k| {
                !matches!(toks[k].kind, TokKind::Ident)
                    || UNORDERED_TYPES.contains(&toks[k].text.as_str())
                    || toks[k].is_ident("collect")
                    || toks[k].text == "_"
            });
            tail_ok.then(|| ty.to_string())
        });
    if let Some(ty) = annotated.or(constructed).or(collected) {
        let top = scopes.last_mut().expect("scope stack never empty");
        top.unordered.insert(name, ty);
    }
}

/// Splits a `let` statement into pattern tokens (before `:` or the
/// assignment `=`) and expression tokens (after the `=`).
fn split_let<'s>(toks: &[Tok], stmt: &'s [usize]) -> (&'s [usize], &'s [usize]) {
    let eq = stmt.iter().position(|&k| toks[k].is_op("="));
    let Some(eq) = eq else {
        return (&stmt[1..], &[]);
    };
    let colon = stmt[..eq].iter().position(|&k| toks[k].is_op(":"));
    let pat_end = colon.unwrap_or(eq);
    (&stmt[1..pat_end.max(1)], &stmt[eq + 1..])
}

/// Index (into `stmt`) of the top-level assignment operator, if any.
/// Bracket nesting inside the statement hides inner `=` (closure
/// defaults, struct literal fields are behind `{`-scopes already).
fn top_level_assign_op(toks: &[Tok], stmt: &[usize]) -> Option<usize> {
    const ASSIGN_OPS: [&str; 11] = [
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
    ];
    let mut depth = 0i32;
    for (at, &k) in stmt.iter().enumerate() {
        match toks[k].kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if depth == 0 && ASSIGN_OPS.contains(&toks[k].text.as_str()) => {
                return Some(at);
            }
            _ => {}
        }
    }
    None
}

/// Does this expression carry host taint? Returns the origin if so.
fn expr_taint(
    toks: &[Tok],
    expr: &[usize],
    scopes: &[ScopeFrame],
    tainted_fns: &BTreeSet<String>,
) -> Option<Origin> {
    for (at, &k) in expr.iter().enumerate() {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if TAINT_IDENT_SOURCES.contains(&t.text.as_str()) {
            return Some(Origin {
                source: t.text.clone(),
                line: t.line,
            });
        }
        for (head, tail) in TAINT_PATH_SOURCES {
            if t.text == head {
                let sep = expr.get(at + 1).map(|&k| &toks[k]);
                let next = expr.get(at + 2).map(|&k| &toks[k]);
                if sep.is_some_and(|s| s.is_op("::")) && next.is_some_and(|n| n.is_ident(tail)) {
                    return Some(Origin {
                        source: format!("{head}::{tail}"),
                        line: t.line,
                    });
                }
            }
        }
        if let Some(origin) = lookup_taint(scopes, &t.text) {
            return Some(Origin {
                source: origin.source.clone(),
                line: origin.line,
            });
        }
        if tainted_fns.contains(&t.text) && expr.get(at + 1).is_some_and(|&k| toks[k].text == "(") {
            return Some(Origin {
                source: format!("{}()", t.text),
                line: t.line,
            });
        }
    }
    None
}

/// Walks the scope stack top-down for a variable's taint, honouring
/// clean shadowing.
fn lookup_taint<'s>(scopes: &'s [ScopeFrame], name: &str) -> Option<&'s Origin> {
    for frame in scopes.iter().rev() {
        if frame.clean.contains(name) {
            return None;
        }
        if let Some(origin) = frame.tainted.get(name) {
            return Some(origin);
        }
    }
    None
}

/// Walks the scope stack for an unordered-collection binding's type.
fn lookup_unordered(scopes: &[ScopeFrame], name: &str) -> Option<String> {
    scopes
        .iter()
        .rev()
        .find_map(|f| f.unordered.get(name).cloned())
}

/// The innermost watched loop, if the walker is inside one.
fn innermost_watch_mut(scopes: &mut [ScopeFrame]) -> Option<&mut Watch> {
    scopes.iter_mut().rev().find_map(|f| f.watch.as_mut())
}

/// Is this statement a mutation whose target was declared *outside*
/// every scope inside the innermost watch? Returns the mutating line.
fn mutation_outliving_watch(toks: &[Tok], stmt: &[usize], scopes: &[ScopeFrame]) -> Option<usize> {
    let watch_at = scopes.iter().rposition(|f| f.watch.is_some())?;
    // Root identifier of the mutated place, if this statement mutates.
    let root: Option<usize> = if toks[stmt[0]].is_ident("let") {
        None
    } else if let Some(eq) = top_level_assign_op(toks, stmt) {
        stmt[..eq]
            .iter()
            .copied()
            .find(|&k| toks[k].kind == TokKind::Ident)
    } else {
        mutating_call_root(toks, stmt)
    };
    let root = root?;
    let name = toks[root].text.as_str();
    if name == "self" {
        return Some(toks[root].line);
    }
    // Declared inside the watch (loop pattern vars or loop-body lets)?
    let local_inside = scopes[watch_at..]
        .iter()
        .any(|f| f.locals.contains(name) || f.watch.as_ref().is_some_and(|w| w.coll == name));
    if local_inside {
        None
    } else {
        Some(toks[root].line)
    }
}

/// Root identifier of a mutating method call (`out.push(x)` -> `out`)
/// or output macro (`writeln!(buf, …)` -> `buf`) in this statement.
fn mutating_call_root(toks: &[Tok], stmt: &[usize]) -> Option<usize> {
    // Output macros: IDENT `!` `(` ARG …
    for w in stmt.windows(3) {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if a.kind == TokKind::Ident
            && OUTPUT_MACROS.contains(&a.text.as_str())
            && b.is_op("!")
            && c.text == "("
        {
            // `print!`/`println!`/`eprintln!` write process output with
            // no receiver; the macro itself is the mutation.
            if a.text.starts_with("print") || a.text.starts_with("eprint") {
                return Some(w[0]);
            }
            // `write!(buf, …)`: first argument is the receiver.
            return stmt
                .iter()
                .copied()
                .skip_while(|&k| k != w[2])
                .skip(1)
                .find(|&k| toks[k].kind == TokKind::Ident);
        }
    }
    // Method mutation: … `.` METHOD `(` — walk left to the chain root.
    for w in stmt.windows(3) {
        let (dot, m, open) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if dot.is_op(".")
            && m.kind == TokKind::Ident
            && MUTATING_METHODS.contains(&m.text.as_str())
            && open.text == "("
        {
            // Walk left from the dot to the start of the postfix chain.
            let dot_pos = stmt.iter().position(|&k| k == w[0])?;
            let mut root = None;
            for &k in stmt[..dot_pos].iter().rev() {
                match toks[k].kind {
                    TokKind::Ident => root = Some(k),
                    TokKind::Op if toks[k].text == "." || toks[k].text == "*" => continue,
                    TokKind::Close => continue,
                    TokKind::Open => continue,
                    _ => break,
                }
            }
            return root;
        }
    }
    None
}

/// Unsafe-audit: every `unsafe` token outside test code must carry a
/// `SAFETY:` comment on its own line or within the three lines above.
pub fn check_unsafe_audit(ctx: &FileContext<'_>, findings: &mut Vec<Finding>) {
    for (idx, line) in ctx.lexed.lines.iter().enumerate() {
        if line.in_test || !contains_kw(&line.code, "unsafe") {
            continue;
        }
        let lo = idx.saturating_sub(3);
        let justified = ctx.lexed.lines[lo..=idx]
            .iter()
            .any(|l| l.comment.contains("SAFETY:"));
        if !justified {
            findings.push(Finding {
                rule: Rule::UnsafeAudit,
                file: ctx.rel.clone(),
                line: idx + 1,
                message: "`unsafe` without an adjacent `// SAFETY:` comment; state the \
                          invariant that makes this sound on the line above"
                    .to_string(),
            });
        }
    }
}

/// Word-boundary keyword containment (local copy; `unsafe_code` in an
/// attribute must not match).
fn contains_kw(code: &str, kw: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(kw) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let c = code[..at].chars().next_back().unwrap_or(' ');
            !(c.is_alphanumeric() || c == '_')
        };
        let end = at + kw.len();
        let after_ok = end >= code.len() || {
            let c = code[end..].chars().next().unwrap_or(' ');
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// True when this 1-based line sits in `#[cfg(test)]`/`#[test]` code.
fn line_in_test(ctx: &FileContext<'_>, line: usize) -> bool {
    ctx.lexed
        .lines
        .get(line.saturating_sub(1))
        .is_some_and(|l| l.in_test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn ctx_for(src: &str) -> (FileContext<'static>, Vec<Tok>) {
        let lexed = lexer::lex(src);
        let toks = lexer::tokenize(&lexed);
        (
            FileContext {
                rel: "crates/hw/src/lib.rs".to_string(),
                krate: "hw",
                lexed,
                waivers: Vec::new(),
            },
            toks,
        )
    }

    fn taint_lines(src: &str) -> Vec<usize> {
        let (ctx, toks) = ctx_for(src);
        let mut findings = Vec::new();
        check_dataflow(&ctx, &toks, true, &mut findings);
        findings
            .iter()
            .filter(|f| f.rule == Rule::DeterminismTaint)
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn one_hop_indirection_is_caught_at_the_sink() {
        let src = "\
pub fn poll(state: &mut State) {
    let t = Instant::now();
    let dt = t.elapsed();
    state.ns = dt.as_nanos() as u64;
}
";
        assert_eq!(taint_lines(src), [4], "sink line, not the source line");
    }

    #[test]
    fn clean_shadowing_scrubs_the_taint() {
        let src = "\
pub fn poll(state: &mut State) {
    let t = Instant::now();
    let t = 5u64;
    state.ns = t;
}
";
        assert!(taint_lines(src).is_empty(), "shadowed clean");
    }

    #[test]
    fn scope_exit_kills_inner_bindings() {
        let src = "\
pub fn poll(state: &mut State) {
    {
        let t = Instant::now();
        let _ = t;
    }
    let t = 1u64;
    state.ns = t;
}
";
        assert!(taint_lines(src).is_empty());
    }

    #[test]
    fn tainted_function_returns_propagate_to_callers() {
        let src = "\
fn now_ns() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn poll(state: &mut State) {
    state.ns = now_ns();
}
";
        assert_eq!(taint_lines(src), [3, 7], "the return and the call sink");
    }

    #[test]
    fn ordering_flags_hash_iteration_that_writes_out() {
        let src = "\
pub fn export(rows: &[(u64, u64)]) -> String {
    let mut index = HashMap::new();
    let mut out = String::new();
    for (k, v) in &index {
        out.push_str(\"row\");
    }
    out
}
";
        let (ctx, toks) = ctx_for(src);
        let mut findings = Vec::new();
        check_dataflow(&ctx, &toks, false, &mut findings);
        let got: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == Rule::OrderingSensitivity)
            .map(|f| f.line)
            .collect();
        assert_eq!(got, [4], "flagged at the for header");
    }

    #[test]
    fn ordering_spares_loop_local_mutations_and_btreemaps() {
        let src = "\
pub fn tally(rows: &[(u64, u64)]) -> u64 {
    let mut index = BTreeMap::new();
    let mut hset = HashMap::new();
    for (k, v) in &index {
        let mut acc = 0u64;
        acc += *v;
    }
    for (k, v) in &hset {
        let mut local = Vec::new();
        local.push(*v);
    }
    0
}
";
        let (ctx, toks) = ctx_for(src);
        let mut findings = Vec::new();
        check_dataflow(&ctx, &toks, false, &mut findings);
        assert!(
            findings.is_empty(),
            "BTreeMap untracked, loop-local churn spared: {findings:?}"
        );
    }

    #[test]
    fn unsafe_needs_an_adjacent_safety_comment() {
        let src = "\
pub fn a(p: *const u8) -> u8 {
    // SAFETY: caller guarantees validity.
    unsafe { *p }
}
pub fn b(p: *const u8) -> u8 {
    unsafe { *p }
}
";
        let (ctx, _) = ctx_for(src);
        let mut findings = Vec::new();
        check_unsafe_audit(&ctx, &mut findings);
        let got: Vec<_> = findings.iter().map(|f| f.line).collect();
        assert_eq!(got, [6]);
        assert!(!contains_kw("#![allow(unsafe_code)]", "unsafe"));
    }
}
