//! A minimal JSON parser for the baseline loader and SARIF self-tests.
//!
//! The checker is dependency-free by design (the build container is
//! offline), so it cannot use `serde`. This is a strict recursive
//! descent parser over the subset the checker emits and consumes:
//! objects, arrays, strings (with `\"`/`\\`/`\n`-style escapes and
//! `\uXXXX`), integers, booleans and `null`. Duplicate keys keep the
//! last value; key order is preserved nowhere (objects are `BTreeMap`,
//! matching the checker's everything-is-sorted discipline).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; the checker only writes integers).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, when this is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The entries, when this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the full input.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut at = 0;
    let v = value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing data at byte {at}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn value(b: &[u8], at: &mut usize) -> Result<Value, String> {
    skip_ws(b, at);
    match b.get(*at) {
        Some(b'{') => obj(b, at),
        Some(b'[') => arr(b, at),
        Some(b'"') => Ok(Value::Str(string(b, at)?)),
        Some(b't') => lit(b, at, "true", Value::Bool(true)),
        Some(b'f') => lit(b, at, "false", Value::Bool(false)),
        Some(b'n') => lit(b, at, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => num(b, at),
        _ => Err(format!("expected a value at byte {at}", at = *at)),
    }
}

fn lit(b: &[u8], at: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*at..].starts_with(word.as_bytes()) {
        *at += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {at}", at = *at))
    }
}

fn num(b: &[u8], at: &mut usize) -> Result<Value, String> {
    let start = *at;
    if b.get(*at) == Some(&b'-') {
        *at += 1;
    }
    while *at < b.len()
        && (b[*at].is_ascii_digit() || matches!(b[*at], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *at += 1;
    }
    std::str::from_utf8(&b[start..*at])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn string(b: &[u8], at: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*at), Some(&b'"'));
    *at += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*at) {
        match c {
            b'"' => {
                *at += 1;
                return Ok(out);
            }
            b'\\' => {
                *at += 1;
                match b.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*at + 1..*at + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {at}", at = *at))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at byte {at}", at = *at)),
                }
                *at += 1;
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let s = std::str::from_utf8(&b[*at..])
                    .map_err(|_| format!("bad UTF-8 at byte {at}", at = *at))?;
                let ch = s.chars().next().ok_or("empty")?;
                out.push(ch);
                *at += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn obj(b: &[u8], at: &mut usize) -> Result<Value, String> {
    *at += 1; // '{'
    let mut m = BTreeMap::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(Value::Obj(m));
    }
    loop {
        skip_ws(b, at);
        if b.get(*at) != Some(&b'"') {
            return Err(format!("expected object key at byte {at}", at = *at));
        }
        let k = string(b, at)?;
        skip_ws(b, at);
        if b.get(*at) != Some(&b':') {
            return Err(format!("expected ':' at byte {at}", at = *at));
        }
        *at += 1;
        let v = value(b, at)?;
        m.insert(k, v);
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(Value::Obj(m));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {at}", at = *at)),
        }
    }
}

fn arr(b: &[u8], at: &mut usize) -> Result<Value, String> {
    *at += 1; // '['
    let mut v = Vec::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(Value::Arr(v));
    }
    loop {
        v.push(value(b, at)?);
        skip_ws(b, at);
        match b.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(Value::Arr(v));
            }
            _ => return Err(format!("expected ',' or ']' at byte {at}", at = *at)),
        }
    }
}

/// Escapes a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_checker_subset() {
        let src = r#"{"version": 1, "ok": true, "none": null,
                      "findings": [{"rule": "determinism", "line": 42}],
                      "msg": "a \"quoted\" piece\nwith a newline é"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("version").unwrap().as_usize(), Some(1));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let f = &v.get("findings").unwrap().as_arr().unwrap()[0];
        assert_eq!(f.get("rule").unwrap().as_str(), Some("determinism"));
        assert_eq!(f.get("line").unwrap().as_usize(), Some(42));
        assert_eq!(
            v.get("msg").unwrap().as_str(),
            Some("a \"quoted\" piece\nwith a newline é")
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_survives_a_parse_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
