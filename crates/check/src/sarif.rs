//! SARIF 2.1.0 export for CI code-scanning annotations.
//!
//! `cargo xtask check --sarif out.sarif` renders the run's findings in
//! the [SARIF 2.1.0] interchange format, which GitHub's code-scanning
//! upload turns into inline PR annotations at the exact `file:line` of
//! each finding. The writer is hand-rolled (the checker is
//! dependency-free); the output is deterministic — findings arrive
//! already sorted by `(file, line)` from [`crate::run`], rules are
//! emitted in [`Rule::ALL`] order — so the artifact is byte-stable for
//! identical workspaces, same as every other artifact in this repo.
//!
//! Each result carries a `partialFingerprints` entry
//! (`hoppCheckFinding/v1`) computed by [`crate::baseline::fingerprint`]
//! over the finding's rule, file and message (not its line number), so
//! both GitHub's alert dedup and the local ratchet baseline survive
//! unrelated line drift.
//!
//! [SARIF 2.1.0]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use std::fmt::Write as _;

use crate::json::escape;
use crate::{baseline, CheckReport, Rule};

/// The schema URI stamped into the artifact.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders a check report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &CheckReport) -> String {
    let mut o = String::with_capacity(4096);
    let _ = writeln!(
        o,
        "{{\n  \"$schema\": \"{SCHEMA}\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {{"
    );
    let _ = writeln!(
        o,
        "      \"tool\": {{\n        \"driver\": {{\n          \
         \"name\": \"hopp-check\",\n          \
         \"version\": \"{}\",\n          \
         \"informationUri\": \"https://example.invalid/hopp/docs/static-analysis.md\",\n          \
         \"rules\": [",
        env!("CARGO_PKG_VERSION")
    );
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let comma = if i + 1 < Rule::ALL.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"error\"}}}}{comma}",
            rule.name(),
            escape(rule.id()),
            escape(rule.describe())
        );
    }
    let _ = writeln!(
        o,
        "          ]\n        }}\n      }},\n      \"results\": ["
    );
    for (i, f) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        let rule_index = Rule::ALL
            .iter()
            .position(|r| *r == f.rule)
            .unwrap_or_default();
        let _ = writeln!(
            o,
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {rule_index}, \
             \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}], \
             \"partialFingerprints\": {{\"hoppCheckFinding/v1\": \"{}\"}}}}{comma}",
            f.rule.name(),
            escape(&f.message),
            escape(&f.file),
            f.line,
            baseline::fingerprint(f)
        );
    }
    let _ = writeln!(o, "      ]\n    }}\n  ]\n}}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Finding};

    fn sample_report() -> CheckReport {
        CheckReport {
            findings: vec![
                Finding {
                    rule: Rule::DeterminismTaint,
                    file: "crates/hw/src/lib.rs".to_string(),
                    line: 8,
                    message: "`state.ns` absorbs a value derived from `Instant` (line 6)"
                        .to_string(),
                },
                Finding {
                    rule: Rule::UnsafeAudit,
                    file: "crates/prof/src/alloc.rs".to_string(),
                    line: 44,
                    message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                },
            ],
            ..CheckReport::default()
        }
    }

    #[test]
    fn sarif_is_valid_json_with_the_required_210_surface() {
        let doc = to_sarif(&sample_report());
        let v = json::parse(&doc).expect("SARIF must parse as JSON");
        assert_eq!(v.get("version").unwrap().as_str(), Some("2.1.0"));
        assert_eq!(v.get("$schema").unwrap().as_str(), Some(SCHEMA));
        let runs = v.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").unwrap().as_str(), Some("hopp-check"));
        let rules = driver.get("rules").unwrap().as_arr().unwrap();
        assert_eq!(rules.len(), Rule::ALL.len(), "every rule has metadata");
        for r in rules {
            assert!(r.get("id").is_some() && r.get("shortDescription").is_some());
        }
        let results = runs[0].get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        let first = &results[0];
        assert_eq!(
            first.get("ruleId").unwrap().as_str(),
            Some("determinism-taint")
        );
        let loc = &first.get("locations").unwrap().as_arr().unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str(),
            Some("crates/hw/src/lib.rs")
        );
        assert_eq!(
            phys.get("region")
                .unwrap()
                .get("startLine")
                .unwrap()
                .as_usize(),
            Some(8)
        );
        assert!(first
            .get("partialFingerprints")
            .unwrap()
            .get("hoppCheckFinding/v1")
            .is_some());
        // ruleIndex must agree with the rules array position.
        let idx = first.get("ruleIndex").unwrap().as_usize().unwrap();
        assert_eq!(
            rules[idx].get("id").unwrap().as_str(),
            Some("determinism-taint")
        );
    }

    #[test]
    fn empty_reports_render_an_empty_results_array() {
        let doc = to_sarif(&CheckReport::default());
        let v = json::parse(&doc).unwrap();
        let results = v.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .len();
        assert_eq!(results, 0);
    }

    #[test]
    fn messages_with_quotes_and_backslashes_stay_valid() {
        let mut rep = CheckReport::default();
        rep.findings.push(Finding {
            rule: Rule::Determinism,
            file: "a\\b.rs".to_string(),
            line: 1,
            message: "uses \"Instant\" \\ <newline>\n end".to_string(),
        });
        let doc = to_sarif(&rep);
        let v = json::parse(&doc).expect("escaped JSON parses");
        let msg = v.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .get("message")
            .unwrap()
            .get("text")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(msg.contains("\"Instant\""));
        assert!(msg.contains('\n'));
    }
}
