//! Depth-N: fixed-depth prefetching with early PTE injection (§II-C).
//!
//! Depth-N (after the NVM write-aware management design the paper cites
//! as \[9\]) prefetches the next `N` virtual pages on every fault and
//! installs their PTEs as soon as they arrive. Early injection removes
//! the 2.3 µs prefetch-hit overhead — but at the cost of the paradox
//! §II-C lays out:
//!
//! * once a PTE is injected the kernel never sees the page again, so
//!   Depth-N cannot measure its own accuracy and cannot adapt (`N` is
//!   fixed);
//! * fewer faults mean even less training signal;
//! * wrong prefetches land on the *active* LRU list and are expensive
//!   to evict.
//!
//! The simulator reproduces all three effects, which is how Fig 16's
//! "Depth-N sometimes loses to Fastswap" result comes about.

use hopp_kernel::{FaultInfo, PrefetchRequest, Prefetcher, SlotView};

/// The Depth-N policy.
#[derive(Clone, Copy, Debug)]
pub struct DepthN {
    depth: usize,
}

impl DepthN {
    /// Creates a Depth-N prefetcher with the given fixed depth (the
    /// paper evaluates N = 16 and N = 32).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "depth-0 would never prefetch");
        DepthN { depth }
    }

    /// The fixed depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Prefetcher for DepthN {
    fn name(&self) -> &str {
        "depth-n"
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        _slots: &dyn SlotView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        for k in 1..=self.depth as i64 {
            if let Some(vpn) = fault.vpn.offset(k) {
                out.push(PrefetchRequest {
                    pid: fault.pid,
                    vpn,
                    inject: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::{Nanos, Pid, Vpn};

    struct NoSlots;
    impl SlotView for NoSlots {
        fn page_at(&self, _: hopp_types::SwapSlot) -> Option<(Pid, Vpn)> {
            None
        }
    }

    #[test]
    fn prefetches_next_n_pages_with_injection() {
        let mut d = DepthN::new(4);
        let mut out = Vec::new();
        d.on_fault(
            &FaultInfo {
                pid: Pid::new(1),
                vpn: Vpn::new(10),
                now: Nanos::ZERO,
                hit_swapcache: false,
                slot: None,
            },
            &NoSlots,
            &mut out,
        );
        let vpns: Vec<u64> = out.iter().map(|r| r.vpn.raw()).collect();
        assert_eq!(vpns, vec![11, 12, 13, 14]);
        assert!(out.iter().all(|r| r.inject), "depth-n injects eagerly");
    }

    #[test]
    #[should_panic]
    fn zero_depth_is_rejected() {
        let _ = DepthN::new(0);
    }

    #[test]
    fn depth_is_fixed_regardless_of_history() {
        // No adaptivity: every fault gets exactly N requests.
        let mut d = DepthN::new(16);
        for v in [5u64, 900, 5_000] {
            let mut out = Vec::new();
            d.on_fault(
                &FaultInfo {
                    pid: Pid::new(1),
                    vpn: Vpn::new(v),
                    now: Nanos::ZERO,
                    hit_swapcache: true,
                    slot: None,
                },
                &NoSlots,
                &mut out,
            );
            assert_eq!(out.len(), 16);
        }
    }
}
