//! Fastswap's strict readahead: prefetch by swap-slot adjacency.
//!
//! Fastswap (and Infiniswap) reuse the kernel's swap readahead, which
//! prefetches the pages stored in the slots following the faulting
//! page's slot. Slot order is *eviction* order, so this works when
//! pages are evicted and re-faulted in the same order, and degrades
//! badly when streams interleave — the paper's Fig 22 microbenchmark
//! shows exactly that (VMA-based readahead beats it because virtual
//! adjacency is a better proxy than swap-offset adjacency).

use hopp_kernel::{FaultInfo, PrefetchRequest, Prefetcher, SlotView};

/// The Fastswap readahead policy.
#[derive(Clone, Copy, Debug)]
pub struct FastswapReadahead {
    /// Pages prefetched per fault (Linux's `page_cluster = 3` reads a
    /// cluster of 8).
    window: usize,
}

impl Default for FastswapReadahead {
    fn default() -> Self {
        FastswapReadahead { window: 8 }
    }
}

impl FastswapReadahead {
    /// Creates a readahead with the default window of 8 pages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a readahead prefetching `window` pages per fault.
    pub fn with_window(window: usize) -> Self {
        FastswapReadahead { window }
    }
}

impl Prefetcher for FastswapReadahead {
    fn name(&self) -> &str {
        "fastswap"
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        slots: &dyn SlotView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        // Readahead needs the faulting slot; swapcache hits (slot
        // already consumed) and first touches don't trigger it.
        let Some(slot) = fault.slot else { return };
        for k in 1..=self.window as i64 {
            let Some(next) = slot.offset(k) else { break };
            if let Some((pid, vpn)) = slots.page_at(next) {
                out.push(PrefetchRequest {
                    pid,
                    vpn,
                    inject: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_kernel::SwapDevice;
    use hopp_types::{Nanos, Pid, SwapSlot, Vpn};

    fn fault(vpn: u64, slot: Option<SwapSlot>) -> FaultInfo {
        FaultInfo {
            pid: Pid::new(1),
            vpn: Vpn::new(vpn),
            now: Nanos::ZERO,
            hit_swapcache: false,
            slot,
        }
    }

    #[test]
    fn prefetches_following_slots() {
        let mut dev = SwapDevice::new();
        // Pages evicted in order 10, 11, 12, 13: adjacent slots.
        let slots: Vec<SwapSlot> = (10..14)
            .map(|v| dev.alloc(Pid::new(1), Vpn::new(v)).unwrap())
            .collect();
        let mut fs = FastswapReadahead::with_window(2);
        let mut out = Vec::new();
        fs.on_fault(&fault(10, Some(slots[0])), &dev, &mut out);
        let vpns: Vec<u64> = out.iter().map(|r| r.vpn.raw()).collect();
        assert_eq!(vpns, vec![11, 12]);
        assert!(out.iter().all(|r| !r.inject));
    }

    #[test]
    fn interleaved_eviction_confuses_slot_order() {
        let mut dev = SwapDevice::new();
        // Two streams evicted alternately: slot neighbours belong to the
        // *other* stream half the time — the §II-B limitation.
        let mut slots = Vec::new();
        for k in 0..4u64 {
            slots.push(dev.alloc(Pid::new(1), Vpn::new(100 + k)).unwrap());
            slots.push(dev.alloc(Pid::new(1), Vpn::new(9_000 + k)).unwrap());
        }
        let mut fs = FastswapReadahead::with_window(2);
        let mut out = Vec::new();
        fs.on_fault(&fault(100, Some(slots[0])), &dev, &mut out);
        let vpns: Vec<u64> = out.iter().map(|r| r.vpn.raw()).collect();
        // It prefetches 9000 (wrong stream) along with 101.
        assert_eq!(vpns, vec![9_000, 101]);
    }

    #[test]
    fn no_slot_means_no_readahead() {
        let dev = SwapDevice::new();
        let mut fs = FastswapReadahead::new();
        let mut out = Vec::new();
        fs.on_fault(&fault(10, None), &dev, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_slots_are_skipped() {
        let mut dev = SwapDevice::new();
        let s0 = dev.alloc(Pid::new(1), Vpn::new(10)).unwrap();
        let s1 = dev.alloc(Pid::new(1), Vpn::new(11)).unwrap();
        dev.free(s1); // slot 1 now empty
        let s2 = dev.alloc(Pid::new(1), Vpn::new(12)).unwrap(); // reuses slot 1
        assert_eq!(s2, s1);
        let mut fs = FastswapReadahead::with_window(4);
        let mut out = Vec::new();
        fs.on_fault(&fault(10, Some(s0)), &dev, &mut out);
        // Slot 1 holds page 12 now; slots 2..4 are empty and skipped.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vpn, Vpn::new(12));
    }
}
