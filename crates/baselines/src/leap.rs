//! Leap's majority-based stride prefetching over fault history.
//!
//! Leap (ATC '20) keeps a small window of recent page-fault addresses
//! and looks for a *majority stride* among consecutive differences; if
//! one exists it prefetches ahead along that stride. Because the window
//! only ever contains *missing* pages, it is coarse-grained, easily
//! confused by interleaved streams and polluted by interference pages —
//! the three limitations Figure 1 of the HoPP paper walks through.
//!
//! History is per-process (Leap tracks per-process access histories);
//! within a process, concurrent streams still collide, which is the
//! §VI-E effect that makes Leap slower than Fastswap on the two-thread
//! microbenchmark.

use std::collections::VecDeque;

use hopp_ds::DetMap;

use hopp_kernel::{FaultInfo, PrefetchRequest, Prefetcher, SlotView};
use hopp_types::{Pid, Vpn};

/// Leap's majority-based prefetcher.
#[derive(Clone, Debug)]
pub struct LeapPrefetcher {
    window: usize,
    depth: usize,
    /// Adaptive prefetch-window sizing (Leap's own design): the depth
    /// doubles after a prefetch-hit and halves after a major fault,
    /// within `[min_depth, max_depth]`.
    adaptive: Option<(usize, usize)>,
    history: DetMap<Pid, VecDeque<Vpn>>,
}

impl Default for LeapPrefetcher {
    fn default() -> Self {
        // Leap's SPLIT window is adaptive around a handful of entries;
        // the HoPP paper's motivating example uses window 4. Depth 8
        // matches the readahead volume of the other baselines.
        LeapPrefetcher::new(4, 8)
    }
}

impl LeapPrefetcher {
    /// Creates a prefetcher with a fault-history `window` and a fixed
    /// prefetch `depth` (pages fetched along a detected stride).
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` (stride detection needs two faults).
    pub fn new(window: usize, depth: usize) -> Self {
        assert!(window >= 2, "leap window must hold at least two faults");
        LeapPrefetcher {
            window,
            depth,
            adaptive: None,
            history: DetMap::new(),
        }
    }

    /// Leap with its adaptive prefetch-window sizing enabled: the depth
    /// starts at `min_depth`, doubles on swapcache hits (the trend is
    /// working) and halves on major faults, bounded by `max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`, `min_depth == 0` or
    /// `min_depth > max_depth`.
    pub fn adaptive(window: usize, min_depth: usize, max_depth: usize) -> Self {
        assert!(window >= 2, "leap window must hold at least two faults");
        assert!(min_depth >= 1 && min_depth <= max_depth);
        LeapPrefetcher {
            window,
            depth: min_depth,
            adaptive: Some((min_depth, max_depth)),
            history: DetMap::new(),
        }
    }

    /// The current prefetch depth (fixed, or the adaptive window's
    /// present size).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The majority stride of a fault window, if any: a stride value
    /// occurring in more than half of the consecutive differences.
    fn majority_stride(history: &VecDeque<Vpn>) -> Option<i64> {
        let n = history.len();
        if n < 2 {
            return None;
        }
        let strides: Vec<i64> = history
            .iter()
            .zip(history.iter().skip(1))
            .map(|(a, b)| b.stride_from(*a))
            .collect();
        let need = strides.len() / 2 + 1; // strict majority
        for (i, &s) in strides.iter().enumerate() {
            if s == 0 || strides[..i].contains(&s) {
                continue;
            }
            if strides.iter().filter(|&&x| x == s).count() >= need {
                return Some(s);
            }
        }
        None
    }
}

impl Prefetcher for LeapPrefetcher {
    fn name(&self) -> &str {
        "leap"
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        _slots: &dyn SlotView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        if let Some((min_depth, max_depth)) = self.adaptive {
            self.depth = if fault.hit_swapcache {
                (self.depth * 2).min(max_depth)
            } else {
                (self.depth / 2).max(min_depth)
            };
        }
        let history = self.history.get_or_insert_with(fault.pid, VecDeque::new);
        history.push_back(fault.vpn);
        if history.len() > self.window {
            history.pop_front();
        }
        let Some(stride) = Self::majority_stride(history) else {
            return;
        };
        for k in 1..=self.depth as i64 {
            let Some(step) = k.checked_mul(stride) else {
                break;
            };
            let Some(vpn) = fault.vpn.offset(step) else {
                break;
            };
            out.push(PrefetchRequest {
                pid: fault.pid,
                vpn,
                inject: false,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::Nanos;

    struct NoSlots;
    impl SlotView for NoSlots {
        fn page_at(&self, _: hopp_types::SwapSlot) -> Option<(Pid, Vpn)> {
            None
        }
    }

    fn fault(pid: u16, vpn: u64) -> FaultInfo {
        FaultInfo {
            pid: Pid::new(pid),
            vpn: Vpn::new(vpn),
            now: Nanos::ZERO,
            hit_swapcache: false,
            slot: None,
        }
    }

    fn run(leap: &mut LeapPrefetcher, faults: &[(u16, u64)]) -> Vec<Vec<u64>> {
        faults
            .iter()
            .map(|&(p, v)| {
                let mut out = Vec::new();
                leap.on_fault(&fault(p, v), &NoSlots, &mut out);
                out.iter().map(|r| r.vpn.raw()).collect()
            })
            .collect()
    }

    #[test]
    fn clean_stride_is_detected_and_prefetched() {
        let mut leap = LeapPrefetcher::new(4, 3);
        let outs = run(&mut leap, &[(1, 100), (1, 104), (1, 108), (1, 112)]);
        // After two faults the stride 4 already has a strict majority
        // (1 of 1); conservative check on the final window:
        assert_eq!(outs.last().unwrap(), &vec![116, 120, 124]);
    }

    #[test]
    fn interleaved_streams_confuse_the_stride() {
        // The Figure 1 scenario: streams A (stride 2) and B (stride 1)
        // intertwine; consecutive fault diffs jump between streams and
        // no stride reaches a strict majority in the window.
        let mut leap = LeapPrefetcher::new(4, 3);
        let outs = run(
            &mut leap,
            &[
                (1, 1_000),
                (1, 5_001),
                (1, 1_002),
                (1, 5_002),
                (1, 1_004),
                (1, 5_003),
            ],
        );
        assert!(
            outs.iter().skip(2).all(|o| o.is_empty()),
            "no stable stride once streams interleave: {outs:?}"
        );
    }

    #[test]
    fn separate_processes_have_separate_histories() {
        // The same interleaving as above, but tagged with distinct PIDs:
        // per-process histories keep both streams clean.
        let mut leap = LeapPrefetcher::new(4, 1);
        let outs = run(
            &mut leap,
            &[
                (1, 1_000),
                (2, 5_001),
                (1, 1_002),
                (2, 5_002),
                (1, 1_004),
                (2, 5_003),
            ],
        );
        assert_eq!(outs[4], vec![1_006]);
        assert_eq!(outs[5], vec![5_004]);
    }

    #[test]
    fn interference_page_breaks_a_fragile_window() {
        let mut leap = LeapPrefetcher::new(4, 1);
        // Stride-2 stream with one interference page in the window.
        let outs = run(&mut leap, &[(1, 10), (1, 12), (1, 900), (1, 14)]);
        // Window [10,12,900,14]: strides [2,888,-886] — no majority.
        assert!(outs.last().unwrap().is_empty());
    }

    #[test]
    fn negative_strides_work() {
        let mut leap = LeapPrefetcher::new(4, 2);
        let outs = run(&mut leap, &[(1, 100), (1, 97), (1, 94), (1, 91)]);
        assert_eq!(outs.last().unwrap(), &vec![88, 85]);
    }

    #[test]
    fn adaptive_window_grows_on_hits_and_shrinks_on_misses() {
        let mut leap = LeapPrefetcher::adaptive(4, 2, 16);
        assert_eq!(leap.depth(), 2);
        let mut out = Vec::new();
        let hit = FaultInfo {
            pid: Pid::new(1),
            vpn: Vpn::new(100),
            now: Nanos::ZERO,
            hit_swapcache: true,
            slot: None,
        };
        leap.on_fault(&hit, &NoSlots, &mut out);
        assert_eq!(leap.depth(), 4);
        leap.on_fault(
            &FaultInfo {
                vpn: Vpn::new(104),
                ..hit
            },
            &NoSlots,
            &mut out,
        );
        leap.on_fault(
            &FaultInfo {
                vpn: Vpn::new(108),
                ..hit
            },
            &NoSlots,
            &mut out,
        );
        assert_eq!(leap.depth(), 16, "doubles per hit, capped at max");
        let miss = FaultInfo {
            hit_swapcache: false,
            vpn: Vpn::new(112),
            ..hit
        };
        leap.on_fault(&miss, &NoSlots, &mut out);
        assert_eq!(leap.depth(), 8);
        for k in 0..6 {
            leap.on_fault(
                &FaultInfo {
                    vpn: Vpn::new(116 + 4 * k),
                    ..miss
                },
                &NoSlots,
                &mut out,
            );
        }
        assert_eq!(leap.depth(), 2, "halves per miss, floored at min");
    }

    #[test]
    fn adaptive_depth_bounds_prefetch_volume() {
        let mut leap = LeapPrefetcher::adaptive(4, 2, 8);
        // A clean stride stream with hits growing the window.
        let mut out = Vec::new();
        for k in 0..6u64 {
            out.clear();
            leap.on_fault(
                &FaultInfo {
                    pid: Pid::new(1),
                    vpn: Vpn::new(100 + 4 * k),
                    now: Nanos::ZERO,
                    hit_swapcache: true,
                    slot: None,
                },
                &NoSlots,
                &mut out,
            );
            assert!(out.len() <= 8);
        }
        assert_eq!(out.len(), 8, "window grew to its cap");
    }

    #[test]
    fn repeated_fault_address_is_not_a_stride() {
        let mut leap = LeapPrefetcher::new(4, 2);
        let outs = run(&mut leap, &[(1, 5), (1, 5), (1, 5), (1, 5)]);
        assert!(
            outs.iter().all(|o| o.is_empty()),
            "zero stride never prefetches"
        );
    }
}
