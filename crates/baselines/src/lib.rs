#![warn(missing_docs)]
//! Baseline prefetchers the paper compares against.
//!
//! All of them implement the kernel's fault-driven readahead interface
//! ([`hopp_kernel::Prefetcher`]) — by construction they only ever see
//! the faulting-page history, which is exactly the limitation HoPP's
//! hardware trace removes (§II-B):
//!
//! * [`fastswap::FastswapReadahead`] — Fastswap/Infiniswap-style strict
//!   readahead: prefetch the pages stored in the next few *swap slots*
//!   after the faulting one.
//! * [`leap::LeapPrefetcher`] — Leap's majority-based stride detection
//!   over the recent fault-address window, prefetching along the
//!   detected stride.
//! * [`vma::VmaReadahead`] — Linux 5.4's VMA-based readahead: prefetch
//!   virtually adjacent pages of the same process (a crude form of page
//!   clustering, which is why Fig 22 shows it slightly ahead of
//!   Fastswap).
//! * [`depth_n::DepthN`] — the Depth-N design (§II-C): prefetch the next
//!   `N` virtual pages and inject their PTEs eagerly, with no feedback.
//!
//! The paper's "revamped Leap on the full trace" (§II-B) — page
//! clustering plus a large majority window — is structurally identical
//! to HoPP's SSP-only configuration and is therefore expressed as
//! `HoppEngine` with `TierConfig::ssp_only()` rather than duplicated
//! here.

pub mod depth_n;
pub mod fastswap;
pub mod leap;
pub mod vma;

pub use depth_n::DepthN;
pub use fastswap::FastswapReadahead;
pub use leap::LeapPrefetcher;
pub use vma::VmaReadahead;
