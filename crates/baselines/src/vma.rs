//! VMA-based readahead (Linux 5.4's swap readahead mode).
//!
//! Instead of swap-slot adjacency, VMA-based readahead prefetches pages
//! *virtually adjacent* to the fault, within the same mapping. Virtual
//! adjacency resembles page clustering, so it beats Fastswap's
//! slot-order readahead on streaming workloads (§VI-E measures +3.6 %),
//! but it is still fault-driven and pattern-blind.

use hopp_kernel::{FaultInfo, PrefetchRequest, Prefetcher, SlotView};

/// The VMA-based readahead policy.
#[derive(Clone, Copy, Debug)]
pub struct VmaReadahead {
    /// Pages prefetched after the fault address.
    forward: usize,
    /// Pages prefetched before the fault address.
    backward: usize,
}

impl Default for VmaReadahead {
    fn default() -> Self {
        // Linux reads a window around the fault, biased forward.
        VmaReadahead {
            forward: 6,
            backward: 2,
        }
    }
}

impl VmaReadahead {
    /// Creates a readahead with the default 6-forward / 2-backward
    /// window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a readahead with an explicit window.
    pub fn with_window(forward: usize, backward: usize) -> Self {
        VmaReadahead { forward, backward }
    }
}

impl Prefetcher for VmaReadahead {
    fn name(&self) -> &str {
        "vma"
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        _slots: &dyn SlotView,
        out: &mut Vec<PrefetchRequest>,
    ) {
        for k in 1..=self.forward as i64 {
            if let Some(vpn) = fault.vpn.offset(k) {
                out.push(PrefetchRequest {
                    pid: fault.pid,
                    vpn,
                    inject: false,
                });
            }
        }
        for k in 1..=self.backward as i64 {
            if let Some(vpn) = fault.vpn.offset(-k) {
                out.push(PrefetchRequest {
                    pid: fault.pid,
                    vpn,
                    inject: false,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::{Nanos, Pid, Vpn};

    struct NoSlots;
    impl SlotView for NoSlots {
        fn page_at(&self, _: hopp_types::SwapSlot) -> Option<(Pid, Vpn)> {
            None
        }
    }

    fn fault(vpn: u64) -> FaultInfo {
        FaultInfo {
            pid: Pid::new(3),
            vpn: Vpn::new(vpn),
            now: Nanos::ZERO,
            hit_swapcache: false,
            slot: None,
        }
    }

    #[test]
    fn window_surrounds_the_fault() {
        let mut v = VmaReadahead::with_window(2, 1);
        let mut out = Vec::new();
        v.on_fault(&fault(100), &NoSlots, &mut out);
        let vpns: Vec<u64> = out.iter().map(|r| r.vpn.raw()).collect();
        assert_eq!(vpns, vec![101, 102, 99]);
        assert!(out.iter().all(|r| r.pid == Pid::new(3) && !r.inject));
    }

    #[test]
    fn address_space_edges_are_clipped() {
        let mut v = VmaReadahead::with_window(1, 3);
        let mut out = Vec::new();
        v.on_fault(&fault(1), &NoSlots, &mut out);
        let vpns: Vec<u64> = out.iter().map(|r| r.vpn.raw()).collect();
        assert_eq!(vpns, vec![2, 0], "pages below zero are skipped");
    }

    #[test]
    fn needs_no_slot_information() {
        let mut v = VmaReadahead::new();
        let mut out = Vec::new();
        v.on_fault(&fault(50), &NoSlots, &mut out);
        assert_eq!(out.len(), 8);
    }
}
