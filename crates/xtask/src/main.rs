//! `cargo xtask` — repo-local task runner.
//!
//! The only task today is `check`: the `hopp-check` static-analysis
//! pass over the whole workspace (see `docs/static-analysis.md`).
//! Invoked through the alias in `.cargo/config.toml`:
//!
//! ```text
//! cargo xtask check
//! ```
//!
//! Exits 0 when the workspace is clean, 1 on findings, 2 on usage or
//! IO errors. The summary always reports the waiver budget so CI logs
//! show how many findings are suppressed and by which rule.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next().unwrap_or_else(|| "check".to_string());
    match task.as_str() {
        "check" => run_check(),
        "--help" | "-h" | "help" => {
            eprintln!("usage: cargo xtask [check]\n\n  check   run the hopp-check static-analysis pass (default)");
            ExitCode::from(2)
        }
        other => {
            eprintln!("unknown xtask `{other}` (try `cargo xtask check`)");
            ExitCode::from(2)
        }
    }
}

fn run_check() -> ExitCode {
    match hopp_check::run(&workspace_root()) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("hopp-check failed: {e}");
            ExitCode::from(2)
        }
    }
}
