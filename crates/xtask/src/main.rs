//! `cargo xtask` — repo-local task runner.
//!
//! Two tasks today, invoked through the alias in `.cargo/config.toml`:
//!
//! ```text
//! cargo xtask check               # hopp-check static analysis
//! cargo xtask gate [--quick] [--update]   # BENCH_*.json regression gate
//! ```
//!
//! `check` runs the `hopp-check` static-analysis pass over the whole
//! workspace (see `docs/static-analysis.md`). `gate` re-runs the
//! throughput and quality experiments at the scale recorded in the
//! committed `BENCH_throughput.json` / `BENCH_quality.json` baselines
//! and fails on per-row regressions (see `docs/observability.md`);
//! `--quick` runs 3 throughput repeats for CI, `--update` rewrites
//! the baselines from fresh runs.
//!
//! Exits 0 when clean/passing, 1 on findings or gate breaches, 2 on
//! usage or IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next().unwrap_or_else(|| "check".to_string());
    match task.as_str() {
        "check" => run_check(),
        "gate" => run_gate(&args.collect::<Vec<_>>()),
        "--help" | "-h" | "help" => {
            eprintln!(
                "usage: cargo xtask [check | gate [--quick] [--update]]\n\n  \
                 check   run the hopp-check static-analysis pass (default)\n  \
                 gate    diff fresh BENCH_*.json runs against the committed baselines\n          \
                 (--quick runs 3 throughput repeats, --update rewrites the baselines)"
            );
            ExitCode::from(2)
        }
        other => {
            eprintln!("unknown xtask `{other}` (try `cargo xtask check` or `cargo xtask gate`)");
            ExitCode::from(2)
        }
    }
}

fn run_check() -> ExitCode {
    match hopp_check::run(&workspace_root()) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("hopp-check failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_gate(args: &[String]) -> ExitCode {
    let quick = args.iter().any(|a| a == "--quick");
    let update = args.iter().any(|a| a == "--update");
    if let Some(bad) = args.iter().find(|a| *a != "--quick" && *a != "--update") {
        eprintln!("unknown gate flag `{bad}` (--quick | --update)");
        return ExitCode::from(2);
    }
    match hopp_bench::gate::run_gate(&workspace_root(), quick, update) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            if outcome.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("gate failed: {e}");
            ExitCode::from(2)
        }
    }
}
