//! `cargo xtask` — repo-local task runner.
//!
//! Two tasks today, invoked through the alias in `.cargo/config.toml`:
//!
//! ```text
//! cargo xtask check [--sarif <path>] [--waivers] [--update-baseline]
//! cargo xtask gate [--quick] [--update]   # BENCH_*.json regression gate
//! ```
//!
//! `check` runs the `hopp-check` static-analysis pass over the whole
//! workspace (see `docs/static-analysis.md`). When `check-baseline.json`
//! exists at the workspace root, the run is judged against that ratchet
//! (new findings fail; fixed findings fail until `--update-baseline`
//! records the smaller debt) instead of requiring zero findings
//! outright. `--sarif <path>` additionally writes the findings as a
//! SARIF 2.1.0 artifact for code-scanning upload, and `--waivers`
//! prints the per-rule waiver/budget table with stale waivers marked.
//!
//! `gate` re-runs the throughput and quality experiments at the scale
//! recorded in the committed `BENCH_throughput.json` /
//! `BENCH_quality.json` baselines and fails on per-row regressions (see
//! `docs/observability.md`); `--quick` runs 3 throughput repeats for
//! CI, `--update` rewrites the baselines from fresh runs.
//!
//! Exits 0 when clean/passing, 1 on findings or gate breaches, 2 on
//! usage or IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let task = args.next().unwrap_or_else(|| "check".to_string());
    match task.as_str() {
        "check" => run_check(&args.collect::<Vec<_>>()),
        "gate" => run_gate(&args.collect::<Vec<_>>()),
        "--help" | "-h" | "help" => {
            eprintln!(
                "usage: cargo xtask [check [--sarif <path>] [--waivers] [--update-baseline] \
                 | gate [--quick] [--update]]\n\n  \
                 check   run the hopp-check static-analysis pass (default); when\n          \
                 check-baseline.json exists the run is judged against that ratchet\n          \
                 (--sarif writes a SARIF 2.1.0 artifact, --waivers prints the\n          \
                 waiver/budget table, --update-baseline rewrites the ratchet)\n  \
                 gate    diff fresh BENCH_*.json runs against the committed baselines\n          \
                 (--quick runs 3 throughput repeats, --update rewrites the baselines)"
            );
            ExitCode::from(2)
        }
        other => {
            eprintln!("unknown xtask `{other}` (try `cargo xtask check` or `cargo xtask gate`)");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut sarif_path: Option<PathBuf> = None;
    let mut waivers = false;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sarif" => match it.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--sarif needs a path");
                    return ExitCode::from(2);
                }
            },
            "--waivers" => waivers = true,
            "--update-baseline" => update_baseline = true,
            bad => {
                eprintln!(
                    "unknown check flag `{bad}` (--sarif <path> | --waivers | --update-baseline)"
                );
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let report = match hopp_check::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("hopp-check failed: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render());
    if waivers {
        print!("{}", report.render_waivers());
    }
    // The SARIF artifact is written even when the run fails — CI uploads
    // it precisely so the findings annotate the PR.
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, hopp_check::sarif::to_sarif(&report)) {
            eprintln!("writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("hopp-check: SARIF written to {}", path.display());
    }

    let baseline_path = root.join("check-baseline.json");
    if update_baseline {
        let base = hopp_check::baseline::Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&baseline_path, base.render()) {
            eprintln!("writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "hopp-check: baseline updated ({} finding(s), {} waiver(s))",
            report.findings.len(),
            report.waiver_budget()
        );
        return ExitCode::SUCCESS;
    }
    match std::fs::read_to_string(&baseline_path) {
        Ok(src) => {
            // Ratchet mode: the committed baseline decides pass/fail.
            let base = match hopp_check::baseline::Baseline::parse(&src) {
                Ok(base) => base,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let breaches = base.diff(&report);
            if breaches.is_empty() {
                eprintln!("hopp-check: baseline ratchet holds");
                ExitCode::SUCCESS
            } else {
                for b in &breaches {
                    eprintln!("hopp-check baseline: {b}");
                }
                ExitCode::from(1)
            }
        }
        Err(_) => {
            // No baseline committed: plain zero-findings gate.
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}

fn run_gate(args: &[String]) -> ExitCode {
    let quick = args.iter().any(|a| a == "--quick");
    let update = args.iter().any(|a| a == "--update");
    if let Some(bad) = args.iter().find(|a| *a != "--quick" && *a != "--update") {
        eprintln!("unknown gate flag `{bad}` (--quick | --update)");
        return ExitCode::from(2);
    }
    match hopp_bench::gate::run_gate(&workspace_root(), quick, update) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            if outcome.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("gate failed: {e}");
            ExitCode::from(2)
        }
    }
}
