//! Component-level throughput benchmarks.
//!
//! These measure the hot loops of the simulation stack — the structures
//! the paper implements in hardware (HPD, RPT cache) must sustain
//! LLC-miss rate in the simulator, and the software side (STT,
//! three-tier classification) must sustain the hot-page rate.
//!
//! The harness is a plain `main` driven by `std::time::Instant` because
//! the build environment has no crates.io access for `criterion`; each
//! loop reports ns/op and Mops/s over a fixed iteration count. Run with
//! `cargo bench --bench components`.

use std::hint::black_box;
use std::time::Instant;

use hopp_core::stt::{StreamTrainingTable, SttConfig};
use hopp_core::three_tier::{ThreeTier, TierConfig};
use hopp_hw::{HotPageDetector, HpdConfig, ReversePageTable, RptCacheConfig};
use hopp_trace::llc::{LastLevelCache, LlcConfig};
use hopp_types::{AccessKind, HotPage, Nanos, PageFlags, Pid, Ppn, Vpn};

/// Times `iters` calls of `op` and prints a one-line report.
fn bench(name: &str, iters: u64, mut op: impl FnMut(u64)) {
    // Warm-up pass so cold caches don't pollute the measurement.
    for i in 0..iters / 10 {
        op(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
    println!(
        "{name:<28} {iters:>10} iters  {ns_per_op:>9.1} ns/op  {:>8.2} Mops/s",
        1e3 / ns_per_op
    );
}

fn bench_llc() {
    let mut llc = LastLevelCache::new(LlcConfig::default_server()).unwrap();
    bench("llc/access_stream", 2_000_000, |i| {
        black_box(llc.access(Ppn::new(i % 100_000).line((i % 64) as u8), AccessKind::Read));
    });
}

fn bench_hpd() {
    let mut hpd = HotPageDetector::new(HpdConfig::default()).unwrap();
    bench("hpd/on_miss", 2_000_000, |i| {
        black_box(hpd.on_miss(
            Ppn::new(i / 8 % 4_096).line((i % 64) as u8),
            AccessKind::Read,
        ));
    });
}

fn bench_rpt() {
    let mut rpt = ReversePageTable::new(RptCacheConfig::default()).unwrap();
    rpt.bootstrap((0..16_384u64).map(|i| (Ppn::new(i), Pid::new(1), Vpn::new(i))));
    bench("rpt/lookup", 2_000_000, |i| {
        black_box(rpt.lookup(Ppn::new(i % 16_384)));
    });
}

fn bench_stt() {
    let mut stt = StreamTrainingTable::new(SttConfig::default()).unwrap();
    let mut tiers = ThreeTier::new(TierConfig::default());
    bench("stt/observe_and_classify", 1_000_000, |i| {
        // Four interleaved strided streams, as a busy app would emit.
        let stream = i % 4;
        let hot = HotPage {
            pid: Pid::new(1),
            vpn: Vpn::new(stream * 1_000_000 + (i / 4) * (stream + 1)),
            flags: PageFlags::default(),
            at: Nanos::from_nanos(i),
        };
        if let Some(window) = stt.observe(&hot) {
            black_box(tiers.predict(&window));
        }
    });
}

fn main() {
    bench_llc();
    bench_hpd();
    bench_rpt();
    bench_stt();
}
