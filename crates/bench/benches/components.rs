//! Component-level throughput benchmarks.
//!
//! These measure the hot loops of the simulation stack — the structures
//! the paper implements in hardware (HPD, RPT cache) must sustain
//! LLC-miss rate in the simulator, and the software side (STT,
//! three-tier classification) must sustain the hot-page rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hopp_core::stt::{StreamTrainingTable, SttConfig};
use hopp_core::three_tier::{ThreeTier, TierConfig};
use hopp_hw::{HotPageDetector, HpdConfig, ReversePageTable, RptCacheConfig};
use hopp_trace::llc::{LastLevelCache, LlcConfig};
use hopp_types::{AccessKind, HotPage, Nanos, PageFlags, Pid, Ppn, Vpn};

fn bench_llc(c: &mut Criterion) {
    let mut group = c.benchmark_group("llc");
    group.throughput(Throughput::Elements(1));
    let mut llc = LastLevelCache::new(LlcConfig::default_server()).unwrap();
    let mut i = 0u64;
    group.bench_function("access_stream", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(llc.access(Ppn::new(i % 100_000).line((i % 64) as u8), AccessKind::Read))
        })
    });
    group.finish();
}

fn bench_hpd(c: &mut Criterion) {
    let mut group = c.benchmark_group("hpd");
    group.throughput(Throughput::Elements(1));
    let mut hpd = HotPageDetector::new(HpdConfig::default()).unwrap();
    let mut i = 0u64;
    group.bench_function("on_miss", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(hpd.on_miss(Ppn::new(i / 8 % 4_096).line((i % 64) as u8), AccessKind::Read))
        })
    });
    group.finish();
}

fn bench_rpt(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpt");
    group.throughput(Throughput::Elements(1));
    let mut rpt = ReversePageTable::new(RptCacheConfig::default()).unwrap();
    rpt.bootstrap((0..16_384u64).map(|i| (Ppn::new(i), Pid::new(1), Vpn::new(i))));
    let mut i = 0u64;
    group.bench_function("lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(rpt.lookup(Ppn::new(i % 16_384)))
        })
    });
    group.finish();
}

fn bench_stt(c: &mut Criterion) {
    let mut group = c.benchmark_group("stt");
    group.throughput(Throughput::Elements(1));
    let mut stt = StreamTrainingTable::new(SttConfig::default()).unwrap();
    let mut tiers = ThreeTier::new(TierConfig::default());
    let mut i = 0u64;
    group.bench_function("observe_and_classify", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            // Four interleaved strided streams, as a busy app would emit.
            let stream = i % 4;
            let hot = HotPage {
                pid: Pid::new(1),
                vpn: Vpn::new(stream * 1_000_000 + (i / 4) * (stream + 1)),
                flags: PageFlags::default(),
                at: Nanos::from_nanos(i),
            };
            if let Some(window) = stt.observe(&hot) {
                black_box(tiers.predict(&window));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_llc, bench_hpd, bench_rpt, bench_stt);
criterion_main!(benches);
