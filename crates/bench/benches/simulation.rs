//! End-to-end simulation benchmarks: one representative configuration
//! per experiment family, at reduced scale so `cargo bench` stays
//! fast. The full-scale regeneration of every table/figure is the
//! `experiments` binary (`cargo run --release -p hopp-bench --bin
//! experiments -- all`).
//!
//! Plain `std::time::Instant` harness (no crates.io access for
//! `criterion` in the build environment). Run with
//! `cargo bench --bench simulation`.

use std::hint::black_box;
use std::time::Instant;

use hopp_bench::experiments::{self, Scale};
use hopp_sim::{run_workload, BaselineKind, SystemConfig};
use hopp_workloads::WorkloadKind;

const FP: u64 = 512;
const SAMPLES: u32 = 10;

fn scale() -> Scale {
    Scale {
        footprint: FP,
        spark_footprint: FP,
        seed: 42,
    }
}

/// Runs `op` `SAMPLES` times and prints the mean wall time.
fn bench(name: &str, mut op: impl FnMut()) {
    op(); // warm-up
    let start = Instant::now();
    for _ in 0..SAMPLES {
        op();
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(SAMPLES);
    println!("{name:<32} {ms:>9.2} ms/run ({SAMPLES} samples)");
}

fn main() {
    bench("fig9/kmeans_fastswap_50", || {
        black_box(
            run_workload(
                WorkloadKind::Kmeans,
                FP,
                42,
                SystemConfig::Baseline(BaselineKind::Fastswap),
                0.5,
            )
            .expect("bench run"),
        );
    });
    bench("fig9/kmeans_hopp_50", || {
        black_box(
            run_workload(
                WorkloadKind::Kmeans,
                FP,
                42,
                SystemConfig::hopp_default(),
                0.5,
            )
            .expect("bench run"),
        );
    });
    bench("table2/kmeans_sweep", || {
        black_box(experiments::table2(&scale()).unwrap());
    });
    bench("table3/rpt_hit_sweep", || {
        black_box(experiments::table3(&scale()).unwrap());
    });
    bench("fig18/mg_three_tier", || {
        black_box(
            run_workload(
                WorkloadKind::NpbMg,
                FP,
                42,
                SystemConfig::hopp_default(),
                0.5,
            )
            .expect("bench run"),
        );
    });
    bench("fig22/microbench_suite", || {
        black_box(experiments::fig22(&scale()).unwrap());
    });
}
