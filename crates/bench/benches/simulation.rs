//! End-to-end simulation benchmarks: one representative configuration
//! per experiment family, at reduced scale so `cargo bench` stays
//! fast. The full-scale regeneration of every table/figure is the
//! `experiments` binary (`cargo run --release -p hopp-bench --bin
//! experiments -- all`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hopp_bench::experiments::{self, Scale};
use hopp_sim::{run_workload, BaselineKind, SystemConfig};
use hopp_workloads::WorkloadKind;

const FP: u64 = 512;

fn bench_fig9_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_normperf");
    group.sample_size(10);
    group.bench_function("kmeans_fastswap_50", |b| {
        b.iter(|| {
            black_box(run_workload(
                WorkloadKind::Kmeans,
                FP,
                42,
                SystemConfig::Baseline(BaselineKind::Fastswap),
                0.5,
            ))
        })
    });
    group.bench_function("kmeans_hopp_50", |b| {
        b.iter(|| {
            black_box(run_workload(
                WorkloadKind::Kmeans,
                FP,
                42,
                SystemConfig::hopp_default(),
                0.5,
            ))
        })
    });
    group.finish();
}

fn bench_table2_hpd_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_hpd_ratio");
    group.sample_size(10);
    group.bench_function("kmeans_sweep", |b| {
        b.iter(|| {
            black_box(experiments::table2(&Scale {
                footprint: FP,
                spark_footprint: FP,
                seed: 42,
            }))
        })
    });
    group.finish();
}

fn bench_table3_rpt_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_rpt_hit");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| {
            black_box(experiments::table3(&Scale {
                footprint: FP,
                spark_footprint: FP,
                seed: 42,
            }))
        })
    });
    group.finish();
}

fn bench_fig18_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_tiers");
    group.sample_size(10);
    group.bench_function("mg_three_tier", |b| {
        b.iter(|| {
            black_box(run_workload(
                WorkloadKind::NpbMg,
                FP,
                42,
                SystemConfig::hopp_default(),
                0.5,
            ))
        })
    });
    group.finish();
}

fn bench_fig22_techniques(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_techniques");
    group.sample_size(10);
    group.bench_function("microbench_suite", |b| {
        b.iter(|| {
            black_box(experiments::fig22(&Scale {
                footprint: FP,
                spark_footprint: FP,
                seed: 42,
            }))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig9_runs,
    bench_table2_hpd_ratio,
    bench_table3_rpt_hit,
    bench_fig18_tiers,
    bench_fig22_techniques
);
criterion_main!(benches);
