//! `hopp-ds` micro-benchmarks against the `BTreeMap` predecessors.
//!
//! Every structure in `hopp-ds` replaced a `BTreeMap` on the simulated
//! stack's per-access path (ISSUE 4); this bench quantifies the swap at
//! the working-set sizes the ISSUE gates on (>= 64K entries). The
//! harness is a plain `main` over `std::time::Instant` (no crates.io
//! access for `criterion`). Run with `cargo bench --bench ds`.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

use hopp_ds::{DetMap, Lru, PageMap};
use hopp_types::rng::SplitMix64;
use hopp_types::Ppn;

/// Times `iters` calls of `op` (after a 10 % warm-up) in ns/op.
fn bench_ns(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    for i in 0..iters / 10 {
        op(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Prints one `BTreeMap`-vs-`hopp-ds` comparison line.
fn report(name: &str, n: usize, btree_ns: f64, ds_ns: f64) {
    println!(
        "{name:<22} n={n:>7}  btree {btree_ns:>7.1} ns/op  hopp-ds {ds_ns:>7.1} ns/op  speedup {:>5.2}x",
        btree_ns / ds_ns
    );
}

/// Keys scattered over a sparse space, as `(Pid, Vpn)`-style map keys
/// are after hashing.
fn sparse_keys(n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::seed_from_u64(0xD5);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn bench_detmap(n: usize) {
    const ITERS: u64 = 2_000_000;
    let keys = sparse_keys(n);

    let mut btree: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k)).collect();
    let mut det: DetMap<u64, u64> = DetMap::with_capacity(n);
    for &k in &keys {
        det.insert(k, k);
    }

    let bt = bench_ns(ITERS, |i| {
        black_box(btree.get(&keys[i as usize % n]));
    });
    let ds = bench_ns(ITERS, |i| {
        black_box(det.get(&keys[i as usize % n]));
    });
    report("detmap/get", n, bt, ds);

    let bt = bench_ns(ITERS, |i| {
        let k = keys[i as usize % n];
        btree.remove(&k);
        black_box(btree.insert(k, i));
    });
    let ds = bench_ns(ITERS, |i| {
        let k = keys[i as usize % n];
        det.remove(&k);
        black_box(det.insert(k, i));
    });
    report("detmap/remove+insert", n, bt, ds);
}

fn bench_pagemap(n: usize) {
    const ITERS: u64 = 2_000_000;
    // Dense page numbers visited in a scattered order, as the fault
    // path visits an `AddressSpace`'s pages.
    let mut order: Vec<u64> = (0..n as u64).collect();
    SplitMix64::seed_from_u64(0xA7).shuffle(&mut order);

    let mut btree: BTreeMap<u64, u64> = (0..n as u64).map(|k| (k, k)).collect();
    let mut page: PageMap<Ppn, u64> = PageMap::with_capacity_pages(n);
    for k in 0..n as u64 {
        page.insert(Ppn::new(k), k);
    }

    let bt = bench_ns(ITERS, |i| {
        black_box(btree.get(&order[i as usize % n]));
    });
    let ds = bench_ns(ITERS, |i| {
        let k = order[i as usize % n];
        black_box(page.get(Ppn::new(k)));
    });
    report("pagemap/get", n, bt, ds);

    let bt = bench_ns(ITERS, |i| {
        let k = order[i as usize % n];
        btree.remove(&k);
        black_box(btree.insert(k, i));
    });
    let ds = bench_ns(ITERS, |i| {
        let k = order[i as usize % n];
        page.remove(Ppn::new(k));
        black_box(page.insert(Ppn::new(k), i));
    });
    report("pagemap/remove+insert", n, bt, ds);
}

/// The pre-migration LRU shape: a stamp-ordered `BTreeMap` plus a
/// page → stamp back-map (`hopp_kernel::lru` before `hopp_ds::Lru`).
struct BtreeLru {
    by_stamp: BTreeMap<u64, u64>,
    stamp_of: BTreeMap<u64, u64>,
    next: u64,
}

impl BtreeLru {
    fn touch(&mut self, page: u64) {
        if let Some(stamp) = self.stamp_of.insert(page, self.next) {
            self.by_stamp.remove(&stamp);
        }
        self.by_stamp.insert(self.next, page);
        self.next += 1;
    }

    fn pop_lru(&mut self) -> Option<u64> {
        let (_, page) = self.by_stamp.pop_first()?;
        self.stamp_of.remove(&page);
        Some(page)
    }
}

fn bench_lru(n: usize) {
    const ITERS: u64 = 2_000_000;
    let mut order: Vec<u64> = (0..n as u64).collect();
    SplitMix64::seed_from_u64(0x1C).shuffle(&mut order);

    let mut btree = BtreeLru {
        by_stamp: BTreeMap::new(),
        stamp_of: BTreeMap::new(),
        next: 0,
    };
    let mut lru: Lru<Ppn> = Lru::new();
    for k in 0..n as u64 {
        btree.touch(k);
        lru.insert_mru(Ppn::new(k));
    }

    // The reclaim loop's mix: mostly touches, an eviction every 8th op.
    let bt = bench_ns(ITERS, |i| {
        let k = order[i as usize % n];
        if i % 8 == 7 {
            if let Some(victim) = btree.pop_lru() {
                btree.touch(black_box(victim));
            }
        } else {
            btree.touch(k);
        }
    });
    let ds = bench_ns(ITERS, |i| {
        let k = order[i as usize % n];
        if i % 8 == 7 {
            if let Some(victim) = lru.pop_lru() {
                lru.insert_mru(black_box(victim));
            }
        } else {
            lru.touch(Ppn::new(k));
        }
    });
    report("lru/touch+evict", n, bt, ds);
}

fn main() {
    for n in [65_536usize, 262_144] {
        bench_detmap(n);
        bench_pagemap(n);
        bench_lru(n);
        println!();
    }
}
