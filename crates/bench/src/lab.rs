//! hopp-lab: parallel, deterministic, cached experiment sweeps.
//!
//! The sweep engine fans an experiment grid (workload × system × seed)
//! out over a thread pool while preserving the workspace's determinism
//! contract:
//!
//! * every cell is an isolated [`Simulator`] run — no shared mutable
//!   state crosses cells, so thread interleaving cannot change results;
//! * results are aggregated in **grid order**, never completion order,
//!   so the emitted JSON is byte-identical for `--threads 1` and
//!   `--threads N`;
//! * each finished cell is cached on disk under a content hash of its
//!   full configuration ([`SimConfig::fingerprint`] + workload + seed +
//!   ratio), so re-runs and interrupted sweeps resume instead of
//!   recomputing — and a cached cell renders byte-identically to a
//!   fresh one (`u64` fields roundtrip exactly; `f64` fields roundtrip
//!   through Rust's shortest-representation `Display`).
//!
//! Wall-clock timing never enters the sweep artifact: it flows to
//! stderr and to [`hopp_obs`] `Lab` events (exportable as a Chrome
//! trace) only.
//!
//! This module is the one sanctioned home for threads in the
//! workspace; `hopp-check`'s determinism rule bans `thread::spawn` /
//! `thread::scope` everywhere else.
//!
//! [`Simulator`]: hopp_sim::Simulator

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use hopp_obs::{Event, TimedEvent};
use hopp_scn::WorkloadSource;
use hopp_sim::runner::SOLO_PID;
use hopp_sim::{BaselineKind, SimConfig, SystemConfig};
use hopp_types::{Nanos, Result};
use hopp_workloads::WorkloadKind;

/// Runs `jobs` independent tasks over a pool of at most `threads`
/// worker threads and returns their results **in job-index order**,
/// regardless of completion order.
///
/// Workers claim indices from a shared atomic counter, so the mapping
/// of job → thread is racy — but each job's result lands in its own
/// index-addressed slot, and the returned `Vec` is assembled from the
/// slots, never from completion order. Callers that only consume the
/// returned order therefore observe identical output at any thread
/// count.
pub fn run_indexed<T, F>(threads: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(jobs.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = job(i);
                slots
                    .lock()
                    .expect("a lab worker panicked while holding the slot lock")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("a lab worker panicked while holding the slot lock")
        .into_iter()
        .map(|slot| slot.expect("every claimed job stores a result"))
        .collect()
}

/// The grid a sweep runs: the cross product of workloads × systems ×
/// seeds at one footprint and local-memory ratio.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Workload sources on the grid's first axis: catalogue workloads
    /// and DSL scenarios mix freely.
    pub workloads: Vec<WorkloadSource>,
    /// Systems on the second axis, with the label used in output rows.
    pub systems: Vec<(String, SystemConfig)>,
    /// Seeds on the third axis; multi-seed cells aggregate mean/min/max.
    pub seeds: Vec<u64>,
    /// Footprint of non-JVM workloads, in pages.
    pub footprint: u64,
    /// Footprint of JVM (Spark) workloads, in pages.
    pub spark_footprint: u64,
    /// Local memory as a fraction of the footprint.
    pub ratio: f64,
    /// Worker threads (1 = serial; output is identical either way).
    pub threads: usize,
    /// Cell cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl SweepSpec {
    /// The default `--quick` CI grid: 2 workloads × 2 systems × 2 seeds
    /// at the quick footprint — 8 cells, small enough to run twice in a
    /// CI job, large enough to exercise multi-seed aggregation.
    pub fn quick() -> Self {
        SweepSpec {
            workloads: vec![
                WorkloadSource::Catalogue(WorkloadKind::Kmeans),
                WorkloadSource::Catalogue(WorkloadKind::Quicksort),
            ],
            systems: vec![
                (
                    "fastswap".to_string(),
                    SystemConfig::Baseline(hopp_sim::BaselineKind::Fastswap),
                ),
                ("hopp".to_string(), SystemConfig::hopp_default()),
            ],
            seeds: vec![42, 7],
            footprint: 1_024,
            spark_footprint: 1_024,
            ratio: 0.5,
            threads: 1,
            cache_dir: None,
        }
    }
}

/// One cell of the grid, fully identifying one simulator run.
#[derive(Clone, Debug)]
struct Cell {
    workload: WorkloadSource,
    system_label: String,
    system: SystemConfig,
    seed: u64,
    footprint: u64,
    ratio: f64,
}

/// The simulated quantities a cell produces. All fields are either
/// integers or `f64`s that roundtrip exactly through the cache, so a
/// cached cell is indistinguishable from a fresh one in the artifact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellMetrics {
    /// Completion time of the run under test, in simulated ns.
    pub completion_ns: u64,
    /// Completion time of the all-local reference run, in simulated ns.
    pub local_ns: u64,
    /// Page accesses executed.
    pub accesses: u64,
    /// Demand faults that read remote memory synchronously.
    pub major_faults: u64,
    /// Remote reads issued (faults + prefetches).
    pub remote_reads: u64,
    /// Prefetch accuracy.
    pub accuracy: f64,
    /// Prefetch coverage.
    pub coverage: f64,
}

impl CellMetrics {
    /// Normalized performance: `CT_local / CT_system`.
    pub fn normalized(&self) -> f64 {
        self.local_ns as f64 / self.completion_ns.max(1) as f64
    }
}

/// Outcome of one cell: its metrics, or the typed error that failed it.
/// A failed cell fails its own row only — never the sweep.
type CellOutcome = std::result::Result<CellMetrics, String>;

/// What [`run_sweep`] returns.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The aggregated sweep artifact: byte-identical across thread
    /// counts and across cold/warm (cached) runs of the same grid.
    pub json: String,
    /// Cells computed by running the simulator.
    pub cells_run: usize,
    /// Cells served from the on-disk cache.
    pub cells_cached: usize,
    /// Cells whose run failed (their rows carry the error).
    pub cells_failed: usize,
    /// Wall-clock `Lab` progress events (`LabCellStart`/`LabCellDone`),
    /// timestamped in nanoseconds since the sweep started. Exportable
    /// with [`hopp_obs::events_to_chrome_trace`]; never part of `json`.
    pub events: Vec<TimedEvent>,
}

/// Runs the sweep grid across the pool and aggregates in grid order.
///
/// # Errors
///
/// Returns an error only for harness-level failures (an unwritable
/// cache directory). Individual cell failures are reported inside the
/// artifact and counted in [`SweepOutcome::cells_failed`].
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepOutcome> {
    let cells = grid(spec);
    if let Some(dir) = &spec.cache_dir {
        // Surface an unusable cache directory before spawning workers.
        std::fs::create_dir_all(dir).map_err(|_| hopp_types::Error::InvalidConfig {
            what: "cache_dir",
            constraint: "a creatable directory",
        })?;
    }
    let started = Instant::now();
    let events: Mutex<Vec<TimedEvent>> = Mutex::new(Vec::with_capacity(cells.len() * 2));
    let total = cells.len() as u32;
    let outcomes: Vec<(CellOutcome, bool)> = run_indexed(spec.threads, cells.len(), |i| {
        let cell = &cells[i];
        let t0 = wall_nanos(&started);
        push_event(
            &events,
            t0,
            Event::LabCellStart {
                index: i as u32,
                total,
            },
        );
        let (outcome, cached) = run_cell_cached(cell, spec.cache_dir.as_deref());
        let t1 = wall_nanos(&started);
        push_event(
            &events,
            t1,
            Event::LabCellDone {
                index: i as u32,
                cached,
                wall: Nanos::from_nanos(t1.as_nanos().saturating_sub(t0.as_nanos())),
            },
        );
        (outcome, cached)
    });
    let cells_cached = outcomes.iter().filter(|(_, cached)| *cached).count();
    let cells_failed = outcomes.iter().filter(|(o, _)| o.is_err()).count();
    let cells_run = outcomes.len() - cells_cached - cells_failed;
    let json = render_sweep_json(spec, &cells, &outcomes);
    Ok(SweepOutcome {
        json,
        cells_run,
        cells_cached,
        cells_failed,
        events: events
            .into_inner()
            .expect("a lab worker panicked while holding the event lock"),
    })
}

/// Builds the grid in canonical order: workload-major, then system,
/// then seed. Aggregation and rendering follow this order exactly.
fn grid(spec: &SweepSpec) -> Vec<Cell> {
    let mut cells =
        Vec::with_capacity(spec.workloads.len() * spec.systems.len() * spec.seeds.len());
    for workload in &spec.workloads {
        let footprint = workload.footprint(spec.footprint, spec.spark_footprint);
        for (label, system) in &spec.systems {
            for &seed in &spec.seeds {
                cells.push(Cell {
                    workload: workload.clone(),
                    system_label: label.clone(),
                    system: *system,
                    seed,
                    footprint,
                    ratio: spec.ratio,
                });
            }
        }
    }
    cells
}

fn wall_nanos(started: &Instant) -> Nanos {
    Nanos::from_nanos(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

fn push_event(events: &Mutex<Vec<TimedEvent>>, at: Nanos, event: Event) {
    events
        .lock()
        .expect("a lab worker panicked while holding the event lock")
        .push(TimedEvent { at, event });
}

/// Runs one cell, consulting the on-disk cache first. Returns the
/// outcome and whether it came from the cache.
fn run_cell_cached(cell: &Cell, cache_dir: Option<&Path>) -> (CellOutcome, bool) {
    let fingerprint = cell_fingerprint(cell);
    let path = cache_dir.map(|dir| dir.join(format!("{:016x}.json", fnv1a64(&fingerprint))));
    if let Some(path) = &path {
        if let Some(metrics) = load_cached_cell(path, &fingerprint) {
            return (Ok(metrics), true);
        }
    }
    let outcome = run_cell(cell).map_err(|e| e.to_string());
    if let (Some(path), Ok(metrics)) = (&path, &outcome) {
        // Cache write failures are non-fatal: the next run recomputes.
        let _ = std::fs::write(path, cell_cache_json(&fingerprint, metrics));
    }
    (outcome, false)
}

/// The isolated simulator run behind one cell: the all-local reference
/// plus the system under test, both keyed by the cell's seed.
fn run_cell(cell: &Cell) -> Result<CellMetrics> {
    let local = hopp_sim::run_stream_with(
        SimConfig::with_system(SystemConfig::Baseline(BaselineKind::NoPrefetch)),
        SOLO_PID,
        cell.workload.build(SOLO_PID, cell.footprint, cell.seed),
        cell.footprint,
        1.25,
    )?;
    let report = hopp_sim::run_stream_with(
        SimConfig::with_system(cell.system),
        SOLO_PID,
        cell.workload.build(SOLO_PID, cell.footprint, cell.seed),
        cell.footprint,
        cell.ratio,
    )?;
    Ok(CellMetrics {
        completion_ns: report.completion.as_nanos(),
        local_ns: local.completion.as_nanos(),
        accesses: report.counters.accesses,
        major_faults: report.counters.major_faults,
        remote_reads: report.remote_reads(),
        accuracy: report.accuracy(),
        coverage: report.coverage(),
    })
}

/// The canonical cache key of a cell: a schema version, the cell's
/// grid coordinates, and the full [`SimConfig::fingerprint`] of the
/// run it performs. Any knob change anywhere in the config tree
/// changes this string and therefore the cell's cache slot. The
/// workload component is [`WorkloadSource::cache_tag`], which embeds a
/// scenario's file-content hash — *editing* a scenario TOML invalidates
/// its cached cells even when the path and name stay the same.
fn cell_fingerprint(cell: &Cell) -> String {
    let config = SimConfig::with_system(cell.system);
    format!(
        "hopp-lab-cell/v1|workload={}|system={}|seed={}|footprint={}|ratio={:?}|{}",
        cell.workload.cache_tag(),
        cell.system_label,
        cell.seed,
        cell.footprint,
        cell.ratio,
        config.fingerprint()
    )
}

/// FNV-1a 64-bit over the fingerprint string (hand-rolled; the
/// workspace has no external hashing dependency and `DefaultHasher` is
/// not stable across Rust releases).
fn fnv1a64(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes one cached cell. `f64` fields use Rust's shortest
/// roundtrip `Display`, so parsing them back yields the identical bit
/// pattern and cached cells render byte-identically to fresh ones.
fn cell_cache_json(fingerprint: &str, m: &CellMetrics) -> String {
    format!(
        "{{\"schema\":\"hopp-lab-cell/v1\",\"fingerprint\":\"{}\",\
         \"completion_ns\":{},\"local_ns\":{},\"accesses\":{},\"major_faults\":{},\
         \"remote_reads\":{},\"accuracy\":{},\"coverage\":{}}}\n",
        escape_json(fingerprint),
        m.completion_ns,
        m.local_ns,
        m.accesses,
        m.major_faults,
        m.remote_reads,
        m.accuracy,
        m.coverage
    )
}

/// Loads a cached cell, returning `None` on any mismatch (missing
/// file, wrong schema, fingerprint collision, parse failure) so the
/// cell is recomputed.
fn load_cached_cell(path: &Path, fingerprint: &str) -> Option<CellMetrics> {
    let doc = std::fs::read_to_string(path).ok()?;
    if json_str(&doc, "schema")? != "hopp-lab-cell/v1" {
        return None;
    }
    if json_str(&doc, "fingerprint")? != fingerprint {
        return None;
    }
    Some(CellMetrics {
        completion_ns: json_u64(&doc, "completion_ns")?,
        local_ns: json_u64(&doc, "local_ns")?,
        accesses: json_u64(&doc, "accesses")?,
        major_faults: json_u64(&doc, "major_faults")?,
        remote_reads: json_u64(&doc, "remote_reads")?,
        accuracy: json_f64(&doc, "accuracy")?,
        coverage: json_f64(&doc, "coverage")?,
    })
}

/// Renders the sweep artifact: per-cell rows in grid order, then
/// per-(workload, system) mean/min/max aggregates across seeds.
/// Contains only simulated quantities — never wall-clock time or
/// cache status — so cold/warm and 1-thread/N-thread runs emit
/// byte-identical documents.
fn render_sweep_json(spec: &SweepSpec, cells: &[Cell], outcomes: &[(CellOutcome, bool)]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"hopp-lab-sweep/v1\",\n  \"grid\": {");
    let _ = writeln!(
        out,
        "\"workloads\": [{}], \"systems\": [{}], \"seeds\": [{}], \
         \"footprint\": {}, \"spark_footprint\": {}, \"ratio\": {}}},",
        spec.workloads
            .iter()
            .map(|w| format!("\"{}\"", w.name()))
            .collect::<Vec<_>>()
            .join(", "),
        spec.systems
            .iter()
            .map(|(label, _)| format!("\"{}\"", escape_json(label)))
            .collect::<Vec<_>>()
            .join(", "),
        spec.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        spec.footprint,
        spec.spark_footprint,
        spec.ratio
    );
    out.push_str("  \"cells\": [\n");
    for (i, (cell, (outcome, _))) in cells.iter().zip(outcomes).enumerate() {
        let _ = write!(
            out,
            "    {{\"workload\": \"{}\", \"system\": \"{}\", \"seed\": {}, ",
            cell.workload.name(),
            escape_json(&cell.system_label),
            cell.seed
        );
        match outcome {
            Ok(m) => {
                let _ = write!(
                    out,
                    "\"completion_ns\": {}, \"local_ns\": {}, \"normalized\": {}, \
                     \"accuracy\": {}, \"coverage\": {}, \"accesses\": {}, \
                     \"major_faults\": {}, \"remote_reads\": {}}}",
                    m.completion_ns,
                    m.local_ns,
                    m.normalized(),
                    m.accuracy,
                    m.coverage,
                    m.accesses,
                    m.major_faults,
                    m.remote_reads
                );
            }
            Err(e) => {
                let _ = write!(out, "\"error\": \"{}\"}}", escape_json(e));
            }
        }
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n  \"aggregates\": [\n");
    let mut agg_rows = Vec::new();
    for workload in &spec.workloads {
        for (label, _) in &spec.systems {
            let ok_cells: Vec<&CellMetrics> = cells
                .iter()
                .zip(outcomes)
                .filter(|(c, _)| c.workload == *workload && c.system_label == *label)
                .filter_map(|(_, (o, _))| o.as_ref().ok())
                .collect();
            if ok_cells.is_empty() {
                continue;
            }
            let mut row = format!(
                "    {{\"workload\": \"{}\", \"system\": \"{}\", \"seeds\": {}",
                workload.name(),
                escape_json(label),
                ok_cells.len()
            );
            for (key, values) in [
                (
                    "normalized",
                    ok_cells.iter().map(|m| m.normalized()).collect::<Vec<_>>(),
                ),
                (
                    "accuracy",
                    ok_cells.iter().map(|m| m.accuracy).collect::<Vec<_>>(),
                ),
                (
                    "coverage",
                    ok_cells.iter().map(|m| m.coverage).collect::<Vec<_>>(),
                ),
            ] {
                let (mean, min, max) = mean_min_max(&values);
                let _ = write!(
                    row,
                    ", \"{key}\": {{\"mean\": {mean}, \"min\": {min}, \"max\": {max}}}"
                );
            }
            row.push('}');
            agg_rows.push(row);
        }
    }
    out.push_str(&agg_rows.join(",\n"));
    if !agg_rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Mean/min/max in first-to-last order (grid order), so float
/// summation order — and therefore the rendered digits — is fixed.
fn mean_min_max(values: &[f64]) -> (f64, f64, f64) {
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        sum += v;
        min = min.min(v);
        max = max.max(v);
    }
    (sum / values.len() as f64, min, max)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts the raw value text after `"key":` in a flat JSON document.
fn json_value<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let start = doc.find(&pattern)? + pattern.len();
    let rest = doc[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        // A string value: scan to the closing unescaped quote.
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => return Some(&stripped[..i]),
                _ => escaped = false,
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn json_str(doc: &str, key: &str) -> Option<String> {
    // Cached-cell strings only ever contain the escapes we emit.
    Some(
        json_value(doc, key)?
            .replace("\\\"", "\"")
            .replace("\\\\", "\\"),
    )
}

fn json_u64(doc: &str, key: &str) -> Option<u64> {
    json_value(doc, key)?.parse().ok()
}

fn json_f64(doc: &str, key: &str) -> Option<f64> {
    json_value(doc, key)?.parse().ok()
}

/// Resolves a workload by paper name, slug or unique prefix (the same
/// lookup `hoppsim --workload` uses).
pub fn workload_by_name(name: &str) -> Option<WorkloadKind> {
    let slug = |s: &str| s.to_ascii_lowercase().replace(['-', '_'], "");
    let wanted = slug(name);
    let exact = WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name) || slug(k.name()) == wanted);
    if exact.is_some() {
        return exact;
    }
    if wanted == "kmeans" {
        return Some(WorkloadKind::Kmeans);
    }
    let mut hits = WorkloadKind::ALL
        .into_iter()
        .filter(|k| slug(k.name()).starts_with(&wanted));
    let first = hits.next()?;
    hits.next().is_none().then_some(first)
}

/// Resolves a system label (`hopp`, `fastswap`, `leap`, `vma`,
/// `no-prefetch`, `depth-<N>`) to its configuration.
pub fn system_by_name(name: &str) -> Option<SystemConfig> {
    use hopp_sim::BaselineKind;
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "hopp" => Some(SystemConfig::hopp_default()),
        "fastswap" => Some(SystemConfig::Baseline(BaselineKind::Fastswap)),
        "leap" => Some(SystemConfig::Baseline(BaselineKind::Leap)),
        "vma" => Some(SystemConfig::Baseline(BaselineKind::Vma)),
        "noprefetch" | "no-prefetch" => Some(SystemConfig::Baseline(BaselineKind::NoPrefetch)),
        _ => {
            let depth = lower
                .strip_prefix("depth-")
                .or_else(|| lower.strip_prefix("depth"))?;
            depth
                .parse::<usize>()
                .ok()
                .map(|n| SystemConfig::Baseline(BaselineKind::DepthN(n)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(threads: usize, cache_dir: Option<PathBuf>) -> SweepSpec {
        SweepSpec {
            workloads: vec![WorkloadSource::Catalogue(WorkloadKind::Kmeans)],
            systems: vec![
                (
                    "fastswap".to_string(),
                    system_by_name("fastswap").expect("known system"),
                ),
                (
                    "hopp".to_string(),
                    system_by_name("hopp").expect("known system"),
                ),
            ],
            seeds: vec![42, 7],
            footprint: 256,
            spark_footprint: 256,
            ratio: 0.5,
            threads,
            cache_dir,
        }
    }

    #[test]
    fn pool_returns_results_in_index_order_at_any_thread_count() {
        let serial = run_indexed(1, 17, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(run_indexed(threads, 17, |i| i * i), serial);
        }
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn sweep_json_is_identical_across_thread_counts() {
        let one = run_sweep(&tiny_spec(1, None)).expect("sweep runs");
        let four = run_sweep(&tiny_spec(4, None)).expect("sweep runs");
        assert_eq!(one.json, four.json, "grid-order aggregation is byte-stable");
        assert_eq!(one.cells_run, 4);
        assert_eq!(one.cells_failed, 0);
        // Two progress events per cell, on the Lab track.
        assert_eq!(one.events.len(), 8);
        assert!(one
            .events
            .iter()
            .all(|e| e.event.component() == hopp_obs::Component::Lab));
    }

    #[test]
    fn cached_cells_render_byte_identically_to_fresh_ones() {
        let dir = std::env::temp_dir().join(format!("hopp-lab-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold = run_sweep(&tiny_spec(2, Some(dir.clone()))).expect("cold sweep runs");
        assert_eq!(cold.cells_cached, 0);
        let warm = run_sweep(&tiny_spec(2, Some(dir.clone()))).expect("warm sweep runs");
        assert_eq!(warm.cells_cached, 4, "every cell served from cache");
        assert_eq!(warm.cells_run, 0);
        assert_eq!(cold.json, warm.json, "cache roundtrip is byte-exact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_entries_are_invalidated_by_fingerprint_mismatch() {
        let m = CellMetrics {
            completion_ns: 10,
            local_ns: 5,
            accesses: 100,
            major_faults: 3,
            remote_reads: 7,
            accuracy: 0.25,
            coverage: 1.0 / 3.0,
        };
        let doc = cell_cache_json("fp-a", &m);
        let dir = std::env::temp_dir().join(format!("hopp-lab-fp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cell.json");
        std::fs::write(&path, &doc).expect("write cache entry");
        assert_eq!(load_cached_cell(&path, "fp-a"), Some(m));
        assert_eq!(load_cached_cell(&path, "fp-b"), None, "stale entries miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn f64_cache_roundtrip_is_bit_exact() {
        for v in [1.0 / 3.0, 0.1 + 0.2, f64::MIN_POSITIVE, 12345.678901234567] {
            let rendered = format!("{v}");
            let parsed: f64 = rendered.parse().expect("shortest display reparses");
            assert_eq!(parsed.to_bits(), v.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn lookups_resolve_names() {
        assert_eq!(workload_by_name("kmeans"), Some(WorkloadKind::Kmeans));
        assert_eq!(workload_by_name("npb-mg"), Some(WorkloadKind::NpbMg));
        assert_eq!(workload_by_name("zzz"), None);
        assert!(system_by_name("hopp").is_some());
        assert!(system_by_name("depth-32").is_some());
        assert!(system_by_name("warp-drive").is_none());
    }
}
