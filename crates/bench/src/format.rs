//! Plain-text table rendering for the experiments binary.

/// Renders a table: a header row plus data rows, columns padded to the
/// widest cell.
///
/// # Example
///
/// ```
/// let t = hopp_bench::format::render_table(
///     &["workload", "value"],
///     &[vec!["kmeans".into(), "0.98".into()]],
/// );
/// assert!(t.contains("kmeans"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        header.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", rule.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Renders the same header/rows as a JSON array of objects (one object
/// per row, keyed by the header). Numeric-looking cells are emitted as
/// JSON numbers so plotting scripts can consume the output directly;
/// everything else is an escaped string.
///
/// # Example
///
/// ```
/// let j = hopp_bench::format::render_json(
///     &["workload", "value"],
///     &[vec!["kmeans".into(), "0.98".into()]],
/// );
/// assert_eq!(j.trim(), r#"[{"workload": "kmeans", "value": 0.98}]"#);
/// ```
pub fn render_json(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('{');
        for (j, (key, cell)) in header.iter().zip(row).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", escape(key), json_value(cell)));
        }
        out.push('}');
    }
    out.push_str("]\n");
    out
}

fn json_value(cell: &str) -> String {
    // Bare numbers pass through; percentages become fractions of 100
    // stripped of the sign, everything else is a string.
    if cell.parse::<f64>().is_ok() {
        return cell.to_string();
    }
    if let Some(num) = cell.strip_suffix('%') {
        if num.parse::<f64>().is_ok() {
            return num.to_string();
        }
    }
    format!("\"{}\"", escape(cell))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders labelled values as a horizontal ASCII bar chart. Bars scale
/// to the largest magnitude; negative values extend left of the axis.
///
/// # Example
///
/// ```
/// let chart = hopp_bench::format::bar_chart(
///     &[("hopp".into(), 0.9), ("fastswap".into(), 0.6)],
///     20,
/// );
/// assert!(chart.contains("hopp"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let max_mag = items
        .iter()
        .map(|(_, v)| v.abs())
        .fold(f64::EPSILON, f64::max);
    let has_negative = items.iter().any(|(_, v)| *v < 0.0);
    let mut out = String::new();
    for (label, value) in items {
        let bars = ((value.abs() / max_mag) * width as f64).round() as usize;
        let bar = "#".repeat(bars);
        if has_negative {
            // Two-sided axis: negatives grow left, positives right.
            let pad = if *value < 0.0 { width - bars } else { width };
            out.push_str(&format!(
                "{label:<label_w$} {}{}|{} {value:+.3}
",
                " ".repeat(pad),
                if *value < 0.0 { bar.as_str() } else { "" },
                if *value >= 0.0 { bar.as_str() } else { "" },
            ));
        } else {
            out.push_str(&format!(
                "{label:<label_w$} |{bar} {value:.3}
"
            ));
        }
    }
    out
}

/// Renders a run's five latency histograms as an aligned table: one
/// row per quantity, quantiles in microseconds.
///
/// # Example
///
/// ```
/// let t = hopp_bench::format::latency_table(&Default::default());
/// assert!(t.contains("major_fault"));
/// assert!(t.contains("p99_us"));
/// ```
pub fn latency_table(l: &hopp_obs::LatencySummaries) -> String {
    let us = |ns: f64| format!("{:.3}", ns / 1_000.0);
    let row = |name: &str, s: &hopp_obs::HistogramSummary| -> Vec<String> {
        vec![
            name.to_string(),
            s.count.to_string(),
            us(s.mean),
            us(s.p50 as f64),
            us(s.p90 as f64),
            us(s.p99 as f64),
            us(s.max as f64),
        ]
    };
    render_table(
        &[
            "latency", "count", "mean_us", "p50_us", "p90_us", "p99_us", "max_us",
        ],
        &[
            row("major_fault", &l.major_fault),
            row("timeliness", &l.timeliness),
            row("inflight_wait", &l.inflight_wait),
            row("rdma_read", &l.rdma_read),
            row("rdma_write", &l.rdma_write),
        ],
    )
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a fraction with three decimals.
pub fn frac(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "bee"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{t}");
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.5), "50.00%");
        assert_eq!(frac(0.12345), "0.123");
    }

    #[test]
    fn latency_table_converts_to_microseconds() {
        let mut h = hopp_obs::Histogram::new();
        h.record(2_000);
        let l = hopp_obs::LatencySummaries {
            major_fault: h.summary(),
            ..Default::default()
        };
        let t = latency_table(&l);
        let fault_row = t
            .lines()
            .find(|l| l.contains("major_fault"))
            .expect("major_fault row");
        assert!(fault_row.contains("2.000"), "{t}");
        assert!(t.contains("rdma_write"));
    }

    #[test]
    fn json_types_cells_sensibly() {
        let j = render_json(
            &["name", "ratio", "pct", "weird"],
            &[vec![
                "a\"b".into(),
                "0.5".into(),
                "12.34%".into(),
                "n/a".into(),
            ]],
        );
        assert!(j.contains(r#""name": "a\"b""#), "{j}");
        assert!(j.contains(r#""ratio": 0.5"#));
        assert!(j.contains(r#""pct": 12.34"#), "percent suffix stripped");
        assert!(j.contains(r#""weird": "n/a""#));
    }

    #[test]
    fn json_empty_rows_is_empty_array() {
        assert_eq!(render_json(&["a"], &[]).trim(), "[]");
    }

    #[test]
    fn bar_chart_positive_only() {
        let c = bar_chart(&[("a".into(), 1.0), ("bb".into(), 0.5)], 10);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("|##########"), "{c}");
        assert!(lines[1].contains("|#####"), "{c}");
    }

    #[test]
    fn bar_chart_with_negatives_keeps_one_axis() {
        let c = bar_chart(&[("up".into(), 0.5), ("down".into(), -1.0)], 10);
        // Both lines place their axis at the same column.
        let cols: Vec<usize> = c.lines().map(|l| l.find('|').unwrap()).collect();
        assert_eq!(cols[0], cols[1], "{c}");
        assert!(c.contains("+0.500"));
        assert!(c.contains("-1.000"));
    }

    #[test]
    fn bar_chart_empty_is_empty() {
        assert_eq!(bar_chart(&[], 10), "");
    }
}
