//! `cargo xtask gate` — the perf/quality regression gate.
//!
//! The repository tracks two benchmark baselines next to the sources:
//! `BENCH_throughput.json` (wall-clock accesses/sec, noisy) and
//! `BENCH_quality.json` (prefetch coverage/accuracy/pollution, exactly
//! deterministic). The gate re-runs both experiments at the scale
//! recorded *inside* each committed baseline and diffs fresh rows
//! against committed rows, per workload × system cell:
//!
//! * **Throughput** rows are compared on their `vs_noprefetch` field:
//!   the best per-repeat *paired* speed ratio against the same
//!   workload's `noprefetch` run measured back-to-back in the same
//!   repeat. Host speed and per-workload simulation cost cancel out of
//!   the pair, so only *relative* regressions (a system getting slower
//!   than its own no-prefetch floor) trip the gate. A cell fails when
//!   the ratio drops more than 10 %. The `noprefetch` rows are the
//!   yardstick itself (ratio 1.0 by construction); absolute host-speed
//!   changes are invisible by design — wall-clock numbers are only
//!   comparable within one run. Baselines written before the
//!   `vs_noprefetch` field existed fall back to normalizing
//!   `accesses_per_sec` by the workload's noprefetch row.
//! * **Quality** rows are compared absolutely: coverage or accuracy
//!   dropping by more than 2 points, or pollution rising by more than
//!   2 points, fails. Timeliness is reported but not gated (it tracks
//!   simulated latency config, not prefetcher health).
//!
//! Expected regressions are waived *in the baseline file itself*, the
//! same reason-required shape as `hopp-check` waivers:
//!
//! ```json
//! "waivers": [
//!   {"row": "Kmeans-OMP/hopp", "metric": "coverage_pct",
//!    "reason": "PR 7 trades 3pt coverage for 2x less pollution"}
//! ]
//! ```
//!
//! A waiver with an empty reason fails the gate, and so does a stale
//! waiver that no longer matches any breach — waivers must be removed
//! once the regression they excuse is gone.

use std::path::Path;

use crate::experiments::{
    quality, quality_json, throughput, throughput_json, QualityRow, Scale, ThroughputRow,
};

/// Relative normalized-throughput drop that fails a cell.
pub const THROUGHPUT_DROP_LIMIT: f64 = 0.10;
/// Absolute percentage-point movement that fails a quality cell.
pub const QUALITY_POINT_LIMIT: f64 = 2.0;

/// One gate breach: a workload × system cell whose fresh value crossed
/// its threshold against the committed baseline, or a broken waiver.
#[derive(Clone, Debug, PartialEq)]
pub struct GateFinding {
    /// `workload/system` cell (or the waiver row for waiver findings).
    pub row: String,
    /// The metric that breached.
    pub metric: String,
    /// Committed value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Human-readable diff line.
    pub detail: String,
}

/// A waiver embedded in a baseline file.
#[derive(Clone, Debug, PartialEq)]
pub struct GateWaiver {
    /// `workload/system` cell the waiver covers.
    pub row: String,
    /// Metric the waiver covers.
    pub metric: String,
    /// Mandatory justification.
    pub reason: String,
}

/// Everything one gate run produced.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// Breaches that fail the gate (after waiver settlement).
    pub findings: Vec<GateFinding>,
    /// Breaches excused by a reasoned waiver.
    pub waived: Vec<GateFinding>,
    /// Cells compared across both baselines.
    pub rows_checked: usize,
    /// The rendered per-row diff report.
    pub report: String,
}

impl GateOutcome {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

// ---------------------------------------------------------------------
// Line-oriented extraction of the writer-controlled JSON.
//
// Both BENCH files are emitted one row object per line by
// `throughput_json` / `quality_json`, so a full JSON parser is overkill
// (and the workspace has no serde): a row is any line carrying both a
// "workload" and a "system" key, a waiver any line with "row" and
// "metric", and the scale header the line with "footprint".
// ---------------------------------------------------------------------

fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| c == ',' && !in_string(rest, i) || c == '}' && !in_string(rest, i))
        .map_or(rest.len(), |(i, _)| i);
    Some(rest[..end].trim())
}

/// True when byte `i` of `s` falls inside a double-quoted string (the
/// emitted values never contain escaped quotes).
fn in_string(s: &str, i: usize) -> bool {
    s[..i].matches('"').count() % 2 == 1
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    field_raw(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    field_raw(line, key)?.parse().ok()
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

/// A parsed baseline: its recorded scale, repeats (throughput only),
/// per-cell metric rows and waivers.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// The scale recorded in the file's `scale` block.
    pub scale: Scale,
    /// Recorded repeats (1 when the file has none).
    pub repeats: u32,
    /// `(workload, system, metric, value)` tuples, one per metric per
    /// row line.
    pub cells: Vec<(String, String, String, f64)>,
    /// Embedded waivers.
    pub waivers: Vec<GateWaiver>,
}

impl Baseline {
    fn value(&self, workload: &str, system: &str, metric: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|(w, s, m, _)| w == workload && s == system && m == metric)
            .map(|&(_, _, _, v)| v)
    }
}

/// Parses a BENCH baseline document. `metrics` names the per-row fields
/// to lift into comparable cells.
pub fn parse_baseline(doc: &str, metrics: &[&str]) -> Result<Baseline, String> {
    let mut base = Baseline {
        repeats: 1,
        ..Baseline::default()
    };
    let mut saw_scale = false;
    for line in doc.lines() {
        if let (Some(workload), Some(system)) =
            (field_str(line, "workload"), field_str(line, "system"))
        {
            for &m in metrics {
                if let Some(v) = field_f64(line, m) {
                    base.cells
                        .push((workload.to_string(), system.to_string(), m.to_string(), v));
                }
            }
        } else if let (Some(row), Some(metric)) =
            (field_str(line, "row"), field_str(line, "metric"))
        {
            base.waivers.push(GateWaiver {
                row: row.to_string(),
                metric: metric.to_string(),
                reason: field_str(line, "reason").unwrap_or_default().to_string(),
            });
        } else if let Some(fp) = field_u64(line, "footprint") {
            saw_scale = true;
            base.scale.footprint = fp;
            base.scale.spark_footprint = field_u64(line, "spark_footprint").unwrap_or(fp);
            base.scale.seed = field_u64(line, "seed").unwrap_or(base.scale.seed);
            if let Some(r) = field_u64(line, "repeats") {
                base.repeats = r.max(1) as u32;
            }
        }
    }
    if !saw_scale {
        return Err("baseline has no scale block (is it a BENCH_*.json file?)".to_string());
    }
    if base.cells.is_empty() {
        return Err("baseline has no comparable rows".to_string());
    }
    Ok(base)
}

/// The workload's own `noprefetch` accesses/sec in a row set — the
/// yardstick its other systems are normalized by.
fn noprefetch_of(cells: &[(String, String, String, f64)], workload: &str) -> Option<f64> {
    cells
        .iter()
        .find(|(w, s, m, _)| w == workload && s == "noprefetch" && m == "accesses_per_sec")
        .map(|&(_, _, _, v)| v)
        .filter(|v| *v > 0.0)
}

fn throughput_cells(rows: &[ThroughputRow]) -> Vec<(String, String, String, f64)> {
    let mut cells = Vec::new();
    for r in rows {
        for (m, v) in [
            ("accesses_per_sec", r.accesses_per_sec),
            ("vs_noprefetch", r.vs_noprefetch),
        ] {
            cells.push((r.workload.clone(), r.system.to_string(), m.to_string(), v));
        }
    }
    cells
}

fn quality_cells(rows: &[QualityRow]) -> Vec<(String, String, String, f64)> {
    let mut cells = Vec::new();
    for r in rows {
        for (m, v) in [
            ("coverage_pct", r.coverage_pct),
            ("accuracy_pct", r.accuracy_pct),
            ("pollution_pct", r.pollution_pct),
        ] {
            cells.push((r.workload.clone(), r.system.to_string(), m.to_string(), v));
        }
    }
    cells
}

/// Diffs fresh throughput rows against a committed baseline on the
/// paired `vs_noprefetch` ratio (>[`THROUGHPUT_DROP_LIMIT`] relative
/// drop fails). Falls back to normalizing `accesses_per_sec` by the
/// workload's noprefetch row for baselines that predate the field.
pub fn diff_throughput(base: &Baseline, fresh: &[ThroughputRow]) -> (Vec<GateFinding>, usize) {
    let fresh_cells = throughput_cells(fresh);
    let has_ratio = base.cells.iter().any(|(_, _, m, _)| m == "vs_noprefetch");
    let mut findings = Vec::new();
    let mut checked = 0;
    for (workload, system, metric, fresh_v) in &fresh_cells {
        // noprefetch rows are the yardstick, not a gated cell.
        if system == "noprefetch" {
            continue;
        }
        let (base_norm, fresh_norm) = if has_ratio {
            if metric != "vs_noprefetch" {
                continue;
            }
            let Some(base_v) = base.value(workload, system, metric) else {
                continue;
            };
            (base_v, *fresh_v)
        } else {
            if metric != "accesses_per_sec" {
                continue;
            }
            let Some(base_v) = base.value(workload, system, metric) else {
                continue;
            };
            let (Some(base_yard), Some(fresh_yard)) = (
                noprefetch_of(&base.cells, workload),
                noprefetch_of(&fresh_cells, workload),
            ) else {
                continue;
            };
            (base_v / base_yard, fresh_v / fresh_yard)
        };
        checked += 1;
        if fresh_norm < base_norm * (1.0 - THROUGHPUT_DROP_LIMIT) {
            let drop_pct = (1.0 - fresh_norm / base_norm) * 100.0;
            findings.push(GateFinding {
                row: format!("{workload}/{system}"),
                metric: "vs_noprefetch".to_string(),
                baseline: base_norm,
                fresh: fresh_norm,
                detail: format!(
                    "{workload}/{system}: speed vs noprefetch {fresh_norm:.3} vs baseline \
                     {base_norm:.3} (-{drop_pct:.1}%, limit {:.0}%)",
                    THROUGHPUT_DROP_LIMIT * 100.0
                ),
            });
        }
    }
    (findings, checked)
}

/// Diffs fresh quality rows against a committed baseline: coverage or
/// accuracy down, or pollution up, by more than
/// [`QUALITY_POINT_LIMIT`] points fails the cell.
pub fn diff_quality(base: &Baseline, fresh: &[QualityRow]) -> (Vec<GateFinding>, usize) {
    let mut findings = Vec::new();
    let mut checked = 0;
    for (workload, system, metric, fresh_v) in &quality_cells(fresh) {
        let Some(base_v) = base.value(workload, system, metric) else {
            continue;
        };
        checked += 1;
        let delta = fresh_v - base_v;
        let breached = if metric == "pollution_pct" {
            delta > QUALITY_POINT_LIMIT
        } else {
            delta < -QUALITY_POINT_LIMIT
        };
        if breached {
            findings.push(GateFinding {
                row: format!("{workload}/{system}"),
                metric: metric.clone(),
                baseline: base_v,
                fresh: *fresh_v,
                detail: format!(
                    "{workload}/{system}: {metric} {fresh_v:.2} vs baseline {base_v:.2} \
                     ({delta:+.2}pt, limit {QUALITY_POINT_LIMIT:.0}pt)"
                ),
            });
        }
    }
    (findings, checked)
}

/// Settles breaches against a baseline's waivers, hopp-check style:
/// a reasoned waiver excuses its matching breach; a reason-less waiver
/// and a waiver matching no breach are themselves findings.
pub fn settle_waivers(
    breaches: Vec<GateFinding>,
    waivers: &[GateWaiver],
) -> (Vec<GateFinding>, Vec<GateFinding>) {
    let mut failing = Vec::new();
    let mut waived = Vec::new();
    let mut used = vec![false; waivers.len()];
    for b in breaches {
        match waivers
            .iter()
            .position(|w| w.row == b.row && w.metric == b.metric)
        {
            Some(i) if !waivers[i].reason.trim().is_empty() => {
                used[i] = true;
                waived.push(b);
            }
            _ => failing.push(b),
        }
    }
    for (i, w) in waivers.iter().enumerate() {
        if w.reason.trim().is_empty() {
            failing.push(GateFinding {
                row: w.row.clone(),
                metric: w.metric.clone(),
                baseline: 0.0,
                fresh: 0.0,
                detail: format!(
                    "{}/{}: waiver has no reason — justify it or remove it",
                    w.row, w.metric
                ),
            });
        } else if !used[i] {
            failing.push(GateFinding {
                row: w.row.clone(),
                metric: w.metric.clone(),
                baseline: 0.0,
                fresh: 0.0,
                detail: format!(
                    "{}/{}: stale waiver — the breach it excused is gone, remove it",
                    w.row, w.metric
                ),
            });
        }
    }
    (failing, waived)
}

fn render(outcome: &GateOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.findings {
        out.push_str(&format!("FAIL  {}\n", f.detail));
    }
    for f in &outcome.waived {
        out.push_str(&format!("waive {}\n", f.detail));
    }
    out.push_str(&format!(
        "gate: {} cell(s) checked, {} breach(es), {} waived\n",
        outcome.rows_checked,
        outcome.findings.len(),
        outcome.waived.len()
    ));
    out
}

/// Runs the full gate against the baselines in `root` (the workspace
/// root holding `BENCH_throughput.json` and `BENCH_quality.json`).
///
/// `quick` caps throughput repeats at 3 (the floor the median paired
/// ratio needs); `update` rewrites both baselines from the fresh runs
/// instead of diffing (dropping any waivers — an updated baseline has
/// nothing left to excuse).
///
/// # Errors
///
/// Unreadable/unparseable baselines and failed simulation runs are
/// returned as a message; threshold breaches are *not* errors, they are
/// [`GateOutcome::findings`].
pub fn run_gate(root: &Path, quick: bool, update: bool) -> Result<GateOutcome, String> {
    let tp_path = root.join("BENCH_throughput.json");
    let q_path = root.join("BENCH_quality.json");
    let tp_doc =
        std::fs::read_to_string(&tp_path).map_err(|e| format!("{}: {e}", tp_path.display()))?;
    let q_doc =
        std::fs::read_to_string(&q_path).map_err(|e| format!("{}: {e}", q_path.display()))?;
    let tp_base = parse_baseline(&tp_doc, &["accesses_per_sec", "vs_noprefetch"])
        .map_err(|e| format!("{}: {e}", tp_path.display()))?;
    let q_base = parse_baseline(&q_doc, &["coverage_pct", "accuracy_pct", "pollution_pct"])
        .map_err(|e| format!("{}: {e}", q_path.display()))?;

    // Never fewer than 3 repeats: the median paired ratio needs a
    // middle element to discard one-sided host stalls. `--quick` runs
    // exactly 3 regardless of what the baseline recorded.
    let repeats = if quick { 3 } else { tp_base.repeats.max(3) };
    let tp_fresh = throughput(&tp_base.scale, repeats).map_err(|e| format!("throughput: {e}"))?;
    let q_fresh = quality(&q_base.scale).map_err(|e| format!("quality: {e}"))?;

    if update {
        let tp_out = throughput_json(&tp_base.scale, repeats, &tp_fresh);
        let q_out = quality_json(&q_base.scale, &q_fresh);
        std::fs::write(&tp_path, tp_out).map_err(|e| format!("{}: {e}", tp_path.display()))?;
        std::fs::write(&q_path, q_out).map_err(|e| format!("{}: {e}", q_path.display()))?;
        return Ok(GateOutcome {
            report: format!(
                "gate: rewrote {} and {}\n",
                tp_path.display(),
                q_path.display()
            ),
            ..GateOutcome::default()
        });
    }

    let (tp_breaches, tp_checked) = diff_throughput(&tp_base, &tp_fresh);
    let (q_breaches, q_checked) = diff_quality(&q_base, &q_fresh);
    let mut all_waivers = tp_base.waivers;
    all_waivers.extend(q_base.waivers);
    let mut breaches = tp_breaches;
    breaches.extend(q_breaches);
    let (findings, waived) = settle_waivers(breaches, &all_waivers);
    let mut outcome = GateOutcome {
        findings,
        waived,
        rows_checked: tp_checked + q_checked,
        ..GateOutcome::default()
    };
    outcome.report = render(&outcome);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, system: &'static str, aps: f64, ratio: f64) -> ThroughputRow {
        ThroughputRow {
            workload: workload.to_string(),
            system,
            accesses: 1_000,
            wall_secs: 1_000.0 / aps,
            accesses_per_sec: aps,
            vs_noprefetch: ratio,
        }
    }

    fn base_rows() -> Vec<ThroughputRow> {
        vec![
            row("Kmeans-OMP", "noprefetch", 100_000.0, 1.0),
            row("Kmeans-OMP", "hopp", 80_000.0, 0.8),
            row("Quicksort", "noprefetch", 100_000.0, 1.0),
            row("Quicksort", "hopp", 90_000.0, 0.9),
        ]
    }

    fn baseline_of(rows: &[ThroughputRow]) -> Baseline {
        let doc = crate::experiments::throughput_json(&Scale::quick(), 3, rows);
        parse_baseline(&doc, &["accesses_per_sec", "vs_noprefetch"]).unwrap()
    }

    #[test]
    fn injected_slowdown_fails_the_gate_naming_the_cell() {
        let base = baseline_of(&base_rows());
        // A uniformly 2x slower host leaves the paired ratios alone —
        // except the Quicksort/hopp cell, which lost an extra 20%
        // against its own noprefetch floor.
        let mut fresh = base_rows();
        for r in &mut fresh {
            r.accesses_per_sec /= 2.0;
        }
        let qs = fresh
            .iter_mut()
            .find(|r| r.workload == "Quicksort" && r.system == "hopp")
            .unwrap();
        qs.accesses_per_sec *= 0.8;
        qs.vs_noprefetch *= 0.8;
        let (findings, checked) = diff_throughput(&base, &fresh);
        assert_eq!(checked, 2);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].row, "Quicksort/hopp");
        assert!(findings[0].detail.contains("Quicksort/hopp"));
        assert!(findings[0].detail.contains("limit 10%"));
    }

    #[test]
    fn uniform_host_slowdown_passes_via_paired_ratios() {
        let base = baseline_of(&base_rows());
        let mut fresh = base_rows();
        for r in &mut fresh {
            r.accesses_per_sec /= 3.0;
        }
        let (findings, checked) = diff_throughput(&base, &fresh);
        assert_eq!(checked, 2);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn legacy_baselines_without_ratios_fall_back_to_normalized_accesses() {
        // Strip the vs_noprefetch cells to emulate a pre-field baseline.
        let mut base = baseline_of(&base_rows());
        base.cells.retain(|(_, _, m, _)| m == "accesses_per_sec");
        let mut fresh = base_rows();
        fresh
            .iter_mut()
            .find(|r| r.workload == "Kmeans-OMP" && r.system == "hopp")
            .unwrap()
            .accesses_per_sec *= 0.8;
        let (findings, checked) = diff_throughput(&base, &fresh);
        assert_eq!(checked, 2);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].row, "Kmeans-OMP/hopp");
    }

    fn qrow(workload: &str, system: &'static str, cov: f64, acc: f64, pol: f64) -> QualityRow {
        QualityRow {
            workload: workload.to_string(),
            system,
            accesses: 1_000,
            prefetched: 100,
            prefetch_hits: 90,
            wasted: 10,
            coverage_pct: cov,
            accuracy_pct: acc,
            pollution_pct: pol,
            mean_timeliness_ns: 1_000,
        }
    }

    #[test]
    fn quality_gate_fires_on_coverage_drop_and_pollution_rise_only() {
        let base_rows = vec![qrow("Kmeans-OMP", "hopp", 60.0, 90.0, 10.0)];
        let doc = crate::experiments::quality_json(&Scale::quick(), &base_rows);
        let base =
            parse_baseline(&doc, &["coverage_pct", "accuracy_pct", "pollution_pct"]).unwrap();
        // Within limits: +1.9pt pollution, -1.9pt coverage.
        let ok = vec![qrow("Kmeans-OMP", "hopp", 58.1, 90.0, 11.9)];
        assert!(diff_quality(&base, &ok).0.is_empty());
        // Coverage down 2.5pt and pollution up 2.5pt: two findings.
        let bad = vec![qrow("Kmeans-OMP", "hopp", 57.5, 90.0, 12.5)];
        let (findings, checked) = diff_quality(&base, &bad);
        assert_eq!(checked, 3);
        let metrics: Vec<&str> = findings.iter().map(|f| f.metric.as_str()).collect();
        assert_eq!(metrics, ["coverage_pct", "pollution_pct"], "{findings:?}");
        assert!(findings[0].row == "Kmeans-OMP/hopp");
    }

    #[test]
    fn waivers_need_reasons_and_must_not_go_stale() {
        let breach = GateFinding {
            row: "Kmeans-OMP/hopp".to_string(),
            metric: "coverage_pct".to_string(),
            baseline: 60.0,
            fresh: 55.0,
            detail: "x".to_string(),
        };
        // Reasoned waiver: breach excused.
        let w = GateWaiver {
            row: "Kmeans-OMP/hopp".to_string(),
            metric: "coverage_pct".to_string(),
            reason: "expected: PR trades coverage for pollution".to_string(),
        };
        let (failing, waived) = settle_waivers(vec![breach.clone()], std::slice::from_ref(&w));
        assert!(failing.is_empty());
        assert_eq!(waived.len(), 1);
        // Reason-less waiver: breach stays AND the waiver is a finding.
        let bare = GateWaiver {
            reason: String::new(),
            ..w.clone()
        };
        let (failing, waived) = settle_waivers(vec![breach], &[bare]);
        assert_eq!(failing.len(), 2);
        assert!(waived.is_empty());
        // Stale waiver: no breach left, the waiver itself fails.
        let (failing, _) = settle_waivers(Vec::new(), &[w]);
        assert_eq!(failing.len(), 1);
        assert!(failing[0].detail.contains("stale"));
    }

    #[test]
    fn baseline_parsing_recovers_scale_rows_and_waivers() {
        let mut doc = crate::experiments::throughput_json(
            &Scale {
                footprint: 2_048,
                spark_footprint: 1_024,
                seed: 9,
            },
            5,
            &base_rows(),
        );
        doc = doc.replace(
            "  \"rows\": [",
            "  \"waivers\": [\n    {\"row\": \"Kmeans-OMP/hopp\", \"metric\": \"accesses_per_sec\", \"reason\": \"known\"}\n  ],\n  \"rows\": [",
        );
        let base = parse_baseline(&doc, &["accesses_per_sec", "vs_noprefetch"]).unwrap();
        assert_eq!(base.scale.footprint, 2_048);
        assert_eq!(base.scale.spark_footprint, 1_024);
        assert_eq!(base.scale.seed, 9);
        assert_eq!(base.repeats, 5);
        assert_eq!(base.cells.len(), 8);
        assert_eq!(base.waivers.len(), 1);
        assert_eq!(base.waivers[0].reason, "known");
        // Summary lines (workload but no system) are not rows.
        assert!(base
            .value("Kmeans-OMP", "hopp", "accesses_per_sec")
            .is_some());
    }
}
