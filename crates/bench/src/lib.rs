#![allow(clippy::type_complexity)]
//! Experiment harness: one function per table/figure of the paper.
//!
//! Every entry in the paper's evaluation (§VI) has a generator here that
//! runs the full simulation stack and returns the same rows/series the
//! paper reports. The `experiments` binary pretty-prints them; the
//! Criterion benches in `benches/` time representative configurations.
//!
//! Absolute numbers differ from the paper's hardware testbed (this is a
//! simulator), but the comparisons — who wins, by roughly what factor,
//! where the crossovers fall — are the reproduction target. See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record.

pub mod experiments;
pub mod format;
pub mod gate;
pub mod lab;

pub use experiments::Scale;
