//! Regenerates every table and figure of the HoPP paper.
//!
//! ```text
//! cargo run --release -p hopp-bench --bin experiments -- all
//! cargo run --release -p hopp-bench --bin experiments -- fig9 fig22
//! cargo run --release -p hopp-bench --bin experiments -- --quick all
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use hopp_bench::experiments as ex;
use hopp_bench::format::{bar_chart, frac, pct, render_json, render_table};
use hopp_bench::Scale;

/// `--json`: emit machine-readable rows instead of aligned tables.
static JSON_MODE: AtomicBool = AtomicBool::new(false);
/// `--chart`: append ASCII bar charts to the key comparison figures.
static CHART_MODE: AtomicBool = AtomicBool::new(false);

/// Renders a table or JSON depending on the output mode.
fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    if JSON_MODE.load(Ordering::Relaxed) {
        render_json(header, rows)
    } else {
        render_table(header, rows)
    }
}

const ALL: [&str; 31] = [
    "throughput",
    "table2",
    "table3",
    "table5",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "motivate",
    "intensity",
    "channels",
    "hugepage",
    "markov",
    "reclaim",
    "sensitivity",
    "scale",
    "warmup",
    "leapwin",
    "latency",
    "fabric",
    "faults",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if args.iter().any(|a| a == "--json") {
        JSON_MODE.store(true, Ordering::Relaxed);
        args.retain(|a| a != "--json");
    }
    if args.iter().any(|a| a == "--chart") {
        CHART_MODE.store(true, Ordering::Relaxed);
        args.retain(|a| a != "--chart");
    }
    let mut overrides: Vec<(String, u64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if (args[i] == "--seed" || args[i] == "--footprint") && i + 1 < args.len() {
            if let Ok(v) = args[i + 1].parse::<u64>() {
                overrides.push((args[i].clone(), v));
                args.drain(i..=i + 1);
                continue;
            }
        }
        i += 1;
    }
    let mut scale = if quick {
        Scale::quick()
    } else {
        Scale::default()
    };
    for (flag, v) in &overrides {
        match flag.as_str() {
            "--seed" => scale.seed = *v,
            "--footprint" => {
                scale.footprint = *v;
                scale.spark_footprint = *v;
            }
            _ => unreachable!(),
        }
    }
    if args.is_empty() {
        eprintln!("usage: experiments [--quick] [--json] <all|throughput|table2..table5|fig9..fig22|motivate|intensity|channels|hugepage|markov|reclaim|sensitivity|hwcost> ...");
        std::process::exit(2);
    }
    let selected: Vec<String> = if args.iter().any(|a| a == "all") {
        let mut v: Vec<String> = ALL.iter().map(|s| s.to_string()).collect();
        v.push("hwcost".to_string());
        v
    } else {
        args
    };
    for name in selected {
        run(&name, &scale);
    }
}

fn run(name: &str, scale: &Scale) {
    match name {
        "table2" => table2(scale),
        "table3" => table3(scale),
        "table5" => table5(scale),
        "fig9" | "fig10" | "fig11" => fig9_to_11(scale, name),
        "fig12" | "fig13" | "fig14" => fig12_to_14(scale, name),
        "fig15" => fig15(scale),
        "fig16" | "fig17" => fig16_17(scale, name),
        "fig18" | "fig19" | "fig20" => fig18_20(scale, name),
        "fig21" => fig21(scale),
        "fig22" => fig22(scale),
        "motivate" => motivate(scale),
        "intensity" => intensity(scale),
        "channels" => channels(scale),
        "hugepage" => hugepage(scale),
        "markov" => markov(scale),
        "reclaim" => reclaim(scale),
        "sensitivity" => sensitivity(scale),
        "scale" => scale_robustness(),
        "warmup" => warmup(scale),
        "leapwin" => leapwin(scale),
        "latency" => latency(scale),
        "fabric" => fabric(scale),
        "faults" => faults(scale),
        "throughput" => throughput(scale),
        "hwcost" => hwcost(),
        other => eprintln!("unknown experiment: {other}"),
    }
}

fn table2(scale: &Scale) {
    println!("\n## Table II — hot pages identified / memory accesses (%), by HPD threshold N\n");
    let data = ex::table2(scale);
    let ns: Vec<String> = data[0].1.iter().map(|(n, _)| format!("N={n}")).collect();
    let mut header: Vec<&str> = vec!["workload"];
    header.extend(ns.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(kind, series)| {
            let mut row = vec![kind.name().to_string()];
            row.extend(series.iter().map(|(_, v)| format!("{v:.2}%")));
            row
        })
        .collect();
    print!("{}", render(&header, &rows));
}

fn table3(scale: &Scale) {
    println!("\n## Table III — RPT cache hit rate by capacity\n");
    let data = ex::table3(scale);
    let sizes: Vec<String> = data[0].1.iter().map(|(k, _)| format!("{k}KB")).collect();
    let mut header: Vec<&str> = vec!["workload"];
    header.extend(sizes.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(kind, series)| {
            let mut row = vec![kind.name().to_string()];
            row.extend(series.iter().map(|(_, v)| frac(*v)));
            row
        })
        .collect();
    print!("{}", render(&header, &rows));
}

fn table5(scale: &Scale) {
    println!("\n## Table V — DRAM bandwidth overhead of HPD writes and RPT queries (%)\n");
    let rows: Vec<Vec<String>> = ex::table5(scale)
        .into_iter()
        .map(|(kind, hpd, rpt)| {
            vec![
                kind.name().to_string(),
                format!("{hpd:.4}%"),
                format!("{rpt:.5}%"),
            ]
        })
        .collect();
    print!("{}", render(&["workload", "HPD", "RPT"], &rows));
}

fn fig9_to_11(scale: &Scale, which: &str) {
    let (half, quarter) = ex::fig9_matrix(scale);
    match which {
        "fig9" => {
            println!("\n## Fig 9 — normalized performance, non-JVM workloads\n");
            let header = ["workload", "FS@50%", "HoPP@50%", "FS@25%", "HoPP@25%"];
            let rows: Vec<Vec<String>> = half
                .iter()
                .zip(&quarter)
                .map(|(h, q)| {
                    vec![
                        h.workload.name().to_string(),
                        frac(h.normalized(&h.fastswap)),
                        frac(h.normalized(&h.hopp)),
                        frac(q.normalized(&q.fastswap)),
                        frac(q.normalized(&q.hopp)),
                    ]
                })
                .collect();
            print!("{}", render(&header, &rows));
            let avg = |f: &dyn Fn(&ex::PerfRecord) -> f64, v: &[ex::PerfRecord]| {
                v.iter().map(f).sum::<f64>() / v.len() as f64
            };
            println!(
                "avg@50%: fastswap {} hopp {} | avg@25%: fastswap {} hopp {}",
                frac(avg(&|r| r.normalized(&r.fastswap), &half)),
                frac(avg(&|r| r.normalized(&r.hopp), &half)),
                frac(avg(&|r| r.normalized(&r.fastswap), &quarter)),
                frac(avg(&|r| r.normalized(&r.hopp), &quarter)),
            );
            if CHART_MODE.load(Ordering::Relaxed) {
                let mut items = Vec::new();
                for r in &half {
                    items.push((
                        format!("{} (FS)", r.workload.name()),
                        r.normalized(&r.fastswap),
                    ));
                    items.push((
                        format!("{} (HoPP)", r.workload.name()),
                        r.normalized(&r.hopp),
                    ));
                }
                println!(
                    "\nnormalized performance @50% local:\n{}",
                    bar_chart(&items, 40)
                );
            }
        }
        "fig10" => {
            println!("\n## Fig 10 — prefetch accuracy, non-JVM workloads (50% local)\n");
            let rows: Vec<Vec<String>> = half
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.accuracy()),
                        pct(r.hopp.accuracy()),
                    ]
                })
                .collect();
            print!("{}", render(&["workload", "Fastswap", "HoPP"], &rows));
        }
        _ => {
            println!("\n## Fig 11 — prefetch coverage, non-JVM workloads (50% local)\n");
            let header = [
                "workload",
                "Fastswap",
                "HoPP total",
                "HoPP swapcache",
                "HoPP DRAM-hit",
            ];
            let rows: Vec<Vec<String>> = half
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.coverage()),
                        pct(r.hopp.coverage()),
                        pct(r.hopp.coverage_swapcache()),
                        pct(r.hopp.coverage_injected()),
                    ]
                })
                .collect();
            print!("{}", render(&header, &rows));
        }
    }
}

fn fig12_to_14(scale: &Scale, which: &str) {
    let recs = ex::fig12_matrix(scale);
    match which {
        "fig12" => {
            println!("\n## Fig 12 — normalized performance, Spark workloads (1/3 local)\n");
            let rows: Vec<Vec<String>> = recs
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        frac(r.normalized(&r.fastswap)),
                        frac(r.normalized(&r.hopp)),
                    ]
                })
                .collect();
            print!("{}", render(&["workload", "Fastswap", "HoPP"], &rows));
        }
        "fig13" => {
            println!("\n## Fig 13 — prefetch accuracy, Spark workloads\n");
            let rows: Vec<Vec<String>> = recs
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.accuracy()),
                        pct(r.hopp.accuracy()),
                    ]
                })
                .collect();
            print!("{}", render(&["workload", "Fastswap", "HoPP"], &rows));
        }
        _ => {
            println!("\n## Fig 14 — prefetch coverage, Spark workloads\n");
            let rows: Vec<Vec<String>> = recs
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.coverage()),
                        pct(r.hopp.coverage()),
                    ]
                })
                .collect();
            print!("{}", render(&["workload", "Fastswap", "HoPP"], &rows));
        }
    }
}

fn fig15(scale: &Scale) {
    println!("\n## Fig 15 — per-app speedup (CT_fastswap/CT_hopp) when co-running\n");
    let mut rows = Vec::new();
    for (pair, speedups) in ex::fig15(scale) {
        for (kind, s) in speedups {
            rows.push(vec![
                pair.clone(),
                kind.name().to_string(),
                format!("{s:.2}x"),
            ]);
        }
    }
    print!("{}", render(&["pair", "app", "speedup"], &rows));
}

fn fig16_17(scale: &Scale, which: &str) {
    let data = ex::fig16_17(scale);
    if which == "fig16" {
        println!("\n## Fig 16 — normalized performance: Depth-N vs Fastswap vs HoPP (50% local)\n");
        let header = ["workload", "Depth-16", "Depth-32", "Fastswap", "HoPP"];
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|row| {
                let mut cells = vec![row.workload.name().to_string()];
                cells.extend(row.systems.iter().map(|(_, np, _)| frac(*np)));
                cells
            })
            .collect();
        print!("{}", render(&header, &rows));
    } else {
        println!("\n## Fig 17 — remote accesses normalized to Fastswap-without-prefetching\n");
        let header = ["workload", "Depth-16", "Depth-32", "Fastswap", "HoPP"];
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|row| {
                let mut cells = vec![row.workload.name().to_string()];
                cells.extend(row.systems.iter().map(|(_, _, rr)| frac(*rr)));
                cells
            })
            .collect();
        print!("{}", render(&header, &rows));
    }
}

fn fig18_20(scale: &Scale, which: &str) {
    let data = ex::fig18_20(scale);
    match which {
        "fig18" => {
            println!("\n## Fig 18 — speedup over Fastswap as tiers are added\n");
            let header = ["workload", "SSP", "SSP+LSP", "SSP+LSP+RSP"];
            let rows: Vec<Vec<String>> = data
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.speedup[0]),
                        pct(r.speedup[1]),
                        pct(r.speedup[2]),
                    ]
                })
                .collect();
            print!("{}", render(&header, &rows));
        }
        "fig19" => {
            println!("\n## Fig 19 — per-tier prefetch accuracy (full system)\n");
            let header = ["workload", "SSP", "LSP", "RSP"];
            let rows: Vec<Vec<String>> = data
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.tier_accuracy[0]),
                        pct(r.tier_accuracy[1]),
                        pct(r.tier_accuracy[2]),
                    ]
                })
                .collect();
            print!("{}", render(&header, &rows));
        }
        _ => {
            println!("\n## Fig 20 — coverage contributed by each tier (full system)\n");
            let header = ["workload", "SSP", "LSP", "RSP"];
            let rows: Vec<Vec<String>> = data
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.tier_coverage[0]),
                        pct(r.tier_coverage[1]),
                        pct(r.tier_coverage[2]),
                    ]
                })
                .collect();
            print!("{}", render(&header, &rows));
        }
    }
}

fn fig21(scale: &Scale) {
    println!("\n## Fig 21 — normalized performance vs (accuracy, coverage), 50% local\n");
    let rows: Vec<Vec<String>> = ex::fig21(scale)
        .into_iter()
        .map(|p| {
            vec![
                p.workload.name().to_string(),
                p.system.to_string(),
                frac(p.accuracy),
                frac(p.coverage),
                frac(p.normalized),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &["workload", "system", "accuracy", "coverage", "norm-perf"],
            &rows
        )
    );
}

fn fig22(scale: &Scale) {
    println!(
        "\n## Fig 22 — technique ablation on the §VI-E microbenchmark (speedup vs Fastswap)\n"
    );
    let rows: Vec<Vec<String>> = ex::fig22(scale)
        .into_iter()
        .map(|(name, s)| vec![name.to_string(), pct(s)])
        .collect();
    print!("{}", render(&["system", "speedup"], &rows));
    if CHART_MODE.load(Ordering::Relaxed) {
        let items: Vec<(String, f64)> = ex::fig22(scale)
            .into_iter()
            .map(|(n, s)| (n.to_string(), s))
            .collect();
        println!("\n{}", bar_chart(&items, 30));
    }
    println!("\nwith periodic 8x latency bursts (§III-E's volatility):\n");
    let rows: Vec<Vec<String>> = ex::fig22_volatile(scale)
        .into_iter()
        .map(|(name, s)| vec![name.to_string(), pct(s)])
        .collect();
    print!(
        "{}",
        render(&["system", "speedup vs Fastswap (volatile)"], &rows)
    );
}

fn motivate(scale: &Scale) {
    println!("\n## §II-B study — Leap vs full-trace majority prefetching (SSP-only HoPP)\n");
    let rows: Vec<Vec<String>> = ex::motivate(scale)
        .into_iter()
        .map(|(kind, leap, full)| {
            vec![
                kind.name().to_string(),
                pct(leap[0]),
                pct(leap[1]),
                pct(full[0]),
                pct(full[1]),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &[
                "workload",
                "Leap acc",
                "Leap cov",
                "full-trace acc",
                "full-trace cov"
            ],
            &rows
        )
    );
}

fn intensity(scale: &Scale) {
    println!("\n## Extension — prefetch-intensity sweep (§III-E knob; 50% local)\n");
    let mut rows = Vec::new();
    for (kind, series) in ex::intensity_sweep(scale) {
        for (intensity, np, cov_sc, cov_inj) in series {
            rows.push(vec![
                kind.name().to_string(),
                intensity.to_string(),
                frac(np),
                pct(cov_sc),
                pct(cov_inj),
            ]);
        }
    }
    print!(
        "{}",
        render(
            &[
                "workload",
                "intensity",
                "norm-perf",
                "cov swapcache",
                "cov DRAM-hit"
            ],
            &rows
        )
    );
}

fn channels(scale: &Scale) {
    println!("\n## Extension — interleaved memory channels (§III-B; per-channel N = 8/channels)\n");
    let mut rows = Vec::new();
    for (kind, series) in ex::channels_sweep(scale) {
        for (ch, ratio, cov, np) in series {
            rows.push(vec![
                kind.name().to_string(),
                ch.to_string(),
                format!("{ratio:.2}%"),
                pct(cov),
                frac(np),
            ]);
        }
    }
    print!(
        "{}",
        render(
            &["workload", "channels", "hot ratio", "coverage", "norm-perf"],
            &rows
        )
    );
}

fn hugepage(scale: &Scale) {
    println!("\n## Extension — huge-page batched prefetch (§IV; 512 pages per request)\n");
    let rows: Vec<Vec<String>> = ex::hugepage_study(scale)
        .into_iter()
        .map(|(kind, batching, np, reads, pages)| {
            vec![
                kind.name().to_string(),
                if batching {
                    "2MB batches"
                } else {
                    "page-by-page"
                }
                .to_string(),
                frac(np),
                reads.to_string(),
                pages.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &[
                "workload",
                "mode",
                "norm-perf",
                "rdma requests",
                "pages moved"
            ],
            &rows
        )
    );
}

fn markov(scale: &Scale) {
    println!("\n## Extension — Markov trainer vs adaptive three-tier (§III-D design space)\n");
    let mut rows = Vec::new();
    for (kind, series) in ex::markov_study(scale) {
        for (name, acc, cov, np) in series {
            rows.push(vec![
                kind.name().to_string(),
                name.to_string(),
                pct(acc),
                pct(cov),
                frac(np),
            ]);
        }
    }
    print!(
        "{}",
        render(
            &["workload", "trainer", "accuracy", "coverage", "norm-perf"],
            &rows
        )
    );
}

fn reclaim(scale: &Scale) {
    println!("\n## Extension — trace-assisted reclaim (§IV; hot pages get a second chance)\n");
    let mut rows = Vec::new();
    for (kind, series) in ex::reclaim_study(scale) {
        for (window, majors, np) in series {
            rows.push(vec![
                kind.name().to_string(),
                window.to_string(),
                majors.to_string(),
                frac(np),
            ]);
        }
    }
    print!(
        "{}",
        render(
            &["workload", "hot window", "major faults", "norm-perf"],
            &rows
        )
    );
}

fn sensitivity(scale: &Scale) {
    println!("\n## Extension — STT sensitivity: history L x clustering distance\n");
    let mut rows = Vec::new();
    for (kind, series) in ex::stt_sensitivity(scale) {
        for (l, delta, cov, acc) in series {
            rows.push(vec![
                kind.name().to_string(),
                l.to_string(),
                delta.to_string(),
                pct(cov),
                pct(acc),
            ]);
        }
    }
    print!(
        "{}",
        render(&["workload", "L", "delta", "coverage", "accuracy"], &rows)
    );
}

fn scale_robustness() {
    println!("\n## Extension — scale robustness of the headline comparison\n");
    let rows: Vec<Vec<String>> = ex::scale_robustness()
        .into_iter()
        .map(|(fp, seed, kind, fs, hp)| {
            vec![
                fp.to_string(),
                seed.to_string(),
                kind.name().to_string(),
                frac(fs),
                frac(hp),
                frac(hp / fs),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &[
                "footprint",
                "seed",
                "workload",
                "fastswap",
                "hopp",
                "hopp/fastswap"
            ],
            &rows
        )
    );
}

fn warmup(scale: &Scale) {
    println!("\n## Extension — warmup: major faults per run window (§VI-E dynamics)\n");
    let data = ex::warmup(scale);
    let windows = data[0].1.len();
    let labels: Vec<String> = (1..=windows).map(|w| format!("w{w}")).collect();
    let mut header: Vec<&str> = vec!["system"];
    header.extend(labels.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(name, w)| {
            let mut row = vec![name.to_string()];
            row.extend(w.iter().map(|v| v.to_string()));
            row
        })
        .collect();
    print!("{}", render(&header, &rows));
}

fn leapwin(scale: &Scale) {
    println!("\n## Extension — Leap's adaptive prefetch window vs fixed depth\n");
    let rows: Vec<Vec<String>> = ex::leap_window(scale)
        .into_iter()
        .map(|(kind, cf, ca, nf, na)| {
            vec![
                kind.name().to_string(),
                pct(cf),
                pct(ca),
                frac(nf),
                frac(na),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &[
                "workload",
                "fixed cov",
                "adaptive cov",
                "fixed perf",
                "adaptive perf"
            ],
            &rows
        )
    );
}

fn latency(scale: &Scale) {
    println!("\n## Observability — latency distributions (kmeans, 50% local)\n");
    for (system, summaries) in ex::latency_study(scale) {
        println!("### {system}\n");
        print!("{}", hopp_bench::format::latency_table(&summaries));
        println!();
    }
}

fn fabric(scale: &Scale) {
    println!("\n## hopp-fabric — node-count sweep (kmeans, HoPP intensity 4, 25% local)\n");
    let rows: Vec<Vec<String>> = ex::fabric_sweep(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.placement.to_string(),
                frac(r.normalized),
                format!("{}", r.major_p99),
                format!("{}", r.queueing),
                r.reads.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &[
                "nodes",
                "placement",
                "norm perf",
                "major p99",
                "queueing",
                "reads"
            ],
            &rows
        )
    );
}

fn faults(scale: &Scale) {
    println!("\n## hopp-fabric — fault injection (kmeans, 4 nodes, replication 2, 50% local)\n");
    let rows: Vec<Vec<String>> = ex::fault_study(scale)
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.system.to_string(),
                frac(r.normalized),
                format!("{}", r.major_p99),
                r.failovers.to_string(),
                r.retries.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &[
                "scenario",
                "system",
                "norm perf",
                "major p99",
                "failovers",
                "retries"
            ],
            &rows
        )
    );
}

fn throughput(scale: &Scale) {
    const REPEATS: u32 = 3;
    println!(
        "\n## Throughput — simulator wall-clock accesses/sec (50% local, best of {REPEATS})\n"
    );
    let rows = ex::throughput(scale, REPEATS);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.name().to_string(),
                r.system.to_string(),
                r.accesses.to_string(),
                format!("{:.1} ms", r.wall_secs * 1e3),
                format!("{:.0}", r.accesses_per_sec),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            &["workload", "system", "accesses", "wall", "accesses/sec"],
            &cells
        )
    );
    // The tracked perf trajectory lives at the repo root; the bench
    // crate's manifest dir is `crates/bench`, two levels below it.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = ex::throughput_json(scale, REPEATS, &rows);
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
}

fn hwcost() {
    println!("\n## §VI-F — hardware cost (CACTI 3.0, 22nm)\n");
    let rows: Vec<Vec<String>> = ex::hwcost()
        .into_iter()
        .map(|(name, area, power)| vec![name, format!("{area:.6} mm^2"), format!("{power:.4} mW")])
        .collect();
    print!("{}", render(&["module", "area", "static power"], &rows));
}
