//! Regenerates every table and figure of the HoPP paper.
//!
//! ```text
//! cargo run --release -p hopp-bench --bin experiments -- all
//! cargo run --release -p hopp-bench --bin experiments -- fig9 fig22
//! cargo run --release -p hopp-bench --bin experiments -- --quick --threads 4 all
//! cargo run --release -p hopp-bench --bin experiments -- sweep --quick --threads 4
//! ```
//!
//! Experiments run through the hopp-lab pool (`--threads N`, default
//! 1): each experiment renders into its own buffer and the buffers are
//! printed in selection order, so output is byte-identical at any
//! thread count. The `sweep` subcommand runs a (workload × system ×
//! seed) grid with per-cell disk caching — see `docs/testing.md`.

use std::sync::atomic::{AtomicBool, Ordering};

use hopp_bench::experiments as ex;
use hopp_bench::format::{bar_chart, frac, pct, render_json, render_table};
use hopp_bench::{lab, Scale};
use hopp_scn::{Scenario, WorkloadSource};
use hopp_types::Result;

/// `--json`: emit machine-readable rows instead of aligned tables.
static JSON_MODE: AtomicBool = AtomicBool::new(false);
/// `--chart`: append ASCII bar charts to the key comparison figures.
static CHART_MODE: AtomicBool = AtomicBool::new(false);

/// Renders a table or JSON depending on the output mode.
fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    if JSON_MODE.load(Ordering::Relaxed) {
        render_json(header, rows)
    } else {
        render_table(header, rows)
    }
}

const ALL: [&str; 32] = [
    "throughput",
    "quality",
    "table2",
    "table3",
    "table5",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "motivate",
    "intensity",
    "channels",
    "hugepage",
    "markov",
    "reclaim",
    "sensitivity",
    "scale",
    "warmup",
    "leapwin",
    "latency",
    "fabric",
    "faults",
];

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if args.iter().any(|a| a == "--json") {
        JSON_MODE.store(true, Ordering::Relaxed);
        args.retain(|a| a != "--json");
    }
    if args.iter().any(|a| a == "--chart") {
        CHART_MODE.store(true, Ordering::Relaxed);
        args.retain(|a| a != "--chart");
    }
    let full = args.iter().any(|a| a == "--full");
    args.retain(|a| a != "--full");
    let mut overrides: Vec<(String, u64)> = Vec::new();
    let mut threads: usize = 1;
    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if (args[i] == "--seed" || args[i] == "--footprint") && i + 1 < args.len() {
            if let Ok(v) = args[i + 1].parse::<u64>() {
                overrides.push((args[i].clone(), v));
                args.drain(i..=i + 1);
                continue;
            }
        }
        if args[i] == "--threads" && i + 1 < args.len() {
            if let Ok(v) = args[i + 1].parse::<usize>() {
                threads = v.max(1);
                args.drain(i..=i + 1);
                continue;
            }
        }
        if args[i] == "--scenarios" && i + 1 < args.len() {
            match load_scenarios(&args[i + 1]) {
                Ok(loaded) => scenarios.extend(loaded),
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            }
            args.drain(i..=i + 1);
            continue;
        }
        i += 1;
    }
    let mut scale = if quick {
        Scale::quick()
    } else {
        Scale::default()
    };
    for (flag, v) in &overrides {
        match flag.as_str() {
            "--seed" => scale.seed = *v,
            "--footprint" => {
                scale.footprint = *v;
                scale.spark_footprint = *v;
            }
            _ => unreachable!(),
        }
    }
    if args.first().map(String::as_str) == Some("sweep") {
        return sweep_main(&args[1..], &scale, threads, full, scenarios);
    }
    if args.is_empty() {
        eprintln!("usage: experiments [--quick] [--json] [--threads N] [--full] [--scenarios DIR|FILE] <all|sweep|throughput|table2..table5|fig9..fig22|motivate|intensity|channels|hugepage|markov|reclaim|sensitivity|hwcost> ...");
        return 2;
    }
    // The throughput/quality workload axis: the tracked 4-workload
    // default, the full 15-workload catalogue behind `--full`, plus any
    // `--scenarios` entries in both cases.
    let axis = bench_axis(full, &scenarios);
    let selected: Vec<String> = if args.iter().any(|a| a == "all") {
        let mut v: Vec<String> = ALL.iter().map(|s| s.to_string()).collect();
        v.push("hwcost".to_string());
        v
    } else {
        args
    };
    // Every experiment renders into its own buffer on the lab pool;
    // buffers print in selection order, so `--threads N` output is
    // byte-identical to `--threads 1`.
    let outputs = lab::run_indexed(threads, selected.len(), |i| {
        run(&selected[i], &scale, &axis)
    });
    let mut failed = 0;
    for (name, output) in selected.iter().zip(outputs) {
        match output {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("experiment {name} failed: {e}");
                failed += 1;
            }
        }
    }
    i32::from(failed > 0)
}

/// Loads scenarios from a `--scenarios` argument: every `*.toml` in a
/// directory (sorted by filename), or one file.
fn load_scenarios(path: &str) -> std::result::Result<Vec<Scenario>, hopp_scn::ScnError> {
    let p = std::path::Path::new(path);
    if p.is_dir() {
        hopp_scn::load_dir(p)
    } else {
        Scenario::from_file(p).map(|s| vec![s])
    }
}

/// The quality/throughput workload axis for one invocation.
fn bench_axis(full: bool, scenarios: &[Scenario]) -> Vec<WorkloadSource> {
    if full {
        ex::full_bench_workloads(scenarios)
    } else {
        let mut axis = ex::default_bench_workloads();
        axis.extend(scenarios.iter().cloned().map(WorkloadSource::Scenario));
        axis
    }
}

/// Runs the `sweep` subcommand: a (workload × system × seed) grid on
/// the lab pool with per-cell disk caching.
fn sweep_main(
    args: &[String],
    scale: &Scale,
    threads: usize,
    full: bool,
    scenarios: Vec<Scenario>,
) -> i32 {
    let mut spec = lab::SweepSpec::quick();
    spec.footprint = scale.footprint;
    spec.spark_footprint = scale.spark_footprint;
    spec.threads = threads;
    spec.cache_dir = Some(std::path::PathBuf::from("target/lab-cache"));
    let mut out_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = (args[i].as_str(), args.get(i + 1));
        let mut took_value = true;
        match (flag, value) {
            ("--no-cache", _) => {
                spec.cache_dir = None;
                took_value = false;
            }
            ("--workloads", Some(list)) => {
                let mut workloads = Vec::new();
                for name in list.split(',') {
                    match lab::workload_by_name(name) {
                        Some(kind) => workloads.push(WorkloadSource::Catalogue(kind)),
                        None => {
                            eprintln!("unknown workload: {name}");
                            return 2;
                        }
                    }
                }
                spec.workloads = workloads;
            }
            ("--systems", Some(list)) => {
                let mut systems = Vec::new();
                for name in list.split(',') {
                    match lab::system_by_name(name) {
                        Some(system) => systems.push((name.to_string(), system)),
                        None => {
                            eprintln!("unknown system: {name}");
                            return 2;
                        }
                    }
                }
                spec.systems = systems;
            }
            ("--seeds", Some(list)) => {
                let seeds: std::result::Result<Vec<u64>, _> =
                    list.split(',').map(str::parse).collect();
                match seeds {
                    Ok(seeds) if !seeds.is_empty() => spec.seeds = seeds,
                    _ => {
                        eprintln!("--seeds wants a comma-separated list of integers");
                        return 2;
                    }
                }
            }
            ("--ratio", Some(v)) => match v.parse::<f64>() {
                Ok(ratio) if ratio > 0.0 && ratio <= 1.0 => spec.ratio = ratio,
                _ => {
                    eprintln!("--ratio wants a fraction in (0, 1]");
                    return 2;
                }
            },
            ("--cache-dir", Some(dir)) => {
                spec.cache_dir = Some(std::path::PathBuf::from(dir));
            }
            ("--out", Some(path)) => out_path = Some(path.clone()),
            ("--trace-out", Some(path)) => trace_out = Some(path.clone()),
            _ => {
                eprintln!(
                    "usage: experiments sweep [--quick] [--threads N] [--full] [--workloads a,b] \
                     [--scenarios DIR|FILE] [--systems a,b] [--seeds 1,2] [--ratio F] \
                     [--cache-dir DIR] [--no-cache] [--out FILE] [--trace-out FILE]"
                );
                return 2;
            }
        }
        i += if took_value { 2 } else { 1 };
    }
    if full {
        spec.workloads = hopp_workloads::WorkloadKind::ALL
            .into_iter()
            .map(WorkloadSource::Catalogue)
            .collect();
    }
    spec.workloads
        .extend(scenarios.into_iter().map(WorkloadSource::Scenario));
    let started = std::time::Instant::now();
    let outcome = match lab::run_sweep(&spec) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return 1;
        }
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    // Wall-clock and cache status go to stderr only: the artifact must
    // stay byte-identical across thread counts and cold/warm runs.
    eprintln!(
        "sweep: {} cell(s) ({} run, {} cached, {} failed) in {:.0} ms across {} thread(s)",
        outcome.cells_run + outcome.cells_cached + outcome.cells_failed,
        outcome.cells_run,
        outcome.cells_cached,
        outcome.cells_failed,
        wall_ms,
        spec.threads
    );
    if let Some(path) = &trace_out {
        let trace = hopp_obs::events_to_chrome_trace(&outcome.events);
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("failed to write {path}: {e}");
            return 1;
        }
        eprintln!("wrote {path}");
    }
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &outcome.json) {
                eprintln!("failed to write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{}", outcome.json),
    }
    i32::from(outcome.cells_failed > 0)
}

fn run(name: &str, scale: &Scale, axis: &[WorkloadSource]) -> Result<String> {
    match name {
        "table2" => table2(scale),
        "table3" => table3(scale),
        "table5" => table5(scale),
        "fig9" | "fig10" | "fig11" => fig9_to_11(scale, name),
        "fig12" | "fig13" | "fig14" => fig12_to_14(scale, name),
        "fig15" => fig15(scale),
        "fig16" | "fig17" => fig16_17(scale, name),
        "fig18" | "fig19" | "fig20" => fig18_20(scale, name),
        "fig21" => fig21(scale),
        "fig22" => fig22(scale),
        "motivate" => motivate(scale),
        "intensity" => intensity(scale),
        "channels" => channels(scale),
        "hugepage" => hugepage(scale),
        "markov" => markov(scale),
        "reclaim" => reclaim(scale),
        "sensitivity" => sensitivity(scale),
        "scale" => scale_robustness(),
        "warmup" => warmup(scale),
        "leapwin" => leapwin(scale),
        "latency" => latency(scale),
        "fabric" => fabric(scale),
        "faults" => faults(scale),
        "throughput" => throughput(scale, axis),
        "quality" => quality(scale, axis),
        "hwcost" => Ok(hwcost()),
        other => {
            eprintln!("unknown experiment: {other}");
            Ok(String::new())
        }
    }
}

fn table2(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## Table II — hot pages identified / memory accesses (%), by HPD threshold N\n\n",
    );
    let data = ex::table2(scale)?;
    let ns: Vec<String> = data[0].1.iter().map(|(n, _)| format!("N={n}")).collect();
    let mut header: Vec<&str> = vec!["workload"];
    header.extend(ns.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(kind, series)| {
            let mut row = vec![kind.name().to_string()];
            row.extend(series.iter().map(|(_, v)| format!("{v:.2}%")));
            row
        })
        .collect();
    out.push_str(&render(&header, &rows));
    Ok(out)
}

fn table3(scale: &Scale) -> Result<String> {
    let mut out = String::from("\n## Table III — RPT cache hit rate by capacity\n\n");
    let data = ex::table3(scale)?;
    let sizes: Vec<String> = data[0].1.iter().map(|(k, _)| format!("{k}KB")).collect();
    let mut header: Vec<&str> = vec!["workload"];
    header.extend(sizes.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(kind, series)| {
            let mut row = vec![kind.name().to_string()];
            row.extend(series.iter().map(|(_, v)| frac(*v)));
            row
        })
        .collect();
    out.push_str(&render(&header, &rows));
    Ok(out)
}

fn table5(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## Table V — DRAM bandwidth overhead of HPD writes and RPT queries (%)\n\n",
    );
    let rows: Vec<Vec<String>> = ex::table5(scale)?
        .into_iter()
        .map(|(kind, hpd, rpt)| {
            vec![
                kind.name().to_string(),
                format!("{hpd:.4}%"),
                format!("{rpt:.5}%"),
            ]
        })
        .collect();
    out.push_str(&render(&["workload", "HPD", "RPT"], &rows));
    Ok(out)
}

fn fig9_to_11(scale: &Scale, which: &str) -> Result<String> {
    let (half, quarter) = ex::fig9_matrix(scale)?;
    let mut out = String::new();
    match which {
        "fig9" => {
            out.push_str("\n## Fig 9 — normalized performance, non-JVM workloads\n\n");
            let header = ["workload", "FS@50%", "HoPP@50%", "FS@25%", "HoPP@25%"];
            let rows: Vec<Vec<String>> = half
                .iter()
                .zip(&quarter)
                .map(|(h, q)| {
                    vec![
                        h.workload.name().to_string(),
                        frac(h.normalized(&h.fastswap)),
                        frac(h.normalized(&h.hopp)),
                        frac(q.normalized(&q.fastswap)),
                        frac(q.normalized(&q.hopp)),
                    ]
                })
                .collect();
            out.push_str(&render(&header, &rows));
            let avg = |f: &dyn Fn(&ex::PerfRecord) -> f64, v: &[ex::PerfRecord]| {
                v.iter().map(f).sum::<f64>() / v.len() as f64
            };
            out.push_str(&format!(
                "avg@50%: fastswap {} hopp {} | avg@25%: fastswap {} hopp {}\n",
                frac(avg(&|r| r.normalized(&r.fastswap), &half)),
                frac(avg(&|r| r.normalized(&r.hopp), &half)),
                frac(avg(&|r| r.normalized(&r.fastswap), &quarter)),
                frac(avg(&|r| r.normalized(&r.hopp), &quarter)),
            ));
            if CHART_MODE.load(Ordering::Relaxed) {
                let mut items = Vec::new();
                for r in &half {
                    items.push((
                        format!("{} (FS)", r.workload.name()),
                        r.normalized(&r.fastswap),
                    ));
                    items.push((
                        format!("{} (HoPP)", r.workload.name()),
                        r.normalized(&r.hopp),
                    ));
                }
                out.push_str(&format!(
                    "\nnormalized performance @50% local:\n{}\n",
                    bar_chart(&items, 40)
                ));
            }
        }
        "fig10" => {
            out.push_str("\n## Fig 10 — prefetch accuracy, non-JVM workloads (50% local)\n\n");
            let rows: Vec<Vec<String>> = half
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.accuracy()),
                        pct(r.hopp.accuracy()),
                    ]
                })
                .collect();
            out.push_str(&render(&["workload", "Fastswap", "HoPP"], &rows));
        }
        _ => {
            out.push_str("\n## Fig 11 — prefetch coverage, non-JVM workloads (50% local)\n\n");
            let header = [
                "workload",
                "Fastswap",
                "HoPP total",
                "HoPP swapcache",
                "HoPP DRAM-hit",
            ];
            let rows: Vec<Vec<String>> = half
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.coverage()),
                        pct(r.hopp.coverage()),
                        pct(r.hopp.coverage_swapcache()),
                        pct(r.hopp.coverage_injected()),
                    ]
                })
                .collect();
            out.push_str(&render(&header, &rows));
        }
    }
    Ok(out)
}

fn fig12_to_14(scale: &Scale, which: &str) -> Result<String> {
    let recs = ex::fig12_matrix(scale)?;
    let mut out = String::new();
    match which {
        "fig12" => {
            out.push_str("\n## Fig 12 — normalized performance, Spark workloads (1/3 local)\n\n");
            let rows: Vec<Vec<String>> = recs
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        frac(r.normalized(&r.fastswap)),
                        frac(r.normalized(&r.hopp)),
                    ]
                })
                .collect();
            out.push_str(&render(&["workload", "Fastswap", "HoPP"], &rows));
        }
        "fig13" => {
            out.push_str("\n## Fig 13 — prefetch accuracy, Spark workloads\n\n");
            let rows: Vec<Vec<String>> = recs
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.accuracy()),
                        pct(r.hopp.accuracy()),
                    ]
                })
                .collect();
            out.push_str(&render(&["workload", "Fastswap", "HoPP"], &rows));
        }
        _ => {
            out.push_str("\n## Fig 14 — prefetch coverage, Spark workloads\n\n");
            let rows: Vec<Vec<String>> = recs
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.fastswap.coverage()),
                        pct(r.hopp.coverage()),
                    ]
                })
                .collect();
            out.push_str(&render(&["workload", "Fastswap", "HoPP"], &rows));
        }
    }
    Ok(out)
}

fn fig15(scale: &Scale) -> Result<String> {
    let mut out =
        String::from("\n## Fig 15 — per-app speedup (CT_fastswap/CT_hopp) when co-running\n\n");
    let mut rows = Vec::new();
    for (pair, speedups) in ex::fig15(scale)? {
        for (kind, s) in speedups {
            rows.push(vec![
                pair.clone(),
                kind.name().to_string(),
                format!("{s:.2}x"),
            ]);
        }
    }
    out.push_str(&render(&["pair", "app", "speedup"], &rows));
    Ok(out)
}

fn fig16_17(scale: &Scale, which: &str) -> Result<String> {
    let data = ex::fig16_17(scale)?;
    let mut out = String::new();
    if which == "fig16" {
        out.push_str(
            "\n## Fig 16 — normalized performance: Depth-N vs Fastswap vs HoPP (50% local)\n\n",
        );
        let header = ["workload", "Depth-16", "Depth-32", "Fastswap", "HoPP"];
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|row| {
                let mut cells = vec![row.workload.name().to_string()];
                cells.extend(row.systems.iter().map(|(_, np, _)| frac(*np)));
                cells
            })
            .collect();
        out.push_str(&render(&header, &rows));
    } else {
        out.push_str(
            "\n## Fig 17 — remote accesses normalized to Fastswap-without-prefetching\n\n",
        );
        let header = ["workload", "Depth-16", "Depth-32", "Fastswap", "HoPP"];
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|row| {
                let mut cells = vec![row.workload.name().to_string()];
                cells.extend(row.systems.iter().map(|(_, _, rr)| frac(*rr)));
                cells
            })
            .collect();
        out.push_str(&render(&header, &rows));
    }
    Ok(out)
}

fn fig18_20(scale: &Scale, which: &str) -> Result<String> {
    let data = ex::fig18_20(scale)?;
    let mut out = String::new();
    match which {
        "fig18" => {
            out.push_str("\n## Fig 18 — speedup over Fastswap as tiers are added\n\n");
            let header = ["workload", "SSP", "SSP+LSP", "SSP+LSP+RSP"];
            let rows: Vec<Vec<String>> = data
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.speedup[0]),
                        pct(r.speedup[1]),
                        pct(r.speedup[2]),
                    ]
                })
                .collect();
            out.push_str(&render(&header, &rows));
        }
        "fig19" => {
            out.push_str("\n## Fig 19 — per-tier prefetch accuracy (full system)\n\n");
            let header = ["workload", "SSP", "LSP", "RSP"];
            let rows: Vec<Vec<String>> = data
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.tier_accuracy[0]),
                        pct(r.tier_accuracy[1]),
                        pct(r.tier_accuracy[2]),
                    ]
                })
                .collect();
            out.push_str(&render(&header, &rows));
        }
        _ => {
            out.push_str("\n## Fig 20 — coverage contributed by each tier (full system)\n\n");
            let header = ["workload", "SSP", "LSP", "RSP"];
            let rows: Vec<Vec<String>> = data
                .iter()
                .map(|r| {
                    vec![
                        r.workload.name().to_string(),
                        pct(r.tier_coverage[0]),
                        pct(r.tier_coverage[1]),
                        pct(r.tier_coverage[2]),
                    ]
                })
                .collect();
            out.push_str(&render(&header, &rows));
        }
    }
    Ok(out)
}

fn fig21(scale: &Scale) -> Result<String> {
    let mut out =
        String::from("\n## Fig 21 — normalized performance vs (accuracy, coverage), 50% local\n\n");
    let rows: Vec<Vec<String>> = ex::fig21(scale)?
        .into_iter()
        .map(|p| {
            vec![
                p.workload.name().to_string(),
                p.system.to_string(),
                frac(p.accuracy),
                frac(p.coverage),
                frac(p.normalized),
            ]
        })
        .collect();
    out.push_str(&render(
        &["workload", "system", "accuracy", "coverage", "norm-perf"],
        &rows,
    ));
    Ok(out)
}

fn fig22(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## Fig 22 — technique ablation on the §VI-E microbenchmark (speedup vs Fastswap)\n\n",
    );
    let ablation = ex::fig22(scale)?;
    let rows: Vec<Vec<String>> = ablation
        .iter()
        .map(|(name, s)| vec![name.to_string(), pct(*s)])
        .collect();
    out.push_str(&render(&["system", "speedup"], &rows));
    if CHART_MODE.load(Ordering::Relaxed) {
        let items: Vec<(String, f64)> = ablation.iter().map(|(n, s)| (n.to_string(), *s)).collect();
        out.push_str(&format!("\n{}\n", bar_chart(&items, 30)));
    }
    out.push_str("\nwith periodic 8x latency bursts (§III-E's volatility):\n\n");
    let rows: Vec<Vec<String>> = ex::fig22_volatile(scale)?
        .into_iter()
        .map(|(name, s)| vec![name.to_string(), pct(s)])
        .collect();
    out.push_str(&render(
        &["system", "speedup vs Fastswap (volatile)"],
        &rows,
    ));
    Ok(out)
}

fn motivate(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## §II-B study — Leap vs full-trace majority prefetching (SSP-only HoPP)\n\n",
    );
    let rows: Vec<Vec<String>> = ex::motivate(scale)?
        .into_iter()
        .map(|(kind, leap, full)| {
            vec![
                kind.name().to_string(),
                pct(leap[0]),
                pct(leap[1]),
                pct(full[0]),
                pct(full[1]),
            ]
        })
        .collect();
    out.push_str(&render(
        &[
            "workload",
            "Leap acc",
            "Leap cov",
            "full-trace acc",
            "full-trace cov",
        ],
        &rows,
    ));
    Ok(out)
}

fn intensity(scale: &Scale) -> Result<String> {
    let mut out =
        String::from("\n## Extension — prefetch-intensity sweep (§III-E knob; 50% local)\n\n");
    let mut rows = Vec::new();
    for (kind, series) in ex::intensity_sweep(scale)? {
        for (intensity, np, cov_sc, cov_inj) in series {
            rows.push(vec![
                kind.name().to_string(),
                intensity.to_string(),
                frac(np),
                pct(cov_sc),
                pct(cov_inj),
            ]);
        }
    }
    out.push_str(&render(
        &[
            "workload",
            "intensity",
            "norm-perf",
            "cov swapcache",
            "cov DRAM-hit",
        ],
        &rows,
    ));
    Ok(out)
}

fn channels(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## Extension — interleaved memory channels (§III-B; per-channel N = 8/channels)\n\n",
    );
    let mut rows = Vec::new();
    for (kind, series) in ex::channels_sweep(scale)? {
        for (ch, ratio, cov, np) in series {
            rows.push(vec![
                kind.name().to_string(),
                ch.to_string(),
                format!("{ratio:.2}%"),
                pct(cov),
                frac(np),
            ]);
        }
    }
    out.push_str(&render(
        &["workload", "channels", "hot ratio", "coverage", "norm-perf"],
        &rows,
    ));
    Ok(out)
}

fn hugepage(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## Extension — huge-page batched prefetch (§IV; 512 pages per request)\n\n",
    );
    let rows: Vec<Vec<String>> = ex::hugepage_study(scale)?
        .into_iter()
        .map(|(kind, batching, np, reads, pages)| {
            vec![
                kind.name().to_string(),
                if batching {
                    "2MB batches"
                } else {
                    "page-by-page"
                }
                .to_string(),
                frac(np),
                reads.to_string(),
                pages.to_string(),
            ]
        })
        .collect();
    out.push_str(&render(
        &[
            "workload",
            "mode",
            "norm-perf",
            "rdma requests",
            "pages moved",
        ],
        &rows,
    ));
    Ok(out)
}

fn markov(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## Extension — Markov trainer vs adaptive three-tier (§III-D design space)\n\n",
    );
    let mut rows = Vec::new();
    for (kind, series) in ex::markov_study(scale)? {
        for (name, acc, cov, np) in series {
            rows.push(vec![
                kind.name().to_string(),
                name.to_string(),
                pct(acc),
                pct(cov),
                frac(np),
            ]);
        }
    }
    out.push_str(&render(
        &["workload", "trainer", "accuracy", "coverage", "norm-perf"],
        &rows,
    ));
    Ok(out)
}

fn reclaim(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## Extension — trace-assisted reclaim (§IV; hot pages get a second chance)\n\n",
    );
    let mut rows = Vec::new();
    for (kind, series) in ex::reclaim_study(scale)? {
        for (window, majors, np) in series {
            rows.push(vec![
                kind.name().to_string(),
                window.to_string(),
                majors.to_string(),
                frac(np),
            ]);
        }
    }
    out.push_str(&render(
        &["workload", "hot window", "major faults", "norm-perf"],
        &rows,
    ));
    Ok(out)
}

fn sensitivity(scale: &Scale) -> Result<String> {
    let mut out =
        String::from("\n## Extension — STT sensitivity: history L x clustering distance\n\n");
    let mut rows = Vec::new();
    for (kind, series) in ex::stt_sensitivity(scale)? {
        for (l, delta, cov, acc) in series {
            rows.push(vec![
                kind.name().to_string(),
                l.to_string(),
                delta.to_string(),
                pct(cov),
                pct(acc),
            ]);
        }
    }
    out.push_str(&render(
        &["workload", "L", "delta", "coverage", "accuracy"],
        &rows,
    ));
    Ok(out)
}

fn scale_robustness() -> Result<String> {
    let mut out = String::from("\n## Extension — scale robustness of the headline comparison\n\n");
    let rows: Vec<Vec<String>> = ex::scale_robustness()?
        .into_iter()
        .map(|(fp, seed, kind, fs, hp)| {
            vec![
                fp.to_string(),
                seed.to_string(),
                kind.name().to_string(),
                frac(fs),
                frac(hp),
                frac(hp / fs),
            ]
        })
        .collect();
    out.push_str(&render(
        &[
            "footprint",
            "seed",
            "workload",
            "fastswap",
            "hopp",
            "hopp/fastswap",
        ],
        &rows,
    ));
    Ok(out)
}

fn warmup(scale: &Scale) -> Result<String> {
    let mut out =
        String::from("\n## Extension — warmup: major faults per run window (§VI-E dynamics)\n\n");
    let data = ex::warmup(scale)?;
    let windows = data[0].1.len();
    let labels: Vec<String> = (1..=windows).map(|w| format!("w{w}")).collect();
    let mut header: Vec<&str> = vec!["system"];
    header.extend(labels.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|(name, w)| {
            let mut row = vec![name.to_string()];
            row.extend(w.iter().map(|v| v.to_string()));
            row
        })
        .collect();
    out.push_str(&render(&header, &rows));
    Ok(out)
}

fn leapwin(scale: &Scale) -> Result<String> {
    let mut out =
        String::from("\n## Extension — Leap's adaptive prefetch window vs fixed depth\n\n");
    let rows: Vec<Vec<String>> = ex::leap_window(scale)?
        .into_iter()
        .map(|(kind, cf, ca, nf, na)| {
            vec![
                kind.name().to_string(),
                pct(cf),
                pct(ca),
                frac(nf),
                frac(na),
            ]
        })
        .collect();
    out.push_str(&render(
        &[
            "workload",
            "fixed cov",
            "adaptive cov",
            "fixed perf",
            "adaptive perf",
        ],
        &rows,
    ));
    Ok(out)
}

fn latency(scale: &Scale) -> Result<String> {
    let mut out =
        String::from("\n## Observability — latency distributions (kmeans, 50% local)\n\n");
    for (system, summaries) in ex::latency_study(scale)? {
        out.push_str(&format!("### {system}\n\n"));
        out.push_str(&hopp_bench::format::latency_table(&summaries));
        out.push('\n');
    }
    Ok(out)
}

fn fabric(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## hopp-fabric — node-count sweep (kmeans, HoPP intensity 4, 25% local)\n\n",
    );
    let rows: Vec<Vec<String>> = ex::fabric_sweep(scale)?
        .into_iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                r.placement.to_string(),
                frac(r.normalized),
                format!("{}", r.major_p99),
                format!("{}", r.queueing),
                r.reads.to_string(),
            ]
        })
        .collect();
    out.push_str(&render(
        &[
            "nodes",
            "placement",
            "norm perf",
            "major p99",
            "queueing",
            "reads",
        ],
        &rows,
    ));
    Ok(out)
}

fn faults(scale: &Scale) -> Result<String> {
    let mut out = String::from(
        "\n## hopp-fabric — fault injection (kmeans, 4 nodes, replication 2, 50% local)\n\n",
    );
    let rows: Vec<Vec<String>> = ex::fault_study(scale)?
        .into_iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.system.to_string(),
                frac(r.normalized),
                format!("{}", r.major_p99),
                r.failovers.to_string(),
                r.retries.to_string(),
            ]
        })
        .collect();
    out.push_str(&render(
        &[
            "scenario",
            "system",
            "norm perf",
            "major p99",
            "failovers",
            "retries",
        ],
        &rows,
    ));
    Ok(out)
}

fn throughput(scale: &Scale, axis: &[WorkloadSource]) -> Result<String> {
    // Median-of-5 paired ratios keep the gated `vs_noprefetch` column
    // stable on noisy shared hosts; the extra repeats cost ~1 s.
    const REPEATS: u32 = 5;
    let mut out = format!(
        "\n## Throughput — simulator wall-clock accesses/sec (50% local, best of {REPEATS})\n\n"
    );
    let rows = ex::throughput_over(scale, REPEATS, axis)?;
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.system.to_string(),
                r.accesses.to_string(),
                format!("{:.1} ms", r.wall_secs * 1e3),
                format!("{:.0}", r.accesses_per_sec),
            ]
        })
        .collect();
    out.push_str(&render(
        &["workload", "system", "accesses", "wall", "accesses/sec"],
        &cells,
    ));
    // The tracked perf trajectory lives at the repo root; the bench
    // crate's manifest dir is `crates/bench`, two levels below it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    let json = ex::throughput_json(scale, REPEATS, &rows);
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str(&format!("\nwrote {path}\n")),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
    Ok(out)
}

fn quality(scale: &Scale, axis: &[WorkloadSource]) -> Result<String> {
    let mut out = String::from(
        "\n## Quality — prefetch coverage/accuracy/pollution scoreboard (50% local)\n\n",
    );
    let rows = ex::quality_over(scale, axis)?;
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.system.to_string(),
                format!("{:.2}", r.coverage_pct),
                format!("{:.2}", r.accuracy_pct),
                format!("{:.2}", r.pollution_pct),
                format!("{}", hopp_types::Nanos::from_nanos(r.mean_timeliness_ns)),
            ]
        })
        .collect();
    out.push_str(&render(
        &[
            "workload",
            "system",
            "coverage%",
            "accuracy%",
            "pollution%",
            "timeliness",
        ],
        &cells,
    ));
    // Tracked next to BENCH_throughput.json and diffed by `cargo xtask
    // gate`; fully deterministic, so any change is a real change.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quality.json");
    let json = ex::quality_json(scale, &rows);
    match std::fs::write(path, &json) {
        Ok(()) => out.push_str(&format!("\nwrote {path}\n")),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
    Ok(out)
}

fn hwcost() -> String {
    let mut out = String::from("\n## §VI-F — hardware cost (CACTI 3.0, 22nm)\n\n");
    let rows: Vec<Vec<String>> = ex::hwcost()
        .into_iter()
        .map(|(name, area, power)| vec![name, format!("{area:.6} mm^2"), format!("{power:.4} mW")])
        .collect();
    out.push_str(&render(&["module", "area", "static power"], &rows));
    out
}
