//! The experiment generators (one per table/figure).
//!
//! Every generator that runs the simulator returns
//! [`hopp_types::Result`]: a failed run (typed [`hopp_types::Error`])
//! propagates to the caller instead of killing the process, so a sweep
//! cell that fails takes down only its own cell. Pure computations
//! (`hwcost`, `throughput_json`, `fig16_systems`) stay infallible.

use hopp_core::three_tier::TierConfig;
use hopp_core::{HoppConfig, PolicyConfig};
use hopp_hw::{HpdConfig, HwCostModel, RptCacheConfig};
use hopp_scn::{Scenario, WorkloadSource};
use hopp_sim::runner::SOLO_PID;
use hopp_sim::{
    AppSpec, BaselineKind, FabricConfig, FaultScript, PlacementKind, SimConfig, SimReport,
    Simulator, SystemConfig,
};
use hopp_types::{Error, Nanos, Pid, Result};
use hopp_workloads::WorkloadKind;

/// Experiment sizing. Footprints are in 4 KB pages; the defaults keep a
/// full `experiments all` run to a couple of minutes in release mode
/// while staying far above the simulated LLC so capacity misses behave
/// like the paper's multi-GB footprints.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Footprint of the native workloads, in pages.
    pub footprint: u64,
    /// Footprint of the Spark workloads, in pages.
    pub spark_footprint: u64,
    /// RNG seed for all workload randomness.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            footprint: 4_096,
            spark_footprint: 4_096,
            seed: 42,
        }
    }
}

impl Scale {
    /// A reduced scale for CI and Criterion runs.
    pub fn quick() -> Self {
        Scale {
            footprint: 1_024,
            spark_footprint: 1_024,
            seed: 42,
        }
    }

    fn footprint_of(&self, kind: WorkloadKind) -> u64 {
        if kind.is_jvm() {
            self.spark_footprint
        } else {
            self.footprint
        }
    }
}

/// The four workloads the tracked `BENCH_*.json` baselines are recorded
/// over (one per pattern family: scan, phase-chained, ripple, graph).
pub fn default_bench_workloads() -> Vec<WorkloadSource> {
    [
        WorkloadKind::Kmeans,
        WorkloadKind::Quicksort,
        WorkloadKind::NpbMg,
        WorkloadKind::GraphPr,
    ]
    .into_iter()
    .map(WorkloadSource::Catalogue)
    .collect()
}

/// The widened `--full` axis: the entire 15-workload catalogue plus any
/// scenarios, so the quality/throughput grid scales past 20 entries
/// from a checked-in `scenarios/` directory.
pub fn full_bench_workloads(scenarios: &[Scenario]) -> Vec<WorkloadSource> {
    let mut out: Vec<WorkloadSource> = WorkloadKind::ALL
        .into_iter()
        .map(WorkloadSource::Catalogue)
        .collect();
    out.extend(scenarios.iter().cloned().map(WorkloadSource::Scenario));
    out
}

/// One (workload, system) evaluation at a memory ratio.
#[derive(Clone, Debug)]
pub struct PerfRecord {
    /// The workload.
    pub workload: WorkloadKind,
    /// Fraction of the footprint kept local.
    pub ratio: f64,
    /// All-local completion time (the normalization baseline).
    pub local_ct: Nanos,
    /// The Fastswap run.
    pub fastswap: SimReport,
    /// The HoPP (on Fastswap) run.
    pub hopp: SimReport,
}

impl PerfRecord {
    /// Normalized performance of a run.
    pub fn normalized(&self, report: &SimReport) -> f64 {
        self.local_ct.as_nanos() as f64 / report.completion.as_nanos() as f64
    }
}

/// Runs the Fastswap-vs-HoPP matrix for a workload group.
pub fn perf_matrix(scale: &Scale, group: &[WorkloadKind], ratio: f64) -> Result<Vec<PerfRecord>> {
    let mut records = Vec::with_capacity(group.len());
    for &kind in group {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?;
        let fastswap = hopp_sim::run_workload(
            kind,
            fp,
            scale.seed,
            SystemConfig::Baseline(BaselineKind::Fastswap),
            ratio,
        )?;
        let hopp =
            hopp_sim::run_workload(kind, fp, scale.seed, SystemConfig::hopp_default(), ratio)?;
        records.push(PerfRecord {
            workload: kind,
            ratio,
            local_ct: local.completion,
            fastswap,
            hopp,
        });
    }
    Ok(records)
}

/// Table II: hot pages identified per memory access, sweeping the HPD
/// threshold `N`.
pub fn table2(scale: &Scale) -> Result<Vec<(WorkloadKind, Vec<(u32, f64)>)>> {
    const NS: [u32; 5] = [2, 4, 8, 16, 32];
    let workloads = [
        WorkloadKind::Kmeans,
        WorkloadKind::GraphPr,
        WorkloadKind::GraphCc,
        WorkloadKind::GraphLp,
        WorkloadKind::GraphBfs,
    ];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let mut rows = Vec::with_capacity(NS.len());
        for &n in &NS {
            let config = SimConfig {
                hpd: HpdConfig::with_threshold(n),
                ..SimConfig::with_system(SystemConfig::hopp_default())
            };
            let report = hopp_sim::run_workload_with(
                config,
                kind,
                scale.footprint_of(kind),
                scale.seed,
                0.5,
            )?;
            rows.push((n, report.hpd.hot_ratio() * 100.0));
        }
        out.push((kind, rows));
    }
    Ok(out)
}

/// Table III: RPT cache hit rate while sweeping its capacity.
pub fn table3(scale: &Scale) -> Result<Vec<(WorkloadKind, Vec<(usize, f64)>)>> {
    const KIBS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
    let workloads = [WorkloadKind::Kmeans, WorkloadKind::GraphPr];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let mut rows = Vec::with_capacity(KIBS.len());
        for &kib in &KIBS {
            let config = SimConfig {
                rpt: RptCacheConfig::with_kib(kib),
                ..SimConfig::with_system(SystemConfig::hopp_default())
            };
            let report = hopp_sim::run_workload_with(
                config,
                kind,
                scale.footprint_of(kind),
                scale.seed,
                0.5,
            )?;
            rows.push((kib, report.rpt.hit_rate()));
        }
        out.push((kind, rows));
    }
    Ok(out)
}

/// Table V: DRAM bandwidth consumed by hot-page extraction and RPT
/// queries, as a percentage of application traffic.
pub fn table5(scale: &Scale) -> Result<Vec<(WorkloadKind, f64, f64)>> {
    let mut programs: Vec<WorkloadKind> = WorkloadKind::NON_JVM.to_vec();
    programs.extend(WorkloadKind::SPARK);
    let mut out = Vec::with_capacity(programs.len());
    for kind in programs {
        // 4x the usual footprint so the working set exceeds the
        // 8192-entry RPT cache and its DRAM traffic is measurable,
        // as with the paper's multi-GB footprints.
        let report = hopp_sim::run_workload(
            kind,
            scale.footprint_of(kind) * 4,
            scale.seed,
            SystemConfig::hopp_default(),
            0.5,
        )?;
        out.push((
            kind,
            report.ledger.hpd_overhead_percent(),
            report.ledger.rpt_overhead_percent(),
        ));
    }
    Ok(out)
}

/// Figures 9–11: non-JVM workloads at 50 % and 25 % local memory.
pub fn fig9_matrix(scale: &Scale) -> Result<(Vec<PerfRecord>, Vec<PerfRecord>)> {
    Ok((
        perf_matrix(scale, &WorkloadKind::NON_JVM, 0.5)?,
        perf_matrix(scale, &WorkloadKind::NON_JVM, 0.25)?,
    ))
}

/// Figures 12–14: Spark workloads. The GraphX jobs and Bayes run at
/// one-third local memory (the paper's 11 GB of 33 GB); Spark-Kmeans
/// runs at ~15 % (the paper caps it at 2 GB of its 13 GB footprint).
pub fn fig12_matrix(scale: &Scale) -> Result<Vec<PerfRecord>> {
    let mut records = Vec::new();
    for &kind in WorkloadKind::SPARK.iter() {
        let ratio = if kind == WorkloadKind::SparkKmeans {
            0.15
        } else {
            1.0 / 3.0
        };
        records.extend(perf_matrix(scale, &[kind], ratio)?);
    }
    Ok(records)
}

/// Fig 15: co-running application pairs; per-app speedup of HoPP over
/// Fastswap with each app's local memory capped at 50 % via cgroups.
pub fn fig15(scale: &Scale) -> Result<Vec<(String, Vec<(WorkloadKind, f64)>)>> {
    let groups: [&[WorkloadKind]; 4] = [
        &[WorkloadKind::Kmeans, WorkloadKind::GraphPr],
        &[WorkloadKind::Quicksort, WorkloadKind::NpbMg],
        &[WorkloadKind::Hpl, WorkloadKind::NpbCg],
        &[
            WorkloadKind::Kmeans,
            WorkloadKind::NpbLu,
            WorkloadKind::NpbIs,
        ],
    ];
    let mut out = Vec::with_capacity(groups.len());
    for &group in &groups {
        let run_group = |system: SystemConfig| -> Result<SimReport> {
            let apps = group
                .iter()
                .enumerate()
                .map(|(i, &kind)| AppSpec {
                    pid: Pid::from_index(i + 1),
                    stream: kind.build(
                        Pid::from_index(i + 1),
                        scale.footprint_of(kind),
                        scale.seed + i as u64,
                    ),
                    limit_pages: (scale.footprint_of(kind) / 2) as usize,
                })
                .collect();
            Simulator::new(SimConfig::with_system(system), apps)?.run()
        };
        let fs = run_group(SystemConfig::Baseline(BaselineKind::Fastswap))?;
        let hp = run_group(SystemConfig::hopp_default())?;
        let mut speedups = Vec::with_capacity(group.len());
        for (i, &kind) in group.iter().enumerate() {
            let pid = Pid::from_index(i + 1);
            let f = fs
                .app_completion(pid)
                .ok_or(Error::UnknownProcess { pid })?
                .as_nanos() as f64;
            let h = hp
                .app_completion(pid)
                .ok_or(Error::UnknownProcess { pid })?
                .as_nanos() as f64;
            speedups.push((kind, f / h));
        }
        let label = group.iter().map(|k| k.name()).collect::<Vec<_>>().join("+");
        out.push((label, speedups));
    }
    Ok(out)
}

/// The systems compared in Fig 16/17.
pub fn fig16_systems() -> [(&'static str, SystemConfig); 4] {
    [
        ("Depth-16", SystemConfig::Baseline(BaselineKind::DepthN(16))),
        ("Depth-32", SystemConfig::Baseline(BaselineKind::DepthN(32))),
        ("Fastswap", SystemConfig::Baseline(BaselineKind::Fastswap)),
        ("HoPP", SystemConfig::hopp_default()),
    ]
}

/// One Fig 16/17 row: per-system normalized performance and normalized
/// remote accesses (versus Fastswap-without-prefetching).
#[derive(Clone, Debug)]
pub struct DepthRow {
    /// The workload.
    pub workload: WorkloadKind,
    /// Per system: (name, normalized performance, normalized remote
    /// accesses).
    pub systems: Vec<(&'static str, f64, f64)>,
}

/// Figures 16 and 17: Depth-N versus Fastswap versus HoPP.
pub fn fig16_17(scale: &Scale) -> Result<Vec<DepthRow>> {
    let workloads = [
        WorkloadKind::NpbCg,
        WorkloadKind::NpbFt,
        WorkloadKind::NpbLu,
        WorkloadKind::NpbMg,
        WorkloadKind::NpbIs,
        WorkloadKind::Kmeans,
        WorkloadKind::Quicksort,
    ];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?
            .completion
            .as_nanos() as f64;
        let no_prefetch = hopp_sim::run_workload(
            kind,
            fp,
            scale.seed,
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
            0.5,
        )?;
        let base_remote = no_prefetch.remote_reads().max(1) as f64;
        let mut systems = Vec::with_capacity(fig16_systems().len());
        for &(name, system) in fig16_systems().iter() {
            let r = hopp_sim::run_workload(kind, fp, scale.seed, system, 0.5)?;
            systems.push((
                name,
                local / r.completion.as_nanos() as f64,
                r.remote_reads() as f64 / base_remote,
            ));
        }
        out.push(DepthRow {
            workload: kind,
            systems,
        });
    }
    Ok(out)
}

/// One Fig 18–20 row: the tier ablation for one workload.
#[derive(Clone, Debug)]
pub struct TierRow {
    /// The workload.
    pub workload: WorkloadKind,
    /// Speedup over Fastswap with SSP only / SSP+LSP / all three.
    pub speedup: [f64; 3],
    /// Accuracy of each tier's own prefetches in the full system.
    pub tier_accuracy: [f64; 3],
    /// Coverage contributed by each tier in the full system.
    pub tier_coverage: [f64; 3],
}

/// Figures 18, 19, 20: adding LSP and RSP on top of SSP.
pub fn fig18_20(scale: &Scale) -> Result<Vec<TierRow>> {
    let workloads = [
        WorkloadKind::Hpl,
        WorkloadKind::NpbMg,
        WorkloadKind::NpbFt,
        WorkloadKind::Kmeans,
        WorkloadKind::Quicksort,
    ];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let fs_ct = hopp_sim::run_workload(
            kind,
            fp,
            scale.seed,
            SystemConfig::Baseline(BaselineKind::Fastswap),
            0.5,
        )?
        .completion
        .as_nanos() as f64;
        let run_tier = |tiers: TierConfig| -> Result<SimReport> {
            let config = HoppConfig {
                tiers,
                ..HoppConfig::default()
            };
            hopp_sim::run_workload(kind, fp, scale.seed, SystemConfig::hopp_with(config), 0.5)
        };
        let speedup_of = |r: &SimReport| 1.0 - r.completion.as_nanos() as f64 / fs_ct;
        let ssp = run_tier(TierConfig::ssp_only())?;
        let ssp_lsp = run_tier(TierConfig::ssp_lsp())?;
        let full = run_tier(TierConfig::default())?;
        let speedup = [speedup_of(&ssp), speedup_of(&ssp_lsp), speedup_of(&full)];
        let tiers = full.hopp_tiers.ok_or(Error::InvalidConfig {
            what: "hopp_tiers",
            constraint: "per-tier metrics present on SystemConfig::Hopp runs",
        })?;
        let denom = (full.counters.major_faults
            + full.baseline.prefetch_hits
            + full.hopp.map(|h| h.prefetch_hits).unwrap_or(0))
        .max(1) as f64;
        out.push(TierRow {
            workload: kind,
            speedup,
            tier_accuracy: [tiers[0].accuracy, tiers[1].accuracy, tiers[2].accuracy],
            tier_coverage: [
                tiers[0].prefetch_hits as f64 / denom,
                tiers[1].prefetch_hits as f64 / denom,
                tiers[2].prefetch_hits as f64 / denom,
            ],
        });
    }
    Ok(out)
}

/// One Fig 21 point.
#[derive(Clone, Copy, Debug)]
pub struct ScatterPoint {
    /// The workload.
    pub workload: WorkloadKind,
    /// "fastswap" or "hopp".
    pub system: &'static str,
    /// Prefetch accuracy.
    pub accuracy: f64,
    /// Prefetch coverage.
    pub coverage: f64,
    /// Normalized performance.
    pub normalized: f64,
}

/// Figure 21: normalized performance against (accuracy, coverage) for
/// every workload under both systems at 50 % local memory.
pub fn fig21(scale: &Scale) -> Result<Vec<ScatterPoint>> {
    let mut points = Vec::new();
    let mut group: Vec<WorkloadKind> = WorkloadKind::NON_JVM.to_vec();
    group.extend(WorkloadKind::SPARK);
    for rec in perf_matrix(scale, &group, 0.5)? {
        points.push(ScatterPoint {
            workload: rec.workload,
            system: "fastswap",
            accuracy: rec.fastswap.accuracy(),
            coverage: rec.fastswap.coverage(),
            normalized: rec.normalized(&rec.fastswap),
        });
        points.push(ScatterPoint {
            workload: rec.workload,
            system: "hopp",
            accuracy: rec.hopp.accuracy(),
            coverage: rec.hopp.coverage(),
            normalized: rec.normalized(&rec.hopp),
        });
    }
    Ok(points)
}

/// The systems compared on the §VI-E microbenchmark (Fig 22).
pub fn fig22(scale: &Scale) -> Result<Vec<(&'static str, f64)>> {
    let kind = WorkloadKind::Microbench;
    let fp = scale.footprint;
    let fs_ct = hopp_sim::run_workload(
        kind,
        fp,
        scale.seed,
        SystemConfig::Baseline(BaselineKind::Fastswap),
        0.5,
    )?
    .completion
    .as_nanos() as f64;
    let speedup = |system: SystemConfig| -> Result<f64> {
        let r = hopp_sim::run_workload(kind, fp, scale.seed, system, 0.5)?;
        Ok(1.0 - r.completion.as_nanos() as f64 / fs_ct)
    };
    let hopp_fixed = |offset: f64| {
        SystemConfig::hopp_with(HoppConfig {
            policy: PolicyConfig::fixed_offset(offset),
            ..HoppConfig::default()
        })
    };
    Ok(vec![
        ("Leap", speedup(SystemConfig::Baseline(BaselineKind::Leap))?),
        ("VMA", speedup(SystemConfig::Baseline(BaselineKind::Vma))?),
        (
            "Depth-32",
            speedup(SystemConfig::Baseline(BaselineKind::DepthN(32)))?,
        ),
        ("HoPP (offset=1)", speedup(hopp_fixed(1.0))?),
        ("HoPP (offset=20K)", speedup(hopp_fixed(20_000.0))?),
        ("HoPP (dynamic)", speedup(SystemConfig::hopp_default())?),
    ])
}

/// Fig 22 under latency volatility (§III-E's stated motivation): the
/// same HoPP offset configurations on a link with periodic 8x
/// congestion bursts. This is where the dynamic controller separates
/// from a pinned offset of 1.
pub fn fig22_volatile(scale: &Scale) -> Result<Vec<(&'static str, f64)>> {
    use hopp_net::RdmaConfig;
    let kind = WorkloadKind::Microbench;
    let fp = scale.footprint;
    let volatile = |system: SystemConfig| SimConfig {
        rdma: RdmaConfig::volatile(),
        ..SimConfig::with_system(system)
    };
    let fs_ct = hopp_sim::run_workload_with(
        volatile(SystemConfig::Baseline(BaselineKind::Fastswap)),
        kind,
        fp,
        scale.seed,
        0.5,
    )?
    .completion
    .as_nanos() as f64;
    let speedup = |system: SystemConfig| -> Result<f64> {
        let r = hopp_sim::run_workload_with(volatile(system), kind, fp, scale.seed, 0.5)?;
        Ok(1.0 - r.completion.as_nanos() as f64 / fs_ct)
    };
    let hopp_fixed = |offset: f64| {
        SystemConfig::hopp_with(HoppConfig {
            policy: PolicyConfig::fixed_offset(offset),
            ..HoppConfig::default()
        })
    };
    Ok(vec![
        ("HoPP (offset=1)", speedup(hopp_fixed(1.0))?),
        ("HoPP (offset=20K)", speedup(hopp_fixed(20_000.0))?),
        ("HoPP (dynamic)", speedup(SystemConfig::hopp_default())?),
    ])
}

/// Ablation of Leap's own adaptive prefetch-window sizing: fixed depth
/// vs the grow-on-hit/shrink-on-miss window, per workload. Reports
/// (workload, fixed coverage, adaptive coverage, fixed norm-perf,
/// adaptive norm-perf).
pub fn leap_window(scale: &Scale) -> Result<Vec<(WorkloadKind, f64, f64, f64, f64)>> {
    use hopp_baselines::LeapPrefetcher;
    use hopp_kernel::Prefetcher;
    let workloads = [WorkloadKind::NpbLu, WorkloadKind::Quicksort];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?
            .completion
            .as_nanos() as f64;
        let run_leap = |leap: Box<dyn Prefetcher>| -> Result<SimReport> {
            let app = AppSpec {
                pid: Pid::new(1),
                stream: kind.build(Pid::new(1), fp, scale.seed),
                limit_pages: (fp / 2) as usize,
            };
            let mut sim = Simulator::new(
                SimConfig::with_system(SystemConfig::Baseline(BaselineKind::Leap)),
                vec![app],
            )?;
            sim.replace_baseline(leap);
            sim.run()
        };
        let fixed = run_leap(Box::new(LeapPrefetcher::new(4, 8)))?;
        let adaptive = run_leap(Box::new(LeapPrefetcher::adaptive(4, 2, 32)))?;
        out.push((
            kind,
            fixed.coverage(),
            adaptive.coverage(),
            local / fixed.completion.as_nanos() as f64,
            local / adaptive.completion.as_nanos() as f64,
        ));
    }
    Ok(out)
}

/// §II-B's motivating study: fault-driven Leap versus the revamped
/// majority prefetcher on the full trace (page clustering + large
/// window == HoPP restricted to SSP).
pub fn motivate(scale: &Scale) -> Result<Vec<(WorkloadKind, [f64; 2], [f64; 2])>> {
    let workloads = [
        WorkloadKind::Microbench,
        WorkloadKind::Kmeans,
        WorkloadKind::NpbLu,
    ];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let leap = hopp_sim::run_workload(
            kind,
            fp,
            scale.seed,
            SystemConfig::Baseline(BaselineKind::Leap),
            0.5,
        )?;
        let ssp = hopp_sim::run_workload(
            kind,
            fp,
            scale.seed,
            SystemConfig::hopp_with(HoppConfig {
                tiers: TierConfig::ssp_only(),
                ..HoppConfig::default()
            }),
            0.5,
        )?;
        out.push((
            kind,
            [leap.accuracy(), leap.coverage()],
            [ssp.accuracy(), ssp.coverage()],
        ));
    }
    Ok(out)
}

/// Policy-engine sensitivity (an ablation of §III-E's *prefetch
/// intensity* knob beyond the paper's figures): normalized performance
/// and the swapcache/DRAM-hit coverage split while sweeping the pages
/// issued per hot page.
pub fn intensity_sweep(scale: &Scale) -> Result<Vec<(WorkloadKind, Vec<(u32, f64, f64, f64)>)>> {
    let workloads = [
        WorkloadKind::NpbMg,
        WorkloadKind::NpbCg,
        WorkloadKind::NpbIs,
    ];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?
            .completion
            .as_nanos() as f64;
        let mut rows = Vec::new();
        for &intensity in &[1u32, 2, 4] {
            let config = HoppConfig {
                policy: PolicyConfig {
                    intensity,
                    ..PolicyConfig::default()
                },
                ..HoppConfig::default()
            };
            let r =
                hopp_sim::run_workload(kind, fp, scale.seed, SystemConfig::hopp_with(config), 0.5)?;
            rows.push((
                intensity,
                local / r.completion.as_nanos() as f64,
                r.coverage_swapcache(),
                r.coverage_injected(),
            ));
        }
        out.push((kind, rows));
    }
    Ok(out)
}

/// §III-B extension: the impact of multiple interleaved memory
/// channels. Each channel runs an HPD with threshold `N / channels`;
/// repeated extractions are de-duplicated in the training framework.
/// Reports (channels, hot-page ratio %, coverage, normalized perf).
pub fn channels_sweep(scale: &Scale) -> Result<Vec<(WorkloadKind, Vec<(usize, f64, f64, f64)>)>> {
    let workloads = [WorkloadKind::Kmeans, WorkloadKind::NpbLu];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?
            .completion
            .as_nanos() as f64;
        let mut rows = Vec::new();
        for &channels in &[1usize, 2, 4] {
            let config = SimConfig {
                channels,
                ..SimConfig::with_system(SystemConfig::hopp_default())
            };
            let r = hopp_sim::run_workload_with(config, kind, fp, scale.seed, 0.5)?;
            rows.push((
                channels,
                r.hpd.hot_ratio() * 100.0,
                r.coverage(),
                local / r.completion.as_nanos() as f64,
            ));
        }
        out.push((kind, rows));
    }
    Ok(out)
}

/// §IV extension: huge-page batched prefetching for proven long
/// stride-1 streams. Reports per workload: (batching?, normalized
/// perf, RDMA read *requests*, pages moved).
pub fn hugepage_study(scale: &Scale) -> Result<Vec<(WorkloadKind, bool, f64, u64, u64)>> {
    let workloads = [
        WorkloadKind::Kmeans,
        WorkloadKind::Microbench,
        WorkloadKind::Quicksort,
    ];
    let mut rows = Vec::new();
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?
            .completion
            .as_nanos() as f64;
        for batching in [false, true] {
            // The paper's batch is 512 pages (2 MB) against multi-GB
            // footprints; at this simulation's ~16 MB footprints the
            // proportional batch is 64 pages.
            let policy = if batching {
                PolicyConfig {
                    huge_batch: Some(hopp_core::policy::HugeBatchConfig {
                        min_confirmations: 64,
                        batch_pages: 64,
                    }),
                    ..PolicyConfig::default()
                }
            } else {
                PolicyConfig::default()
            };
            let r = hopp_sim::run_workload(
                kind,
                fp,
                scale.seed,
                SystemConfig::hopp_with(HoppConfig {
                    policy,
                    ..HoppConfig::default()
                }),
                0.5,
            )?;
            rows.push((
                kind,
                batching,
                local / r.completion.as_nanos() as f64,
                r.rdma.reads,
                r.rdma.bytes / hopp_types::PAGE_SIZE as u64,
            ));
        }
    }
    Ok(rows)
}

/// §III-D extension: the Markov (address-correlation) trainer against
/// adaptive three-tier prefetching. Correlation needs history, so it
/// trades first-visit streaming coverage for repeated-irregular
/// coverage. Reports (trainer, accuracy, coverage, normalized perf).
pub fn markov_study(
    scale: &Scale,
) -> Result<Vec<(WorkloadKind, Vec<(&'static str, f64, f64, f64)>)>> {
    use hopp_core::{MarkovConfig, TrainerKind};
    let workloads = [
        WorkloadKind::Kmeans,
        WorkloadKind::GraphPr,
        WorkloadKind::GraphBfs,
        WorkloadKind::NpbCg,
    ];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?
            .completion
            .as_nanos() as f64;
        let mut rows = Vec::new();
        for &(name, trainer) in &[
            ("three-tier", TrainerKind::ThreeTier),
            ("markov", TrainerKind::Markov(MarkovConfig::default())),
        ] {
            let r = hopp_sim::run_workload(
                kind,
                fp,
                scale.seed,
                SystemConfig::hopp_with(HoppConfig {
                    trainer,
                    ..HoppConfig::default()
                }),
                0.5,
            )?;
            rows.push((
                name,
                r.accuracy(),
                r.coverage(),
                local / r.completion.as_nanos() as f64,
            ));
        }
        out.push((kind, rows));
    }
    Ok(out)
}

/// §IV extension: trace-assisted reclaim (hot pages get a second
/// chance before eviction). Reports (window, major faults, normalized
/// perf) per workload.
pub fn reclaim_study(scale: &Scale) -> Result<Vec<(WorkloadKind, Vec<(&'static str, u64, f64)>)>> {
    let workloads = [WorkloadKind::NpbCg, WorkloadKind::GraphPr];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let local = hopp_sim::run_local(kind, fp, scale.seed)?
            .completion
            .as_nanos() as f64;
        // The hot window must span a reuse period (a superstep is
        // tens of milliseconds at this scale) to protect anything.
        let mut rows = Vec::new();
        for &(name, window) in &[
            ("off", None),
            ("2ms", Some(Nanos::from_millis(2))),
            ("20ms", Some(Nanos::from_millis(20))),
            ("100ms", Some(Nanos::from_millis(100))),
        ] {
            // Run with fault-order LRU (no accessed-bit scanning):
            // the regime where the MC's hotness info is new signal.
            let config = SimConfig {
                trace_assisted_reclaim: window,
                precise_lru: false,
                ..SimConfig::with_system(SystemConfig::hopp_default())
            };
            let r = hopp_sim::run_workload_with(config, kind, fp, scale.seed, 0.5)?;
            rows.push((
                name,
                r.counters.major_faults,
                local / r.completion.as_nanos() as f64,
            ));
        }
        out.push((kind, rows));
    }
    Ok(out)
}

/// Design sensitivity beyond the paper's figures: STT history length
/// `L` and clustering distance `Δ_stream`. Reports (L, Δ, coverage,
/// accuracy) for one stream-rich and one noisy workload.
pub fn stt_sensitivity(scale: &Scale) -> Result<Vec<(WorkloadKind, Vec<(usize, u64, f64, f64)>)>> {
    use hopp_core::SttConfig;
    let workloads = [WorkloadKind::Hpl, WorkloadKind::GraphBfs];
    let mut out = Vec::with_capacity(workloads.len());
    for &kind in &workloads {
        let fp = scale.footprint_of(kind);
        let mut rows = Vec::new();
        for &history in &[8usize, 16, 32] {
            for &delta in &[16u64, 64, 256] {
                let config = HoppConfig {
                    stt: SttConfig {
                        history,
                        delta_stream: delta,
                        ..SttConfig::default()
                    },
                    ..HoppConfig::default()
                };
                let r = hopp_sim::run_workload(
                    kind,
                    fp,
                    scale.seed,
                    SystemConfig::hopp_with(config),
                    0.5,
                )?;
                rows.push((history, delta, r.coverage(), r.accuracy()));
            }
        }
        out.push((kind, rows));
    }
    Ok(out)
}

/// Warmup dynamics (§VI-E: "When HoPP is started, the application must
/// access the remote memory via page faults … With more prefetch-hits,
/// the timeliness is becoming smaller over time, HoPP will detect it
/// and increase the prefetch offset"). Reports per-window major-fault
/// counts over the run for Fastswap and HoPP.
pub fn warmup(scale: &Scale) -> Result<Vec<(&'static str, Vec<u64>)>> {
    let kind = WorkloadKind::Kmeans;
    let fp = scale.footprint;
    let run = |system: SystemConfig| -> Result<Vec<u64>> {
        let config = SimConfig {
            timeline_every: fp * 3 / 12, // 12 windows over the run
            ..SimConfig::with_system(system)
        };
        let r = hopp_sim::run_workload_with(config, kind, fp, scale.seed, 0.5)?;
        let mut windows = Vec::new();
        let mut prev = 0u64;
        for sample in &r.timeline {
            windows.push(sample.major_faults - prev);
            prev = sample.major_faults;
        }
        Ok(windows)
    };
    Ok(vec![
        (
            "Fastswap",
            run(SystemConfig::Baseline(BaselineKind::Fastswap))?,
        ),
        ("HoPP", run(SystemConfig::hopp_default())?),
    ])
}

/// Scale robustness: the headline comparison (HoPP vs Fastswap,
/// normalized performance at 50 % local) at three footprints and two
/// seeds. The reproduction rests on the claim that the *shape* of the
/// results is insensitive to the scaled-down footprints; this
/// experiment is the evidence.
pub fn scale_robustness() -> Result<Vec<(u64, u64, WorkloadKind, f64, f64)>> {
    let workloads = [
        WorkloadKind::Kmeans,
        WorkloadKind::NpbMg,
        WorkloadKind::GraphPr,
    ];
    let mut rows = Vec::new();
    for &fp in &[2_048u64, 4_096, 8_192] {
        for &seed in &[42u64, 7] {
            for &kind in &workloads {
                let local = hopp_sim::run_local(kind, fp, seed)?.completion.as_nanos() as f64;
                let fs = hopp_sim::run_workload(
                    kind,
                    fp,
                    seed,
                    SystemConfig::Baseline(BaselineKind::Fastswap),
                    0.5,
                )?;
                let hp = hopp_sim::run_workload(kind, fp, seed, SystemConfig::hopp_default(), 0.5)?;
                rows.push((
                    fp,
                    seed,
                    kind,
                    local / fs.completion.as_nanos() as f64,
                    local / hp.completion.as_nanos() as f64,
                ));
            }
        }
    }
    Ok(rows)
}

/// Latency distributions (observability tentpole): fault, timeliness
/// and RDMA percentiles for Fastswap vs HoPP on the same workload —
/// the distribution-level view the paper's mean-only tables hide.
pub fn latency_study(scale: &Scale) -> Result<Vec<(&'static str, hopp_obs::LatencySummaries)>> {
    let kind = WorkloadKind::Kmeans;
    let fp = scale.footprint_of(kind);
    let mut out = Vec::new();
    for (name, system) in [
        ("fastswap", SystemConfig::Baseline(BaselineKind::Fastswap)),
        ("hopp", SystemConfig::hopp_default()),
    ] {
        let report = hopp_sim::run_workload(kind, fp, scale.seed, system, 0.5)?;
        out.push((name, report.obs.latency));
    }
    Ok(out)
}

/// One row of the `hopp-fabric` node-count sweep.
#[derive(Clone, Debug)]
pub struct FabricRow {
    /// Memory nodes in the pool.
    pub nodes: usize,
    /// Placement policy name.
    pub placement: &'static str,
    /// Normalized performance (`CT_local / CT_system`).
    pub normalized: f64,
    /// Major-fault p99 latency.
    pub major_p99: Nanos,
    /// Total time remote reads spent queued behind a busy link.
    pub queueing: Nanos,
    /// Remote reads issued.
    pub reads: u64,
}

/// `hopp-fabric`: HoPP's normalized performance and link queueing as
/// the remote pool widens from the paper's single server to 8 nodes,
/// under each placement policy. Prefetch intensity 4 makes the data
/// path burst hard enough to queue on one link; wider pools spread the
/// bursts over parallel links, so queueing falls as nodes grow.
pub fn fabric_sweep(scale: &Scale) -> Result<Vec<FabricRow>> {
    let kind = WorkloadKind::Kmeans;
    let fp = scale.footprint_of(kind);
    let local = hopp_sim::run_local(kind, fp, scale.seed)?.completion;
    let system = SystemConfig::hopp_with(HoppConfig {
        policy: PolicyConfig {
            intensity: 4,
            ..PolicyConfig::default()
        },
        ..HoppConfig::default()
    });
    let mut rows = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        for placement in [
            PlacementKind::StaticHash,
            PlacementKind::RoundRobin,
            PlacementKind::StreamAware,
        ] {
            // A 1-node pool places everything on node 0 regardless.
            if nodes == 1 && placement != PlacementKind::StaticHash {
                continue;
            }
            let config = SimConfig {
                fabric: FabricConfig {
                    nodes,
                    placement,
                    ..FabricConfig::default()
                },
                ..SimConfig::with_system(system)
            };
            let r = hopp_sim::run_workload_with(config, kind, fp, scale.seed, 0.25)?;
            rows.push(FabricRow {
                nodes,
                placement: placement.name(),
                normalized: local.as_nanos() as f64 / r.completion.as_nanos() as f64,
                major_p99: Nanos::from_nanos(r.obs.latency.major_fault.p99),
                queueing: r.rdma.queueing,
                reads: r.rdma.reads,
            });
        }
    }
    Ok(rows)
}

/// One row of the fault-injection study.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// System under test.
    pub system: &'static str,
    /// Fault scenario name.
    pub scenario: &'static str,
    /// Normalized performance (`CT_local / CT_system`).
    pub normalized: f64,
    /// Major-fault p99 latency.
    pub major_p99: Nanos,
    /// Reads served by a replica after the primary failed.
    pub failovers: u64,
    /// Transient-failure retries paid.
    pub retries: u64,
}

/// `hopp-fabric`: Fastswap vs HoPP on a 4-node, replication-2 pool
/// under scripted degradation — healthy, one node 4x slow, one node
/// lost outright. HoPP keeps its major-fault tail lower than Fastswap
/// because prefetched pages dodge the synchronous read that eats the
/// slow-down or failover penalty.
pub fn fault_study(scale: &Scale) -> Result<Vec<FaultRow>> {
    let kind = WorkloadKind::Kmeans;
    let fp = scale.footprint_of(kind);
    let local = hopp_sim::run_local(kind, fp, scale.seed)?.completion;
    let scenarios: [(&'static str, Option<&str>); 3] = [
        ("healthy", None),
        ("node0 4x slow", Some("2:0:slow:4")),
        ("node1 lost", Some("5:1:down")),
    ];
    let systems = [
        ("fastswap", SystemConfig::Baseline(BaselineKind::Fastswap)),
        ("hopp", SystemConfig::hopp_default()),
    ];
    let mut rows = Vec::new();
    for (scenario, script) in scenarios {
        for (name, system) in systems {
            let config = SimConfig {
                fabric: FabricConfig {
                    nodes: 4,
                    replication: 2,
                    ..FabricConfig::default()
                },
                ..SimConfig::with_system(system)
            };
            let r = match script {
                Some(s) => {
                    let script = FaultScript::parse(s)?;
                    hopp_sim::run_workload_with_faults(config, kind, fp, scale.seed, 0.5, &script)?
                }
                None => hopp_sim::run_workload_with(config, kind, fp, scale.seed, 0.5)?,
            };
            let fabric = r.fabric.as_ref().ok_or(Error::InvalidConfig {
                what: "fabric",
                constraint: "multi-node pools report fabric stats",
            })?;
            rows.push(FaultRow {
                system: name,
                scenario,
                normalized: local.as_nanos() as f64 / r.completion.as_nanos() as f64,
                major_p99: Nanos::from_nanos(r.obs.latency.major_fault.p99),
                failovers: fabric.failovers,
                retries: fabric.nodes.iter().map(|n| n.retries).sum(),
            });
        }
    }
    Ok(rows)
}

/// One throughput row: simulator wall-clock throughput for a
/// (workload, system) pair.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// The workload (catalogue name or scenario name).
    pub workload: String,
    /// System under test.
    pub system: &'static str,
    /// Page accesses the run executed.
    pub accesses: u64,
    /// Best-of-repeats wall-clock time for the run, in seconds.
    pub wall_secs: f64,
    /// `accesses / wall_secs`.
    pub accesses_per_sec: f64,
    /// Median per-repeat *paired* speed ratio against the same repeat's
    /// `noprefetch` run of the same workload (1.0 for the `noprefetch`
    /// row itself). The two runs of a pair execute back-to-back inside
    /// one repeat, so transient host stalls hit both alike, and the
    /// median discards repeats where a stall hit only one side — this
    /// ratio stays stable where raw wall times wander, and it is the
    /// number `cargo xtask gate` regression-checks.
    pub vs_noprefetch: f64,
}

/// The systems measured by the throughput harness.
pub fn throughput_systems() -> [(&'static str, SystemConfig); 3] {
    [
        (
            "noprefetch",
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
        ),
        ("fastswap", SystemConfig::Baseline(BaselineKind::Fastswap)),
        ("hopp", SystemConfig::hopp_default()),
    ]
}

/// Perf-trajectory tentpole: wall-clock accesses/sec of the whole
/// simulated stack per workload × system at 50 % local memory.
///
/// Wall-clock time is measured here, at the bench layer — the one place
/// the determinism rules permit `Instant` — and each cell takes the
/// best of `repeats` runs so scheduler noise does not pollute the
/// tracked `BENCH_throughput.json` trajectory. Simulated results are
/// seeded and identical across repeats; only the wall clock varies.
pub fn throughput(scale: &Scale, repeats: u32) -> Result<Vec<ThroughputRow>> {
    throughput_over(scale, repeats, &default_bench_workloads())
}

/// [`throughput`] over an explicit workload axis — catalogue workloads
/// and scenarios mix freely (`--full` and `--scenarios` route here).
pub fn throughput_over(
    scale: &Scale,
    repeats: u32,
    workloads: &[WorkloadSource],
) -> Result<Vec<ThroughputRow>> {
    use std::time::Instant;
    let mut rows = Vec::new();
    for source in workloads {
        let fp = source.footprint(scale.footprint, scale.spark_footprint);
        let systems = throughput_systems();
        let mut accesses = [0u64; 3];
        let mut best = [f64::INFINITY; 3];
        let mut ratios: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        // Systems are interleaved *inside* each repeat so a workload's
        // cells are measured back-to-back: slow phases of a shared host
        // then hit all systems alike, and the paired `vs_noprefetch`
        // ratios stay stable even when absolute wall times wander.
        for _ in 0..repeats.max(1) {
            let mut this = [0f64; 3];
            for (i, &(_, system)) in systems.iter().enumerate() {
                let start = Instant::now();
                let stream = source.build(SOLO_PID, fp, scale.seed);
                let report = hopp_sim::run_stream_with(
                    SimConfig::with_system(system),
                    SOLO_PID,
                    stream,
                    fp,
                    0.5,
                )?;
                let secs = start.elapsed().as_secs_f64();
                accesses[i] = report.counters.accesses;
                this[i] = secs;
                best[i] = best[i].min(secs);
            }
            // Index 0 is the repeat's own noprefetch run.
            for i in 0..3 {
                ratios[i].push(this[0] / this[i].max(1e-9));
            }
        }
        for (i, &(name, _)) in systems.iter().enumerate() {
            rows.push(ThroughputRow {
                workload: source.name().to_string(),
                system: name,
                accesses: accesses[i],
                wall_secs: best[i],
                accesses_per_sec: accesses[i] as f64 / best[i].max(1e-9),
                vs_noprefetch: if i == 0 { 1.0 } else { median(&mut ratios[i]) },
            });
        }
    }
    Ok(rows)
}

/// Median of a non-empty sample (mean of the middle pair when even).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Per-workload speedup ratios derived from one set of throughput rows:
/// `(workload name, hopp vs fastswap, hopp vs noprefetch)`, in the
/// rows' workload order. Ratios are accesses/sec quotients, so > 1.0
/// means HoPP's full stack is *faster to simulate* than the baseline.
pub fn throughput_summary(rows: &[ThroughputRow]) -> Vec<(String, f64, f64)> {
    let mut out: Vec<(String, f64, f64)> = Vec::new();
    let cell = |workload: &str, system: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.workload == workload && r.system == system)
            .map(|r| r.accesses_per_sec)
    };
    for r in rows {
        if out.iter().any(|(w, _, _)| *w == r.workload) {
            continue;
        }
        let (Some(hopp), Some(fastswap), Some(nopf)) = (
            cell(&r.workload, "hopp"),
            cell(&r.workload, "fastswap"),
            cell(&r.workload, "noprefetch"),
        ) else {
            continue;
        };
        out.push((
            r.workload.clone(),
            hopp / fastswap.max(1e-9),
            hopp / nopf.max(1e-9),
        ));
    }
    out
}

/// Renders throughput rows as the tracked `BENCH_throughput.json`
/// document (hand-rolled JSON; the workspace has no serde), including a
/// `summary` block with the [`throughput_summary`] speedup ratios.
pub fn throughput_json(scale: &Scale, repeats: u32, rows: &[ThroughputRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hopp-bench-throughput/v1\",\n");
    out.push_str("  \"unit\": \"accesses_per_sec\",\n");
    out.push_str(&format!(
        "  \"scale\": {{\"footprint\": {}, \"spark_footprint\": {}, \"seed\": {}, \"repeats\": {repeats}}},\n",
        scale.footprint, scale.spark_footprint, scale.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"system\": \"{}\", \"accesses\": {}, \
             \"wall_secs\": {:.6}, \"accesses_per_sec\": {:.0}, \"vs_noprefetch\": {:.4}}}{}\n",
            r.workload,
            r.system,
            r.accesses,
            r.wall_secs,
            r.accesses_per_sec,
            r.vs_noprefetch,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    let summary = throughput_summary(rows);
    if summary.is_empty() {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n");
    out.push_str("  \"summary\": [\n");
    for (i, (workload, vs_fastswap, vs_nopf)) in summary.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"hopp_vs_fastswap\": {vs_fastswap:.3}, \
             \"hopp_vs_noprefetch\": {vs_nopf:.3}}}{}\n",
            if i + 1 == summary.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One prefetch-quality row: the scoreboard for a (workload, system)
/// pair. Unlike [`throughput`], every field is a function of simulated
/// state only, so rows are bit-stable for a given [`Scale`].
#[derive(Clone, Debug)]
pub struct QualityRow {
    /// The workload (catalogue name or scenario name).
    pub workload: String,
    /// System under test.
    pub system: &'static str,
    /// Page accesses the run executed.
    pub accesses: u64,
    /// Pages prefetched (fault path + HoPP data path).
    pub prefetched: u64,
    /// Prefetched pages that were used before eviction.
    pub prefetch_hits: u64,
    /// Prefetched pages evicted unused.
    pub wasted: u64,
    /// Combined coverage, percent (§VI-A).
    pub coverage_pct: f64,
    /// Combined accuracy, percent.
    pub accuracy_pct: f64,
    /// Wasted prefetches over all prefetches, percent.
    pub pollution_pct: f64,
    /// Mean lead time of useful prefetches, ns (hit-weighted across the
    /// fault path and HoPP's data path).
    pub mean_timeliness_ns: u64,
}

/// The systems on the quality scoreboard — the ones that prefetch.
pub fn quality_systems() -> [(&'static str, SystemConfig); 2] {
    [
        ("fastswap", SystemConfig::Baseline(BaselineKind::Fastswap)),
        ("hopp", SystemConfig::hopp_default()),
    ]
}

/// Prefetch-quality scoreboard: coverage, accuracy, pollution and
/// timeliness per workload × system at 50 % local memory, over the same
/// workloads as [`throughput`]. Tracked as `BENCH_quality.json` and
/// regression-gated by `cargo xtask gate` alongside the throughput
/// trajectory.
pub fn quality(scale: &Scale) -> Result<Vec<QualityRow>> {
    quality_over(scale, &default_bench_workloads())
}

/// [`quality`] over an explicit workload axis — catalogue workloads and
/// scenarios mix freely (`--full` and `--scenarios` route here).
pub fn quality_over(scale: &Scale, workloads: &[WorkloadSource]) -> Result<Vec<QualityRow>> {
    let mut rows = Vec::new();
    for source in workloads {
        let fp = source.footprint(scale.footprint, scale.spark_footprint);
        for (name, system) in quality_systems() {
            let stream = source.build(SOLO_PID, fp, scale.seed);
            let r = hopp_sim::run_stream_with(
                SimConfig::with_system(system),
                SOLO_PID,
                stream,
                fp,
                0.5,
            )?;
            let hopp = r.hopp.as_ref();
            let prefetched = r.baseline.prefetched + hopp.map_or(0, |h| h.prefetched);
            let hits = r.baseline.prefetch_hits + hopp.map_or(0, |h| h.prefetch_hits);
            let wasted = r.baseline.wasted + hopp.map_or(0, |h| h.wasted);
            let timeliness_weighted = r.baseline.mean_timeliness.as_nanos()
                * r.baseline.prefetch_hits
                + hopp.map_or(0, |h| h.mean_timeliness.as_nanos() * h.prefetch_hits);
            rows.push(QualityRow {
                workload: source.name().to_string(),
                system: name,
                accesses: r.counters.accesses,
                prefetched,
                prefetch_hits: hits,
                wasted,
                coverage_pct: r.coverage() * 100.0,
                accuracy_pct: r.accuracy() * 100.0,
                pollution_pct: if prefetched == 0 {
                    0.0
                } else {
                    wasted as f64 / prefetched as f64 * 100.0
                },
                mean_timeliness_ns: timeliness_weighted / hits.max(1),
            });
        }
    }
    Ok(rows)
}

/// Renders quality rows as the tracked `BENCH_quality.json` document.
pub fn quality_json(scale: &Scale, rows: &[QualityRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"hopp-bench-quality/v1\",\n");
    out.push_str(&format!(
        "  \"scale\": {{\"footprint\": {}, \"spark_footprint\": {}, \"seed\": {}}},\n",
        scale.footprint, scale.spark_footprint, scale.seed
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"system\": \"{}\", \"accesses\": {}, \
             \"prefetched\": {}, \"prefetch_hits\": {}, \"wasted\": {}, \
             \"coverage_pct\": {:.2}, \"accuracy_pct\": {:.2}, \"pollution_pct\": {:.2}, \
             \"mean_timeliness_ns\": {}}}{}\n",
            r.workload,
            r.system,
            r.accesses,
            r.prefetched,
            r.prefetch_hits,
            r.wasted,
            r.coverage_pct,
            r.accuracy_pct,
            r.pollution_pct,
            r.mean_timeliness_ns,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// §VI-F: the CACTI-derived area and static-power estimates.
pub fn hwcost() -> [(String, f64, f64); 2] {
    let model = HwCostModel::default();
    let hpd = HpdConfig::default();
    let rpt = RptCacheConfig::default();
    [
        (
            "HPD table (16x4, 22nm)".to_string(),
            model.hpd_area_mm2(&hpd),
            model.hpd_static_mw(&hpd),
        ),
        (
            "RPT cache (64KB, 22nm)".to_string(),
            model.rpt_area_mm2(&rpt),
            model.rpt_static_mw(&rpt),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            footprint: 512,
            spark_footprint: 512,
            seed: 7,
        }
    }

    #[test]
    fn perf_matrix_produces_sane_normalized_values() {
        let recs = perf_matrix(&tiny(), &[WorkloadKind::Kmeans], 0.5).unwrap();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        let fs = r.normalized(&r.fastswap);
        let hp = r.normalized(&r.hopp);
        assert!(fs > 0.0 && fs <= 1.0);
        assert!(hp > 0.0 && hp <= 1.05);
    }

    #[test]
    fn table2_ratio_decreases_with_n() {
        let rows = table2(&tiny()).unwrap();
        for (_, series) in rows {
            let first = series.first().unwrap().1;
            let last = series.last().unwrap().1;
            assert!(first >= last, "ratio should fall as N grows");
        }
    }

    #[test]
    fn table3_hit_rate_grows_with_capacity() {
        let rows = table3(&tiny()).unwrap();
        for (_, series) in rows {
            let first = series.first().unwrap().1;
            let last = series.last().unwrap().1;
            assert!(last >= first, "bigger cache, better hit rate");
            assert!(last > 0.9, "64 KB cache absorbs nearly everything");
        }
    }

    #[test]
    fn fig22_dynamic_offset_beats_extreme_fixed_offsets() {
        let rows = fig22(&tiny()).unwrap();
        let get = |name: &str| rows.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(get("HoPP (dynamic)") >= get("HoPP (offset=20K)"));
        assert!(get("HoPP (dynamic)") > get("Leap"));
    }

    #[test]
    fn fabric_sweep_spreads_queueing_over_nodes() {
        let rows = fabric_sweep(&tiny()).unwrap();
        let q = |nodes: usize| {
            rows.iter()
                .find(|r| r.nodes == nodes && r.placement == "hash")
                .unwrap()
                .queueing
        };
        assert!(q(8) <= q(1), "8 hashed links never queue more than 1");
    }

    #[test]
    fn fault_study_degradation_hurts_and_failover_fires() {
        let rows = fault_study(&tiny()).unwrap();
        assert_eq!(rows.len(), 6);
        let get = |sys: &str, sc: &str| {
            rows.iter()
                .find(|r| r.system == sys && r.scenario == sc)
                .unwrap()
        };
        // Node loss completes via failover, not a panic.
        assert!(get("fastswap", "node1 lost").normalized > 0.0);
        assert!(get("hopp", "node1 lost").normalized > 0.0);
        // A slow node can only lengthen the fault tail.
        assert!(get("fastswap", "node0 4x slow").major_p99 >= get("fastswap", "healthy").major_p99);
    }

    #[test]
    fn hwcost_matches_the_paper() {
        let rows = hwcost();
        assert!((rows[0].1 - 0.000252).abs() < 1e-9);
        assert!((rows[1].2 - 21.4).abs() < 1e-9);
    }
}
