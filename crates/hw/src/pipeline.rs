//! The full in-MC pipeline: LLC miss → HPD → RPT → hot-page record.
//!
//! This is "step 1 and step 2" of the paper's Figure 4: the hot page
//! detection module extracts hot PPNs from the miss stream and the RPT
//! cache maps each to its `(PID, VPN)` combo, which is then written to a
//! reserved DRAM area for software to consume. [`McPipeline`] wires the
//! two modules together, keeps the bandwidth ledger, and exposes the
//! kernel-facing PTE hooks.

use hopp_mem::PteListener;
use hopp_obs::{Event, NopRecorder, Recorder};
use hopp_types::{AccessKind, HotPage, LineAddr, Nanos, Pid, Ppn, Result, Vpn};

use crate::cost::BandwidthLedger;
use crate::hpd::{HotPageDetector, HpdConfig};
use crate::rpt::{ReversePageTable, RptCacheConfig};

/// The modelled memory-controller pipeline.
///
/// # Example
///
/// ```
/// use hopp_hw::{McPipeline, HpdConfig, RptCacheConfig};
/// use hopp_mem::PteListener;
/// use hopp_types::{AccessKind, Nanos, Pid, Ppn, Vpn};
///
/// let mut mc = McPipeline::new(HpdConfig::with_threshold(2), RptCacheConfig::default())?;
/// mc.pte_set(Pid::new(1), Vpn::new(0x50), Ppn::new(4));
/// let t = Nanos::from_nanos(10);
/// assert!(mc.on_llc_miss(Ppn::new(4).line(0), AccessKind::Read, t).is_none());
/// let hot = mc.on_llc_miss(Ppn::new(4).line(1), AccessKind::Read, t).unwrap();
/// assert_eq!(hot.vpn, Vpn::new(0x50));
/// # Ok::<(), hopp_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct McPipeline {
    /// One HPD table per memory channel (§III-B: interleaved channels
    /// each see a share of a page's cachelines, so each channel runs a
    /// proportionally reduced threshold).
    hpds: Vec<HotPageDetector>,
    rpt: ReversePageTable,
    ledger: BandwidthLedger,
}

impl McPipeline {
    /// Builds a single-channel pipeline from the two module
    /// configurations.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors from either module.
    pub fn new(hpd: HpdConfig, rpt: RptCacheConfig) -> Result<Self> {
        Self::with_channels(hpd, rpt, 1)
    }

    /// Builds a pipeline with `channels` interleaved memory channels.
    /// Cachelines are distributed line-interleaved; each channel's HPD
    /// threshold is `N / channels` (min 1) so a page still becomes hot
    /// after ~`N` total accesses. Repeated extractions of the same page
    /// from different channels are expected — the prefetch training
    /// framework de-duplicates them (§III-B).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors;
    /// [`Error::InvalidConfig`] for zero channels.
    ///
    /// [`Error::InvalidConfig`]: hopp_types::Error::InvalidConfig
    pub fn with_channels(hpd: HpdConfig, rpt: RptCacheConfig, channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(hopp_types::Error::InvalidConfig {
                what: "memory channels",
                constraint: "at least 1",
            });
        }
        // Validate the *requested* configuration before scaling: the
        // per-channel `.max(1)` must not silently repair an invalid
        // threshold of 0.
        hpd.validate()?;
        let per_channel = HpdConfig {
            threshold: (hpd.threshold / channels as u32).max(1),
            ..hpd
        };
        Ok(McPipeline {
            hpds: (0..channels)
                .map(|_| HotPageDetector::new(per_channel))
                .collect::<Result<_>>()?,
            rpt: ReversePageTable::new(rpt)?,
            ledger: BandwidthLedger::new(),
        })
    }

    /// Number of modelled memory channels.
    pub fn channels(&self) -> usize {
        self.hpds.len()
    }

    /// Feeds one LLC miss through HPD and, if it crosses the hotness
    /// threshold, through the RPT. Returns the resolved hot page, ready
    /// for the prefetch training framework.
    ///
    /// Hot pages whose frame cannot be resolved (freed or kernel-owned)
    /// are dropped, as the real hardware would drop them.
    pub fn on_llc_miss(&mut self, line: LineAddr, kind: AccessKind, now: Nanos) -> Option<HotPage> {
        self.on_llc_miss_rec(line, kind, now, &mut NopRecorder)
    }

    /// [`McPipeline::on_llc_miss`], recording the hardware-side events:
    /// [`Event::HpdHot`] when the threshold fires, then
    /// [`Event::RptHit`] or [`Event::RptMiss`] (with whether the walk
    /// resolved) and [`Event::RptWriteback`] when the cache evicted a
    /// dirty way to DRAM.
    pub fn on_llc_miss_rec(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Option<HotPage> {
        self.ledger.app_misses += 1;
        let channel = (line.raw() % self.hpds.len() as u64) as usize;
        let ppn = self.hpds[channel].on_miss(line, kind)?;
        // Host-profiling scope for the rare hot-extraction path only; the
        // common not-hot early return above stays span-free.
        let _prof = hopp_prof::span("hw/hpd_extract");
        if rec.is_enabled() {
            rec.record(now, Event::HpdHot { ppn });
        }
        let before = self.rpt.stats();
        let entry = self.rpt.lookup(ppn);
        let after = self.rpt.stats();
        self.ledger.rpt_dram_accesses += after.dram_accesses() - before.dram_accesses();
        if rec.is_enabled() {
            if after.hits > before.hits {
                rec.record(now, Event::RptHit { ppn });
            } else {
                rec.record(
                    now,
                    Event::RptMiss {
                        ppn,
                        resolved: entry.is_some(),
                    },
                );
            }
            if after.dram_writebacks > before.dram_writebacks {
                rec.record(now, Event::RptWriteback { ppn });
            }
        }
        let entry = entry?;
        // One 8-byte record written to the reserved hot-page area.
        self.ledger.hot_page_writes += 1;
        Some(HotPage {
            pid: entry.pid,
            vpn: entry.vpn,
            flags: entry.flags,
            at: now,
        })
    }

    /// Notifies the pipeline that a frame left DRAM (reclaim): its HPD
    /// counter is dropped so a stale count cannot fire later.
    pub fn on_page_reclaimed(&mut self, ppn: Ppn) {
        for hpd in &mut self.hpds {
            hpd.invalidate(ppn);
        }
    }

    /// Bootstraps the RPT from the current frame-owner table (done once
    /// when HoPP starts, §III-C).
    pub fn bootstrap_rpt<I>(&mut self, owned: I)
    where
        I: IntoIterator<Item = (Ppn, Pid, Vpn)>,
    {
        self.rpt.bootstrap(owned);
    }

    /// The HPD module of channel 0 (for configuration queries).
    pub fn hpd(&self) -> &HotPageDetector {
        &self.hpds[0]
    }

    /// HPD counters aggregated across channels.
    pub fn hpd_stats(&self) -> crate::hpd::HpdStats {
        let mut total = crate::hpd::HpdStats::default();
        for hpd in &self.hpds {
            total.merge(hpd.stats());
        }
        total
    }

    /// The RPT module (for stats).
    pub fn rpt(&self) -> &ReversePageTable {
        &self.rpt
    }

    /// The bandwidth overhead ledger (Table V).
    pub fn ledger(&self) -> BandwidthLedger {
        self.ledger
    }
}

impl PteListener for McPipeline {
    fn pte_set(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
        self.rpt.pte_set(pid, vpn, ppn);
    }
    fn pte_clear(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
        self.rpt.pte_clear(pid, vpn, ppn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(n: u32) -> McPipeline {
        McPipeline::new(HpdConfig::with_threshold(n), RptCacheConfig::default()).unwrap()
    }

    fn feed_reads(mc: &mut McPipeline, ppn: Ppn, count: u8) -> Vec<HotPage> {
        (0..count)
            .filter_map(|i| {
                mc.on_llc_miss(
                    ppn.line(i),
                    AccessKind::Read,
                    Nanos::from_nanos(u64::from(i)),
                )
            })
            .collect()
    }

    #[test]
    fn end_to_end_hot_page_resolution() {
        let mut mc = pipeline(4);
        mc.pte_set(Pid::new(7), Vpn::new(0x700), Ppn::new(3));
        let hot = feed_reads(&mut mc, Ppn::new(3), 10);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].pid, Pid::new(7));
        assert_eq!(hot[0].vpn, Vpn::new(0x700));
        assert_eq!(hot[0].at, Nanos::from_nanos(3));
    }

    #[test]
    fn unresolvable_hot_pages_are_dropped() {
        let mut mc = pipeline(2);
        // No PTE hook ever ran for this frame.
        let hot = feed_reads(&mut mc, Ppn::new(50), 5);
        assert!(hot.is_empty());
        assert_eq!(mc.ledger().hot_page_writes, 0);
        assert_eq!(mc.rpt().stats().unresolved, 1);
    }

    #[test]
    fn ledger_counts_traffic() {
        let mut mc = pipeline(2);
        mc.pte_set(Pid::new(1), Vpn::new(1), Ppn::new(1));
        feed_reads(&mut mc, Ppn::new(1), 4);
        let ledger = mc.ledger();
        assert_eq!(ledger.app_misses, 4);
        assert_eq!(ledger.hot_page_writes, 1);
        assert!(ledger.hpd_overhead_percent() > 0.0);
    }

    #[test]
    fn bootstrap_resolves_preexisting_mappings() {
        let mut mc = pipeline(1);
        mc.bootstrap_rpt([(Ppn::new(9), Pid::new(2), Vpn::new(0x90))]);
        let hot = feed_reads(&mut mc, Ppn::new(9), 1);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].vpn, Vpn::new(0x90));
    }

    #[test]
    fn channels_split_the_line_stream() {
        let mut mc =
            McPipeline::with_channels(HpdConfig::with_threshold(8), RptCacheConfig::default(), 4)
                .unwrap();
        assert_eq!(mc.channels(), 4);
        mc.pte_set(Pid::new(1), Vpn::new(0x10), Ppn::new(4));
        // 8 line accesses spread over 4 channels: each channel sees 2,
        // which crosses the reduced per-channel threshold of 8/4 = 2 —
        // so the page is extracted up to once per channel.
        let hot = feed_reads(&mut mc, Ppn::new(4), 8);
        assert!(!hot.is_empty());
        assert!(hot.len() <= 4, "at most one extraction per channel");
        assert!(hot.iter().all(|h| h.vpn == Vpn::new(0x10)));
        assert_eq!(mc.hpd_stats().hot_pages, hot.len() as u64);
    }

    #[test]
    fn recording_traces_hpd_and_rpt_decisions() {
        use hopp_obs::TraceSink;
        let mut sink = TraceSink::new(64);
        let mut mc = pipeline(2);
        // Bootstrap fills only the DRAM copy, so the first RPT lookup
        // misses the cache and resolves via the DRAM walk.
        mc.bootstrap_rpt([(Ppn::new(4), Pid::new(1), Vpn::new(0x10))]);
        let feed = |mc: &mut McPipeline, sink: &mut TraceSink| {
            for i in 0..2u8 {
                mc.on_llc_miss_rec(
                    Ppn::new(4).line(i),
                    AccessKind::Read,
                    Nanos::from_nanos(u64::from(i)),
                    sink,
                );
            }
        };
        feed(&mut mc, &mut sink);
        // Clearing the send-bit lets the page fire again; this time the
        // RPT cache has the entry.
        mc.on_page_reclaimed(Ppn::new(4));
        feed(&mut mc, &mut sink);
        let events = sink.into_events();
        let names: Vec<&str> = events.iter().map(|e| e.event.name()).collect();
        assert_eq!(names, ["hpd_hot", "rpt_miss", "hpd_hot", "rpt_hit"]);
        match events[1].event {
            hopp_obs::Event::RptMiss { resolved, .. } => assert!(resolved),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_channels_is_rejected() {
        assert!(
            McPipeline::with_channels(HpdConfig::default(), RptCacheConfig::default(), 0).is_err()
        );
    }

    #[test]
    fn reclaim_invalidates_counter() {
        let mut mc = pipeline(3);
        mc.pte_set(Pid::new(1), Vpn::new(2), Ppn::new(2));
        feed_reads(&mut mc, Ppn::new(2), 2);
        mc.on_page_reclaimed(Ppn::new(2));
        // Counter restarted: two more reads are not enough.
        assert!(feed_reads(&mut mc, Ppn::new(2), 2).is_empty());
        assert_eq!(feed_reads(&mut mc, Ppn::new(2), 1).len(), 1);
    }
}
