//! Reverse Page Table (RPT) and its in-MC cache — §III-C of the paper.
//!
//! The memory controller works in physical addresses; prefetching works
//! in `(PID, VPN)` space. The RPT maps each PPN back to its owner. The
//! authoritative copy lives in a reserved, *uncached* DRAM region (8 B
//! per frame: 16-bit PID, 40-bit VPN, shared flag, 2-bit huge flag); the
//! MC holds a small 16-way write-back cache in front of it. All RPT
//! reads and writes pass through the cache, so no extra coherence
//! machinery is needed.
//!
//! The kernel keeps the RPT current by notifying it from its PTE
//! install/clear paths — [`ReversePageTable`] implements
//! [`hopp_mem::PteListener`] for exactly that purpose. The DRAM copy is
//! only updated lazily when the cache writes back dirty entries, as in
//! the paper.

use hopp_ds::PageMap;
use hopp_mem::PteListener;
use hopp_types::{Error, PageFlags, Pid, Ppn, Result, Vpn};

/// Size of one RPT entry in bytes (64 bits per the paper's layout).
pub const RPT_ENTRY_BYTES: usize = 8;

/// One RPT record: the owner and flags of a physical frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RptEntry {
    /// Owning process (16 bits in hardware).
    pub pid: Pid,
    /// Virtual page within that process (40 bits in hardware).
    pub vpn: Vpn,
    /// Shared/huge flags, forwarded to software unconsumed.
    pub flags: PageFlags,
}

/// Geometry of the in-MC RPT cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RptCacheConfig {
    /// Cache capacity in bytes (entries are 8 B each). Default 64 KB.
    pub capacity_bytes: usize,
    /// Associativity. Default 16.
    pub ways: usize,
}

impl Default for RptCacheConfig {
    fn default() -> Self {
        RptCacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 16,
        }
    }
}

impl RptCacheConfig {
    /// A default-associativity cache of `kib` kibibytes.
    pub fn with_kib(kib: usize) -> Self {
        RptCacheConfig {
            capacity_bytes: kib * 1024,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the capacity does not divide
    /// into a power-of-two number of non-empty sets.
    pub fn sets(&self) -> Result<usize> {
        let entries = self.capacity_bytes / RPT_ENTRY_BYTES;
        if self.ways == 0 || entries == 0 || !entries.is_multiple_of(self.ways) {
            return Err(Error::InvalidConfig {
                what: "rpt cache geometry",
                constraint: "capacity must be a multiple of ways * 8B",
            });
        }
        let sets = entries / self.ways;
        if !sets.is_power_of_two() {
            return Err(Error::InvalidConfig {
                what: "rpt cache sets",
                constraint: "set count must be a power of two",
            });
        }
        Ok(sets)
    }
}

/// RPT activity counters; Table III (hit rate) and the RPT row of
/// Table V (DRAM traffic) derive from these.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RptStats {
    /// Hot-page lookups served.
    pub lookups: u64,
    /// Lookups satisfied by the cache.
    pub hits: u64,
    /// Lookups that had to read the DRAM RPT.
    pub dram_reads: u64,
    /// Dirty entries written back to the DRAM RPT.
    pub dram_writebacks: u64,
    /// Lookups that found no mapping at all (frame not owned).
    pub unresolved: u64,
    /// PTE-hook updates applied.
    pub updates: u64,
}

impl RptStats {
    /// Cache hit rate over lookups (Table III's metric).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Total 8-byte DRAM RPT transfers (reads + writebacks).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_reads + self.dram_writebacks
    }
}

#[derive(Clone, Copy, Debug)]
struct CacheWay {
    ppn: Ppn,
    entry: Option<RptEntry>, // None encodes a cached "no mapping"
    valid: bool,
    dirty: bool,
    lru: u64,
}

const INVALID_WAY: CacheWay = CacheWay {
    ppn: Ppn::new(0),
    entry: None,
    valid: false,
    dirty: false,
    lru: 0,
};

/// The reverse page table: DRAM copy + in-MC cache.
///
/// # Example
///
/// ```
/// use hopp_hw::rpt::{ReversePageTable, RptCacheConfig};
/// use hopp_mem::PteListener;
/// use hopp_types::{Pid, Ppn, Vpn};
///
/// let mut rpt = ReversePageTable::new(RptCacheConfig::default())?;
/// // The kernel installs a PTE; the hook keeps the RPT current.
/// rpt.pte_set(Pid::new(1), Vpn::new(0x10), Ppn::new(3));
/// let e = rpt.lookup(Ppn::new(3)).unwrap();
/// assert_eq!((e.pid, e.vpn), (Pid::new(1), Vpn::new(0x10)));
/// # Ok::<(), hopp_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct ReversePageTable {
    dram: PageMap<Ppn, RptEntry>,
    sets: Vec<Vec<CacheWay>>,
    set_mask: u64,
    clock: u64,
    stats: RptStats,
}

impl ReversePageTable {
    /// Builds an empty RPT with the given cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid geometry.
    pub fn new(config: RptCacheConfig) -> Result<Self> {
        let sets = config.sets()?;
        Ok(ReversePageTable {
            dram: PageMap::new(),
            sets: vec![vec![INVALID_WAY; config.ways]; sets],
            set_mask: sets as u64 - 1,
            clock: 0,
            stats: RptStats::default(),
        })
    }

    /// Builds the initial RPT by walking all existing page tables, as
    /// HoPP does at startup (§III-C). `owned` yields every allocated
    /// frame with its owner (see [`hopp_mem::FrameAllocator::iter_owned`]).
    pub fn bootstrap<I>(&mut self, owned: I)
    where
        I: IntoIterator<Item = (Ppn, Pid, Vpn)>,
    {
        for (ppn, pid, vpn) in owned {
            self.dram.insert(
                ppn,
                RptEntry {
                    pid,
                    vpn,
                    flags: PageFlags::default(),
                },
            );
        }
    }

    fn set_of(&self, ppn: Ppn) -> usize {
        (ppn.raw() & self.set_mask) as usize
    }

    /// Finds the cache way holding `ppn`, updating LRU on hit.
    fn cache_find(&mut self, ppn: Ppn) -> Option<(usize, usize)> {
        let set_idx = self.set_of(ppn);
        let clock = self.clock;
        self.sets[set_idx]
            .iter_mut()
            .position(|w| w.valid && w.ppn == ppn)
            .map(|way_idx| {
                self.sets[set_idx][way_idx].lru = clock;
                (set_idx, way_idx)
            })
    }

    /// Installs `(ppn, entry)` in the cache, writing back the dirty
    /// victim if needed.
    fn cache_fill(&mut self, ppn: Ppn, entry: Option<RptEntry>, dirty: bool) {
        let set_idx = self.set_of(ppn);
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru } else { 0 })
            .map(|(i, _)| i)
            // hopp-check: allow(panic-policy): RptCacheConfig::validate rejects zero ways at construction
            .expect("ways >= 1 validated");
        let victim = set[victim_idx];
        if victim.valid && victim.dirty {
            // Lazy DRAM update on writeback (§V).
            match victim.entry {
                Some(e) => {
                    self.dram.insert(victim.ppn, e);
                }
                None => {
                    self.dram.remove(victim.ppn);
                }
            }
            self.stats.dram_writebacks += 1;
        }
        self.sets[set_idx][victim_idx] = CacheWay {
            ppn,
            entry,
            valid: true,
            dirty,
            lru: clock,
        };
    }

    /// Resolves a hot PPN to its owner, via the cache.
    ///
    /// Returns `None` when the frame has no current mapping (e.g. it was
    /// freed between detection and lookup) — such hot pages are dropped.
    pub fn lookup(&mut self, ppn: Ppn) -> Option<RptEntry> {
        self.clock += 1;
        self.stats.lookups += 1;
        if let Some((set_idx, way_idx)) = self.cache_find(ppn) {
            self.stats.hits += 1;
            let entry = self.sets[set_idx][way_idx].entry;
            if entry.is_none() {
                self.stats.unresolved += 1;
            }
            return entry;
        }
        // Miss: read the DRAM copy and fill.
        let _prof = hopp_prof::span("hw/rpt_walk");
        self.stats.dram_reads += 1;
        let entry = self.dram.get(ppn).copied();
        if entry.is_none() {
            self.stats.unresolved += 1;
        }
        self.cache_fill(ppn, entry, false);
        entry
    }

    /// Updates the shared/huge flags of a mapping (write-through the
    /// cache like any other update).
    pub fn set_flags(&mut self, ppn: Ppn, flags: PageFlags) {
        self.clock += 1;
        if let Some((set_idx, way_idx)) = self.cache_find(ppn) {
            if let Some(e) = &mut self.sets[set_idx][way_idx].entry {
                e.flags = flags;
                self.sets[set_idx][way_idx].dirty = true;
                return;
            }
        }
        if let Some(e) = self.dram.get(ppn).copied() {
            self.cache_fill(ppn, Some(RptEntry { flags, ..e }), true);
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> RptStats {
        self.stats
    }

    /// Clears the counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = RptStats::default();
    }

    /// Number of mappings currently in the DRAM copy (test/debug aid;
    /// dirty cache entries may supersede some of them).
    pub fn dram_entries(&self) -> usize {
        self.dram.len()
    }
}

impl PteListener for ReversePageTable {
    /// `set_pte_at` hook: record the new mapping (write-back: cache now,
    /// DRAM at eviction).
    fn pte_set(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
        self.clock += 1;
        self.stats.updates += 1;
        let entry = Some(RptEntry {
            pid,
            vpn,
            flags: PageFlags::default(),
        });
        if let Some((set_idx, way_idx)) = self.cache_find(ppn) {
            let way = &mut self.sets[set_idx][way_idx];
            way.entry = entry;
            way.dirty = true;
        } else {
            self.cache_fill(ppn, entry, true);
        }
    }

    /// `pte_clear` hook: drop the mapping.
    fn pte_clear(&mut self, _pid: Pid, _vpn: Vpn, ppn: Ppn) {
        self.clock += 1;
        self.stats.updates += 1;
        if let Some((set_idx, way_idx)) = self.cache_find(ppn) {
            let way = &mut self.sets[set_idx][way_idx];
            way.entry = None;
            way.dirty = true;
        } else {
            self.cache_fill(ppn, None, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rpt() -> ReversePageTable {
        ReversePageTable::new(RptCacheConfig::default()).unwrap()
    }

    fn small_rpt() -> ReversePageTable {
        // 1 set x 2 ways, to force evictions easily.
        ReversePageTable::new(RptCacheConfig {
            capacity_bytes: 2 * RPT_ENTRY_BYTES,
            ways: 2,
        })
        .unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert_eq!(RptCacheConfig::default().sets().unwrap(), 512);
        assert_eq!(RptCacheConfig::with_kib(1).sets().unwrap(), 8);
        assert!(RptCacheConfig {
            capacity_bytes: 24,
            ways: 16
        }
        .sets()
        .is_err());
        assert!(RptCacheConfig {
            capacity_bytes: 0,
            ways: 16
        }
        .sets()
        .is_err());
    }

    #[test]
    fn hook_then_lookup_hits_cache() {
        let mut r = rpt();
        r.pte_set(Pid::new(1), Vpn::new(0x99), Ppn::new(5));
        let e = r.lookup(Ppn::new(5)).unwrap();
        assert_eq!(e.pid, Pid::new(1));
        assert_eq!(e.vpn, Vpn::new(0x99));
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().dram_reads, 0);
    }

    #[test]
    fn clear_hook_invalidates_mapping() {
        let mut r = rpt();
        r.pte_set(Pid::new(1), Vpn::new(1), Ppn::new(2));
        r.pte_clear(Pid::new(1), Vpn::new(1), Ppn::new(2));
        assert_eq!(r.lookup(Ppn::new(2)), None);
        assert_eq!(r.stats().unresolved, 1);
    }

    #[test]
    fn bootstrap_fills_dram_and_miss_reads_it() {
        let mut r = rpt();
        r.bootstrap([(Ppn::new(7), Pid::new(2), Vpn::new(70))]);
        let e = r.lookup(Ppn::new(7)).unwrap();
        assert_eq!(e.vpn, Vpn::new(70));
        assert_eq!(r.stats().dram_reads, 1);
        assert_eq!(r.stats().hits, 0);
        // Second lookup hits the cache.
        r.lookup(Ppn::new(7)).unwrap();
        assert_eq!(r.stats().hits, 1);
    }

    #[test]
    fn dirty_eviction_writes_back_lazily() {
        let mut r = small_rpt();
        r.pte_set(Pid::new(1), Vpn::new(10), Ppn::new(0));
        r.pte_set(Pid::new(1), Vpn::new(11), Ppn::new(1));
        assert_eq!(r.dram_entries(), 0, "write-back: DRAM untouched so far");
        // Third distinct PPN evicts the LRU dirty entry.
        r.pte_set(Pid::new(1), Vpn::new(12), Ppn::new(2));
        assert_eq!(r.stats().dram_writebacks, 1);
        assert_eq!(r.dram_entries(), 1);
        // The written-back mapping is still resolvable (via DRAM read).
        let e = r.lookup(Ppn::new(0)).unwrap();
        assert_eq!(e.vpn, Vpn::new(10));
    }

    #[test]
    fn cleared_mapping_eviction_removes_from_dram() {
        let mut r = small_rpt();
        r.bootstrap([(Ppn::new(0), Pid::new(1), Vpn::new(10))]);
        r.pte_clear(Pid::new(1), Vpn::new(10), Ppn::new(0));
        // Evict the tombstone.
        r.pte_set(Pid::new(1), Vpn::new(11), Ppn::new(1));
        r.pte_set(Pid::new(1), Vpn::new(12), Ppn::new(2));
        assert_eq!(r.lookup(Ppn::new(0)), None);
    }

    #[test]
    fn remap_supersedes_previous_owner() {
        let mut r = rpt();
        r.pte_set(Pid::new(1), Vpn::new(10), Ppn::new(3));
        r.pte_clear(Pid::new(1), Vpn::new(10), Ppn::new(3));
        r.pte_set(Pid::new(2), Vpn::new(20), Ppn::new(3));
        let e = r.lookup(Ppn::new(3)).unwrap();
        assert_eq!((e.pid, e.vpn), (Pid::new(2), Vpn::new(20)));
    }

    #[test]
    fn flags_update_via_cache() {
        let mut r = rpt();
        r.pte_set(Pid::new(1), Vpn::new(1), Ppn::new(9));
        r.set_flags(
            Ppn::new(9),
            PageFlags {
                shared: true,
                huge: false,
            },
        );
        assert!(r.lookup(Ppn::new(9)).unwrap().flags.shared);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut r = rpt();
        r.bootstrap((0..100u64).map(|i| (Ppn::new(i), Pid::new(1), Vpn::new(i))));
        // First pass: all misses. Second pass: all hits.
        for i in 0..100u64 {
            r.lookup(Ppn::new(i));
        }
        for i in 0..100u64 {
            r.lookup(Ppn::new(i));
        }
        assert!((r.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_frame_is_unresolved() {
        let mut r = rpt();
        assert_eq!(r.lookup(Ppn::new(12345)), None);
        assert_eq!(r.stats().unresolved, 1);
    }
}
