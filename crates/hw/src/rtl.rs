//! A register-transfer-level model of the HPD table.
//!
//! The paper verifies hardware feasibility by implementing the modules
//! in Verilog (§VI-F). This module is the equivalent exercise in Rust:
//! a cycle-stepped, bit-width-exact model of the hot page detection
//! table that could be transliterated to RTL line by line:
//!
//! * every entry packs into one 64-bit register
//!   (`[ppn:52][count:7][sent:1][valid:1]`) plus a 4-bit age field —
//!   the whole 16×4 table is 64 × 65 bits ≈ 0.52 KB of state;
//! * replacement is an aging scheme (age saturates at 15; the accessed
//!   way resets to 0; the victim is the oldest way) — implementable
//!   with small comparators, unlike the behavioural model's unbounded
//!   64-bit LRU counters;
//! * the datapath is a two-stage pipeline (decode/lookup, then
//!   update/emit) accepting one LLC miss per cycle, so hot-page
//!   detection never stalls the memory controller.
//!
//! [`HpdRtl`] is *behaviourally equivalent* to
//! [`crate::hpd::HotPageDetector`] except for victim selection ties
//! (bounded ages vs exact LRU), which the tests quantify.

use hopp_types::{AccessKind, Error, LineAddr, Ppn, Result};

use crate::hpd::HpdConfig;

/// Bit widths of the packed entry (documented for the RTL port).
pub const PPN_BITS: u32 = 52;
/// Count field width: 7 bits so the threshold can reach 64 (a full
/// page of cachelines).
pub const COUNT_BITS: u32 = 7;
/// Age field width for the replacement policy.
pub const AGE_BITS: u32 = 4;

const COUNT_MAX: u64 = (1 << COUNT_BITS) - 1;
const AGE_MAX: u8 = (1 << AGE_BITS) - 1;

/// One packed table entry: `[ppn:52][count:7][sent:1][valid:1]`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
struct PackedEntry(u64);

impl PackedEntry {
    fn new(ppn: Ppn) -> Self {
        debug_assert!(ppn.raw() < (1 << PPN_BITS));
        // valid = 1, sent = 0, count = 0; the caller sets the count.
        PackedEntry((ppn.raw() << 12) | 1)
    }

    fn ppn(self) -> Ppn {
        Ppn::new(self.0 >> 12)
    }

    fn count(self) -> u64 {
        (self.0 >> 2) & COUNT_MAX
    }

    fn set_count(&mut self, c: u64) {
        self.0 = (self.0 & !(COUNT_MAX << 2)) | ((c.min(COUNT_MAX)) << 2);
    }

    fn sent(self) -> bool {
        (self.0 >> 1) & 1 == 1
    }

    fn set_sent(&mut self) {
        self.0 |= 0b10;
    }

    fn valid(self) -> bool {
        self.0 & 1 == 1
    }

    fn invalidate(&mut self) {
        self.0 &= !1;
    }
}

/// What the pipeline produced at a clock edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RtlOutput {
    /// A page crossed the hotness threshold this cycle.
    pub hot: Option<Ppn>,
}

/// The in-flight request between pipeline stages.
#[derive(Clone, Copy, Debug)]
struct Stage1 {
    ppn: Ppn,
    set: usize,
    /// Way hit in stage 1, if any (the lookup result latched into the
    /// pipeline register).
    hit_way: Option<usize>,
}

/// The cycle-stepped HPD.
///
/// # Example
///
/// ```
/// use hopp_hw::rtl::HpdRtl;
/// use hopp_hw::HpdConfig;
/// use hopp_types::{AccessKind, Ppn};
///
/// let mut rtl = HpdRtl::new(HpdConfig::with_threshold(2))?;
/// let page = Ppn::new(8);
/// // Two read misses; the emission appears one cycle after the
/// // second access enters the pipeline.
/// assert_eq!(rtl.clock(Some((page.line(0), AccessKind::Read))).hot, None);
/// assert_eq!(rtl.clock(Some((page.line(1), AccessKind::Read))).hot, None);
/// assert_eq!(rtl.clock(None).hot, Some(page));
/// # Ok::<(), hopp_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct HpdRtl {
    config: HpdConfig,
    entries: Vec<Vec<PackedEntry>>,
    ages: Vec<Vec<u8>>,
    stage1: Option<Stage1>,
    cycles: u64,
    emitted: u64,
}

impl HpdRtl {
    /// Builds the table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid geometry or a
    /// threshold that does not fit the count field.
    pub fn new(config: HpdConfig) -> Result<Self> {
        config.validate()?;
        if u64::from(config.threshold) > COUNT_MAX {
            return Err(Error::InvalidConfig {
                what: "rtl hpd threshold",
                constraint: "must fit the count field",
            });
        }
        Ok(HpdRtl {
            entries: vec![vec![PackedEntry::default(); config.ways]; config.sets],
            ages: vec![vec![0; config.ways]; config.sets],
            stage1: None,
            config,
            cycles: 0,
            emitted: 0,
        })
    }

    /// Advances one clock edge: latches `input` into stage 1 and
    /// retires the previous request through stage 2.
    pub fn clock(&mut self, input: Option<(LineAddr, AccessKind)>) -> RtlOutput {
        self.cycles += 1;

        // Stage 2: update the entry latched last cycle and emit.
        let mut out = RtlOutput::default();
        if let Some(req) = self.stage1.take() {
            out.hot = self.stage2(req);
        }

        // Stage 1: decode + tag lookup (only read misses enter).
        if let Some((line, kind)) = input {
            if kind.is_read() {
                let ppn = line.ppn();
                let set = (ppn.raw() % self.config.sets as u64) as usize;
                let hit_way = self.entries[set]
                    .iter()
                    .position(|e| e.valid() && e.ppn() == ppn);
                self.stage1 = Some(Stage1 { ppn, set, hit_way });
            }
        }
        out
    }

    /// Stage 2 logic: count/insert/emit, age update.
    fn stage2(&mut self, req: Stage1) -> Option<Ppn> {
        let set = req.set;
        let way = match req.hit_way {
            Some(way) => way,
            None => {
                // Victim = oldest age (ties: lowest way index), prefer
                // invalid ways.
                let victim = (0..self.config.ways)
                    .max_by_key(|&w| {
                        if self.entries[set][w].valid() {
                            u16::from(self.ages[set][w])
                        } else {
                            u16::MAX // invalid ways first
                        }
                    })
                    // hopp-check: allow(panic-policy): the RTL geometry is validated to >= 1 way at construction
                    .expect("ways >= 1");
                self.entries[set][victim] = PackedEntry::new(req.ppn);
                self.entries[set][victim].set_count(1);
                self.age_touch(set, victim);
                if self.config.threshold == 1 {
                    self.entries[set][victim].set_sent();
                    self.emitted += 1;
                    return Some(req.ppn);
                }
                return None;
            }
        };

        self.age_touch(set, way);
        let entry = &mut self.entries[set][way];
        if entry.sent() {
            return None;
        }
        let count = entry.count() + 1;
        entry.set_count(count);
        if count >= u64::from(self.config.threshold) {
            entry.set_sent();
            self.emitted += 1;
            return Some(req.ppn);
        }
        None
    }

    /// Aging: the touched way resets to 0, every other way of the set
    /// increments (saturating at 15).
    fn age_touch(&mut self, set: usize, way: usize) {
        for (w, age) in self.ages[set].iter_mut().enumerate() {
            if w == way {
                *age = 0;
            } else {
                *age = age.saturating_add(1).min(AGE_MAX);
            }
        }
    }

    /// Drops a page's entry (reclaim notification).
    pub fn invalidate(&mut self, ppn: Ppn) {
        let set = (ppn.raw() % self.config.sets as u64) as usize;
        for e in &mut self.entries[set] {
            if e.valid() && e.ppn() == ppn {
                e.invalidate();
            }
        }
    }

    /// Clock edges elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Hot pages emitted.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Total state bits held by the design (entries + ages): the
    /// feasibility headline — about half a kilobyte for the default
    /// geometry.
    pub fn state_bits(&self) -> u64 {
        let entries = (self.config.ways * self.config.sets) as u64;
        entries * u64::from(PPN_BITS + COUNT_BITS + 2) + entries * u64::from(AGE_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpd::HotPageDetector;
    use hopp_types::rng::SplitMix64;

    fn rtl(n: u32) -> HpdRtl {
        HpdRtl::new(HpdConfig::with_threshold(n)).unwrap()
    }

    /// Drives the pipeline with one access and a bubble, returning the
    /// access's own retirement result.
    fn feed(r: &mut HpdRtl, ppn: Ppn, line: u8) -> Option<Ppn> {
        let entering = r.clock(Some((ppn.line(line), AccessKind::Read)));
        assert_eq!(entering.hot, None, "pipeline was drained before feed");
        r.clock(None).hot
    }

    #[test]
    fn emission_is_pipelined_by_one_cycle() {
        let mut r = rtl(2);
        let page = Ppn::new(3);
        assert_eq!(r.clock(Some((page.line(0), AccessKind::Read))).hot, None);
        // Second access enters while the first retires.
        assert_eq!(r.clock(Some((page.line(1), AccessKind::Read))).hot, None);
        // The second access retires now: threshold crossed.
        assert_eq!(r.clock(None).hot, Some(page));
        assert_eq!(r.emitted(), 1);
    }

    #[test]
    fn full_rate_input_is_accepted() {
        // One access per cycle, no stalls: 64 pages x 8 lines.
        let mut r = rtl(8);
        let mut hot = 0;
        for pass in 0..8u8 {
            for p in 0..4u64 {
                // 4 pages per set round-robin over all 4 sets.
                if r.clock(Some((Ppn::new(p).line(pass), AccessKind::Read)))
                    .hot
                    .is_some()
                {
                    hot += 1;
                }
            }
        }
        // Drain the pipeline.
        if r.clock(None).hot.is_some() {
            hot += 1;
        }
        assert_eq!(hot, 4, "each page became hot exactly once");
        assert_eq!(r.cycles(), 33);
    }

    #[test]
    fn send_bit_suppresses_like_the_behavioural_model() {
        let mut r = rtl(2);
        let page = Ppn::new(7);
        assert_eq!(feed(&mut r, page, 0), None);
        assert_eq!(feed(&mut r, page, 1), Some(page));
        for line in 2..20 {
            assert_eq!(feed(&mut r, page, line), None);
        }
        assert_eq!(r.emitted(), 1);
    }

    #[test]
    fn count_field_saturates_without_wrapping() {
        let mut e = PackedEntry::new(Ppn::new(5));
        e.set_count(500); // beyond the 7-bit field
        assert_eq!(e.count(), 127);
        assert_eq!(e.ppn(), Ppn::new(5));
        assert!(e.valid());
    }

    #[test]
    fn threshold_must_fit_count_field() {
        // 64 fits (just); the config validator already caps at 64.
        assert!(HpdRtl::new(HpdConfig::with_threshold(64)).is_ok());
    }

    #[test]
    fn writes_never_enter_the_pipeline() {
        let mut r = rtl(1);
        assert_eq!(
            r.clock(Some((Ppn::new(1).line(0), AccessKind::Write))).hot,
            None
        );
        assert_eq!(r.clock(None).hot, None);
        assert_eq!(r.emitted(), 0);
    }

    #[test]
    fn invalidate_clears_progress() {
        let mut r = rtl(2);
        let page = Ppn::new(4);
        feed(&mut r, page, 0);
        r.invalidate(page);
        assert_eq!(feed(&mut r, page, 1), None, "count restarted");
        assert_eq!(feed(&mut r, page, 2), Some(page));
    }

    #[test]
    fn state_budget_is_sub_kilobyte() {
        let r = rtl(8);
        let per_entry = u64::from(PPN_BITS + COUNT_BITS + 2 + AGE_BITS);
        assert_eq!(r.state_bits(), 64 * per_entry);
        assert!(r.state_bits() / 8 < 1024, "fits well under 1 KB");
    }

    /// The feasibility claim: on random miss streams, the RTL emits the
    /// same hot pages as the behavioural model in the same order, as
    /// long as set pressure stays below the associativity (no victim
    /// ties to break differently).
    #[test]
    fn matches_behavioural_model_without_eviction_pressure() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut behav = HotPageDetector::new(HpdConfig::with_threshold(4)).unwrap();
        let mut rtl = rtl(4);
        let mut behav_hot = Vec::new();
        let mut rtl_hot = Vec::new();
        // 32 distinct pages (8 per set, under the 16-way limit).
        for _ in 0..4_000 {
            let ppn = Ppn::new(rng.gen_range(0..32));
            let line = rng.gen_range(0..64) as u8;
            if let Some(h) = behav.on_miss(ppn.line(line), AccessKind::Read) {
                behav_hot.push(h);
            }
            if let Some(h) = rtl.clock(Some((ppn.line(line), AccessKind::Read))).hot {
                rtl_hot.push(h);
            }
        }
        if let Some(h) = rtl.clock(None).hot {
            rtl_hot.push(h);
        }
        assert_eq!(behav_hot, rtl_hot);
    }

    /// Under heavy eviction pressure the two models may pick different
    /// victims, but the hot-page *volume* stays close (the statistic
    /// Table II depends on).
    #[test]
    fn tracks_behavioural_volume_under_pressure() {
        let mut rng = SplitMix64::seed_from_u64(13);
        let mut behav = HotPageDetector::new(HpdConfig::with_threshold(4)).unwrap();
        let mut r = rtl(4);
        let mut behav_hot = 0u64;
        for _ in 0..50_000 {
            // 512 pages over 64 entries: constant thrash.
            let ppn = Ppn::new(rng.gen_range(0..512) * 4); // all in set 0
            let line = rng.gen_range(0..64) as u8;
            if behav.on_miss(ppn.line(line), AccessKind::Read).is_some() {
                behav_hot += 1;
            }
            r.clock(Some((ppn.line(line), AccessKind::Read)));
        }
        r.clock(None);
        let lo = behav_hot.saturating_sub(behav_hot / 4);
        let hi = behav_hot + behav_hot / 4;
        assert!(
            (lo..=hi).contains(&r.emitted()),
            "rtl {} vs behavioural {behav_hot}",
            r.emitted()
        );
    }
}
