//! A register-transfer-level model of the RPT cache.
//!
//! Companion to [`crate::rtl`] (the HPD's RTL model): the second module
//! the paper implements in Verilog for §VI-F. The cache is 16-way
//! set-associative over 64-bit entries in the paper's exact layout —
//! PID (16 bits), VPN (40 bits), shared flag (1 bit), huge flags
//! (2 bits) — plus per-way valid/dirty bits and 4-bit ages.
//!
//! Unlike the behavioural [`crate::rpt::ReversePageTable`], which hides
//! the DRAM round trip inside `lookup`, the RTL model exposes the
//! memory interface as an explicit handshake, the way the hardware
//! would:
//!
//! ```text
//!   lookup(ppn)  ─►  Hit(entry)                         (same cycle)
//!                └─►  Miss { dram_read: ppn }            (port request)
//!   dram_response(ppn, entry?)  ─►  fill + forward
//!   (evictions of dirty ways surface as DramWrite requests)
//! ```
//!
//! The MC stalls nothing while a miss is outstanding: hot pages that
//! miss the cache are parked in a small MSHR-style register until the
//! DRAM responds, exactly one outstanding miss per hot page.

use hopp_types::{PageFlags, Pid, Ppn, Result, Vpn};

use crate::rpt::{RptCacheConfig, RptEntry, RPT_ENTRY_BYTES};

/// Packed 64-bit RPT entry: `[pid:16][vpn:40][shared:1][huge:2]`
/// (valid/dirty live in separate per-way registers, as in the cache's
/// tag array).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PackedRptEntry(u64);

impl PackedRptEntry {
    /// Packs an entry into the paper's 64-bit layout.
    pub fn pack(entry: RptEntry) -> Self {
        debug_assert!(entry.vpn.raw() < (1 << 40));
        let pid = u64::from(entry.pid.raw()) << 43;
        let vpn = entry.vpn.raw() << 3;
        let shared = u64::from(entry.flags.shared) << 2;
        let huge = u64::from(entry.flags.huge); // low 2 bits reserved
        PackedRptEntry(pid | vpn | shared | huge)
    }

    /// Unpacks back to the behavioural representation.
    pub fn unpack(self) -> RptEntry {
        RptEntry {
            // hopp-check: allow(unit-hygiene): unpacking the RTL entry's 16-bit PID bitfield, not converting units
            pid: Pid::new((self.0 >> 43) as u16),
            vpn: Vpn::new((self.0 >> 3) & ((1 << 40) - 1)),
            flags: PageFlags {
                shared: (self.0 >> 2) & 1 == 1,
                huge: self.0 & 0b11 != 0,
            },
        }
    }

    /// Raw packed bits (what the DRAM copy stores).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Result of a lookup issued to the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RptRtlResponse {
    /// Tag match: the combo is available in the same cycle.
    Hit(RptEntry),
    /// Tag miss: the cache has issued a DRAM read for this PPN; the
    /// caller must eventually answer via
    /// [`RptRtl::dram_response`].
    Miss,
}

/// A dirty entry written back to the DRAM RPT on eviction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DramWrite {
    /// The frame whose mapping is being written back.
    pub ppn: Ppn,
    /// The packed entry (`None` encodes an invalidated mapping: the
    /// DRAM row is cleared).
    pub entry: Option<PackedRptEntry>,
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    ppn: Ppn,
    entry: Option<PackedRptEntry>, // None = cached "no mapping"
    valid: bool,
    dirty: bool,
    age: u8,
}

/// The RTL-style RPT cache.
///
/// # Example
///
/// ```
/// use hopp_hw::rtl_rpt::{RptRtl, RptRtlResponse};
/// use hopp_hw::rpt::{RptCacheConfig, RptEntry};
/// use hopp_types::{PageFlags, Pid, Ppn, Vpn};
///
/// let mut cache = RptRtl::new(RptCacheConfig::default())?;
/// // First lookup misses and requests the DRAM row.
/// assert_eq!(cache.lookup(Ppn::new(9)), RptRtlResponse::Miss);
/// // The memory controller answers; the mapping is forwarded and filled.
/// let entry = RptEntry { pid: Pid::new(1), vpn: Vpn::new(0x90), flags: PageFlags::default() };
/// assert_eq!(cache.dram_response(Ppn::new(9), Some(entry)), Some(entry));
/// // Now it hits.
/// assert_eq!(cache.lookup(Ppn::new(9)), RptRtlResponse::Hit(entry));
/// # Ok::<(), hopp_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct RptRtl {
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    /// Outstanding miss registers (MSHRs): PPNs awaiting DRAM data.
    mshr: Vec<Ppn>,
    /// Dirty evictions waiting to drain to DRAM.
    writeback_queue: Vec<DramWrite>,
    hits: u64,
    misses: u64,
}

/// MSHR capacity: how many distinct misses may be outstanding. Hot
/// pages arrive at most one per N LLC misses, so a handful suffices.
pub const MSHR_ENTRIES: usize = 4;

impl RptRtl {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`hopp_types::Error::InvalidConfig`] for invalid geometry.
    pub fn new(config: RptCacheConfig) -> Result<Self> {
        let sets = config.sets()?;
        Ok(RptRtl {
            sets: vec![vec![Way::default(); config.ways]; sets],
            set_mask: sets as u64 - 1,
            mshr: Vec::with_capacity(MSHR_ENTRIES),
            writeback_queue: Vec::new(),
            hits: 0,
            misses: 0,
        })
    }

    fn set_of(&self, ppn: Ppn) -> usize {
        (ppn.raw() & self.set_mask) as usize
    }

    fn age_touch(set: &mut [Way], way: usize) {
        for (w, e) in set.iter_mut().enumerate() {
            if w == way {
                e.age = 0;
            } else {
                e.age = e.age.saturating_add(1).min(15);
            }
        }
    }

    /// Looks up a hot PPN. On a miss, a DRAM read is implicitly issued
    /// and an MSHR is allocated (duplicate misses collapse into one).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MSHR_ENTRIES`] distinct misses are
    /// outstanding — the hardware would apply backpressure; the model
    /// treats it as a protocol violation by the caller.
    pub fn lookup(&mut self, ppn: Ppn) -> RptRtlResponse {
        let set_idx = self.set_of(ppn);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter().position(|w| w.valid && w.ppn == ppn) {
            Self::age_touch(set, way);
            self.hits += 1;
            // A cached "no mapping" is still a hit for the tag array; it
            // resolves to a dropped hot page upstream, encoded here as a
            // kernel-owned entry.
            return match set[way].entry {
                Some(packed) => RptRtlResponse::Hit(packed.unpack()),
                None => RptRtlResponse::Hit(RptEntry {
                    pid: Pid::KERNEL,
                    vpn: Vpn::new(0),
                    flags: PageFlags::default(),
                }),
            };
        }
        self.misses += 1;
        if !self.mshr.contains(&ppn) {
            assert!(
                self.mshr.len() < MSHR_ENTRIES,
                "MSHR overflow: caller must drain dram_response first"
            );
            self.mshr.push(ppn);
        }
        RptRtlResponse::Miss
    }

    /// Delivers the DRAM row for an outstanding miss: fills the cache
    /// (possibly queueing a dirty writeback) and returns the entry to
    /// forward to software (`None` for an unmapped frame).
    ///
    /// Responses for PPNs with no outstanding MSHR are ignored (a
    /// response that raced with an invalidation).
    pub fn dram_response(&mut self, ppn: Ppn, entry: Option<RptEntry>) -> Option<RptEntry> {
        let pos = self.mshr.iter().position(|p| *p == ppn)?;
        self.mshr.swap_remove(pos);
        self.fill(ppn, entry.map(PackedRptEntry::pack), false);
        entry
    }

    /// `set_pte_at` hook: write-allocate the new mapping, dirty.
    pub fn pte_set(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
        let packed = PackedRptEntry::pack(RptEntry {
            pid,
            vpn,
            flags: PageFlags::default(),
        });
        self.update(ppn, Some(packed));
    }

    /// `pte_clear` hook: record the unmapping, dirty.
    pub fn pte_clear(&mut self, ppn: Ppn) {
        self.update(ppn, None);
    }

    fn update(&mut self, ppn: Ppn, entry: Option<PackedRptEntry>) {
        let set_idx = self.set_of(ppn);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter().position(|w| w.valid && w.ppn == ppn) {
            set[way].entry = entry;
            set[way].dirty = true;
            Self::age_touch(set, way);
        } else {
            self.fill(ppn, entry, true);
        }
    }

    fn fill(&mut self, ppn: Ppn, entry: Option<PackedRptEntry>, dirty: bool) {
        let set_idx = self.set_of(ppn);
        let set = &mut self.sets[set_idx];
        let victim = (0..set.len())
            .max_by_key(|&w| {
                if set[w].valid {
                    u16::from(set[w].age)
                } else {
                    u16::MAX
                }
            })
            // hopp-check: allow(panic-policy): the RTL geometry is validated to >= 1 way at construction
            .expect("ways >= 1");
        let old = set[victim];
        if old.valid && old.dirty {
            self.writeback_queue.push(DramWrite {
                ppn: old.ppn,
                entry: old.entry,
            });
        }
        set[victim] = Way {
            ppn,
            entry,
            valid: true,
            dirty,
            age: 0,
        };
        Self::age_touch(set, victim);
        // age_touch reset the victim and aged the rest; re-zero victim.
        set[victim].age = 0;
    }

    /// Drains one pending dirty writeback (the DRAM write port).
    pub fn pop_writeback(&mut self) -> Option<DramWrite> {
        self.writeback_queue.pop()
    }

    /// Outstanding miss count.
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.len()
    }

    /// Hit rate over lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total state bits: `ways × sets × (64 + tag + valid + dirty +
    /// age)` — the feasibility figure for CACTI.
    pub fn state_bits(&self, config: &RptCacheConfig) -> u64 {
        let entries = (config.capacity_bytes / RPT_ENTRY_BYTES) as u64;
        // 64 data bits + 52-bit tag + valid + dirty + 4-bit age.
        entries * (64 + 52 + 1 + 1 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pid: u16, vpn: u64) -> RptEntry {
        RptEntry {
            pid: Pid::new(pid),
            vpn: Vpn::new(vpn),
            flags: PageFlags::default(),
        }
    }

    fn small() -> RptRtl {
        // 1 set x 2 ways.
        RptRtl::new(RptCacheConfig {
            capacity_bytes: 2 * RPT_ENTRY_BYTES,
            ways: 2,
        })
        .unwrap()
    }

    #[test]
    fn packing_roundtrips_all_fields() {
        for (pid, vpn, shared, huge) in [
            (0u16, 0u64, false, false),
            (u16::MAX, (1 << 40) - 1, true, true),
            (7, 0x1234_5678, true, false),
            (9, 42, false, true),
        ] {
            let e = RptEntry {
                pid: Pid::new(pid),
                vpn: Vpn::new(vpn),
                flags: PageFlags { shared, huge },
            };
            assert_eq!(PackedRptEntry::pack(e).unpack(), e);
        }
    }

    #[test]
    fn miss_fill_hit_handshake() {
        let mut c = RptRtl::new(RptCacheConfig::default()).unwrap();
        assert_eq!(c.lookup(Ppn::new(5)), RptRtlResponse::Miss);
        assert_eq!(c.outstanding_misses(), 1);
        // A duplicate miss does not allocate a second MSHR.
        assert_eq!(c.lookup(Ppn::new(5)), RptRtlResponse::Miss);
        assert_eq!(c.outstanding_misses(), 1);
        let e = entry(3, 0x50);
        assert_eq!(c.dram_response(Ppn::new(5), Some(e)), Some(e));
        assert_eq!(c.outstanding_misses(), 0);
        assert_eq!(c.lookup(Ppn::new(5)), RptRtlResponse::Hit(e));
    }

    #[test]
    fn unsolicited_dram_response_is_ignored() {
        let mut c = RptRtl::new(RptCacheConfig::default()).unwrap();
        assert_eq!(c.dram_response(Ppn::new(9), Some(entry(1, 1))), None);
    }

    #[test]
    #[should_panic]
    fn mshr_overflow_is_a_protocol_violation() {
        let mut c = RptRtl::new(RptCacheConfig::default()).unwrap();
        for p in 0..=MSHR_ENTRIES as u64 {
            c.lookup(Ppn::new(p));
        }
    }

    #[test]
    fn dirty_eviction_surfaces_on_the_write_port() {
        let mut c = small();
        c.pte_set(Pid::new(1), Vpn::new(10), Ppn::new(0));
        c.pte_set(Pid::new(1), Vpn::new(11), Ppn::new(1));
        assert!(c.pop_writeback().is_none(), "no eviction yet");
        // Third fill evicts the oldest dirty way.
        c.pte_set(Pid::new(1), Vpn::new(12), Ppn::new(2));
        let wb = c.pop_writeback().expect("dirty victim written back");
        assert_eq!(wb.ppn, Ppn::new(0));
        assert_eq!(wb.entry.unwrap().unpack().vpn, Vpn::new(10));
    }

    #[test]
    fn pte_clear_writes_back_a_tombstone() {
        let mut c = small();
        c.pte_set(Pid::new(1), Vpn::new(10), Ppn::new(0));
        c.pte_clear(Ppn::new(0));
        // Evict it.
        c.pte_set(Pid::new(1), Vpn::new(11), Ppn::new(1));
        c.pte_set(Pid::new(1), Vpn::new(12), Ppn::new(2));
        let wb = c.pop_writeback().unwrap();
        assert_eq!(wb.ppn, Ppn::new(0));
        assert!(wb.entry.is_none(), "cleared mapping clears the DRAM row");
    }

    #[test]
    fn hit_rate_matches_behavioural_regime() {
        // Same access pattern as the behavioural hit-rate test: two
        // passes over 100 frames with a default cache — second pass all
        // hits.
        let mut c = RptRtl::new(RptCacheConfig::default()).unwrap();
        for pass in 0..2 {
            for p in 0..100u64 {
                match c.lookup(Ppn::new(p)) {
                    RptRtlResponse::Miss => {
                        assert_eq!(pass, 0, "second pass must hit");
                        c.dram_response(Ppn::new(p), Some(entry(1, p)));
                    }
                    RptRtlResponse::Hit(e) => {
                        assert_eq!(e.vpn, Vpn::new(p));
                    }
                }
            }
        }
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn state_bits_scale_with_capacity() {
        let c = RptRtl::new(RptCacheConfig::default()).unwrap();
        let full = c.state_bits(&RptCacheConfig::default());
        let half = c.state_bits(&RptCacheConfig::with_kib(32));
        assert_eq!(full, 2 * half);
        // 64 KB of entries costs ~1.9x its data size in total state.
        assert!(full / 8 < 2 * 64 * 1024);
    }
}
