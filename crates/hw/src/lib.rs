#![warn(missing_docs)]
//! HoPP's hardware modules, modelled cycle-approximately in software.
//!
//! The paper adds two blocks to the memory controller and verifies them
//! in Verilog; here they are reproduced as faithful behavioural models
//! with the same geometry and the same observable outputs:
//!
//! * [`hpd::HotPageDetector`] — the Hot Page Detection table (§III-B):
//!   a 16-way × 4-set associative counter cache over LLC *read* misses.
//!   A page whose miss count reaches the threshold `N` (default 8) is
//!   emitted once (a *send bit* suppresses repeats until eviction).
//! * [`rpt::ReversePageTable`] — the Reverse Page Table and its in-MC
//!   cache (§III-C): `Ppn → (Pid, Vpn, shared, huge)`. The authoritative
//!   copy lives in reserved DRAM; the 64 KB, 16-way write-back cache
//!   absorbs nearly all queries (Table III) and is kept current by the
//!   kernel's PTE hooks (it implements
//!   [`hopp_mem::PteListener`]).
//! * [`cost`] — DRAM-bandwidth overhead accounting (Table V) and the
//!   CACTI-derived area/energy numbers (§VI-F).
//!
//! The full pipeline (LLC miss → HPD → RPT → hot-page ring) is wired
//! together by [`McPipeline`].

pub mod cost;
pub mod hpd;
pub mod pipeline;
pub mod rpt;
pub mod rtl;
pub mod rtl_rpt;

pub use cost::{BandwidthLedger, HwCostModel};
pub use hpd::{HotPageDetector, HpdConfig, HpdStats};
pub use pipeline::McPipeline;
pub use rpt::{ReversePageTable, RptCacheConfig, RptEntry, RptStats};
pub use rtl::{HpdRtl, RtlOutput};
pub use rtl_rpt::{RptRtl, RptRtlResponse};
