//! Hot Page Detection (HPD) table — §III-B of the paper.
//!
//! The memory controller sees cacheline-granular LLC misses. Feeding the
//! raw trace to software would consume excessive bandwidth, so the HPD
//! table condenses it into *hot pages*: pages read-missed at least `N`
//! times while resident in the small table. The table is a 16-way,
//! 4-set associative cache (64 entries) with LRU replacement; the lowest
//! two PPN bits select the set. Each entry holds the PPN, an access
//! counter, and a *send bit* marking pages already emitted (further
//! accesses to them are dropped until the entry is evicted).
//!
//! Only READ misses are counted: write misses appear first as reads on
//! the bus, and RDMA DMA-writes of fetched pages would otherwise be
//! indistinguishable from application writes (§III-B).

use hopp_types::{AccessKind, Error, LineAddr, Ppn, Result};

/// Geometry and threshold of the HPD table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HpdConfig {
    /// Hotness threshold `N`: reads required before a page is emitted.
    /// Must be in `1..=64` (a 4 KB page has 64 cachelines). Default 8.
    pub threshold: u32,
    /// Associativity. Default 16.
    pub ways: usize,
    /// Number of sets (indexed by the low PPN bits). Default 4.
    pub sets: usize,
}

impl Default for HpdConfig {
    fn default() -> Self {
        HpdConfig {
            threshold: 8,
            ways: 16,
            sets: 4,
        }
    }
}

impl HpdConfig {
    /// A default-geometry table with a custom threshold `n`.
    pub fn with_threshold(n: u32) -> Self {
        HpdConfig {
            threshold: n,
            ..HpdConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the threshold is outside
    /// `1..=64`, a dimension is zero, or `sets` is not a power of two.
    pub fn validate(&self) -> Result<()> {
        if self.threshold == 0 || self.threshold > hopp_types::LINES_PER_PAGE as u32 {
            return Err(Error::InvalidConfig {
                what: "hpd threshold",
                constraint: "1..=64",
            });
        }
        if self.ways == 0 || self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(Error::InvalidConfig {
                what: "hpd geometry",
                constraint: "ways > 0, sets a power of two",
            });
        }
        Ok(())
    }
}

/// Counters describing HPD behaviour; Table II is derived from these.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct HpdStats {
    /// Read misses processed (the table's input volume).
    pub reads: u64,
    /// Write misses seen and ignored.
    pub writes_ignored: u64,
    /// Hot pages emitted.
    pub hot_pages: u64,
    /// Accesses dropped because the entry's send bit was set.
    pub send_bit_drops: u64,
    /// Entries evicted before reaching the threshold (hotness lost).
    pub cold_evictions: u64,
    /// Evicted entries that had already been sent (re-detection likely).
    pub sent_evictions: u64,
}

impl HpdStats {
    /// Accumulates another channel's counters into this one.
    pub fn merge(&mut self, other: HpdStats) {
        self.reads += other.reads;
        self.writes_ignored += other.writes_ignored;
        self.hot_pages += other.hot_pages;
        self.send_bit_drops += other.send_bit_drops;
        self.cold_evictions += other.cold_evictions;
        self.sent_evictions += other.sent_evictions;
    }

    /// Table II's metric: hot pages emitted per memory access processed.
    pub fn hot_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.hot_pages as f64 / self.reads as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct HpdEntry {
    ppn: Ppn,
    count: u32,
    sent: bool,
    valid: bool,
    lru: u64,
}

const INVALID: HpdEntry = HpdEntry {
    ppn: Ppn::new(0),
    count: 0,
    sent: false,
    valid: false,
    lru: 0,
};

/// The hot page detection table.
///
/// # Example
///
/// ```
/// use hopp_hw::hpd::{HotPageDetector, HpdConfig};
/// use hopp_types::{AccessKind, Ppn};
///
/// let mut hpd = HotPageDetector::new(HpdConfig::with_threshold(2))?;
/// let page = Ppn::new(40);
/// assert_eq!(hpd.on_miss(page.line(0), AccessKind::Read), None);
/// assert_eq!(hpd.on_miss(page.line(1), AccessKind::Read), Some(page));
/// // Send bit set: further accesses are dropped.
/// assert_eq!(hpd.on_miss(page.line(2), AccessKind::Read), None);
/// # Ok::<(), hopp_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct HotPageDetector {
    config: HpdConfig,
    sets: Vec<Vec<HpdEntry>>,
    clock: u64,
    stats: HpdStats,
}

impl HotPageDetector {
    /// Builds an empty table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `config` is invalid.
    pub fn new(config: HpdConfig) -> Result<Self> {
        config.validate()?;
        Ok(HotPageDetector {
            sets: vec![vec![INVALID; config.ways]; config.sets],
            config,
            clock: 0,
            stats: HpdStats::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> HpdConfig {
        self.config
    }

    /// Processes one LLC miss; returns the PPN if this miss makes the
    /// page hot.
    pub fn on_miss(&mut self, line: LineAddr, kind: AccessKind) -> Option<Ppn> {
        if !kind.is_read() {
            self.stats.writes_ignored += 1;
            return None;
        }
        self.stats.reads += 1;
        self.clock += 1;
        let ppn = line.ppn();
        let set_idx = (ppn.raw() % self.config.sets as u64) as usize;
        let set = &mut self.sets[set_idx];

        if let Some(entry) = set.iter_mut().find(|e| e.valid && e.ppn == ppn) {
            entry.lru = self.clock;
            if entry.sent {
                self.stats.send_bit_drops += 1;
                return None;
            }
            entry.count += 1;
            if entry.count >= self.config.threshold {
                entry.sent = true;
                self.stats.hot_pages += 1;
                return Some(ppn);
            }
            return None;
        }

        // Insert, evicting LRU if the set is full.
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            // hopp-check: allow(panic-policy): HpdConfig::validate rejects zero ways at construction
            .expect("ways >= 1 validated");
        if victim.valid {
            if victim.sent {
                self.stats.sent_evictions += 1;
            } else {
                self.stats.cold_evictions += 1;
            }
        }
        *victim = HpdEntry {
            ppn,
            count: 1,
            sent: false,
            valid: true,
            lru: self.clock,
        };
        if self.config.threshold == 1 {
            victim.sent = true;
            self.stats.hot_pages += 1;
            return Some(ppn);
        }
        None
    }

    /// Invalidate the entry of a page leaving DRAM, so its counter does
    /// not linger.
    pub fn invalidate(&mut self, ppn: Ppn) {
        let set_idx = (ppn.raw() % self.config.sets as u64) as usize;
        for entry in &mut self.sets[set_idx] {
            if entry.valid && entry.ppn == ppn {
                entry.valid = false;
            }
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> HpdStats {
        self.stats
    }

    /// Clears the counters (table contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = HpdStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hpd(n: u32) -> HotPageDetector {
        HotPageDetector::new(HpdConfig::with_threshold(n)).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(HpdConfig::with_threshold(0).validate().is_err());
        assert!(HpdConfig::with_threshold(65).validate().is_err());
        assert!(HpdConfig::with_threshold(8).validate().is_ok());
        assert!(HpdConfig {
            sets: 3,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(HpdConfig {
            ways: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn page_becomes_hot_exactly_at_threshold() {
        let mut h = hpd(8);
        let page = Ppn::new(100);
        for i in 0..7 {
            assert_eq!(h.on_miss(page.line(i), AccessKind::Read), None);
        }
        assert_eq!(h.on_miss(page.line(7), AccessKind::Read), Some(page));
        assert_eq!(h.stats().hot_pages, 1);
    }

    #[test]
    fn send_bit_suppresses_repeats() {
        let mut h = hpd(2);
        let page = Ppn::new(4);
        h.on_miss(page.line(0), AccessKind::Read);
        assert_eq!(h.on_miss(page.line(1), AccessKind::Read), Some(page));
        for i in 2..10 {
            assert_eq!(h.on_miss(page.line(i), AccessKind::Read), None);
        }
        assert_eq!(h.stats().send_bit_drops, 8);
        assert_eq!(h.stats().hot_pages, 1);
    }

    #[test]
    fn writes_are_ignored() {
        let mut h = hpd(1);
        assert_eq!(h.on_miss(Ppn::new(1).line(0), AccessKind::Write), None);
        assert_eq!(h.stats().writes_ignored, 1);
        assert_eq!(h.stats().reads, 0);
    }

    #[test]
    fn threshold_one_fires_immediately() {
        let mut h = hpd(1);
        let page = Ppn::new(9);
        assert_eq!(h.on_miss(page.line(0), AccessKind::Read), Some(page));
    }

    #[test]
    fn lru_eviction_loses_cold_counts() {
        let mut h = hpd(8);
        // 17 pages mapping to set 0 (ppn % 4 == 0): one more than the ways.
        let pages: Vec<Ppn> = (0..17u64).map(|i| Ppn::new(i * 4)).collect();
        for p in &pages {
            h.on_miss(p.line(0), AccessKind::Read);
        }
        assert_eq!(h.stats().cold_evictions, 1);
        // pages[0] was evicted: its count restarts, so 7 more accesses
        // don't make it hot (1+7 == 8 would, but the old count is gone).
        for i in 1..8 {
            assert_eq!(h.on_miss(pages[0].line(i), AccessKind::Read), None);
        }
        assert_eq!(
            h.on_miss(pages[0].line(8), AccessKind::Read),
            Some(pages[0])
        );
    }

    #[test]
    fn eviction_of_sent_entry_allows_re_detection() {
        let mut h = hpd(1);
        let hot = Ppn::new(0);
        assert_eq!(h.on_miss(hot.line(0), AccessKind::Read), Some(hot));
        // Evict it by filling the set with 16 other pages.
        for i in 1..=16u64 {
            h.on_miss(Ppn::new(i * 4).line(0), AccessKind::Read);
        }
        assert_eq!(h.stats().sent_evictions, 1);
        // The page can be detected hot again — software dedups (§III-B).
        assert_eq!(h.on_miss(hot.line(1), AccessKind::Read), Some(hot));
        assert_eq!(h.stats().hot_pages, 18);
    }

    #[test]
    fn sets_are_independent() {
        let mut h = hpd(2);
        // Pages in different sets never evict each other.
        let a = Ppn::new(0); // set 0
        let b = Ppn::new(1); // set 1
        h.on_miss(a.line(0), AccessKind::Read);
        h.on_miss(b.line(0), AccessKind::Read);
        assert_eq!(h.on_miss(a.line(1), AccessKind::Read), Some(a));
        assert_eq!(h.on_miss(b.line(1), AccessKind::Read), Some(b));
        assert_eq!(h.stats().cold_evictions, 0);
    }

    #[test]
    fn invalidate_resets_progress() {
        let mut h = hpd(2);
        let page = Ppn::new(12);
        h.on_miss(page.line(0), AccessKind::Read);
        h.invalidate(page);
        assert_eq!(h.on_miss(page.line(1), AccessKind::Read), None);
        assert_eq!(h.on_miss(page.line(2), AccessKind::Read), Some(page));
    }

    #[test]
    fn hot_ratio_matches_counts() {
        let mut h = hpd(4);
        let page = Ppn::new(8);
        for i in 0..4 {
            h.on_miss(page.line(i), AccessKind::Read);
        }
        assert!((h.stats().hot_ratio() - 0.25).abs() < 1e-12);
        h.reset_stats();
        assert_eq!(h.stats().hot_ratio(), 0.0);
    }
}
