//! Differential tests: the RTL models against the behavioural models.
//!
//! The paper's feasibility argument (§VI-F) rests on the Verilog
//! modules implementing the same function as the software models. Here
//! the cycle-stepped RTL models (`hopp_hw::rtl`, `hopp_hw::rtl_rpt`)
//! and the behavioural models (`hopp_hw::hpd`, `hopp_hw::rpt`) are
//! driven with identical seeded streams and their outputs compared:
//!
//! * HPD: identical hot-page emission sequences while set pressure
//!   stays below the associativity (no replacement ties to break
//!   differently), and emission volume within ±25% under thrash;
//! * RPT: identical lookup resolutions on arbitrary op streams — the
//!   replacement policies may cache different frames, but write-back
//!   keeps cache ∪ DRAM architecturally equal, so every lookup must
//!   resolve to the same mapping.

use hopp_ds::PageMap;
use hopp_hw::hpd::{HotPageDetector, HpdConfig};
use hopp_hw::rpt::{ReversePageTable, RptCacheConfig, RptEntry, RPT_ENTRY_BYTES};
use hopp_hw::rtl::HpdRtl;
use hopp_hw::rtl_rpt::{PackedRptEntry, RptRtl, RptRtlResponse};
use hopp_mem::PteListener;
use hopp_types::rng::SplitMix64;
use hopp_types::{AccessKind, PageFlags, Pid, Ppn, Vpn};

/// Drives one access through the RTL pipeline and drains it, so the
/// RTL retires ops in the same order the behavioural model applies
/// them (interleaved invalidates then hit the same table state).
fn feed(rtl: &mut HpdRtl, ppn: Ppn, line: u8, kind: AccessKind) -> Option<Ppn> {
    let entering = rtl.clock(Some((ppn.line(line), kind)));
    assert_eq!(entering.hot, None, "pipeline must be drained between ops");
    rtl.clock(None).hot
}

#[test]
fn hpd_models_emit_identical_sequences_without_eviction_pressure() {
    // Several thresholds × seeds; page population sized so every set
    // holds at most its associativity (16) — no victim selection, so
    // the two replacement schemes cannot diverge.
    for (threshold, seed) in [(1u32, 1u64), (2, 2), (4, 3), (8, 4), (64, 5)] {
        let config = HpdConfig::with_threshold(threshold);
        let mut behav = HotPageDetector::new(config).unwrap();
        let mut rtl = HpdRtl::new(config).unwrap();
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut behav_hot = Vec::new();
        let mut rtl_hot = Vec::new();
        // 64 pages over 4 sets = 16 per set: exactly at capacity.
        for _ in 0..20_000 {
            let ppn = Ppn::new(rng.gen_range(0..64));
            let line = rng.gen_range(0..64) as u8;
            let kind = if rng.gen_range(0..4) == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            behav_hot.extend(behav.on_miss(ppn.line(line), kind));
            rtl_hot.extend(feed(&mut rtl, ppn, line, kind));
        }
        assert_eq!(
            behav_hot, rtl_hot,
            "threshold {threshold} seed {seed}: emission sequences diverged"
        );
        assert_eq!(behav.stats().hot_pages, rtl.emitted());
    }
}

#[test]
fn hpd_models_agree_with_interleaved_invalidations() {
    let config = HpdConfig::with_threshold(4);
    let mut behav = HotPageDetector::new(config).unwrap();
    let mut rtl = HpdRtl::new(config).unwrap();
    let mut rng = SplitMix64::seed_from_u64(99);
    let mut behav_hot = Vec::new();
    let mut rtl_hot = Vec::new();
    for _ in 0..20_000 {
        let ppn = Ppn::new(rng.gen_range(0..64));
        if rng.gen_range(0..8) == 0 {
            // Reclaim notification: both tables drop the entry.
            behav.invalidate(ppn);
            rtl.invalidate(ppn);
            continue;
        }
        let line = rng.gen_range(0..64) as u8;
        behav_hot.extend(behav.on_miss(ppn.line(line), AccessKind::Read));
        rtl_hot.extend(feed(&mut rtl, ppn, line, AccessKind::Read));
    }
    assert!(!behav_hot.is_empty(), "stream too cold to compare anything");
    assert_eq!(behav_hot, rtl_hot);
}

#[test]
fn hpd_models_track_volume_under_eviction_pressure() {
    // 1024 pages hammering 64 entries: constant thrash. Exact LRU and
    // 4-bit aging pick different victims, but the Table II statistic
    // (emission volume) must stay within ±25%.
    for seed in [7u64, 21, 1234] {
        let config = HpdConfig::with_threshold(4);
        let mut behav = HotPageDetector::new(config).unwrap();
        let mut rtl = HpdRtl::new(config).unwrap();
        let mut rng = SplitMix64::seed_from_u64(seed);
        for _ in 0..60_000 {
            let ppn = Ppn::new(rng.gen_range(0..1024));
            let line = rng.gen_range(0..64) as u8;
            behav.on_miss(ppn.line(line), AccessKind::Read);
            rtl.clock(Some((ppn.line(line), AccessKind::Read)));
        }
        rtl.clock(None);
        let behav_hot = behav.stats().hot_pages;
        let lo = behav_hot - behav_hot / 4;
        let hi = behav_hot + behav_hot / 4;
        assert!(
            (lo..=hi).contains(&rtl.emitted()),
            "seed {seed}: rtl {} vs behavioural {behav_hot}",
            rtl.emitted()
        );
    }
}

/// One op of the RPT differential stream.
enum RptOp {
    Set(Pid, Vpn, Ppn),
    Clear(Ppn),
    Lookup(Ppn),
}

/// Generates a seeded op mix over a small frame population (so cache
/// evictions, remaps and tombstones all occur).
fn rpt_ops(seed: u64, frames: u64, n: usize) -> Vec<RptOp> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let ppn = Ppn::new(rng.gen_range(0..frames));
        match rng.gen_range(0..10) {
            0..=2 => ops.push(RptOp::Set(
                // hopp-check is not in play here, but keep PIDs small and
                // non-kernel so packing stays in range.
                Pid::new(1 + rng.gen_range(0..100) as u16),
                Vpn::new(rng.gen_range(0..1 << 30)),
                ppn,
            )),
            3 => ops.push(RptOp::Clear(ppn)),
            _ => ops.push(RptOp::Lookup(ppn)),
        }
    }
    ops
}

/// Applies queued RTL write-backs to the shadow DRAM copy — the memory
/// controller's write port, modelled as immediate service.
fn drain_writebacks(rtl: &mut RptRtl, shadow: &mut PageMap<Ppn, RptEntry>) {
    while let Some(wb) = rtl.pop_writeback() {
        match wb.entry {
            Some(packed) => {
                shadow.insert(wb.ppn, packed.unpack());
            }
            None => {
                shadow.remove(wb.ppn);
            }
        }
    }
}

/// Resolves one RTL lookup to the behavioural `Option<RptEntry>`
/// contract: a cached tombstone surfaces as a kernel-owned hit, a miss
/// is answered from the shadow DRAM.
fn rtl_lookup(rtl: &mut RptRtl, shadow: &mut PageMap<Ppn, RptEntry>, ppn: Ppn) -> Option<RptEntry> {
    match rtl.lookup(ppn) {
        RptRtlResponse::Hit(e) if e.pid == Pid::KERNEL => None,
        RptRtlResponse::Hit(e) => Some(e),
        RptRtlResponse::Miss => {
            // The DRAM read must see any dirty eviction the behavioural
            // model would already have folded into its own DRAM copy.
            drain_writebacks(rtl, shadow);
            let entry = shadow.get(ppn).copied();
            rtl.dram_response(ppn, entry)
        }
    }
}

#[test]
fn rpt_models_resolve_every_lookup_identically() {
    // Tiny caches (2 sets × 4 ways) over 256 frames: heavy eviction, so
    // the two replacement policies constantly cache different frames —
    // yet every lookup must resolve to the same architectural mapping.
    let geometry = RptCacheConfig {
        capacity_bytes: 8 * RPT_ENTRY_BYTES,
        ways: 4,
    };
    for seed in [3u64, 17, 404] {
        let mut behav = ReversePageTable::new(geometry).unwrap();
        let mut rtl = RptRtl::new(geometry).unwrap();
        let mut shadow: PageMap<Ppn, RptEntry> = PageMap::new();
        let mut lookups = 0u64;
        for op in rpt_ops(seed, 256, 30_000) {
            match op {
                RptOp::Set(pid, vpn, ppn) => {
                    behav.pte_set(pid, vpn, ppn);
                    rtl.pte_set(pid, vpn, ppn);
                }
                RptOp::Clear(ppn) => {
                    behav.pte_clear(Pid::new(1), Vpn::new(0), ppn);
                    rtl.pte_clear(ppn);
                }
                RptOp::Lookup(ppn) => {
                    lookups += 1;
                    let want = behav.lookup(ppn);
                    let got = rtl_lookup(&mut rtl, &mut shadow, ppn);
                    assert_eq!(got, want, "seed {seed}: lookup({ppn:?}) diverged");
                }
            }
            drain_writebacks(&mut rtl, &mut shadow);
        }
        assert!(lookups > 10_000, "op mix starved the comparison");
        // Different victims, similar locality: hit rates land close.
        let delta = (behav.stats().hit_rate() - rtl.hit_rate()).abs();
        assert!(
            delta < 0.2,
            "seed {seed}: hit rates diverged by {delta} (behav {}, rtl {})",
            behav.stats().hit_rate(),
            rtl.hit_rate()
        );
    }
}

#[test]
fn rpt_packing_is_lossless_for_the_whole_op_stream() {
    // Every entry the differential stream produces must survive the
    // 64-bit packing the RTL stores (16-bit PID, 40-bit VPN, flags).
    let mut rng = SplitMix64::seed_from_u64(55);
    for _ in 0..10_000 {
        let e = RptEntry {
            pid: Pid::new(rng.gen_range(0..u64::from(u16::MAX) + 1) as u16),
            vpn: Vpn::new(rng.gen_range(0..1 << 40)),
            flags: PageFlags {
                shared: rng.gen_range(0..2) == 1,
                huge: rng.gen_range(0..2) == 1,
            },
        };
        assert_eq!(PackedRptEntry::pack(e).unpack(), e);
    }
}
