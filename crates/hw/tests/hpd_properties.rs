//! Property tests for the HPD semantics of §III-B, checked against a
//! deliberately naive reference model on seeded random streams (no
//! `proptest`: the workspace is dependency-free, and seeded
//! `SplitMix64` streams give reproducible counter-examples).
//!
//! Properties:
//! * a page becomes hot on exactly its `N`-th counted read while
//!   resident, never earlier, never later;
//! * the send bit suppresses re-emission until the entry leaves the
//!   table (eviction or invalidation);
//! * sets are isolated: traffic in one set never disturbs another;
//! * replacement is exact LRU over 16 ways × 4 sets, preferring
//!   invalid ways.

use hopp_hw::hpd::{HotPageDetector, HpdConfig};
use hopp_types::rng::SplitMix64;
use hopp_types::{AccessKind, Ppn};

/// A transparent reference model of one HPD set: a plain vector with
/// the documented LRU policy, no cleverness. The real table must match
/// it emission-for-emission.
struct RefModel {
    config: HpdConfig,
    /// `sets[s]` holds `(ppn, count, sent, lru)` for each valid entry.
    sets: Vec<Vec<(Ppn, u32, bool, u64)>>,
    clock: u64,
}

impl RefModel {
    fn new(config: HpdConfig) -> Self {
        RefModel {
            sets: vec![Vec::new(); config.sets],
            config,
            clock: 0,
        }
    }

    fn on_read(&mut self, ppn: Ppn) -> Option<Ppn> {
        self.clock += 1;
        let set = &mut self.sets[(ppn.raw() % self.config.sets as u64) as usize];
        if let Some(e) = set.iter_mut().find(|e| e.0 == ppn) {
            e.3 = self.clock;
            if e.2 {
                return None;
            }
            e.1 += 1;
            if e.1 >= self.config.threshold {
                e.2 = true;
                return Some(ppn);
            }
            return None;
        }
        if set.len() == self.config.ways {
            // Evict the least recently used entry.
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.3)
                .map(|(i, _)| i)
                .unwrap();
            set.swap_remove(victim);
        }
        let sent = self.config.threshold == 1;
        set.push((ppn, 1, sent, self.clock));
        sent.then_some(ppn)
    }

    fn invalidate(&mut self, ppn: Ppn) {
        let set = &mut self.sets[(ppn.raw() % self.config.sets as u64) as usize];
        set.retain(|e| e.0 != ppn);
    }
}

#[test]
fn table_matches_the_reference_model_on_random_streams() {
    // The load sweeps from "fits comfortably" to "3× overcommitted" so
    // both the no-eviction and constant-thrash regimes are exercised.
    for (seed, pages, threshold) in [
        (1u64, 16u64, 1u32),
        (2, 32, 2),
        (3, 48, 4),
        (4, 64, 8),
        (5, 96, 8),
        (6, 192, 4),
        (7, 192, 64),
    ] {
        let config = HpdConfig::with_threshold(threshold);
        let mut real = HotPageDetector::new(config).unwrap();
        let mut reference = RefModel::new(config);
        let mut rng = SplitMix64::seed_from_u64(seed);
        for step in 0..50_000u32 {
            let ppn = Ppn::new(rng.gen_range(0..pages));
            if rng.gen_range(0..16) == 0 {
                real.invalidate(ppn);
                reference.invalidate(ppn);
                continue;
            }
            let line = rng.gen_range(0..64) as u8;
            let got = real.on_miss(ppn.line(line), AccessKind::Read);
            let want = reference.on_read(ppn);
            assert_eq!(
                got, want,
                "seed {seed} pages {pages} N {threshold}: diverged at step {step}"
            );
        }
    }
}

#[test]
fn page_goes_hot_on_exactly_its_nth_resident_read() {
    let mut rng = SplitMix64::seed_from_u64(11);
    for _ in 0..200 {
        let n = 1 + rng.gen_range(0..64) as u32;
        let mut h = HotPageDetector::new(HpdConfig::with_threshold(n)).unwrap();
        let ppn = Ppn::new(rng.gen_range(0..1 << 20));
        // No other traffic: the page cannot be evicted, so the counter
        // must fire on exactly the n-th read — cacheline choice is
        // irrelevant, repeats included.
        for i in 1..=(2 * n) {
            let line = rng.gen_range(0..64) as u8;
            let hot = h.on_miss(ppn.line(line), AccessKind::Read);
            assert_eq!(
                hot,
                (i == n).then_some(ppn),
                "N={n}: wrong emission at read {i}"
            );
        }
        assert_eq!(h.stats().hot_pages, 1);
        assert_eq!(h.stats().send_bit_drops, u64::from(n));
    }
}

#[test]
fn send_bit_holds_until_the_entry_leaves_the_table() {
    let mut rng = SplitMix64::seed_from_u64(23);
    for _ in 0..100 {
        let n = 1 + rng.gen_range(0..8) as u32;
        let config = HpdConfig::with_threshold(n);
        let mut h = HotPageDetector::new(config).unwrap();
        let ppn = Ppn::new(4 * rng.gen_range(0..1000)); // set 0
        for i in 0..n {
            h.on_miss(ppn.line(i as u8), AccessKind::Read);
        }
        assert_eq!(h.stats().hot_pages, 1);
        // Arbitrarily many further reads: suppressed.
        for _ in 0..rng.gen_range(1..200) {
            let line = rng.gen_range(0..64) as u8;
            assert_eq!(h.on_miss(ppn.line(line), AccessKind::Read), None);
        }
        // The entry leaves the table — by explicit invalidation or by
        // LRU pressure from 16 fresh set-mates — and the page is
        // detectable again from a zeroed counter.
        if rng.gen_range(0..2) == 0 {
            h.invalidate(ppn);
        } else {
            for i in 1..=16u64 {
                h.on_miss(Ppn::new(ppn.raw() + 4 * i).line(0), AccessKind::Read);
            }
        }
        let before = h.stats().hot_pages;
        for i in 1..=n {
            let hot = h.on_miss(ppn.line(0), AccessKind::Read);
            assert_eq!(hot, (i == n).then_some(ppn), "re-detection at read {i}");
        }
        assert_eq!(h.stats().hot_pages, before + 1);
    }
}

#[test]
fn sets_are_fully_isolated() {
    // Interleave four independent per-set streams; each set must behave
    // exactly as it does when run alone.
    let config = HpdConfig::default();
    let mut interleaved = HotPageDetector::new(config).unwrap();
    let mut solo: Vec<HotPageDetector> = (0..4)
        .map(|_| HotPageDetector::new(config).unwrap())
        .collect();
    let mut rng = SplitMix64::seed_from_u64(31);
    let mut interleaved_hot = vec![Vec::new(); 4];
    let mut solo_hot = vec![Vec::new(); 4];
    for _ in 0..40_000 {
        let set = rng.gen_range(0..4);
        // 32 pages per set: twice the associativity, steady eviction.
        let ppn = Ppn::new(rng.gen_range(0..32) * 4 + set);
        let line = rng.gen_range(0..64) as u8;
        let set = set as usize;
        interleaved_hot[set].extend(interleaved.on_miss(ppn.line(line), AccessKind::Read));
        solo_hot[set].extend(solo[set].on_miss(ppn.line(line), AccessKind::Read));
    }
    for set in 0..4 {
        assert_eq!(
            interleaved_hot[set], solo_hot[set],
            "set {set} was disturbed by traffic in other sets"
        );
        assert!(
            !interleaved_hot[set].is_empty(),
            "set {set} stream too cold"
        );
    }
}

#[test]
fn replacement_is_exact_lru_over_sixteen_ways() {
    let mut h = HotPageDetector::new(HpdConfig::with_threshold(8)).unwrap();
    // Fill set 0 with pages 0*4..16*4, touching them in order.
    let pages: Vec<Ppn> = (0..16u64).map(|i| Ppn::new(i * 4)).collect();
    for p in &pages {
        h.on_miss(p.line(0), AccessKind::Read);
    }
    // Refresh everything except pages[5]: it becomes the unique LRU.
    for (i, p) in pages.iter().enumerate() {
        if i != 5 {
            h.on_miss(p.line(1), AccessKind::Read);
        }
    }
    // A 17th page must evict pages[5] and nothing else: every other
    // page retains its count (2) and goes hot after 6 more reads, while
    // pages[5] restarts from zero and needs a full 8.
    h.on_miss(Ppn::new(16 * 4).line(0), AccessKind::Read);
    assert_eq!(h.stats().cold_evictions, 1);
    for (i, p) in pages.iter().enumerate() {
        if i == 5 {
            continue;
        }
        for line in 2..7 {
            assert_eq!(h.on_miss(p.line(line), AccessKind::Read), None);
        }
        assert_eq!(
            h.on_miss(p.line(7), AccessKind::Read),
            Some(*p),
            "page {i} lost its counter despite never being LRU"
        );
    }
    for line in 2..9 {
        assert_eq!(h.on_miss(pages[5].line(line), AccessKind::Read), None);
    }
    assert_eq!(
        h.on_miss(pages[5].line(9), AccessKind::Read),
        Some(pages[5])
    );
}
