#![warn(missing_docs)]
//! Sharded multi-node remote-memory pool with failure injection and
//! failover.
//!
//! The paper's testbed is one compute node and one memory server over
//! a single 56 Gbps link, and `hopp-net` models exactly that. This
//! crate generalizes the link into a rack-scale *pool* — the setting
//! DRackSim simulates and network-aware page-migration work assumes:
//!
//! * [`MemoryPool`] — N memory nodes, each with its own
//!   [`RdmaEngine`](hopp_net::RdmaEngine) link, capacity and health;
//! * a placement layer ([`Placer`]) sharding swapped-out pages across
//!   nodes under pluggable policies ([`PlacementKind`]): static hash,
//!   round-robin 2 MB ranges, or stream-aware co-location that keeps
//!   pages of one STT stream on one node so span prefetches batch
//!   onto a single link;
//! * a reliability layer: a deterministic [`FaultScript`] (node
//!   slow-down, transient failure, full node loss at scripted
//!   sim-times), timeout + bounded exponential backoff
//!   ([`RetryPolicy`]), and failover re-reads across a configurable
//!   replication factor.
//!
//! Consumers issue ops through the [`RemotePool`] trait; the bare
//! single link implements it too, and a 1-node pool without faults is
//! a transparent pass-through, so the paper's single-server results
//! stay bit-identical.
//!
//! # Example
//!
//! ```
//! use hopp_fabric::{FabricConfig, FaultScript, MemoryPool, RemotePool};
//! use hopp_net::RdmaConfig;
//! use hopp_obs::NopRecorder;
//! use hopp_types::{Nanos, Pid, Vpn};
//!
//! # fn main() -> hopp_types::Result<()> {
//! let mut pool = MemoryPool::new(
//!     RdmaConfig::default(),
//!     FabricConfig { nodes: 4, replication: 2, ..FabricConfig::default() },
//! )?;
//! // Node 2 dies at 1 ms; replicated pages survive via failover.
//! pool.set_fault_script(&FaultScript::parse("1:2:down").unwrap())?;
//! let rec = &mut NopRecorder;
//! pool.place(Pid::new(1), Vpn::new(42), None, Nanos::ZERO, rec)?;
//! pool.write_page(Pid::new(1), Vpn::new(42), Nanos::ZERO, rec);
//! let done = pool.read_page(Pid::new(1), Vpn::new(42), Nanos::from_millis(2), rec)?;
//! assert!(done > Nanos::from_millis(2));
//! # Ok(())
//! # }
//! ```

use hopp_net::RdmaEngine;
use hopp_obs::Recorder;
use hopp_types::{Nanos, Pid, Result, Vpn, PAGE_SIZE};

pub mod faults;
pub mod placement;
pub mod pool;

pub use faults::{FaultEvent, FaultKind, FaultScript, NodeHealth, RetryPolicy};
pub use placement::{hash_node, PlacementKind, Placer, REGION_PAGES, REGION_SHIFT};
pub use pool::{FabricConfig, FabricReport, MemoryPool, NodeReport};

/// The remote-memory interface the kernel swap path and the prefetch
/// engine issue page traffic through.
///
/// Implemented by both the bare single link
/// ([`RdmaEngine`](hopp_net::RdmaEngine) — the paper's testbed) and
/// the sharded [`MemoryPool`]; consumers cannot tell them apart except
/// through latency.
pub trait RemotePool {
    /// Registers a swapped-out page with the pool. `hint` is an opaque
    /// stream identity for placement policies that co-locate streams
    /// (same value ⇒ same stream); pass `None` when unknown.
    ///
    /// # Errors
    ///
    /// [`hopp_types::Error::PoolExhausted`] when no live node has room
    /// — a capacity-planning failure the run must report, not paper
    /// over.
    fn place(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        hint: Option<u64>,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<()>;

    /// Forgets a page's placement (it became resident again or its
    /// swap slot was freed).
    fn release(&mut self, pid: Pid, vpn: Vpn);

    /// Synchronously reads one page (a major fault); returns the
    /// completion time.
    ///
    /// # Errors
    ///
    /// [`hopp_types::Error::PageUnreachable`] when the page's primary
    /// and every replica are down — the data is gone.
    fn read_page(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<Nanos>;

    /// Reads `span` consecutive pages starting at `vpn` (a prefetch);
    /// returns the time the last byte lands.
    ///
    /// # Errors
    ///
    /// [`hopp_types::Error::PageUnreachable`] when any page of the span
    /// has lost its primary and every replica.
    fn read_span(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        span: u32,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<Nanos>;

    /// Writes one page back (dirty eviction, plus replication when
    /// configured); returns the completion time.
    fn write_page(&mut self, pid: Pid, vpn: Vpn, now: Nanos, rec: &mut dyn Recorder) -> Nanos;

    /// Whether the placement policy benefits from stream hints; lets
    /// callers skip maintaining them otherwise.
    fn wants_hints(&self) -> bool {
        false
    }
}

/// The paper's testbed as the 1-node degenerate case: one link, no
/// placement, no replication, no faults.
impl RemotePool for RdmaEngine {
    fn place(
        &mut self,
        _pid: Pid,
        _vpn: Vpn,
        _hint: Option<u64>,
        _now: Nanos,
        _rec: &mut dyn Recorder,
    ) -> Result<()> {
        Ok(())
    }

    fn release(&mut self, _pid: Pid, _vpn: Vpn) {}

    fn read_page(
        &mut self,
        _pid: Pid,
        _vpn: Vpn,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<Nanos> {
        Ok(self.issue_page_read_rec(now, rec))
    }

    fn read_span(
        &mut self,
        _pid: Pid,
        _vpn: Vpn,
        span: u32,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<Nanos> {
        Ok(self.issue_read_rec(now, span.max(1) as usize * PAGE_SIZE, rec))
    }

    fn write_page(&mut self, _pid: Pid, _vpn: Vpn, now: Nanos, rec: &mut dyn Recorder) -> Nanos {
        self.issue_page_write_rec(now, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_net::RdmaConfig;
    use hopp_obs::NopRecorder;

    #[test]
    fn bare_engine_and_single_node_pool_agree_through_the_trait() {
        let mut engine = RdmaEngine::new(RdmaConfig::default());
        let mut pool = MemoryPool::single(RdmaConfig::default());
        let e: &mut dyn RemotePool = &mut engine;
        let p: &mut dyn RemotePool = &mut pool;
        let rec = &mut NopRecorder;
        let (pid, vpn) = (Pid::new(1), Vpn::new(9));
        e.place(pid, vpn, None, Nanos::ZERO, rec).unwrap();
        p.place(pid, vpn, None, Nanos::ZERO, rec).unwrap();
        assert_eq!(
            e.read_span(pid, vpn, 16, Nanos::ZERO, rec).unwrap(),
            p.read_span(pid, vpn, 16, Nanos::ZERO, rec).unwrap()
        );
        assert_eq!(
            e.read_page(pid, vpn, Nanos::from_micros(50), rec).unwrap(),
            p.read_page(pid, vpn, Nanos::from_micros(50), rec).unwrap()
        );
        assert_eq!(
            e.write_page(pid, vpn, Nanos::from_micros(90), rec),
            p.write_page(pid, vpn, Nanos::from_micros(90), rec)
        );
        assert!(!e.wants_hints() && !p.wants_hints());
    }
}
