//! The sharded memory pool: N nodes, placement, replication, failover.

use hopp_ds::DetMap;

use hopp_net::{RdmaConfig, RdmaEngine, RdmaStats};
use hopp_obs::{Event, NodeHistograms, NodeLatencySummary, Recorder};
use hopp_types::{Error, Nanos, NodeId, Pid, Result, Vpn, PAGE_SIZE};

use crate::faults::{FaultScript, NodeHealth, RetryPolicy};
use crate::placement::{hash_node, PlacementKind, Placer};
use crate::RemotePool;

/// Pool geometry and reliability parameters.
///
/// `Copy` so it can live inside the simulator's `SimConfig`; the
/// [`FaultScript`] (which owns a `Vec`) is attached to the pool
/// separately.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FabricConfig {
    /// Memory nodes in the pool. 1 reproduces the paper's testbed.
    pub nodes: usize,
    /// Page→node placement policy.
    pub placement: PlacementKind,
    /// Copies of each page, on consecutive nodes after its primary.
    /// 1 = no replication (a lost node loses its pages).
    pub replication: usize,
    /// Timeout/backoff behaviour against misbehaving nodes.
    pub retry: RetryPolicy,
    /// Per-node capacity in pages (`None` = unbounded). Full nodes
    /// spill placements to the next node with room.
    pub node_capacity_pages: Option<usize>,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 1,
            placement: PlacementKind::default(),
            replication: 1,
            retry: RetryPolicy::default(),
            node_capacity_pages: None,
        }
    }
}

impl FabricConfig {
    /// Checks the geometry; every violation surfaces before a run
    /// starts.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(Error::InvalidConfig {
                what: "mem-nodes",
                constraint: ">= 1",
            });
        }
        if self.replication == 0 || self.replication > self.nodes {
            return Err(Error::InvalidConfig {
                what: "replication",
                constraint: "1..=mem-nodes",
            });
        }
        if self.node_capacity_pages == Some(0) {
            return Err(Error::InvalidConfig {
                what: "node-capacity",
                constraint: ">= 1 page",
            });
        }
        Ok(())
    }
}

/// One memory node: its private link, scripted health, and counters.
#[derive(Clone, Debug)]
struct Node {
    link: RdmaEngine,
    health: NodeHealth,
    /// Set after the first op observes the node dead; later ops skip
    /// the discovery timeout (the pool remembers).
    known_dead: bool,
    /// Live primary placements.
    placed: u64,
    retries: u64,
    timeouts: u64,
    hists: NodeHistograms,
}

impl Node {
    fn new(rdma: RdmaConfig) -> Self {
        Node {
            link: RdmaEngine::new(rdma),
            health: NodeHealth::default(),
            known_dead: false,
            placed: 0,
            retries: 0,
            timeouts: 0,
            hists: NodeHistograms::new(),
        }
    }
}

/// A disaggregated memory pool of [`RdmaEngine`]-backed nodes.
///
/// With one node, replication 1 and no fault script the pool is a
/// transparent pass-through: every op maps to exactly the call the
/// single-link simulator made before the fabric existed, so metrics
/// stay bit-identical. Beyond that degenerate point it adds placement,
/// per-node queueing, scripted degradation and failover.
#[derive(Clone, Debug)]
pub struct MemoryPool {
    config: FabricConfig,
    nodes: Vec<Node>,
    placer: Placer,
    placements: DetMap<(Pid, Vpn), usize>,
    has_faults: bool,
    failovers: u64,
    failed_writes: u64,
}

impl MemoryPool {
    /// Builds a pool of `config.nodes` identical links.
    pub fn new(rdma: RdmaConfig, config: FabricConfig) -> Result<Self> {
        config.validate()?;
        Ok(MemoryPool {
            config,
            nodes: (0..config.nodes).map(|_| Node::new(rdma)).collect(),
            placer: Placer::new(config.placement, config.nodes),
            placements: DetMap::new(),
            has_faults: false,
            failovers: 0,
            failed_writes: 0,
        })
    }

    /// The degenerate single-node pool matching the paper's testbed.
    pub fn single(rdma: RdmaConfig) -> Self {
        let config = FabricConfig::default();
        MemoryPool {
            config,
            nodes: vec![Node::new(rdma)],
            placer: Placer::new(config.placement, config.nodes),
            placements: DetMap::new(),
            has_faults: false,
            failovers: 0,
            failed_writes: 0,
        }
    }

    /// Attaches a fault script; each event must name a node in range.
    pub fn set_fault_script(&mut self, script: &FaultScript) -> Result<()> {
        for &ev in script.events() {
            if ev.node.index() >= self.config.nodes {
                return Err(Error::InvalidConfig {
                    what: "fault-script",
                    constraint: "node indices must be < mem-nodes",
                });
            }
            self.nodes[ev.node.index()].health.apply(ev);
        }
        self.has_faults = self.has_faults || !script.is_empty();
        Ok(())
    }

    /// The pool geometry.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// True when the pool is a transparent pass-through to one link
    /// (one node, no replication, no faults): nothing fabric-specific
    /// is recorded or reported, keeping single-link metrics
    /// bit-identical.
    pub fn is_degenerate(&self) -> bool {
        self.config.nodes == 1 && self.config.replication == 1 && !self.has_faults
    }

    /// Link counters aggregated across all nodes (the single-link view
    /// legacy reports expect).
    pub fn stats(&self) -> RdmaStats {
        let mut total = RdmaStats::default();
        for n in &self.nodes {
            let s = n.link.stats();
            total.reads += s.reads;
            total.writes += s.writes;
            total.bytes += s.bytes;
            total.queueing += s.queueing;
        }
        total
    }

    /// The primary node of a page: its recorded placement, or the
    /// deterministic hash fallback for pages never seen at swap-out.
    fn primary_of(&self, pid: Pid, vpn: Vpn) -> usize {
        match self.placements.get(&(pid, vpn)) {
            Some(&n) => n,
            None => hash_node(pid, vpn, self.config.nodes),
        }
    }

    /// Probes node `idx` for an op at `t`. Returns `(reachable, t')`
    /// where `t'` includes any timeout/backoff delays paid. On a
    /// healthy node this is `(true, t)` with no side effects.
    fn probe_node(&mut self, idx: usize, mut t: Nanos, rec: &mut dyn Recorder) -> (bool, Nanos) {
        let retry = self.config.retry;
        let node_id = NodeId::from_index(idx);
        if self.nodes[idx].health.is_lost(t) {
            if !self.nodes[idx].known_dead {
                // Discovering a dead node costs one full timeout; the
                // pool remembers, so later ops skip straight past it.
                self.nodes[idx].timeouts += 1;
                t += retry.timeout;
                if rec.is_enabled() {
                    rec.record(
                        t,
                        Event::RemoteTimeout {
                            node: node_id,
                            waited: retry.timeout,
                        },
                    );
                    rec.record(t, Event::NodeDown { node: node_id });
                }
                self.nodes[idx].known_dead = true;
            }
            return (false, t);
        }
        let mut attempt = 0u32;
        while self.nodes[idx].health.failing(t) {
            if attempt >= retry.max_retries {
                // Retry budget exhausted: pay a final timeout and let
                // the caller fail over.
                self.nodes[idx].timeouts += 1;
                t += retry.timeout;
                if rec.is_enabled() {
                    rec.record(
                        t,
                        Event::RemoteTimeout {
                            node: node_id,
                            waited: retry.timeout,
                        },
                    );
                }
                return (false, t);
            }
            attempt += 1;
            let pause = retry.timeout + retry.backoff_after(attempt);
            t += pause;
            self.nodes[idx].retries += 1;
            if rec.is_enabled() {
                rec.record(
                    t,
                    Event::RemoteRetry {
                        node: node_id,
                        attempt,
                        backoff: pause,
                    },
                );
            }
        }
        (true, t)
    }

    /// Reads `bytes` of pages whose primary is `primary`, failing over
    /// across the replica chain. Errors if every replica is dead — the
    /// data is gone and the simulation cannot honestly continue.
    fn read_from(
        &mut self,
        primary: usize,
        pid: Pid,
        vpn: Vpn,
        bytes: usize,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<Nanos> {
        let _prof = hopp_prof::span("fabric/link");
        let n = self.config.nodes;
        let mut t = now;
        for r in 0..self.config.replication {
            let idx = (primary + r) % n;
            let (ok, after) = self.probe_node(idx, t, rec);
            t = after;
            if !ok {
                continue;
            }
            let node = &mut self.nodes[idx];
            let mut done = node.link.issue_read_rec(t, bytes, rec);
            // Node-side slowness stretches the op without occupying
            // the wire longer (the NIC serializes at full rate; the
            // node is slow to serve).
            let pct = node.health.slow_factor_pct(t);
            if pct > 100 {
                done += node
                    .link
                    .config()
                    .base_latency
                    .scale(f64::from(pct - 100) / 100.0);
            }
            node.hists.read.record_nanos(done.saturating_since(now));
            if r > 0 {
                self.failovers += 1;
                if rec.is_enabled() {
                    rec.record(
                        t,
                        Event::Failover {
                            pid,
                            vpn,
                            node: NodeId::from_index(idx),
                        },
                    );
                }
            }
            return Ok(done);
        }
        Err(Error::PageUnreachable {
            pid,
            vpn,
            primary: NodeId::from_index(primary),
            replication: self.config.replication,
        })
    }
}

impl RemotePool for MemoryPool {
    fn wants_hints(&self) -> bool {
        self.placer.wants_hints()
    }

    fn place(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        hint: Option<u64>,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<()> {
        let n = self.config.nodes;
        let cap = self.config.node_capacity_pages;
        let mut idx = self.placer.place(pid, vpn, hint);
        // Spill past full or dead nodes; new swap-outs never target a
        // node already known lost.
        let mut probed = 0;
        while probed < n
            && (self.nodes[idx].health.is_lost(now)
                || cap.is_some_and(|c| self.nodes[idx].placed as usize >= c))
        {
            idx = (idx + 1) % n;
            probed += 1;
        }
        if probed == n {
            return Err(Error::PoolExhausted { nodes: n });
        }
        if let Some(old) = self.placements.insert((pid, vpn), idx) {
            self.nodes[old].placed = self.nodes[old].placed.saturating_sub(1);
        }
        self.nodes[idx].placed += 1;
        if !self.is_degenerate() && rec.is_enabled() {
            rec.record(
                now,
                Event::PagePlaced {
                    pid,
                    vpn,
                    node: NodeId::from_index(idx),
                },
            );
        }
        Ok(())
    }

    fn release(&mut self, pid: Pid, vpn: Vpn) {
        if let Some(idx) = self.placements.remove(&(pid, vpn)) {
            self.nodes[idx].placed = self.nodes[idx].placed.saturating_sub(1);
        }
    }

    fn read_page(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<Nanos> {
        let primary = self.primary_of(pid, vpn);
        self.read_from(primary, pid, vpn, PAGE_SIZE, now, rec)
    }

    fn read_span(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        span: u32,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<Nanos> {
        // Group the span's pages by primary node: one transfer per
        // node, completion when the last group lands. A single-node
        // pool degenerates to exactly one span-sized read.
        let n = self.config.nodes;
        let mut per_node = vec![0u32; n];
        for i in 0..span.max(1) {
            let v = vpn.offset_saturating(i64::from(i));
            per_node[self.primary_of(pid, v)] += 1;
        }
        let mut done = now;
        for (idx, &pages) in per_node.iter().enumerate() {
            if pages == 0 {
                continue;
            }
            let d = self.read_from(idx, pid, vpn, pages as usize * PAGE_SIZE, now, rec)?;
            done = done.max(d);
        }
        Ok(done)
    }

    fn write_page(&mut self, pid: Pid, vpn: Vpn, now: Nanos, rec: &mut dyn Recorder) -> Nanos {
        let _prof = hopp_prof::span("fabric/link");
        let n = self.config.nodes;
        let primary = self.primary_of(pid, vpn);
        let mut t = now;
        let mut done: Option<Nanos> = None;
        for r in 0..self.config.replication {
            let idx = (primary + r) % n;
            let (ok, after) = self.probe_node(idx, t, rec);
            t = after;
            if !ok {
                self.failed_writes += 1;
                continue;
            }
            let node = &mut self.nodes[idx];
            let mut d = node.link.issue_page_write_rec(t, rec);
            let pct = node.health.slow_factor_pct(t);
            if pct > 100 {
                d += node
                    .link
                    .config()
                    .base_latency
                    .scale(f64::from(pct - 100) / 100.0);
            }
            node.hists.write.record_nanos(d.saturating_since(now));
            done = Some(done.map_or(d, |x| x.max(d)));
        }
        // All replicas unreachable: the write is lost (counted above);
        // a later read of this page will fail loudly.
        done.unwrap_or(t)
    }
}

/// Per-node slice of a [`FabricReport`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Link counters (reads, writes, bytes, queueing).
    pub link: RdmaStats,
    /// Live primary placements at end of run.
    pub placed: u64,
    /// Transient-failure retries paid against this node.
    pub retries: u64,
    /// Timeouts paid against this node (loss discovery + retry budget
    /// exhaustion).
    pub timeouts: u64,
    /// Whether the node was lost during the run.
    pub lost: bool,
    /// Requester-observed read/write latency on this node, including
    /// retry, backoff and slow-down delays.
    pub latency: NodeLatencySummary,
}

/// End-of-run snapshot of pool activity, embedded in the simulator's
/// report for non-degenerate pools.
#[derive(Clone, PartialEq, Debug)]
pub struct FabricReport {
    /// Placement policy name.
    pub placement: &'static str,
    /// Replication factor.
    pub replication: usize,
    /// Reads served by a replica after the primary failed.
    pub failovers: u64,
    /// Replica writes dropped because the target was unreachable.
    pub failed_writes: u64,
    /// Per-node detail, in node order.
    pub nodes: Vec<NodeReport>,
}

impl MemoryPool {
    /// Snapshots the pool for reporting. The simulator embeds this
    /// only for non-degenerate pools, keeping legacy reports
    /// byte-identical.
    pub fn report(&self, end: Nanos) -> FabricReport {
        FabricReport {
            placement: self.config.placement.name(),
            replication: self.config.replication,
            failovers: self.failovers,
            failed_writes: self.failed_writes,
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| NodeReport {
                    node: NodeId::from_index(i),
                    link: n.link.stats(),
                    placed: n.placed,
                    retries: n.retries,
                    timeouts: n.timeouts,
                    lost: n.health.is_lost(end),
                    latency: n.hists.summary(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_obs::NopRecorder;

    fn pool(nodes: usize, replication: usize) -> MemoryPool {
        MemoryPool::new(
            RdmaConfig::default(),
            FabricConfig {
                nodes,
                replication,
                ..FabricConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let bad = FabricConfig {
            nodes: 0,
            ..FabricConfig::default()
        };
        assert!(MemoryPool::new(RdmaConfig::default(), bad).is_err());
        let bad = FabricConfig {
            nodes: 2,
            replication: 3,
            ..FabricConfig::default()
        };
        assert!(MemoryPool::new(RdmaConfig::default(), bad).is_err());
        let bad = FabricConfig {
            replication: 0,
            ..FabricConfig::default()
        };
        assert!(MemoryPool::new(RdmaConfig::default(), bad).is_err());
    }

    #[test]
    fn degenerate_pool_matches_the_raw_engine_exactly() {
        // The same interleaved op sequence against a 1-node pool and a
        // bare engine must produce identical completion times and
        // stats — the bit-identity guarantee the simulator relies on.
        let mut p = MemoryPool::single(RdmaConfig::default());
        let mut e = RdmaEngine::new(RdmaConfig::default());
        let rec = &mut NopRecorder;
        let pid = Pid::new(1);
        let mut t = Nanos::ZERO;
        for i in 0..50u64 {
            let vpn = Vpn::new(i * 7);
            p.place(pid, vpn, None, t, rec).unwrap();
            match i % 3 {
                0 => assert_eq!(
                    p.read_page(pid, vpn, t, rec).unwrap(),
                    e.issue_page_read_rec(t, rec)
                ),
                1 => assert_eq!(
                    p.read_span(pid, vpn, 8, t, rec).unwrap(),
                    e.issue_read_rec(t, 8 * PAGE_SIZE, rec)
                ),
                _ => assert_eq!(
                    p.write_page(pid, vpn, t, rec),
                    e.issue_page_write_rec(t, rec)
                ),
            }
            t += Nanos::from_nanos(i * 311);
        }
        assert!(p.is_degenerate());
        assert_eq!(p.stats(), e.stats());
    }

    #[test]
    fn node_loss_fails_over_to_the_replica() {
        let mut p = pool(2, 2);
        p.set_fault_script(&FaultScript::parse("0:0:down").unwrap())
            .unwrap();
        let rec = &mut NopRecorder;
        let pid = Pid::new(1);
        // Force the page's primary onto the dead node.
        let vpn = (0..)
            .map(Vpn::new)
            .find(|&v| hash_node(pid, v, 2) == 0)
            .unwrap();
        let healthy =
            RdmaConfig::default().base_latency + RdmaConfig::default().serialization(PAGE_SIZE);
        let t0 = Nanos::from_millis(1);
        let d1 = p.read_page(pid, vpn, t0, rec).unwrap();
        // First read pays the discovery timeout, then the replica read.
        assert_eq!(
            d1,
            t0 + p.config().retry.timeout + healthy,
            "timeout + failover read"
        );
        // The pool remembers the dead node: no second timeout.
        let t1 = Nanos::from_millis(2);
        let d2 = p.read_page(pid, vpn, t1, rec).unwrap();
        assert_eq!(d2, t1 + healthy);
        let rep = p.report(Nanos::from_millis(3));
        assert_eq!(rep.failovers, 2);
        assert!(rep.nodes[0].lost);
        assert_eq!(rep.nodes[0].timeouts, 1);
        assert!(!rep.nodes[1].lost);
    }

    #[test]
    fn transient_failures_retry_with_backoff_then_succeed() {
        let mut p = pool(1, 1);
        // Node 0 fails from 0 to 100 µs; the first retry (timeout
        // 100 µs + backoff 50 µs) lands at 150 µs, past the window.
        let mut script = FaultScript::new();
        script.push(crate::faults::FaultEvent {
            at: Nanos::ZERO,
            node: NodeId::new(0),
            kind: crate::faults::FaultKind::Fail,
            until: Some(Nanos::from_micros(100)),
        });
        p.set_fault_script(&script).unwrap();
        let rec = &mut NopRecorder;
        let healthy =
            RdmaConfig::default().base_latency + RdmaConfig::default().serialization(PAGE_SIZE);
        let retry = p.config().retry;
        let d = p
            .read_page(Pid::new(1), Vpn::new(5), Nanos::ZERO, rec)
            .unwrap();
        assert_eq!(d, retry.timeout + retry.backoff_after(1) + healthy);
        let rep = p.report(Nanos::from_millis(1));
        assert_eq!(rep.nodes[0].retries, 1);
        assert_eq!(rep.failovers, 0);
    }

    #[test]
    fn losing_every_replica_is_a_typed_error() {
        let mut p = pool(2, 2);
        p.set_fault_script(&FaultScript::parse("0:0:down,0:1:down").unwrap())
            .unwrap();
        let err = p
            .read_page(
                Pid::new(1),
                Vpn::new(1),
                Nanos::from_millis(1),
                &mut NopRecorder,
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::PageUnreachable {
                    pid,
                    vpn,
                    replication: 2,
                    ..
                } if pid == Pid::new(1) && vpn == Vpn::new(1)
            ),
            "got {err:?}"
        );
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn fault_script_node_out_of_range_is_rejected() {
        let mut p = pool(2, 1);
        assert!(p
            .set_fault_script(&FaultScript::parse("0:7:down").unwrap())
            .is_err());
    }

    #[test]
    fn slow_nodes_stretch_completions_without_blocking_the_wire() {
        let mut p = pool(1, 1);
        p.set_fault_script(&FaultScript::parse("0:0:slow:4").unwrap())
            .unwrap();
        let rec = &mut NopRecorder;
        let cfg = RdmaConfig::default();
        let healthy = cfg.base_latency + cfg.serialization(PAGE_SIZE);
        let d = p
            .read_page(Pid::new(1), Vpn::new(1), Nanos::ZERO, rec)
            .unwrap();
        assert_eq!(d, healthy + cfg.base_latency.scale(3.0));
    }

    #[test]
    fn full_nodes_spill_placements() {
        let mut p = MemoryPool::new(
            RdmaConfig::default(),
            FabricConfig {
                nodes: 2,
                node_capacity_pages: Some(4),
                placement: PlacementKind::RoundRobin,
                ..FabricConfig::default()
            },
        )
        .unwrap();
        let rec = &mut NopRecorder;
        let pid = Pid::new(1);
        // 8 pages in one region would all target one node; capacity 4
        // forces half onto the other.
        for v in 0..8u64 {
            p.place(pid, Vpn::new(v), None, Nanos::ZERO, rec).unwrap();
        }
        let rep = p.report(Nanos::ZERO);
        assert_eq!(rep.nodes[0].placed + rep.nodes[1].placed, 8);
        assert_eq!(rep.nodes[0].placed, 4);
        assert_eq!(rep.nodes[1].placed, 4);
    }

    #[test]
    fn pool_wide_exhaustion_is_a_typed_error() {
        let mut p = MemoryPool::new(
            RdmaConfig::default(),
            FabricConfig {
                nodes: 2,
                node_capacity_pages: Some(1),
                ..FabricConfig::default()
            },
        )
        .unwrap();
        for v in 0..2u64 {
            p.place(
                Pid::new(1),
                Vpn::new(v),
                None,
                Nanos::ZERO,
                &mut NopRecorder,
            )
            .unwrap();
        }
        let err = p
            .place(
                Pid::new(1),
                Vpn::new(2),
                None,
                Nanos::ZERO,
                &mut NopRecorder,
            )
            .unwrap_err();
        assert_eq!(err, Error::PoolExhausted { nodes: 2 });
        assert!(err.to_string().contains("memory pool exhausted"));
    }

    #[test]
    fn release_frees_capacity() {
        let mut p = MemoryPool::new(
            RdmaConfig::default(),
            FabricConfig {
                nodes: 1,
                node_capacity_pages: Some(1),
                ..FabricConfig::default()
            },
        )
        .unwrap();
        let rec = &mut NopRecorder;
        p.place(Pid::new(1), Vpn::new(1), None, Nanos::ZERO, rec)
            .unwrap();
        p.release(Pid::new(1), Vpn::new(1));
        p.place(Pid::new(1), Vpn::new(2), None, Nanos::ZERO, rec)
            .unwrap();
        let rep = p.report(Nanos::ZERO);
        assert_eq!(rep.nodes[0].placed, 1);
    }

    #[test]
    fn span_reads_split_across_nodes_and_meet_at_the_max() {
        let mut p = MemoryPool::new(
            RdmaConfig::default(),
            FabricConfig {
                nodes: 2,
                placement: PlacementKind::RoundRobin,
                ..FabricConfig::default()
            },
        )
        .unwrap();
        let rec = &mut NopRecorder;
        let pid = Pid::new(1);
        // Place 4 pages straddling a region boundary: 2 per node.
        let base = 510u64;
        for v in base..base + 4 {
            p.place(pid, Vpn::new(v), None, Nanos::ZERO, rec).unwrap();
        }
        let done = p
            .read_span(pid, Vpn::new(base), 4, Nanos::ZERO, rec)
            .unwrap();
        let cfg = RdmaConfig::default();
        // Each node serves 2 pages concurrently on its own link.
        assert_eq!(done, cfg.base_latency + cfg.serialization(2 * PAGE_SIZE));
        let s = p.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes, 4 * PAGE_SIZE as u64);
    }
}
