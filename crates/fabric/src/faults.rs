//! Deterministic fault injection for the memory pool.
//!
//! Real disaggregated racks degrade in three characteristic ways: a
//! node's CPU or NIC saturates and every op it serves slows down, a
//! node drops ops transiently (congestion, firmware hiccups), or a
//! node disappears outright. A [`FaultScript`] schedules any mix of
//! the three at exact simulated instants, so a degradation experiment
//! is as reproducible as a fault-free run — the same script plus the
//! same seed always yields byte-identical metrics.
//!
//! # Script format
//!
//! A script is a comma-separated list of entries, each anchored at a
//! simulated millisecond:
//!
//! ```text
//! <ms>:<node>:down                    permanent node loss
//! <ms>:<node>:slow:<factor>[:<dur_ms>]  latency x<factor> (forever, or for dur)
//! <ms>:<node>:fail:<dur_ms>           ops fail transiently for dur
//! ```
//!
//! Example: `2:1:slow:4:3,10:0:down` — node 1 runs 4x slow from 2 ms
//! to 5 ms, node 0 dies at 10 ms.

use hopp_types::{Error, Nanos, NodeId, Result};

/// Timeout and bounded-exponential-backoff parameters for remote ops.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// How long a requester waits on an unresponsive node before
    /// declaring the attempt failed.
    pub timeout: Nanos,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff: Nanos,
    /// Cap on a single backoff interval.
    pub max_backoff: Nanos,
    /// Retries against one node before failing over to a replica.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: Nanos::from_micros(100),
            backoff: Nanos::from_micros(50),
            max_backoff: Nanos::from_micros(800),
            max_retries: 4,
        }
    }
}

impl RetryPolicy {
    /// The backoff paid before retry `attempt` (1-based):
    /// `backoff * 2^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff_after(&self, attempt: u32) -> Nanos {
        let shift = attempt.saturating_sub(1).min(20);
        self.backoff
            .scale((1u64 << shift) as f64)
            .min(self.max_backoff)
    }
}

/// What goes wrong with a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Every op served by the node takes `factor_pct`/100 times its
    /// normal latency (node-side processing slowness; the wire still
    /// drains at full rate).
    Slow {
        /// Latency multiplier in percent (400 = 4x).
        factor_pct: u32,
    },
    /// Ops fail transiently; requesters retry with backoff.
    Fail,
    /// The node is gone; requesters time out once, then fail over.
    Down,
}

/// One scripted fault: a [`FaultKind`] hitting one node over a window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    /// When the fault begins.
    pub at: Nanos,
    /// The afflicted node.
    pub node: NodeId,
    /// What happens.
    pub kind: FaultKind,
    /// When it ends (`None` = never; always `None` for `Down`).
    pub until: Option<Nanos>,
}

impl FaultEvent {
    /// Whether this fault is in effect at `now`.
    pub fn active_at(&self, now: Nanos) -> bool {
        now >= self.at && self.until.is_none_or(|u| now < u)
    }
}

/// A deterministic schedule of [`FaultEvent`]s.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script (fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduled faults.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one fault.
    pub fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
    }

    /// Parses the comma-separated script format (see module docs).
    pub fn parse(s: &str) -> Result<FaultScript> {
        let bad = |constraint: &'static str| Error::InvalidConfig {
            what: "fault-script",
            constraint,
        };
        let mut script = FaultScript::new();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let parts: Vec<&str> = entry.split(':').collect();
            if parts.len() < 3 {
                return Err(bad("each entry needs <ms>:<node>:<kind>"));
            }
            let ms: u64 = parts[0]
                .parse()
                .map_err(|_| bad("<ms> must be a non-negative integer"))?;
            let node: u16 = parts[1]
                .parse()
                .map_err(|_| bad("<node> must be a node index"))?;
            let at = Nanos::from_millis(ms);
            let (kind, until) = match parts[2] {
                "down" => {
                    if parts.len() != 3 {
                        return Err(bad("down takes no arguments"));
                    }
                    (FaultKind::Down, None)
                }
                "slow" => {
                    if !(4..=5).contains(&parts.len()) {
                        return Err(bad("slow needs <factor>[:<dur_ms>]"));
                    }
                    let factor: f64 = parts[3]
                        .parse()
                        .map_err(|_| bad("<factor> must be a number"))?;
                    if !(factor >= 1.0 && factor.is_finite()) {
                        return Err(bad("<factor> must be >= 1"));
                    }
                    let until = if parts.len() == 5 {
                        let dur: u64 = parts[4]
                            .parse()
                            .map_err(|_| bad("<dur_ms> must be an integer"))?;
                        Some(at + Nanos::from_millis(dur))
                    } else {
                        None
                    };
                    (
                        FaultKind::Slow {
                            factor_pct: (factor * 100.0).round() as u32,
                        },
                        until,
                    )
                }
                "fail" => {
                    if parts.len() != 4 {
                        return Err(bad("fail needs <dur_ms>"));
                    }
                    let dur: u64 = parts[3]
                        .parse()
                        .map_err(|_| bad("<dur_ms> must be an integer"))?;
                    (FaultKind::Fail, Some(at + Nanos::from_millis(dur)))
                }
                _ => return Err(bad("<kind> must be down, slow or fail")),
            };
            script.push(FaultEvent {
                at,
                node: NodeId::new(node),
                kind,
                until,
            });
        }
        Ok(script)
    }
}

/// One node's fault state, derived from the script at pool build time.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NodeHealth {
    slow: Vec<FaultEvent>,
    fail: Vec<FaultEvent>,
    lost_at: Option<Nanos>,
}

impl NodeHealth {
    /// Folds one scripted fault into this node's state.
    pub fn apply(&mut self, ev: FaultEvent) {
        match ev.kind {
            FaultKind::Slow { .. } => self.slow.push(ev),
            FaultKind::Fail => self.fail.push(ev),
            FaultKind::Down => {
                self.lost_at = Some(match self.lost_at {
                    Some(t) => t.min(ev.at),
                    None => ev.at,
                });
            }
        }
    }

    /// Whether the node is permanently gone at `now`.
    pub fn is_lost(&self, now: Nanos) -> bool {
        self.lost_at.is_some_and(|t| now >= t)
    }

    /// Whether ops issued at `now` fail transiently.
    pub fn failing(&self, now: Nanos) -> bool {
        self.fail.iter().any(|f| f.active_at(now))
    }

    /// Latency multiplier in percent at `now` (100 = healthy). When
    /// windows overlap the worst factor wins.
    pub fn slow_factor_pct(&self, now: Nanos) -> u32 {
        self.slow
            .iter()
            .filter(|f| f.active_at(now))
            .map(|f| match f.kind {
                FaultKind::Slow { factor_pct } => factor_pct,
                _ => 100,
            })
            .max()
            .unwrap_or(100)
            .max(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_kinds() {
        let s = FaultScript::parse("2:1:slow:4:3,5:0:fail:1,10:2:down").unwrap();
        assert_eq!(s.events().len(), 3);
        assert_eq!(
            s.events()[0],
            FaultEvent {
                at: Nanos::from_millis(2),
                node: NodeId::new(1),
                kind: FaultKind::Slow { factor_pct: 400 },
                until: Some(Nanos::from_millis(5)),
            }
        );
        assert_eq!(s.events()[1].kind, FaultKind::Fail);
        assert_eq!(s.events()[1].until, Some(Nanos::from_millis(6)));
        assert_eq!(s.events()[2].kind, FaultKind::Down);
        assert_eq!(s.events()[2].until, None);
    }

    #[test]
    fn fractional_slow_factors_round_to_percent() {
        let s = FaultScript::parse("0:0:slow:1.5").unwrap();
        assert_eq!(s.events()[0].kind, FaultKind::Slow { factor_pct: 150 });
        assert_eq!(s.events()[0].until, None);
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "nonsense",
            "1:0",
            "1:0:explode",
            "x:0:down",
            "1:y:down",
            "1:0:down:3",
            "1:0:slow",
            "1:0:slow:0.5",
            "1:0:fail",
        ] {
            assert!(FaultScript::parse(bad).is_err(), "{bad} should not parse");
        }
        assert!(FaultScript::parse("").unwrap().is_empty());
    }

    #[test]
    fn health_windows_activate_and_expire() {
        let s = FaultScript::parse("2:0:slow:4:3,8:0:fail:2,20:0:down").unwrap();
        let mut h = NodeHealth::default();
        for &e in s.events() {
            h.apply(e);
        }
        assert_eq!(h.slow_factor_pct(Nanos::from_millis(1)), 100);
        assert_eq!(h.slow_factor_pct(Nanos::from_millis(3)), 400);
        assert_eq!(h.slow_factor_pct(Nanos::from_millis(5)), 100);
        assert!(!h.failing(Nanos::from_millis(7)));
        assert!(h.failing(Nanos::from_millis(9)));
        assert!(!h.failing(Nanos::from_millis(10)));
        assert!(!h.is_lost(Nanos::from_millis(19)));
        assert!(h.is_lost(Nanos::from_millis(20)));
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_after(1), Nanos::from_micros(50));
        assert_eq!(p.backoff_after(2), Nanos::from_micros(100));
        assert_eq!(p.backoff_after(3), Nanos::from_micros(200));
        assert_eq!(p.backoff_after(10), p.max_backoff);
    }
}
