//! Page-to-node placement policies.
//!
//! Placement decides which pool node a swapped-out page lives on. It
//! shapes two things: load balance across links, and — for HoPP —
//! whether a stream prefetch's span lands on one link (one queued
//! transfer) or is scattered across several. The three policies span
//! that trade-off:
//!
//! * [`PlacementKind::StaticHash`] — uniform pseudo-random spread, the
//!   baseline any DHT-style pool gives you.
//! * [`PlacementKind::RoundRobin`] — 512-page (2 MB) virtual ranges
//!   round-robin across nodes, so spatially adjacent pages mostly share
//!   a node but long scans still balance.
//! * [`PlacementKind::StreamAware`] — pages carrying the same STT
//!   stream hint co-locate on one node, so a span prefetch of that
//!   stream batches onto a single link instead of paying N base
//!   latencies on N links.

use std::collections::BTreeMap;

use hopp_types::{Pid, SplitMix64, Vpn};

/// Pages per placement region: 512 pages = one 2 MB huge-page extent.
pub const REGION_PAGES: u64 = 512;

/// log2 of [`REGION_PAGES`].
pub const REGION_SHIFT: u32 = 9;

/// Which placement policy the pool runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlacementKind {
    /// Uniform pseudo-random node per page (deterministic hash).
    #[default]
    StaticHash,
    /// 512-page virtual ranges round-robin across nodes.
    RoundRobin,
    /// Pages of one STT stream co-locate on one node.
    StreamAware,
}

impl PlacementKind {
    /// Parses a CLI name (`hash`, `rr`, `stream`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(PlacementKind::StaticHash),
            "rr" | "round-robin" => Some(PlacementKind::RoundRobin),
            "stream" => Some(PlacementKind::StreamAware),
            _ => None,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PlacementKind::StaticHash => "hash",
            PlacementKind::RoundRobin => "rr",
            PlacementKind::StreamAware => "stream",
        }
    }
}

/// Deterministic page→node hash used by [`PlacementKind::StaticHash`]
/// and as the fallback for pages the pool never saw placed.
pub fn hash_node(pid: Pid, vpn: Vpn, nodes: usize) -> usize {
    debug_assert!(nodes > 0);
    let key = (u64::from(pid.raw()) << 48) ^ vpn.raw();
    (SplitMix64::seed_from_u64(key).next_u64() % nodes as u64) as usize
}

/// The stateful placement engine: maps each swapped-out page to its
/// primary node under the configured policy.
#[derive(Clone, Debug)]
pub struct Placer {
    kind: PlacementKind,
    nodes: usize,
    /// Stream-aware state: hint key → home node, assigned round-robin
    /// in first-seen order (deterministic).
    homes: BTreeMap<u64, usize>,
    next_home: usize,
}

impl Placer {
    /// A placer over `nodes` pool nodes.
    pub fn new(kind: PlacementKind, nodes: usize) -> Self {
        debug_assert!(nodes > 0);
        Placer {
            kind,
            nodes,
            homes: BTreeMap::new(),
            next_home: 0,
        }
    }

    /// The policy in force.
    pub fn kind(&self) -> PlacementKind {
        self.kind
    }

    /// Whether the policy benefits from STT stream hints.
    pub fn wants_hints(&self) -> bool {
        self.kind == PlacementKind::StreamAware && self.nodes > 1
    }

    /// Chooses the primary node for a page. `hint` is an opaque stream
    /// identity (same value ⇒ same stream); pages without a hint fall
    /// back to their 512-page region as the co-location key.
    pub fn place(&mut self, pid: Pid, vpn: Vpn, hint: Option<u64>) -> usize {
        match self.kind {
            PlacementKind::StaticHash => hash_node(pid, vpn, self.nodes),
            PlacementKind::RoundRobin => {
                ((u64::from(pid.raw()) + (vpn.raw() >> REGION_SHIFT)) % self.nodes as u64) as usize
            }
            PlacementKind::StreamAware => {
                // No hint: treat the page's region as a degenerate
                // "stream" so plain spatial locality still co-locates.
                let key = match hint {
                    Some(h) => h | 1 << 63,
                    None => (u64::from(pid.raw()) << 40) ^ (vpn.raw() >> REGION_SHIFT),
                };
                match self.homes.get(&key) {
                    Some(&n) => n,
                    None => {
                        let n = self.next_home % self.nodes;
                        self.next_home += 1;
                        self.homes.insert(key, n);
                        n
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in [
            PlacementKind::StaticHash,
            PlacementKind::RoundRobin,
            PlacementKind::StreamAware,
        ] {
            assert_eq!(PlacementKind::parse(k.name()), Some(k));
        }
        assert_eq!(PlacementKind::parse("bogus"), None);
    }

    #[test]
    fn static_hash_is_deterministic_and_spreads() {
        let mut p = Placer::new(PlacementKind::StaticHash, 4);
        let mut counts = [0usize; 4];
        for v in 0..4_000u64 {
            let n = p.place(Pid::new(1), Vpn::new(v), None);
            assert_eq!(n, p.place(Pid::new(1), Vpn::new(v), None));
            counts[n] += 1;
        }
        for &c in &counts {
            assert!((800..1_200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn round_robin_keeps_regions_together() {
        let mut p = Placer::new(PlacementKind::RoundRobin, 4);
        let base = 1u64 << 20;
        let n0 = p.place(Pid::new(1), Vpn::new(base), None);
        // Same 512-page region: same node.
        assert_eq!(p.place(Pid::new(1), Vpn::new(base + 511), None), n0);
        // Next region: next node.
        let n1 = p.place(Pid::new(1), Vpn::new(base + 512), None);
        assert_eq!(n1, (n0 + 1) % 4);
    }

    #[test]
    fn stream_aware_colocates_by_hint() {
        let mut p = Placer::new(PlacementKind::StreamAware, 4);
        assert!(p.wants_hints());
        let a = p.place(Pid::new(1), Vpn::new(100), Some(7));
        // Far-apart pages of the same stream share the node.
        assert_eq!(p.place(Pid::new(1), Vpn::new(90_000), Some(7)), a);
        // A different stream gets the next home.
        let b = p.place(Pid::new(1), Vpn::new(200), Some(8));
        assert_ne!(a, b);
        // Hintless pages co-locate by region instead.
        let c = p.place(Pid::new(2), Vpn::new(4_096), None);
        assert_eq!(p.place(Pid::new(2), Vpn::new(4_100), None), c);
    }

    #[test]
    fn single_node_pools_always_place_on_node_zero() {
        for kind in [
            PlacementKind::StaticHash,
            PlacementKind::RoundRobin,
            PlacementKind::StreamAware,
        ] {
            let mut p = Placer::new(kind, 1);
            assert!(!p.wants_hints());
            for v in 0..64u64 {
                assert_eq!(p.place(Pid::new(3), Vpn::new(v * 97), Some(v)), 0);
            }
        }
    }
}
