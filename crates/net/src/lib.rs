#![warn(missing_docs)]
//! RDMA remote-memory substrate.
//!
//! The paper's testbed moves 4 KB pages between two servers over a
//! 56 Gbps InfiniBand link; reading one page takes about 4 µs (§II-A,
//! step 4). This crate models that link:
//!
//! * [`RdmaEngine`] — a single shared link with a base (propagation +
//!   processing) latency and a serialization rate. Concurrent reads
//!   queue behind each other, so a prefetcher that over-issues inflates
//!   everyone's latency — the congestion effect HoPP's *prefetch
//!   intensity* knob reacts to (§III-E).
//! * [`CompletionQueue`] — a time-ordered queue of in-flight operations,
//!   the analogue of an RDMA CQ polled by the execution engine.
//!
//! # Example
//!
//! ```
//! use hopp_net::{RdmaConfig, RdmaEngine};
//! use hopp_types::{Nanos, PAGE_SIZE};
//!
//! let cfg = RdmaConfig::default();
//! let mut link = RdmaEngine::new(cfg);
//! let done = link.issue_page_read(Nanos::ZERO);
//! // An idle link completes in exactly base + serialization — ~4 us
//! // with the default (paper) parameters.
//! assert_eq!(done, cfg.base_latency + cfg.serialization(PAGE_SIZE));
//! ```

use std::collections::BinaryHeap;

use hopp_obs::{Event, NopRecorder, Recorder};
use hopp_types::{Nanos, PAGE_SIZE};

/// Deterministic latency volatility: the datacenter fabric periodically
/// congests, multiplying the base latency for part of each period.
///
/// §III-E motivates the prefetch-offset controller with exactly this:
/// "the remote swap latency is volatile … the asynchronous data path
/// enables fine-grained control and scheduling on prefetching, thus can
/// timely and dynamically react to latency volatility." A square-wave
/// burst model keeps runs reproducible while exercising the controller.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkJitter {
    /// Latency multiplier during the congested part of the period.
    pub burst_factor: f64,
    /// Full period of the congestion wave.
    pub period: Nanos,
    /// Fraction of each period spent congested (0..1).
    pub duty: f64,
}

impl LinkJitter {
    /// A moderate datacenter-style profile: every 2 ms the fabric
    /// congests for a quarter of the period at 8x latency.
    pub fn bursty() -> Self {
        LinkJitter {
            burst_factor: 8.0,
            period: Nanos::from_millis(2),
            duty: 0.25,
        }
    }

    /// The latency multiplier at time `now`.
    pub fn factor_at(&self, now: Nanos) -> f64 {
        let phase = now.as_nanos() % self.period.as_nanos().max(1);
        if (phase as f64) < self.period.as_nanos() as f64 * self.duty {
            self.burst_factor
        } else {
            1.0
        }
    }
}

/// Link parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RdmaConfig {
    /// Fixed per-operation latency: NIC processing, switch hops,
    /// propagation. Default 3.4 µs.
    pub base_latency: Nanos,
    /// Serialization rate in bytes per nanosecond. Default 7.0 (56 Gbps),
    /// giving ~0.585 µs per 4 KB page; base + serialization ≈ the 4 µs
    /// page-read the paper measures.
    pub bytes_per_ns: f64,
    /// Optional periodic congestion (None = the paper's quiet testbed).
    pub jitter: Option<LinkJitter>,
}

impl Default for RdmaConfig {
    fn default() -> Self {
        RdmaConfig {
            base_latency: Nanos::from_nanos(3_400),
            bytes_per_ns: 7.0,
            jitter: None,
        }
    }
}

impl RdmaConfig {
    /// The default link with bursty congestion enabled.
    pub fn volatile() -> Self {
        RdmaConfig {
            jitter: Some(LinkJitter::bursty()),
            ..Self::default()
        }
    }

    /// Serialization delay for a transfer of `bytes`.
    pub fn serialization(&self, bytes: usize) -> Nanos {
        debug_assert!(self.bytes_per_ns > 0.0);
        Nanos::from_nanos((bytes as f64 / self.bytes_per_ns).ceil() as u64)
    }

    /// The base latency experienced by an operation issued at `now`.
    pub fn latency_at(&self, now: Nanos) -> Nanos {
        match self.jitter {
            Some(j) => self.base_latency.scale(j.factor_at(now)),
            None => self.base_latency,
        }
    }
}

/// Counters for link activity.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RdmaStats {
    /// Read operations issued.
    pub reads: u64,
    /// Write operations issued (dirty-page writebacks).
    pub writes: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Total time operations spent queued behind earlier transfers.
    pub queueing: Nanos,
}

/// A single shared RDMA link with FIFO serialization.
///
/// The model: every transfer occupies the wire for its serialization
/// time, in issue order; completion happens when the transfer has left
/// the wire plus the base latency. An idle link therefore completes a
/// page read in `base_latency + page/bandwidth` ≈ 4 µs, and a saturated
/// link backs up linearly — which is what makes prefetch timeliness
/// volatile (§III-E).
#[derive(Clone, Debug)]
pub struct RdmaEngine {
    config: RdmaConfig,
    wire_free_at: Nanos,
    stats: RdmaStats,
}

impl RdmaEngine {
    /// Creates an idle link.
    pub fn new(config: RdmaConfig) -> Self {
        RdmaEngine {
            config,
            wire_free_at: Nanos::ZERO,
            stats: RdmaStats::default(),
        }
    }

    /// The link parameters.
    pub fn config(&self) -> RdmaConfig {
        self.config
    }

    /// Issues a read of `bytes` at time `now`; returns its completion
    /// time.
    pub fn issue_read(&mut self, now: Nanos, bytes: usize) -> Nanos {
        self.issue_read_rec(now, bytes, &mut NopRecorder)
    }

    /// [`RdmaEngine::issue_read`], recording an [`Event::RdmaRead`]
    /// whose latency includes time queued behind earlier transfers.
    pub fn issue_read_rec(&mut self, now: Nanos, bytes: usize, rec: &mut dyn Recorder) -> Nanos {
        let start = now.max(self.wire_free_at);
        self.stats.queueing += start.saturating_since(now);
        let ser = self.config.serialization(bytes);
        self.wire_free_at = start + ser;
        self.stats.reads += 1;
        self.stats.bytes += bytes as u64;
        let done = self.wire_free_at + self.config.latency_at(start);
        if rec.is_enabled() {
            rec.record(
                done,
                Event::RdmaRead {
                    bytes: bytes as u64,
                    latency: done.saturating_since(now),
                },
            );
        }
        done
    }

    /// Issues a 4 KB page read at `now`; returns its completion time.
    pub fn issue_page_read(&mut self, now: Nanos) -> Nanos {
        self.issue_read(now, PAGE_SIZE)
    }

    /// [`RdmaEngine::issue_page_read`] with event recording.
    pub fn issue_page_read_rec(&mut self, now: Nanos, rec: &mut dyn Recorder) -> Nanos {
        self.issue_read_rec(now, PAGE_SIZE, rec)
    }

    /// Issues a 4 KB page *write* (dirty-page writeback during reclaim)
    /// at `now`; returns its completion time. Writes share the wire with
    /// reads and therefore delay them.
    pub fn issue_page_write(&mut self, now: Nanos) -> Nanos {
        self.issue_page_write_rec(now, &mut NopRecorder)
    }

    /// [`RdmaEngine::issue_page_write`], recording an
    /// [`Event::RdmaWrite`].
    pub fn issue_page_write_rec(&mut self, now: Nanos, rec: &mut dyn Recorder) -> Nanos {
        let start = now.max(self.wire_free_at);
        self.stats.queueing += start.saturating_since(now);
        let ser = self.config.serialization(PAGE_SIZE);
        self.wire_free_at = start + ser;
        self.stats.writes += 1;
        self.stats.bytes += PAGE_SIZE as u64;
        let done = self.wire_free_at + self.config.latency_at(start);
        if rec.is_enabled() {
            rec.record(
                done,
                Event::RdmaWrite {
                    bytes: PAGE_SIZE as u64,
                    latency: done.saturating_since(now),
                },
            );
        }
        done
    }

    /// The earliest time a newly issued transfer could start.
    pub fn wire_free_at(&self) -> Nanos {
        self.wire_free_at
    }

    /// Accumulated counters.
    pub fn stats(&self) -> RdmaStats {
        self.stats
    }
}

/// An in-flight operation: completion time plus a caller-chosen payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Inflight<T> {
    due: Nanos,
    seq: u64,
    payload: T,
}

impl<T: Eq> Ord for Inflight<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest first.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> PartialOrd for Inflight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A completion queue: operations become visible in completion-time
/// order, ties broken by issue order.
///
/// # Example
///
/// ```
/// use hopp_net::CompletionQueue;
/// use hopp_types::Nanos;
///
/// let mut cq = CompletionQueue::new();
/// cq.push(Nanos::from_nanos(50), "b");
/// cq.push(Nanos::from_nanos(10), "a");
/// assert_eq!(cq.pop_due(Nanos::from_nanos(20)), Some((Nanos::from_nanos(10), "a")));
/// assert_eq!(cq.pop_due(Nanos::from_nanos(20)), None);
/// ```
#[derive(Clone, Debug)]
pub struct CompletionQueue<T: Eq> {
    heap: BinaryHeap<Inflight<T>>,
    seq: u64,
}

impl<T: Eq> Default for CompletionQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq> CompletionQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CompletionQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` in-flight
    /// operations before the heap reallocates (hot-path pre-sizing).
    pub fn with_capacity(capacity: usize) -> Self {
        CompletionQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// The queue's current allocation capacity (steady-state allocation
    /// tests watch this).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Registers an operation completing at `due`.
    pub fn push(&mut self, due: Nanos, payload: T) {
        self.heap.push(Inflight {
            due,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest operation if it has completed by `now`.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, T)> {
        if self.heap.peek().is_some_and(|op| op.due <= now) {
            self.heap.pop().map(|op| (op.due, op.payload))
        } else {
            None
        }
    }

    /// Pops the earliest operation regardless of the clock (used to
    /// drain at end of simulation).
    pub fn pop_any(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|op| (op.due, op.payload))
    }

    /// Completion time of the earliest in-flight operation.
    pub fn next_due(&self) -> Option<Nanos> {
        self.heap.peek().map(|op| op.due)
    }

    /// Number of in-flight operations.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_page_read_is_about_4us() {
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let done = link.issue_page_read(Nanos::ZERO);
        let us = done.as_micros_f64();
        assert!((3.9..4.1).contains(&us), "got {us}");
    }

    #[test]
    fn queueing_backs_up_fifo() {
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let ser = RdmaConfig::default().serialization(PAGE_SIZE);
        let d1 = link.issue_page_read(Nanos::ZERO);
        let d2 = link.issue_page_read(Nanos::ZERO);
        let d3 = link.issue_page_read(Nanos::ZERO);
        assert_eq!(d2, d1 + ser);
        assert_eq!(d3, d2 + ser);
        assert_eq!(link.stats().reads, 3);
        assert!(link.stats().queueing > Nanos::ZERO);
    }

    #[test]
    fn idle_gaps_do_not_accumulate() {
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let d1 = link.issue_page_read(Nanos::ZERO);
        // Issue long after the wire went idle.
        let later = d1 + Nanos::from_micros(100);
        let d2 = link.issue_page_read(later);
        assert_eq!(
            d2,
            later
                + RdmaConfig::default().serialization(PAGE_SIZE)
                + RdmaConfig::default().base_latency
        );
    }

    #[test]
    fn serialization_scales_with_bytes() {
        let cfg = RdmaConfig::default();
        let one = cfg.serialization(PAGE_SIZE).as_nanos();
        let two = cfg.serialization(PAGE_SIZE * 2).as_nanos();
        // Within rounding of double (ceil may differ by 1 ns).
        assert!(two >= 2 * one - 2 && two <= 2 * one);
        assert!(cfg.serialization(64) < cfg.serialization(PAGE_SIZE));
    }

    #[test]
    fn jitter_multiplies_latency_during_bursts() {
        let cfg = RdmaConfig::volatile();
        let j = cfg.jitter.unwrap();
        // Start of the period: congested (duty 0.25 of 2 ms).
        assert_eq!(j.factor_at(Nanos::ZERO), 8.0);
        assert_eq!(j.factor_at(Nanos::from_micros(499)), 8.0);
        // After the burst: quiet.
        assert_eq!(j.factor_at(Nanos::from_micros(501)), 1.0);
        // Next period bursts again.
        assert_eq!(j.factor_at(Nanos::from_micros(2_001)), 8.0);

        let mut link = RdmaEngine::new(cfg);
        let burst = link.issue_page_read(Nanos::ZERO);
        let mut quiet_link = RdmaEngine::new(cfg);
        let quiet = quiet_link.issue_page_read(Nanos::from_micros(600));
        let burst_latency = burst.as_nanos();
        let quiet_latency = quiet.saturating_since(Nanos::from_micros(600)).as_nanos();
        assert!(
            burst_latency > 5 * quiet_latency,
            "{burst_latency} vs {quiet_latency}"
        );
    }

    #[test]
    fn completion_queue_orders_by_due_then_fifo() {
        let mut cq = CompletionQueue::new();
        cq.push(Nanos::from_nanos(30), 1u32);
        cq.push(Nanos::from_nanos(10), 2);
        cq.push(Nanos::from_nanos(10), 3);
        assert_eq!(cq.len(), 3);
        assert_eq!(cq.pop_due(Nanos::from_nanos(5)), None);
        assert_eq!(
            cq.pop_due(Nanos::from_nanos(10)),
            Some((Nanos::from_nanos(10), 2))
        );
        assert_eq!(
            cq.pop_due(Nanos::from_nanos(10)),
            Some((Nanos::from_nanos(10), 3))
        );
        assert_eq!(cq.next_due(), Some(Nanos::from_nanos(30)));
        assert_eq!(cq.pop_any(), Some((Nanos::from_nanos(30), 1)));
        assert!(cq.is_empty());
    }

    #[test]
    fn stats_count_bytes() {
        let mut link = RdmaEngine::new(RdmaConfig::default());
        link.issue_read(Nanos::ZERO, 100);
        link.issue_read(Nanos::ZERO, 200);
        assert_eq!(link.stats().bytes, 300);
    }

    #[test]
    fn recorded_ops_carry_queueing_in_latency() {
        use hopp_obs::TraceSink;
        let mut sink = TraceSink::new(16);
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let d1 = link.issue_page_read_rec(Nanos::ZERO, &mut sink);
        let d2 = link.issue_page_read_rec(Nanos::ZERO, &mut sink);
        link.issue_page_write_rec(Nanos::ZERO, &mut sink);
        let events = sink.into_events();
        assert_eq!(events.len(), 3);
        match (events[0].event, events[1].event, events[2].event) {
            (
                Event::RdmaRead { latency: l1, bytes },
                Event::RdmaRead { latency: l2, .. },
                Event::RdmaWrite { .. },
            ) => {
                assert_eq!(bytes, PAGE_SIZE as u64);
                assert_eq!(l1, d1);
                assert_eq!(l2, d2, "second read's latency includes queueing");
                assert!(l2 > l1);
            }
            other => panic!("unexpected events {other:?}"),
        }
        // Events are stamped at completion time.
        assert_eq!(events[0].at, d1);
    }

    #[test]
    fn over_issued_reads_queue_fifo_and_complete_in_issue_order() {
        // Saturate the link: 64 page reads issued at irregular (but
        // non-decreasing) instants, far faster than the wire drains.
        let cfg = RdmaConfig::default();
        let ser = cfg.serialization(PAGE_SIZE);
        let mut link = RdmaEngine::new(cfg);
        let mut cq = CompletionQueue::new();
        let mut dones = Vec::new();
        for i in 0..64u64 {
            let issue = Nanos::from_nanos(i * 13); // ≪ ser ≈ 586 ns apart
            let done = link.issue_page_read(issue);
            cq.push(done, i);
            dones.push(done);
        }
        // FIFO: each op completes exactly one serialization slot after
        // its predecessor once the wire is the bottleneck.
        for w in dones.windows(2) {
            assert_eq!(w[1], w[0] + ser, "wire drains strictly FIFO");
        }
        // The completion queue hands them back in issue order.
        let mut order = Vec::new();
        while let Some((_, i)) = cq.pop_any() {
            order.push(i);
        }
        assert_eq!(order, (0..64).collect::<Vec<_>>());
        // Queueing accounted: op k waited k*ser - issue_gap in total.
        assert!(link.stats().queueing > Nanos::ZERO);
    }

    #[test]
    fn completion_times_are_monotone_in_issue_time() {
        // On a quiet link (constant base latency) the wire is FIFO and
        // latency is added after draining, so a later issue can never
        // complete before an earlier one — whatever the issue gaps.
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let mut last = Nanos::ZERO;
        let mut issue = Nanos::ZERO;
        for i in 0..200u64 {
            // Irregular but non-decreasing issue times: bursts of
            // back-to-back ops separated by occasional long gaps.
            issue += Nanos::from_nanos((i * 37) % 4_000);
            let done = link.issue_page_read(issue);
            assert!(
                done >= last,
                "op issued at {issue:?} completed at {done:?}, before {last:?}"
            );
            assert!(done > issue, "completion strictly after issue");
            last = done;
        }
        // Under jitter the *wire* still drains FIFO even though a
        // burst-phase op may carry a larger base latency than its
        // successor.
        let mut jl = RdmaEngine::new(RdmaConfig::volatile());
        let mut last_free = Nanos::ZERO;
        for i in 0..50u64 {
            jl.issue_page_read(Nanos::from_nanos(i * 100));
            assert!(jl.wire_free_at() > last_free);
            last_free = jl.wire_free_at();
        }
    }

    #[test]
    fn writes_share_the_wire_with_reads() {
        let mut link = RdmaEngine::new(RdmaConfig::default());
        let w = link.issue_page_write(Nanos::ZERO);
        let r = link.issue_page_read(Nanos::ZERO);
        assert!(r > w, "the read queues behind the writeback");
        assert_eq!(link.stats().writes, 1);
        assert_eq!(link.stats().reads, 1);
    }
}
