//! [`PageMap`]: a paged direct-index table for dense page/frame keys.

use core::marker::PhantomData;

use crate::PageIndex;

/// log2 of the chunk size (pages per chunk).
const CHUNK_BITS: usize = 10;
/// Entries per chunk.
const CHUNK: usize = 1 << CHUNK_BITS;

/// One lazily-allocated block of the table.
#[derive(Clone, Debug)]
struct Chunk<V> {
    /// Occupied slots in this chunk. Emptied chunks are *kept* — page
    /// churn (fault in, reclaim, fault in again) oscillates around
    /// chunk boundaries, and reallocating a chunk per oscillation is
    /// exactly the steady-state allocation the hot paths must not do.
    used: u32,
    slots: Vec<Option<V>>,
}

impl<V> Chunk<V> {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(CHUNK);
        slots.resize_with(CHUNK, || None);
        Chunk { used: 0, slots }
    }
}

/// A map keyed by dense page/frame numbers ([`Vpn`]/[`Ppn`]/`usize`),
/// stored as a two-level direct-index table: a directory of
/// lazily-allocated 1024-entry chunks.
///
/// Lookups are two array indexes — O(1) with no hashing and no probe
/// sequence — and iteration is in **key order**, the same order as the
/// `BTreeMap`s this replaces, so migrating to it cannot change any
/// iteration-dependent behaviour.
///
/// Memory is proportional to the highest chunk touched (16 bytes of
/// directory per 1024 pages of key space) plus one chunk per ~1024-page
/// region *ever* used; emptied chunks are retained for reuse (call
/// [`PageMap::clear`] to free them). Intended for page tables, frame
/// tables and per-frame metadata, where keys are dense page indices —
/// not for arbitrary sparse `u64` keys.
///
/// # Example
///
/// ```
/// use hopp_ds::PageMap;
/// use hopp_types::Vpn;
///
/// let mut m: PageMap<Vpn, u32> = PageMap::new();
/// m.insert(Vpn::new(1 << 20), 7);
/// assert_eq!(m.get(Vpn::new(1 << 20)), Some(&7));
/// assert_eq!(m.len(), 1);
/// ```
///
/// [`Vpn`]: hopp_types::Vpn
/// [`Ppn`]: hopp_types::Ppn
#[derive(Clone, Debug)]
pub struct PageMap<K, V> {
    chunks: Vec<Option<Box<Chunk<V>>>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: PageIndex, V> Default for PageMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PageIndex, V> PageMap<K, V> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        PageMap {
            chunks: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Creates an empty map with directory space for keys up to
    /// `pages` (avoids directory reallocation during warm-up).
    #[must_use]
    pub fn with_capacity_pages(pages: usize) -> Self {
        let mut m = Self::new();
        m.chunks.reserve((pages >> CHUNK_BITS) + 1);
        m
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries (directory capacity is kept, chunks are
    /// freed).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Looks up a value.
    #[must_use]
    pub fn get(&self, key: K) -> Option<&V> {
        let i = key.page_index();
        self.chunks.get(i >> CHUNK_BITS)?.as_ref()?.slots[i & (CHUNK - 1)].as_ref()
    }

    /// Looks up a value mutably.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let i = key.page_index();
        self.chunks.get_mut(i >> CHUNK_BITS)?.as_mut()?.slots[i & (CHUNK - 1)].as_mut()
    }

    /// True if `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.page_index();
        let ci = i >> CHUNK_BITS;
        if ci >= self.chunks.len() {
            self.chunks.resize_with(ci + 1, || None);
        }
        let chunk = self.chunks[ci].get_or_insert_with(|| Box::new(Chunk::new()));
        let old = chunk.slots[i & (CHUNK - 1)].replace(value);
        if old.is_none() {
            chunk.used += 1;
            self.len += 1;
        }
        old
    }

    /// Removes `key`, returning its value. The chunk's storage is kept
    /// for reuse even if this empties it.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let i = key.page_index();
        let ci = i >> CHUNK_BITS;
        let slot = self.chunks.get_mut(ci)?.as_mut()?;
        let old = slot.slots[i & (CHUNK - 1)].take()?;
        slot.used -= 1;
        self.len -= 1;
        Some(old)
    }

    /// Iterates `(key, &value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.chunks.iter().enumerate().flat_map(|(ci, c)| {
            c.iter().flat_map(move |chunk| {
                chunk.slots.iter().enumerate().filter_map(move |(si, s)| {
                    s.as_ref()
                        .map(|v| (K::from_page_index((ci << CHUNK_BITS) | si), v))
                })
            })
        })
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::{Ppn, Vpn};

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: PageMap<Ppn, u64> = PageMap::new();
        assert_eq!(m.insert(Ppn::new(3), 30), None);
        assert_eq!(m.insert(Ppn::new(3), 31), Some(30));
        assert_eq!(m.get(Ppn::new(3)), Some(&31));
        assert_eq!(m.remove(Ppn::new(3)), Some(31));
        assert_eq!(m.remove(Ppn::new(3)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut m: PageMap<Vpn, u32> = PageMap::new();
        for k in [5000u64, 17, 1 << 20, 1023, 1024] {
            m.insert(Vpn::new(k), 0);
        }
        let keys: Vec<u64> = m.keys().map(Vpn::raw).collect();
        assert_eq!(keys, [17, 1023, 1024, 5000, 1 << 20]);
    }

    #[test]
    fn emptied_chunks_are_retained_for_reuse() {
        let mut m: PageMap<usize, u8> = PageMap::new();
        m.insert(2048, 1);
        assert!(m.chunks[2].is_some());
        m.remove(2048);
        // The chunk stays allocated so insert/remove churn around a
        // chunk boundary never reallocates, but the entry is gone.
        assert!(m.chunks[2].is_some());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(2048), None);
        assert!(m.iter().next().is_none());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut m: PageMap<usize, u32> = PageMap::new();
        m.insert(9, 1);
        *m.get_mut(9).unwrap() += 10;
        assert_eq!(m.get(9), Some(&11));
        assert_eq!(m.get_mut(10), None);
    }

    #[test]
    fn heap_base_keys_are_cheap() {
        // Workload VPNs start at HEAP_BASE = 1 << 20; the directory for
        // such a key is ~1k pointers, not 1M slots.
        let mut m: PageMap<Vpn, u8> = PageMap::new();
        m.insert(Vpn::new(1 << 20), 1);
        assert_eq!(m.chunks.len(), (1 << 20 >> CHUNK_BITS) + 1);
        assert_eq!(m.chunks.iter().filter(|c| c.is_some()).count(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut m: PageMap<usize, u8> = PageMap::with_capacity_pages(4096);
        for k in 0..100 {
            m.insert(k, 0);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        m.insert(5, 1);
        assert_eq!(m.len(), 1);
    }
}
