//! [`DetMap`]: seeded open-addressing hash map with insertion-order
//! iteration.

use crate::{mix64, DetKey};

/// "No entry" sentinel for the index table and the order links.
const NIL: u32 = u32::MAX;

/// Initial index-table size (slots) on first insert.
const MIN_SLOTS: usize = 8;

/// Default hash seed — any fixed constant keeps the map deterministic;
/// this one is the SplitMix64 golden-ratio increment.
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// One occupied entry: key/value plus its position in the
/// insertion-order doubly-linked list.
#[derive(Clone, Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    /// Previous entry in insertion order (`NIL` for the oldest).
    prev: u32,
    /// Next entry in insertion order (`NIL` for the newest).
    next: u32,
}

/// A deterministic hash map: SplitMix64-seeded linear probing with
/// backward-shift deletion over flat `Vec`s, iterating in **insertion
/// order**.
///
/// Determinism: the hash seed is a compile-time constant (or an
/// explicit caller-provided seed), so slot assignment, growth and
/// iteration order depend only on the operation sequence — never on OS
/// entropy or allocation addresses. Overwriting an existing key keeps
/// its original position in the iteration order (like `indexmap`);
/// removal does not disturb the order of the remaining entries.
///
/// The entry slab is kept dense with swap-remove, so memory is
/// proportional to `len`, and cleared capacity is reused.
///
/// # Example
///
/// ```
/// use hopp_ds::DetMap;
///
/// let mut m: DetMap<u64, &str> = DetMap::new();
/// m.insert(30, "c");
/// m.insert(10, "a");
/// m.insert(20, "b");
/// m.remove(&10);
/// let keys: Vec<u64> = m.iter().map(|(k, _)| k).collect();
/// assert_eq!(keys, [30, 20]); // insertion order, not key order
/// ```
#[derive(Clone, Debug)]
pub struct DetMap<K, V> {
    /// Dense slab of live entries.
    entries: Vec<Entry<K, V>>,
    /// Open-addressed table: slot → entry index, or `NIL`.
    index: Vec<u32>,
    /// `index.len() - 1`; the table size is always a power of two.
    mask: usize,
    /// Oldest entry (start of iteration).
    head: u32,
    /// Newest entry.
    tail: u32,
    seed: u64,
}

impl<K: DetKey, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: DetKey, V> DetMap<K, V> {
    /// Creates an empty map with the default fixed seed.
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(DEFAULT_SEED)
    }

    /// Creates an empty map hashing with `seed`. Two maps with the same
    /// seed and operation sequence are identical; different seeds only
    /// change bucket assignment, never observable behaviour.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        DetMap {
            entries: Vec::new(),
            index: Vec::new(),
            mask: 0,
            head: NIL,
            tail: NIL,
            seed,
        }
    }

    /// Creates an empty map pre-sized for `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut m = Self::new();
        m.entries.reserve(capacity);
        let slots = (capacity * 8 / 7 + 1).next_power_of_two().max(MIN_SLOTS);
        m.index = vec![NIL; slots];
        m.mask = slots - 1;
        m
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.fill(NIL);
        self.head = NIL;
        self.tail = NIL;
    }

    fn hash(&self, key: &K) -> u64 {
        mix64(self.seed ^ key.det_key())
    }

    /// Finds `key`'s slot: `Ok(slot)` when present, `Err(first empty
    /// slot on its probe path)` when absent.
    fn probe(&self, key: &K) -> Result<usize, usize> {
        debug_assert!(!self.index.is_empty());
        let mut slot = (self.hash(key) as usize) & self.mask;
        loop {
            match self.index[slot] {
                NIL => return Err(slot),
                e if self.entries[e as usize].key == *key => return Ok(slot),
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    /// Looks up a value.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        if self.entries.is_empty() {
            return None;
        }
        let slot = self.probe(key).ok()?;
        Some(&self.entries[self.index[slot] as usize].value)
    }

    /// Looks up a value mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if self.entries.is_empty() {
            return None;
        }
        let slot = self.probe(key).ok()?;
        Some(&mut self.entries[self.index[slot] as usize].value)
    }

    /// True if `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        !self.entries.is_empty() && self.probe(key).is_ok()
    }

    /// Inserts `key → value`, returning the previous value if the key
    /// was present (its position in the iteration order is kept).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.grow_if_needed();
        match self.probe(&key) {
            Ok(slot) => {
                let e = self.index[slot] as usize;
                Some(core::mem::replace(&mut self.entries[e].value, value))
            }
            Err(slot) => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry {
                    key,
                    value,
                    prev: self.tail,
                    next: NIL,
                });
                if self.tail == NIL {
                    self.head = idx;
                } else {
                    self.entries[self.tail as usize].next = idx;
                }
                self.tail = idx;
                self.index[slot] = idx;
                None
            }
        }
    }

    /// Returns a mutable reference to `key`'s value, inserting
    /// `default()` first if absent (the `entry().or_insert_with()`
    /// pattern).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        self.grow_if_needed();
        let e = match self.probe(&key) {
            Ok(slot) => self.index[slot] as usize,
            Err(_) => {
                self.insert(key, default());
                self.entries.len() - 1
            }
        };
        &mut self.entries[e].value
    }

    /// Removes `key`, returning its value. The insertion order of the
    /// remaining entries is unchanged.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if self.entries.is_empty() {
            return None;
        }
        let slot = self.probe(key).ok()?;
        let idx = self.index[slot] as usize;
        self.backshift(slot);
        self.unlink(idx as u32);
        let removed = self.entries.swap_remove(idx);
        let moved_from = self.entries.len();
        if idx != moved_from {
            // The former last entry now lives at `idx`: repoint its
            // index slot and its order-list neighbours.
            self.repoint(moved_from as u32, idx as u32);
        }
        Some(removed.value)
    }

    /// Unlinks entry `idx` from the insertion-order list.
    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.entries[idx as usize];
            (e.prev, e.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next as usize].prev = prev;
        }
    }

    /// After `swap_remove` moved the entry at slab position `old` to
    /// `new`, fixes every structure that referred to `old`.
    fn repoint(&mut self, old: u32, new: u32) {
        let (key, prev, next) = {
            let e = &self.entries[new as usize];
            (e.key, e.prev, e.next)
        };
        if prev == NIL {
            self.head = new;
        } else {
            self.entries[prev as usize].next = new;
        }
        if next == NIL {
            self.tail = new;
        } else {
            self.entries[next as usize].prev = new;
        }
        // Find the index slot that still points at the old position.
        let mut slot = (self.hash(&key) as usize) & self.mask;
        loop {
            if self.index[slot] == old {
                self.index[slot] = new;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Backward-shift deletion: closes the hole at `slot` by moving
    /// later probe-chain members up, so lookups never need tombstones.
    fn backshift(&mut self, mut hole: usize) {
        let mut cur = hole;
        loop {
            cur = (cur + 1) & self.mask;
            let e = self.index[cur];
            if e == NIL {
                self.index[hole] = NIL;
                return;
            }
            let home = (self.hash(&self.entries[e as usize].key) as usize) & self.mask;
            // `e` may move into the hole iff its home slot is not
            // after the hole on the (cyclic) probe path.
            let dist_home = cur.wrapping_sub(home) & self.mask;
            let dist_hole = cur.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.index[hole] = e;
                hole = cur;
            }
        }
    }

    /// Grows the index table when the load factor would exceed 7/8.
    fn grow_if_needed(&mut self) {
        if self.index.is_empty() {
            self.index = vec![NIL; MIN_SLOTS];
            self.mask = MIN_SLOTS - 1;
            return;
        }
        if (self.entries.len() + 1) * 8 <= self.index.len() * 7 {
            return;
        }
        let slots = self.index.len() * 2;
        self.index.clear();
        self.index.resize(slots, NIL);
        self.mask = slots - 1;
        for idx in 0..self.entries.len() {
            let mut slot = (self.hash(&self.entries[idx].key) as usize) & self.mask;
            while self.index[slot] != NIL {
                slot = (slot + 1) & self.mask;
            }
            self.index[slot] = idx as u32;
        }
    }

    /// Iterates `(key, &value)` in insertion order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            map: self,
            cursor: self.head,
        }
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

/// Insertion-order iterator over a [`DetMap`].
pub struct Iter<'a, K, V> {
    map: &'a DetMap<K, V>,
    cursor: u32,
}

impl<'a, K: DetKey, V> Iterator for Iter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let e = &self.map.entries[self.cursor as usize];
        self.cursor = e.next;
        Some((e.key, &e.value))
    }
}

impl<'a, K: DetKey, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DetMap<u64, u64> = DetMap::new();
        assert_eq!(m.get(&1), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(&11));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_insertion_ordered_across_growth() {
        let mut m: DetMap<u64, u64> = DetMap::new();
        let keys: Vec<u64> = (0..1000).map(|i| (i * 2654435761) % 100_000).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as u64);
        }
        let mut seen = std::collections::BTreeSet::new();
        let expect: Vec<u64> = keys.iter().copied().filter(|k| seen.insert(*k)).collect();
        let got: Vec<u64> = m.keys().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn removal_preserves_order_of_remaining() {
        let mut m: DetMap<u64, &str> = DetMap::new();
        for k in [5, 3, 9, 1, 7] {
            m.insert(k, "x");
        }
        m.remove(&9);
        m.remove(&5);
        let got: Vec<u64> = m.keys().collect();
        assert_eq!(got, [3, 1, 7]);
    }

    #[test]
    fn overwrite_keeps_original_position() {
        let mut m: DetMap<u64, u64> = DetMap::new();
        m.insert(1, 0);
        m.insert(2, 0);
        m.insert(1, 9);
        assert_eq!(m.keys().collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn get_or_insert_with_is_entry_like() {
        let mut m: DetMap<u16, Vec<u32>> = DetMap::new();
        m.get_or_insert_with(1, Vec::new).push(10);
        m.get_or_insert_with(1, Vec::new).push(20);
        assert_eq!(m.get(&1), Some(&vec![10, 20]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_retains_capacity_and_works_after() {
        let mut m: DetMap<u64, u64> = DetMap::with_capacity(100);
        let slots = m.index.len();
        for k in 0..50 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.index.len(), slots, "clear must not shrink the table");
        m.insert(7, 7);
        assert_eq!(m.get(&7), Some(&7));
    }

    #[test]
    fn churn_does_not_grow_the_slab() {
        let mut m: DetMap<u64, u64> = DetMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        let cap = m.entries.capacity();
        for round in 0..1000u64 {
            m.remove(&(round % 100));
            m.insert(round % 100, round);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.entries.capacity(), cap, "churn must reuse slab space");
    }

    #[test]
    fn two_maps_same_ops_identical_iteration() {
        let ops: Vec<(u64, bool)> = (0..500).map(|i| (i * 7 % 97, i % 3 != 0)).collect();
        let mut a: DetMap<u64, u64> = DetMap::new();
        let mut b: DetMap<u64, u64> = DetMap::new();
        for m in [&mut a, &mut b] {
            for &(k, ins) in &ops {
                if ins {
                    m.insert(k, k);
                } else {
                    m.remove(&k);
                }
            }
        }
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }
}
