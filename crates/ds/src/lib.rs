//! `hopp-ds` — deterministic, allocation-lean collections for the HoPP
//! hot paths.
//!
//! The simulated stack must replay byte-identically from a seed, which
//! rules out `std::collections::HashMap` (RandomState draws OS entropy
//! and iteration order varies run to run). PR 3 converted every
//! per-access map to `BTreeMap`, buying order stability at the cost of
//! O(log n) pointer chasing on the single most-executed code in the
//! repo. This crate provides the missing third option — deterministic
//! *and* cache-friendly:
//!
//! * [`DetMap`] — a seeded open-addressing hash map (SplitMix64-mixed,
//!   linear probing with backward-shift deletion over flat `Vec`s) with
//!   **insertion-order iteration**. No `RandomState`, no OS entropy: it
//!   passes the hopp-check determinism rule by construction.
//! * [`PageMap`] — a paged direct-index table for dense page/frame
//!   number keys ([`Vpn`]/[`Ppn`]); O(1) lookup, iteration in key
//!   order (the same order the `BTreeMap`s it replaces iterated in).
//! * [`Lru`] — an intrusive doubly-linked list over a slab with a dense
//!   key index: O(1) touch/evict, replacing the stamp-ordered
//!   `BTreeMap` lists in `hopp_kernel::lru`.
//!
//! All three are deterministic for a fixed seed and operation sequence,
//! and allocation-lean: cleared capacity is reused, and steady-state
//! operation allocates nothing.
//!
//! [`Vpn`]: hopp_types::Vpn
//! [`Ppn`]: hopp_types::Ppn

use hopp_types::{LineAddr, NodeId, Pid, Ppn, SwapSlot, Vpn};

mod detmap;
mod lru;
mod pagemap;

pub use detmap::DetMap;
pub use lru::Lru;
pub use pagemap::PageMap;

/// The SplitMix64 finalizer (same constants as
/// `hopp_types::rng::SplitMix64`): a fast, statistically strong 64-bit
/// mixing function. Pure arithmetic — no state, no entropy.
#[must_use]
pub const fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A key [`DetMap`] can hash deterministically.
///
/// `det_key` digests the key into 64 bits; the map then mixes the
/// digest with its seed through [`mix64`]. Composite keys pre-mix their
/// first component so `(a, b)` and `(b, a)` land in different buckets.
pub trait DetKey: Copy + Eq {
    /// A 64-bit digest of the key (need not be uniformly distributed;
    /// the map mixes it before use).
    fn det_key(&self) -> u64;
}

impl DetKey for u64 {
    fn det_key(&self) -> u64 {
        *self
    }
}

impl DetKey for u32 {
    fn det_key(&self) -> u64 {
        u64::from(*self)
    }
}

impl DetKey for u16 {
    fn det_key(&self) -> u64 {
        u64::from(*self)
    }
}

impl DetKey for u8 {
    fn det_key(&self) -> u64 {
        u64::from(*self)
    }
}

impl DetKey for usize {
    fn det_key(&self) -> u64 {
        *self as u64
    }
}

impl DetKey for Pid {
    fn det_key(&self) -> u64 {
        u64::from(self.raw())
    }
}

impl DetKey for Vpn {
    fn det_key(&self) -> u64 {
        self.raw()
    }
}

impl DetKey for Ppn {
    fn det_key(&self) -> u64 {
        self.raw()
    }
}

impl DetKey for SwapSlot {
    fn det_key(&self) -> u64 {
        self.raw()
    }
}

impl DetKey for NodeId {
    fn det_key(&self) -> u64 {
        u64::from(self.raw())
    }
}

impl DetKey for LineAddr {
    fn det_key(&self) -> u64 {
        self.raw()
    }
}

impl<A: DetKey, B: DetKey> DetKey for (A, B) {
    fn det_key(&self) -> u64 {
        mix64(self.0.det_key()).wrapping_add(self.1.det_key())
    }
}

impl<A: DetKey, B: DetKey, C: DetKey> DetKey for (A, B, C) {
    fn det_key(&self) -> u64 {
        mix64(mix64(self.0.det_key()).wrapping_add(self.1.det_key())).wrapping_add(self.2.det_key())
    }
}

/// A key that is (or wraps) a small dense table index, usable with
/// [`PageMap`] and [`Lru`].
///
/// Implementations must round-trip: `from_page_index(k.page_index())
/// == k`.
pub trait PageIndex: Copy + Eq {
    /// The key as a table index.
    fn page_index(self) -> usize;
    /// The key at a given table index.
    fn from_page_index(index: usize) -> Self;
}

impl PageIndex for usize {
    fn page_index(self) -> usize {
        self
    }
    fn from_page_index(index: usize) -> Self {
        index
    }
}

impl PageIndex for Vpn {
    fn page_index(self) -> usize {
        self.index()
    }
    fn from_page_index(index: usize) -> Self {
        Vpn::from_index(index)
    }
}

impl PageIndex for Ppn {
    fn page_index(self) -> usize {
        self.index()
    }
    fn from_page_index(index: usize) -> Self {
        Ppn::from_index(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_matches_reference_vector() {
        // SplitMix64 with seed 0 produces this first output after the
        // golden-ratio increment; mix64 is the finalizer applied to it.
        assert_eq!(mix64(0x9E37_79B9_7F4A_7C15), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn tuple_keys_are_order_sensitive() {
        let ab = (Pid::new(1), Vpn::new(2)).det_key();
        let ba = (Pid::new(2), Vpn::new(1)).det_key();
        assert_ne!(ab, ba);
    }

    #[test]
    fn page_index_roundtrips() {
        assert_eq!(Vpn::from_page_index(Vpn::new(7).page_index()), Vpn::new(7));
        assert_eq!(Ppn::from_page_index(Ppn::new(9).page_index()), Ppn::new(9));
        assert_eq!(usize::from_page_index(3usize.page_index()), 3);
    }
}
