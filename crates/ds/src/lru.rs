//! [`Lru`]: an intrusive doubly-linked recency list over a slab.

use crate::PageIndex;

/// "No node" sentinel for links and the key index.
const NIL: u32 = u32::MAX;

/// One list node. Freed nodes are chained through `next` on a free
/// list; `key` is stale while free.
#[derive(Clone, Copy, Debug)]
struct Node<K> {
    key: K,
    /// Toward the MRU end (`NIL` for the MRU itself).
    prev: u32,
    /// Toward the LRU end (`NIL` for the LRU itself), or the next free
    /// node while on the free list.
    next: u32,
}

/// An LRU recency list with O(1) insert, touch, remove and evict.
///
/// Nodes live in a slab (`Vec`) and are located by a dense direct-index
/// table keyed by [`PageIndex`], so every operation is a couple of
/// array indexes — no hashing, no tree rebalancing, no per-node
/// allocation after warm-up. This replaces the stamp-ordered
/// `BTreeMap<u64, Ppn>` lists in `hopp_kernel::lru`, which paid
/// O(log n) per touch and allocated a tree node per insert.
///
/// Recency semantics match the stamp lists exactly: [`Lru::insert_mru`]
/// places (or moves) a key at the most-recent end, [`Lru::pop_lru`]
/// removes from the least-recent end, so eviction order is identical.
///
/// # Example
///
/// ```
/// use hopp_ds::Lru;
/// use hopp_types::Ppn;
///
/// let mut lru: Lru<Ppn> = Lru::new();
/// lru.insert_mru(Ppn::new(1));
/// lru.insert_mru(Ppn::new(2));
/// lru.touch(Ppn::new(1)); // 2 is now the oldest
/// assert_eq!(lru.pop_lru(), Some(Ppn::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct Lru<K> {
    nodes: Vec<Node<K>>,
    /// `index[key.page_index()]` → node, or `NIL`.
    index: Vec<u32>,
    /// Most recently used.
    head: u32,
    /// Least recently used.
    tail: u32,
    /// Free-list head into `nodes`.
    free: u32,
    len: usize,
}

impl<K: PageIndex> Default for Lru<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PageIndex> Lru<K> {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        Lru {
            nodes: Vec::new(),
            index: Vec::new(),
            head: NIL,
            tail: NIL,
            free: NIL,
            len: 0,
        }
    }

    /// Number of tracked keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `key` is tracked.
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.slot(key) != NIL
    }

    /// The least-recently-used key, without removing it.
    #[must_use]
    pub fn lru(&self) -> Option<K> {
        (self.tail != NIL).then(|| self.nodes[self.tail as usize].key)
    }

    /// The most-recently-used key.
    #[must_use]
    pub fn mru(&self) -> Option<K> {
        (self.head != NIL).then(|| self.nodes[self.head as usize].key)
    }

    fn slot(&self, key: K) -> u32 {
        self.index.get(key.page_index()).copied().unwrap_or(NIL)
    }

    /// Inserts `key` at the most-recent end; if already tracked, moves
    /// it there. Returns `true` when the key was newly inserted.
    pub fn insert_mru(&mut self, key: K) -> bool {
        let existing = self.slot(key);
        if existing != NIL {
            self.detach(existing);
            self.attach_head(existing);
            return false;
        }
        let idx = if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        let ki = key.page_index();
        if ki >= self.index.len() {
            self.index.resize(ki + 1, NIL);
        }
        self.index[ki] = idx;
        self.attach_head(idx);
        self.len += 1;
        true
    }

    /// Moves `key` to the most-recent end. Returns `false` (and does
    /// nothing) if it is not tracked.
    pub fn touch(&mut self, key: K) -> bool {
        let idx = self.slot(key);
        if idx == NIL {
            return false;
        }
        self.detach(idx);
        self.attach_head(idx);
        true
    }

    /// Stops tracking `key`. Returns whether it was tracked.
    pub fn remove(&mut self, key: K) -> bool {
        let idx = self.slot(key);
        if idx == NIL {
            return false;
        }
        self.detach(idx);
        self.release(idx, key);
        true
    }

    /// Removes and returns the least-recently-used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        let idx = self.tail;
        if idx == NIL {
            return None;
        }
        let key = self.nodes[idx as usize].key;
        self.detach(idx);
        self.release(idx, key);
        Some(key)
    }

    /// Forgets everything, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.index.fill(NIL);
        self.head = NIL;
        self.tail = NIL;
        self.free = NIL;
        self.len = 0;
    }

    /// Iterates keys from least- to most-recently used (the order the
    /// stamp-map `values()` iteration produced).
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        let mut cursor = self.tail;
        core::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let node = &self.nodes[cursor as usize];
            cursor = node.prev;
            Some(node.key)
        })
    }

    fn attach_head(&mut self, idx: u32) {
        let old = self.head;
        {
            let n = &mut self.nodes[idx as usize];
            n.prev = NIL;
            n.next = old;
        }
        if old != NIL {
            self.nodes[old as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Puts a detached node on the free list and clears the key index.
    fn release(&mut self, idx: u32, key: K) {
        self.nodes[idx as usize].next = self.free;
        self.free = idx;
        self.index[key.page_index()] = NIL;
        self.len -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_oldest_first() {
        let mut lru: Lru<usize> = Lru::new();
        for k in [1, 2, 3] {
            lru.insert_mru(k);
        }
        assert_eq!(lru.pop_lru(), Some(1));
        assert_eq!(lru.pop_lru(), Some(2));
        assert_eq!(lru.pop_lru(), Some(3));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn touch_promotes() {
        let mut lru: Lru<usize> = Lru::new();
        for k in [1, 2, 3] {
            lru.insert_mru(k);
        }
        assert!(lru.touch(1));
        assert_eq!(lru.lru(), Some(2));
        assert_eq!(lru.mru(), Some(1));
        assert!(!lru.touch(99));
    }

    #[test]
    fn reinsert_moves_to_mru() {
        let mut lru: Lru<usize> = Lru::new();
        lru.insert_mru(1);
        lru.insert_mru(2);
        assert!(!lru.insert_mru(1), "reinsert is a move, not a new entry");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.pop_lru(), Some(2));
    }

    #[test]
    fn remove_and_slab_reuse() {
        let mut lru: Lru<usize> = Lru::new();
        for k in 0..100 {
            lru.insert_mru(k);
        }
        let cap = lru.nodes.capacity();
        for k in 0..100 {
            assert!(lru.remove(k));
            assert!(!lru.remove(k));
            lru.insert_mru(k);
        }
        assert_eq!(lru.len(), 100);
        assert_eq!(lru.nodes.capacity(), cap, "churn must reuse slab nodes");
    }

    #[test]
    fn iter_is_lru_to_mru() {
        let mut lru: Lru<usize> = Lru::new();
        for k in [4, 7, 2] {
            lru.insert_mru(k);
        }
        lru.touch(7);
        assert_eq!(lru.iter().collect::<Vec<_>>(), [4, 2, 7]);
    }

    #[test]
    fn clear_resets() {
        let mut lru: Lru<usize> = Lru::new();
        lru.insert_mru(5);
        lru.clear();
        assert!(lru.is_empty());
        assert!(!lru.contains(5));
        lru.insert_mru(5);
        assert_eq!(lru.pop_lru(), Some(5));
    }
}
