//! Property tests (ISSUE 4, satellite 5): `DetMap`, `PageMap` and
//! `Lru` are exercised with seeded random operation sequences against
//! `BTreeMap`-based reference models — the exact structures they
//! replaced on the hot paths.

use std::collections::BTreeMap;

use hopp_ds::{DetMap, Lru, PageMap};
use hopp_types::rng::SplitMix64;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xDEAD_BEEF, u64::MAX / 7];
const OPS: usize = 20_000;

/// Keys are drawn from a small space so that insert/remove/get collide
/// often (the interesting cases for probing and order bookkeeping).
const KEY_SPACE: u64 = 512;

#[test]
fn detmap_matches_btreemap_model() {
    for seed in SEEDS {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut map: DetMap<u64, u64> = DetMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        // Insertion order of the currently-live keys, maintained the
        // way an order-preserving map defines it: overwrite keeps the
        // original position, remove deletes it.
        let mut order: Vec<u64> = Vec::new();
        for i in 0..OPS {
            let k = rng.gen_range(0..KEY_SPACE);
            match rng.gen_range(0..10) {
                0..=4 => {
                    let v = i as u64;
                    assert_eq!(map.insert(k, v), model.insert(k, v), "seed {seed} op {i}");
                    if !order.contains(&k) {
                        order.push(k);
                    }
                }
                5..=6 => {
                    assert_eq!(map.remove(&k), model.remove(&k), "seed {seed} op {i}");
                    order.retain(|&o| o != k);
                }
                7 => {
                    *map.get_or_insert_with(k, || 777) += 1;
                    *model.entry(k).or_insert(777) += 1;
                    if !order.contains(&k) {
                        order.push(k);
                    }
                }
                _ => {
                    assert_eq!(map.get(&k), model.get(&k), "seed {seed} op {i}");
                    assert_eq!(map.contains_key(&k), model.contains_key(&k));
                }
            }
            assert_eq!(map.len(), model.len(), "seed {seed} op {i}");
        }
        // Full-content equivalence…
        for (&k, v) in &model {
            assert_eq!(map.get(&k), Some(v), "seed {seed} key {k}");
        }
        // …and insertion-order iteration.
        let got: Vec<u64> = map.keys().collect();
        assert_eq!(got, order, "seed {seed}: iteration must be insertion order");
    }
}

#[test]
fn detmap_iteration_values_match_model() {
    let mut rng = SplitMix64::seed_from_u64(42);
    let mut map: DetMap<(u16, u64), u64> = DetMap::new();
    let mut model: BTreeMap<(u16, u64), u64> = BTreeMap::new();
    for i in 0..OPS {
        let k = (rng.gen_range(0..4) as u16, rng.gen_range(0..KEY_SPACE));
        if rng.gen_bool(0.7) {
            map.insert(k, i as u64);
            model.insert(k, i as u64);
        } else {
            map.remove(&k);
            model.remove(&k);
        }
    }
    let mut got: Vec<((u16, u64), u64)> = map.iter().map(|(k, &v)| (k, v)).collect();
    got.sort_unstable();
    let want: Vec<((u16, u64), u64)> = model.into_iter().collect();
    assert_eq!(got, want);
}

#[test]
fn pagemap_matches_btreemap_model() {
    for seed in SEEDS {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut map: PageMap<usize, u64> = PageMap::new();
        let mut model: BTreeMap<usize, u64> = BTreeMap::new();
        for i in 0..OPS {
            // Mix dense low keys with heap-base-like high keys.
            let k = if rng.gen_bool(0.5) {
                rng.gen_range(0..KEY_SPACE) as usize
            } else {
                (1 << 20) + rng.gen_range(0..KEY_SPACE) as usize
            };
            match rng.gen_range(0..10) {
                0..=4 => {
                    let v = i as u64;
                    assert_eq!(map.insert(k, v), model.insert(k, v), "seed {seed} op {i}");
                }
                5..=6 => {
                    assert_eq!(map.remove(k), model.remove(&k), "seed {seed} op {i}");
                }
                _ => {
                    assert_eq!(map.get(k), model.get(&k), "seed {seed} op {i}");
                }
            }
            assert_eq!(map.len(), model.len());
        }
        // PageMap iterates in key order — exactly BTreeMap's order.
        let got: Vec<(usize, u64)> = map.iter().map(|(k, &v)| (k, v)).collect();
        let want: Vec<(usize, u64)> = model.into_iter().collect();
        assert_eq!(got, want, "seed {seed}: iteration must be key-ordered");
    }
}

/// The stamp-ordered reference model: the exact structure
/// `hopp_kernel::lru` used before the migration.
#[derive(Default)]
struct StampModel {
    stamps: BTreeMap<usize, u64>,
    by_stamp: BTreeMap<u64, usize>,
    counter: u64,
}

impl StampModel {
    fn insert_mru(&mut self, k: usize) {
        self.remove(&k);
        self.counter += 1;
        self.stamps.insert(k, self.counter);
        self.by_stamp.insert(self.counter, k);
    }
    fn touch(&mut self, k: usize) -> bool {
        if self.stamps.contains_key(&k) {
            self.insert_mru(k);
            true
        } else {
            false
        }
    }
    fn remove(&mut self, k: &usize) -> bool {
        match self.stamps.remove(k) {
            Some(stamp) => {
                self.by_stamp.remove(&stamp);
                true
            }
            None => false,
        }
    }
    fn pop_lru(&mut self) -> Option<usize> {
        let (&stamp, &k) = self.by_stamp.iter().next()?;
        self.by_stamp.remove(&stamp);
        self.stamps.remove(&k);
        Some(k)
    }
    fn iter_lru_to_mru(&self) -> Vec<usize> {
        self.by_stamp.values().copied().collect()
    }
}

#[test]
fn lru_matches_stamp_model() {
    for seed in SEEDS {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut lru: Lru<usize> = Lru::new();
        let mut model = StampModel::default();
        for i in 0..OPS {
            let k = rng.gen_range(0..KEY_SPACE) as usize;
            match rng.gen_range(0..10) {
                0..=3 => {
                    lru.insert_mru(k);
                    model.insert_mru(k);
                }
                4..=5 => {
                    assert_eq!(lru.touch(k), model.touch(k), "seed {seed} op {i}");
                }
                6..=7 => {
                    assert_eq!(lru.remove(k), model.remove(&k), "seed {seed} op {i}");
                }
                _ => {
                    assert_eq!(lru.pop_lru(), model.pop_lru(), "seed {seed} op {i}");
                }
            }
            assert_eq!(lru.len(), model.stamps.len(), "seed {seed} op {i}");
            assert_eq!(lru.lru(), model.by_stamp.values().next().copied());
        }
        assert_eq!(
            lru.iter().collect::<Vec<_>>(),
            model.iter_lru_to_mru(),
            "seed {seed}: recency order must match the stamp lists"
        );
    }
}

#[test]
fn lru_drain_matches_model_order() {
    let mut rng = SplitMix64::seed_from_u64(99);
    let mut lru: Lru<usize> = Lru::new();
    let mut model = StampModel::default();
    for _ in 0..OPS {
        let k = rng.gen_range(0..KEY_SPACE) as usize;
        lru.insert_mru(k);
        model.insert_mru(k);
        if rng.gen_bool(0.2) {
            let j = rng.gen_range(0..KEY_SPACE) as usize;
            lru.touch(j);
            model.touch(j);
        }
    }
    loop {
        let (a, b) = (lru.pop_lru(), model.pop_lru());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}
