//! The (remote) swap device: slot allocation and the slot → page map.
//!
//! Swap slots are handed out in allocation order, so pages evicted
//! together occupy adjacent slots. Fastswap's readahead exploits exactly
//! this adjacency — it prefetches the pages stored in neighbouring
//! slots — which is why the device keeps a reverse map from slot to the
//! page stored there.

use hopp_ds::DetMap;
use hopp_obs::{Event, NopRecorder, Recorder};
use hopp_types::{Error, Nanos, Pid, Result, SwapSlot, Vpn};

use crate::prefetcher::SlotView;

/// Swap-slot allocator and directory.
#[derive(Clone, Debug, Default)]
pub struct SwapDevice {
    next: u64,
    free: Vec<SwapSlot>,
    contents: DetMap<SwapSlot, (Pid, Vpn)>,
    /// Remote node capacity in pages (`None` = unbounded). The paper's
    /// memory node offers 6 x 8 GB of DRAM; exhausting it is an
    /// operator error this surfaces.
    capacity: Option<usize>,
}

impl SwapDevice {
    /// Creates a device with unbounded capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a device backed by a remote node holding at most
    /// `capacity_pages` pages.
    pub fn with_capacity(capacity_pages: usize) -> Self {
        SwapDevice {
            capacity: Some(capacity_pages),
            ..Self::default()
        }
    }

    /// Allocates a slot for a page being swapped out. Freed slots are
    /// reused (LIFO) before fresh ones are minted, as in the kernel's
    /// swap map scan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RemoteMemoryExhausted`] when the remote node is
    /// at capacity.
    pub fn alloc(&mut self, pid: Pid, vpn: Vpn) -> Result<SwapSlot> {
        self.alloc_rec(pid, vpn, Nanos::ZERO, &mut NopRecorder)
    }

    /// [`SwapDevice::alloc`], recording an [`Event::SwapOut`] with the
    /// slot the page landed in.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RemoteMemoryExhausted`] when the remote node is
    /// at capacity.
    pub fn alloc_rec(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        now: Nanos,
        rec: &mut dyn Recorder,
    ) -> Result<SwapSlot> {
        let _prof = hopp_prof::span("kernel/swap_alloc");
        if let Some(cap) = self.capacity {
            if self.contents.len() >= cap {
                return Err(Error::RemoteMemoryExhausted {
                    capacity_pages: cap,
                });
            }
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            let s = SwapSlot::new(self.next);
            self.next += 1;
            s
        });
        self.contents.insert(slot, (pid, vpn));
        if rec.is_enabled() {
            rec.record(now, Event::SwapOut { pid, vpn, slot });
        }
        Ok(slot)
    }

    /// Releases a slot once its page has been read back in.
    ///
    /// Unknown slots are ignored (the page may have been freed twice by
    /// racing paths in a real kernel; here it is simply idempotent).
    pub fn free(&mut self, slot: SwapSlot) {
        if self.contents.remove(&slot).is_some() {
            self.free.push(slot);
        }
    }

    /// The number of pages currently swapped out.
    pub fn used_slots(&self) -> usize {
        self.contents.len()
    }

    /// Highest slot index ever allocated (device footprint).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

impl SlotView for SwapDevice {
    fn page_at(&self, slot: SwapSlot) -> Option<(Pid, Vpn)> {
        self.contents.get(&slot).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_sequential() {
        let mut dev = SwapDevice::new();
        let a = dev.alloc(Pid::new(1), Vpn::new(10)).unwrap();
        let b = dev.alloc(Pid::new(1), Vpn::new(11)).unwrap();
        assert_eq!(a, SwapSlot::new(0));
        assert_eq!(b, SwapSlot::new(1));
        assert_eq!(dev.page_at(a), Some((Pid::new(1), Vpn::new(10))));
        assert_eq!(dev.used_slots(), 2);
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut dev = SwapDevice::new();
        let a = dev.alloc(Pid::new(1), Vpn::new(10)).unwrap();
        dev.free(a);
        assert_eq!(dev.page_at(a), None);
        let b = dev.alloc(Pid::new(2), Vpn::new(20)).unwrap();
        assert_eq!(b, a);
        assert_eq!(dev.page_at(b), Some((Pid::new(2), Vpn::new(20))));
        assert_eq!(dev.high_water(), 1);
    }

    #[test]
    fn double_free_is_idempotent() {
        let mut dev = SwapDevice::new();
        let a = dev.alloc(Pid::new(1), Vpn::new(1)).unwrap();
        dev.free(a);
        dev.free(a);
        let b = dev.alloc(Pid::new(1), Vpn::new(2)).unwrap();
        let c = dev.alloc(Pid::new(1), Vpn::new(3)).unwrap();
        assert_ne!(b, c, "a double free must not hand the slot out twice");
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut dev = SwapDevice::with_capacity(2);
        let a = dev.alloc(Pid::new(1), Vpn::new(1)).unwrap();
        dev.alloc(Pid::new(1), Vpn::new(2)).unwrap();
        assert!(matches!(
            dev.alloc(Pid::new(1), Vpn::new(3)),
            Err(hopp_types::Error::RemoteMemoryExhausted { capacity_pages: 2 })
        ));
        // Freeing makes room again.
        dev.free(a);
        assert!(dev.alloc(Pid::new(1), Vpn::new(3)).is_ok());
    }

    #[test]
    fn eviction_order_shows_in_adjacency() {
        let mut dev = SwapDevice::new();
        // Evict a stream of pages in order: their slots are adjacent.
        let slots: Vec<SwapSlot> = (0..5)
            .map(|i| dev.alloc(Pid::new(1), Vpn::new(100 + i)).unwrap())
            .collect();
        for w in slots.windows(2) {
            assert_eq!(w[1].raw(), w[0].raw() + 1);
        }
        // Readahead around slot 2 finds the stream's neighbours.
        assert_eq!(
            dev.page_at(slots[2].offset(1).unwrap()),
            Some((Pid::new(1), Vpn::new(103)))
        );
    }
}
