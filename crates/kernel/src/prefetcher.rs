//! The kernel's readahead interface.
//!
//! Kernel-based systems can only observe the application through page
//! faults, so their prefetchers are driven from the fault path: on every
//! swap fault the kernel hands the prefetcher a [`FaultInfo`] and the
//! prefetcher answers with pages to pull into the swapcache (or, for
//! Depth-N, to map eagerly). The baselines in `hopp-baselines` implement
//! this trait.
//!
//! HoPP itself deliberately does *not* implement it: its training
//! framework is fed by the hot-page trace and issues prefetches on a
//! separate data path (see `hopp-core`), independent of fault timing —
//! that separation is the paper's main architectural claim.

use hopp_obs::{Event, Recorder};
use hopp_types::{Nanos, Pid, SwapSlot, Vpn};

/// What the kernel knows at fault time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultInfo {
    /// The faulting process.
    pub pid: Pid,
    /// The faulting page.
    pub vpn: Vpn,
    /// Fault time.
    pub now: Nanos,
    /// True if the page was found in the swapcache (a prefetch-hit);
    /// false for a major fault that goes to the network.
    pub hit_swapcache: bool,
    /// The swap slot the page lives in (None on a swapcache hit whose
    /// slot was already freed, or a first touch).
    pub slot: Option<SwapSlot>,
}

/// Read access to the swap device's slot directory, for prefetchers
/// that work in slot space (Fastswap).
pub trait SlotView {
    /// The page stored at `slot`, if any.
    fn page_at(&self, slot: SwapSlot) -> Option<(Pid, Vpn)>;
}

/// A single page a prefetcher wants brought in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetchRequest {
    /// Owning process of the target page.
    pub pid: Pid,
    /// The page to fetch.
    pub vpn: Vpn,
    /// `false`: fill the swapcache (a later fault becomes a
    /// prefetch-hit). `true`: eagerly inject the PTE on arrival
    /// (Depth-N semantics, §II-C) so a later access is a plain DRAM hit.
    pub inject: bool,
}

/// A fault-driven prefetch policy.
///
/// Implementations must be deterministic; any internal state (stride
/// windows, histories) is updated by `on_fault` only.
pub trait Prefetcher {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &str;

    /// Called on every swap fault (major *and* prefetch-hit — Linux
    /// readahead runs in both swap-in paths). Pushes the pages to
    /// prefetch into `out`; the kernel dedupes against pages already
    /// local or in flight.
    fn on_fault(&mut self, fault: &FaultInfo, slots: &dyn SlotView, out: &mut Vec<PrefetchRequest>);
}

/// Records one [`Event::BaselinePrefetch`] per request a fault-path
/// prefetcher produced. A free function (not part of the [`Prefetcher`]
/// trait) so baseline implementations stay observation-agnostic.
pub fn record_baseline_requests(at: Nanos, requests: &[PrefetchRequest], rec: &mut dyn Recorder) {
    if !rec.is_enabled() {
        return;
    }
    for r in requests {
        rec.record(
            at,
            Event::BaselinePrefetch {
                pid: r.pid,
                vpn: r.vpn,
                inject: r.inject,
            },
        );
    }
}

/// The null policy: never prefetches. The "Fastswap without
/// prefetching" baseline of Fig 17 and the control for every ablation.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoPrefetch;

impl Prefetcher for NoPrefetch {
    fn name(&self) -> &str {
        "none"
    }

    fn on_fault(&mut self, _: &FaultInfo, _: &dyn SlotView, _: &mut Vec<PrefetchRequest>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EmptySlots;
    impl SlotView for EmptySlots {
        fn page_at(&self, _: SwapSlot) -> Option<(Pid, Vpn)> {
            None
        }
    }

    #[test]
    fn no_prefetch_emits_nothing() {
        let mut p = NoPrefetch;
        let mut out = Vec::new();
        p.on_fault(
            &FaultInfo {
                pid: Pid::new(1),
                vpn: Vpn::new(1),
                now: Nanos::ZERO,
                hit_swapcache: false,
                slot: None,
            },
            &EmptySlots,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn prefetcher_is_object_safe() {
        let _boxed: Box<dyn Prefetcher> = Box::new(NoPrefetch);
    }
}
