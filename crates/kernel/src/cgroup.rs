//! Per-application memory accounting (cgroup v2 `memory.max` model).
//!
//! The evaluation limits each workload's local memory to a fraction of
//! its footprint via cgroups, and co-running applications are isolated
//! from each other the same way (Fig 15). HoPP charges its prefetched
//! pages to the owning application's cgroup — Fastswap and Leap do not
//! account for prefetched swapcache pages (§I), which this model also
//! reproduces: only *charged* pages count against the limit.

use hopp_types::{Error, Result};

/// One application's memory controller group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cgroup {
    limit_pages: usize,
    charged_pages: usize,
}

impl Cgroup {
    /// Creates a cgroup with the given page limit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero limit.
    pub fn with_limit(limit_pages: usize) -> Result<Self> {
        if limit_pages == 0 {
            return Err(Error::InvalidConfig {
                what: "cgroup limit",
                constraint: "at least one page",
            });
        }
        Ok(Cgroup {
            limit_pages,
            charged_pages: 0,
        })
    }

    /// The configured limit.
    pub fn limit_pages(&self) -> usize {
        self.limit_pages
    }

    /// Pages currently charged.
    pub fn charged_pages(&self) -> usize {
        self.charged_pages
    }

    /// Charges one page. Returns `true` if the group is now over its
    /// limit (the caller must reclaim until [`Cgroup::over_limit`]
    /// clears).
    pub fn charge(&mut self) -> bool {
        self.charged_pages += 1;
        self.over_limit()
    }

    /// Releases one page.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on uncharging below zero — that is an
    /// accounting bug in the caller.
    pub fn uncharge(&mut self) {
        debug_assert!(self.charged_pages > 0, "uncharge below zero");
        self.charged_pages = self.charged_pages.saturating_sub(1);
    }

    /// True while usage exceeds the limit.
    pub fn over_limit(&self) -> bool {
        self.charged_pages > self.limit_pages
    }

    /// How many pages must be uncharged to get back under the limit.
    pub fn excess_pages(&self) -> usize {
        self.charged_pages.saturating_sub(self.limit_pages)
    }

    /// Pages that can still be charged before exceeding the limit.
    pub fn headroom(&self) -> usize {
        self.limit_pages.saturating_sub(self.charged_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_limit_is_rejected() {
        assert!(Cgroup::with_limit(0).is_err());
    }

    #[test]
    fn charge_until_over_limit() {
        let mut cg = Cgroup::with_limit(2).unwrap();
        assert!(!cg.charge());
        assert!(!cg.charge());
        assert_eq!(cg.headroom(), 0);
        assert!(cg.charge(), "third page exceeds the limit");
        assert!(cg.over_limit());
        assert_eq!(cg.excess_pages(), 1);
        cg.uncharge();
        assert!(!cg.over_limit());
        assert_eq!(cg.charged_pages(), 2);
    }

    #[test]
    fn headroom_tracks_usage() {
        let mut cg = Cgroup::with_limit(10).unwrap();
        assert_eq!(cg.headroom(), 10);
        cg.charge();
        assert_eq!(cg.headroom(), 9);
    }
}
