#![warn(missing_docs)]
//! Simulated kernel virtual-memory subsystem.
//!
//! Kernel-based disaggregated-memory systems (Fastswap, Leap, and HoPP's
//! host system) live inside the Linux swap path. This crate reproduces
//! the pieces of that path the paper's results depend on:
//!
//! * [`latency::FaultLatencyModel`] — the measured per-step costs of a
//!   swap fault (§II-A): context switch 0.3 µs, page-table walk 0.6 µs,
//!   swapcache query 0.4 µs, PTE establish 1 µs, plus reclaim cost and
//!   the DRAM-hit cost a prefetch-hit is compared against.
//! * [`swapcache::SwapCache`] — pages fetched (or prefetched) from
//!   remote that have a frame but no PTE yet; hitting one is a *minor*
//!   fault costing 2.3 µs instead of a full remote round trip.
//! * [`lru::LruLists`] — active/inactive page lists driving reclaim.
//!   Early-injected pages land on the active list, which is what makes
//!   inaccurate Depth-N prefetches expensive to get rid of (§II-C).
//! * [`swap::SwapDevice`] — swap-slot allocation; Fastswap's readahead
//!   prefetches pages *adjacent in slot order*, so slot assignment
//!   (i.e. eviction order) shapes its behaviour.
//! * [`cgroup::Cgroup`] — per-application local-memory limits; the
//!   evaluation caps each workload at 50 % / 25 % of its footprint.
//! * [`prefetcher`] — the kernel's readahead interface, implemented by
//!   the baselines in `hopp-baselines`. HoPP itself does *not* use this
//!   interface: it runs on the hot-page trace as a separate data path.

pub mod cgroup;
pub mod latency;
pub mod lru;
pub mod prefetcher;
pub mod swap;
pub mod swapcache;

pub use cgroup::Cgroup;
pub use latency::FaultLatencyModel;
pub use lru::{LruLists, LruTier};
pub use prefetcher::{FaultInfo, NoPrefetch, PrefetchRequest, Prefetcher, SlotView};
pub use swap::SwapDevice;
pub use swapcache::{SwapCache, SwapCacheStats};
