//! The swap-path latency model (§II-A of the paper).
//!
//! The paper breaks a kernel-based remote fault into six steps and
//! measures each on its testbed. This module encodes those constants so
//! every simulated fault charges the same costs the paper reasons
//! about. Network time is *not* included here — it comes from the
//! shared `hopp_net::RdmaEngine` so congestion is modelled.

use hopp_types::Nanos;

/// Per-step swap-path costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultLatencyModel {
    /// Step 1: page-fault context switch (0.3 µs).
    pub context_switch: Nanos,
    /// Step 2: kernel walks the page table to the PTE (0.6 µs).
    pub pt_walk: Nanos,
    /// Step 3: swapcache query (+ allocation on miss) (0.4 µs).
    pub swapcache_query: Nanos,
    /// Step 5: amortized reclaim cost per page (2–5 µs; 3 µs default).
    /// Since Linux v5.8 reclaim happens ahead of the fault, so this is
    /// charged to background work, not the fault's critical path.
    pub reclaim_per_page: Nanos,
    /// Step 6: establish the PTE and return to user space (1 µs).
    pub pte_establish: Nanos,
    /// A plain LLC-miss DRAM access (0.1 µs) — what a prefetch-hit is
    /// at least 23× more expensive than (§II-C).
    pub dram_miss: Nanos,
}

impl Default for FaultLatencyModel {
    fn default() -> Self {
        FaultLatencyModel {
            context_switch: Nanos::from_nanos(300),
            pt_walk: Nanos::from_nanos(600),
            swapcache_query: Nanos::from_nanos(400),
            reclaim_per_page: Nanos::from_nanos(3_000),
            pte_establish: Nanos::from_nanos(1_000),
            dram_miss: Nanos::from_nanos(100),
        }
    }
}

impl FaultLatencyModel {
    /// CPU-side cost of a fault that hits the swapcache (*prefetch-hit*):
    /// steps 1 + 2 + 3 + 6 = 2.3 µs with the default constants.
    pub fn prefetch_hit(&self) -> Nanos {
        self.context_switch + self.pt_walk + self.swapcache_query + self.pte_establish
    }

    /// CPU-side cost of a major fault, *excluding* the network wait:
    /// the same four steps (reclaim is done in advance since v5.8).
    /// Total critical-path latency is this plus the RDMA read.
    pub fn major_fault_cpu(&self) -> Nanos {
        self.prefetch_hit()
    }

    /// Worst-case critical-path latency for a major fault given a
    /// network read time, including synchronous reclaim of one page —
    /// the 8.3–11.3 µs figure from §II-A.
    pub fn major_fault_worst_case(&self, network: Nanos) -> Nanos {
        self.major_fault_cpu() + network + self.reclaim_per_page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_hit_is_2_3_us() {
        let m = FaultLatencyModel::default();
        assert_eq!(m.prefetch_hit(), Nanos::from_nanos(2_300));
    }

    #[test]
    fn major_fault_matches_paper_range() {
        let m = FaultLatencyModel::default();
        // With a 4 µs network read and 2–5 µs reclaim, the paper quotes
        // 8.3–11.3 µs worst case.
        let lo = FaultLatencyModel {
            reclaim_per_page: Nanos::from_nanos(2_000),
            ..m
        };
        let hi = FaultLatencyModel {
            reclaim_per_page: Nanos::from_nanos(5_000),
            ..m
        };
        let net = Nanos::from_micros(4);
        assert_eq!(lo.major_fault_worst_case(net), Nanos::from_nanos(8_300));
        assert_eq!(hi.major_fault_worst_case(net), Nanos::from_nanos(11_300));
    }

    #[test]
    fn prefetch_hit_is_at_least_23x_dram_miss() {
        let m = FaultLatencyModel::default();
        assert!(m.prefetch_hit().as_nanos() >= 23 * m.dram_miss.as_nanos());
    }
}
