//! Active/inactive LRU page lists, the kernel's reclaim order.
//!
//! Reclaim evicts from the tail of the *inactive* list first; pages on
//! the *active* list survive much longer. This two-tier structure is
//! load-bearing for the paper's Depth-N analysis (§II-C): a page whose
//! PTE was injected eagerly is placed on the active list ("the kernel
//! put it at the very beginning of the LRU-based page list"), so a
//! *wrong* eager prefetch occupies precious local memory for a long
//! time, while an unconsumed swapcache page sits on the inactive list
//! and is cheap to drop.

use hopp_ds::{Lru, PageMap};
use hopp_types::Ppn;

/// Which list a page lives on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LruTier {
    /// Recently used (or eagerly injected) pages; reclaimed last.
    Active,
    /// Not-yet-proven pages (fresh swapcache fills); reclaimed first.
    Inactive,
}

/// The two LRU lists.
///
/// Implemented as two intrusive [`hopp_ds::Lru`] recency lists plus a
/// per-frame tier table: O(1) touch/evict with exact LRU order, which
/// is close enough to the kernel's clock-ish approximation for
/// simulation purposes. (Before the `hopp-ds` migration these were
/// three stamp-ordered `BTreeMap`s paying O(log n) per operation.)
///
/// # Example
///
/// ```
/// use hopp_kernel::lru::{LruLists, LruTier};
/// use hopp_types::Ppn;
///
/// let mut lru = LruLists::new();
/// lru.insert(Ppn::new(1), LruTier::Inactive);
/// lru.insert(Ppn::new(2), LruTier::Active);
/// // Inactive pages are evicted before active ones.
/// assert_eq!(lru.evict_candidate(), Some(Ppn::new(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LruLists {
    active: Lru<Ppn>,
    inactive: Lru<Ppn>,
    tier: PageMap<Ppn, LruTier>,
}

impl LruLists {
    /// Creates empty lists.
    pub fn new() -> Self {
        Self::default()
    }

    fn list_mut(&mut self, tier: LruTier) -> &mut Lru<Ppn> {
        match tier {
            LruTier::Active => &mut self.active,
            LruTier::Inactive => &mut self.inactive,
        }
    }

    /// Adds a page to the head (most-recent end) of `tier`.
    ///
    /// If the page is already tracked it is moved to the head of `tier`
    /// instead.
    pub fn insert(&mut self, ppn: Ppn, tier: LruTier) {
        self.remove(ppn);
        self.list_mut(tier).insert_mru(ppn);
        self.tier.insert(ppn, tier);
    }

    /// Records a use of `ppn`, promoting it to the head of the active
    /// list (a second touch activates an inactive page, as in Linux).
    /// No-op for untracked pages.
    pub fn touch(&mut self, ppn: Ppn) {
        if self.tier.contains_key(ppn) {
            self.insert(ppn, LruTier::Active);
        }
    }

    /// Stops tracking `ppn`. Returns whether it was tracked.
    pub fn remove(&mut self, ppn: Ppn) -> bool {
        match self.tier.remove(ppn) {
            Some(tier) => {
                self.list_mut(tier).remove(ppn);
                true
            }
            None => false,
        }
    }

    /// The page reclaim would evict next: the oldest inactive page, or
    /// the oldest active page if the inactive list is empty. The page is
    /// *not* removed.
    pub fn evict_candidate(&self) -> Option<Ppn> {
        self.inactive.lru().or_else(|| self.active.lru())
    }

    /// Removes and returns the eviction candidate.
    pub fn pop_evict(&mut self) -> Option<Ppn> {
        self.pop_evict_from().map(|(ppn, _)| ppn)
    }

    /// Removes and returns the eviction candidate along with the list it
    /// came off — [`LruTier::Active`] means the inactive list was empty
    /// and reclaim is under real LRU pressure (the [`Event::Reclaim`]
    /// `active` flag).
    ///
    /// [`Event::Reclaim`]: hopp_obs::Event::Reclaim
    pub fn pop_evict_from(&mut self) -> Option<(Ppn, LruTier)> {
        if let Some(ppn) = self.inactive.pop_lru() {
            self.tier.remove(ppn);
            return Some((ppn, LruTier::Inactive));
        }
        let ppn = self.active.pop_lru()?;
        self.tier.remove(ppn);
        Some((ppn, LruTier::Active))
    }

    /// The tier a page currently lives on.
    pub fn tier_of(&self, ppn: Ppn) -> Option<LruTier> {
        self.tier.get(ppn).copied()
    }

    /// Total tracked pages.
    pub fn len(&self) -> usize {
        self.tier.len()
    }

    /// True when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.tier.is_empty()
    }

    /// Pages on the inactive list.
    pub fn inactive_len(&self) -> usize {
        self.inactive.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_prefers_inactive_oldest_first() {
        let mut lru = LruLists::new();
        lru.insert(Ppn::new(1), LruTier::Inactive);
        lru.insert(Ppn::new(2), LruTier::Inactive);
        lru.insert(Ppn::new(3), LruTier::Active);
        assert_eq!(lru.pop_evict(), Some(Ppn::new(1)));
        assert_eq!(lru.pop_evict(), Some(Ppn::new(2)));
        assert_eq!(lru.pop_evict(), Some(Ppn::new(3)));
        assert_eq!(lru.pop_evict(), None);
    }

    #[test]
    fn touch_promotes_to_active() {
        let mut lru = LruLists::new();
        lru.insert(Ppn::new(1), LruTier::Inactive);
        lru.insert(Ppn::new(2), LruTier::Inactive);
        lru.touch(Ppn::new(1));
        assert_eq!(lru.tier_of(Ppn::new(1)), Some(LruTier::Active));
        // 2 is now the only inactive page, evicted first even though it
        // was inserted after 1.
        assert_eq!(lru.evict_candidate(), Some(Ppn::new(2)));
    }

    #[test]
    fn touch_of_untracked_page_is_noop() {
        let mut lru = LruLists::new();
        lru.touch(Ppn::new(9));
        assert!(lru.is_empty());
    }

    #[test]
    fn active_list_is_lru_ordered_too() {
        let mut lru = LruLists::new();
        lru.insert(Ppn::new(1), LruTier::Active);
        lru.insert(Ppn::new(2), LruTier::Active);
        lru.touch(Ppn::new(1)); // 2 becomes the LRU active page
        assert_eq!(lru.pop_evict(), Some(Ppn::new(2)));
    }

    #[test]
    fn reinsert_moves_between_tiers() {
        let mut lru = LruLists::new();
        lru.insert(Ppn::new(1), LruTier::Active);
        lru.insert(Ppn::new(1), LruTier::Inactive);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.tier_of(Ppn::new(1)), Some(LruTier::Inactive));
        assert_eq!(lru.inactive_len(), 1);
    }

    #[test]
    fn pop_evict_from_reports_the_source_list() {
        let mut lru = LruLists::new();
        lru.insert(Ppn::new(1), LruTier::Inactive);
        lru.insert(Ppn::new(2), LruTier::Active);
        assert_eq!(lru.pop_evict_from(), Some((Ppn::new(1), LruTier::Inactive)));
        assert_eq!(lru.pop_evict_from(), Some((Ppn::new(2), LruTier::Active)));
        assert_eq!(lru.pop_evict_from(), None);
    }

    #[test]
    fn remove_untracks() {
        let mut lru = LruLists::new();
        lru.insert(Ppn::new(1), LruTier::Active);
        assert!(lru.remove(Ppn::new(1)));
        assert!(!lru.remove(Ppn::new(1)));
        assert!(lru.is_empty());
    }
}
