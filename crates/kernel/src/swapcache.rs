//! The swapcache: remote pages that have a local frame but no PTE yet.
//!
//! Baseline prefetchers (Fastswap, Leap) fill the swapcache; when the
//! application later faults on a cached page the fault is *minor* — a
//! prefetch-hit costing 2.3 µs instead of a remote round trip. HoPP
//! bypasses this structure entirely for its own prefetches (early PTE
//! injection turns would-be prefetch-hits into plain DRAM hits), which
//! is one of its headline wins (§II-C).

use hopp_ds::DetMap;
use hopp_types::{Nanos, Pid, Ppn, SwapSlot, Vpn};

/// Why a page entered the swapcache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheFill {
    /// Brought in by the faulting path itself (demand fill, in flight).
    Demand,
    /// Brought in speculatively by a prefetcher.
    Prefetch,
}

/// A swapcache entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheEntry {
    /// The local frame holding the data.
    pub ppn: Ppn,
    /// The swap slot the data came from (freed when the page is mapped).
    pub slot: Option<SwapSlot>,
    /// Demand fill or prefetch.
    pub fill: CacheFill,
    /// When the data finished arriving.
    pub ready_at: Nanos,
}

/// Swapcache activity counters.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct SwapCacheStats {
    /// Entries inserted.
    pub inserts: u64,
    /// Faults that found their page here (prefetch-hits).
    pub hits: u64,
    /// Entries reclaimed before ever being hit (wasted prefetches).
    pub evicted_unused: u64,
}

/// The swapcache proper.
///
/// # Example
///
/// ```
/// use hopp_kernel::swapcache::{CacheFill, SwapCache};
/// use hopp_types::{Nanos, Pid, Ppn, Vpn};
///
/// let mut sc = SwapCache::new();
/// sc.insert(Pid::new(1), Vpn::new(5), Ppn::new(9), None, CacheFill::Prefetch, Nanos::ZERO);
/// assert!(sc.contains(Pid::new(1), Vpn::new(5)));
/// let entry = sc.take(Pid::new(1), Vpn::new(5)).unwrap();
/// assert_eq!(entry.ppn, Ppn::new(9));
/// assert_eq!(sc.stats().hits, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SwapCache {
    entries: DetMap<(Pid, Vpn), CacheEntry>,
    stats: SwapCacheStats,
}

impl SwapCache {
    /// Creates an empty swapcache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a page. Returns the previous entry if one existed (the
    /// caller must free its frame — duplicate fills race in real
    /// kernels; here the newer fill wins).
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        ppn: Ppn,
        slot: Option<SwapSlot>,
        fill: CacheFill,
        ready_at: Nanos,
    ) -> Option<CacheEntry> {
        self.stats.inserts += 1;
        self.entries.insert(
            (pid, vpn),
            CacheEntry {
                ppn,
                slot,
                fill,
                ready_at,
            },
        )
    }

    /// True if the page is cached.
    pub fn contains(&self, pid: Pid, vpn: Vpn) -> bool {
        self.entries.contains_key(&(pid, vpn))
    }

    /// Looks up without consuming (no hit is recorded).
    pub fn peek(&self, pid: Pid, vpn: Vpn) -> Option<&CacheEntry> {
        self.entries.get(&(pid, vpn))
    }

    /// Consumes an entry on a fault: the page is about to be mapped.
    /// Records a prefetch-hit.
    pub fn take(&mut self, pid: Pid, vpn: Vpn) -> Option<CacheEntry> {
        let entry = self.entries.remove(&(pid, vpn));
        if entry.is_some() {
            self.stats.hits += 1;
        }
        entry
    }

    /// Drops an entry during reclaim (it never got hit).
    pub fn evict(&mut self, pid: Pid, vpn: Vpn) -> Option<CacheEntry> {
        let entry = self.entries.remove(&(pid, vpn));
        if entry.is_some() {
            self.stats.evicted_unused += 1;
        }
        entry
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Activity counters.
    pub fn stats(&self) -> SwapCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> (Pid, Vpn) {
        (Pid::new(1), Vpn::new(100))
    }

    #[test]
    fn insert_take_records_hit() {
        let mut sc = SwapCache::new();
        let (pid, vpn) = key();
        sc.insert(
            pid,
            vpn,
            Ppn::new(1),
            None,
            CacheFill::Prefetch,
            Nanos::ZERO,
        );
        assert_eq!(sc.len(), 1);
        let e = sc.take(pid, vpn).unwrap();
        assert_eq!(e.fill, CacheFill::Prefetch);
        assert_eq!(sc.stats().hits, 1);
        assert!(sc.take(pid, vpn).is_none());
        assert_eq!(sc.stats().hits, 1, "a miss records no hit");
    }

    #[test]
    fn evict_records_waste_not_hit() {
        let mut sc = SwapCache::new();
        let (pid, vpn) = key();
        sc.insert(
            pid,
            vpn,
            Ppn::new(1),
            None,
            CacheFill::Prefetch,
            Nanos::ZERO,
        );
        sc.evict(pid, vpn).unwrap();
        assert_eq!(sc.stats().evicted_unused, 1);
        assert_eq!(sc.stats().hits, 0);
        assert!(sc.is_empty());
    }

    #[test]
    fn duplicate_insert_returns_previous() {
        let mut sc = SwapCache::new();
        let (pid, vpn) = key();
        sc.insert(pid, vpn, Ppn::new(1), None, CacheFill::Demand, Nanos::ZERO);
        let prev = sc
            .insert(
                pid,
                vpn,
                Ppn::new(2),
                None,
                CacheFill::Prefetch,
                Nanos::ZERO,
            )
            .unwrap();
        assert_eq!(prev.ppn, Ppn::new(1));
        assert_eq!(sc.peek(pid, vpn).unwrap().ppn, Ppn::new(2));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut sc = SwapCache::new();
        let (pid, vpn) = key();
        sc.insert(pid, vpn, Ppn::new(1), None, CacheFill::Demand, Nanos::ZERO);
        assert!(sc.peek(pid, vpn).is_some());
        assert!(sc.contains(pid, vpn));
        assert_eq!(sc.stats().hits, 0);
    }

    #[test]
    fn entries_are_per_process() {
        let mut sc = SwapCache::new();
        sc.insert(
            Pid::new(1),
            Vpn::new(5),
            Ppn::new(1),
            None,
            CacheFill::Demand,
            Nanos::ZERO,
        );
        assert!(!sc.contains(Pid::new(2), Vpn::new(5)));
    }
}
