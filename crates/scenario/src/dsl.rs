//! The scenario DSL: declarative TOML describing phases, weighted
//! workload mixes, working-set drift and object-granularity regions,
//! compiled into one deterministic [`AccessStream`].
//!
//! # Schema
//!
//! ```toml
//! [scenario]
//! name = "drifting-mix"     # optional, defaults to the file stem
//! seed = 7                  # optional, mixed with the caller's seed
//! footprint = 4096          # optional, pins the sweep footprint (pages)
//!
//! [[phase]]                 # phases run back to back (program phases)
//! name = "warmup"           # optional
//! length = 20000            # optional cap on accesses in this phase
//! drift = 256               # optional working-set shift, in pages
//! seed = 3                  # optional per-phase seed
//!
//! [[phase.mix]]             # a catalogue workload in the mix…
//! workload = "kmeans-omp"   # Table IV name, slug, or unique prefix
//! weight = 3                # interleaving weight (default 1)
//! footprint = 2048          # optional override (pages, >= 256)
//!
//! [[phase.mix]]             # …or a raw pattern primitive
//! pattern = "simple"        # simple | ladder | ripple | noise
//! start = 0                 # pages, relative to the workload heap base
//! len = 4096
//! stride = 2                # simple only (ladder: tread/rise/rungs;
//! weight = 1                #  ripple: jitter/hop_every; noise: span)
//!
//! [[phase.region]]          # DOLMA-style object-granularity region
//! object = "hash-index"     # label
//! base = 8192               # pages, relative to the heap base
//! pages = 64                # object size
//! repeat = 16               # passes over the object
//! writes = true
//! weight = 2
//! ```
//!
//! All page addresses are relative to `hopp_workloads::HEAP_BASE`, the
//! same base the catalogue generators allocate from, so patterns and
//! regions can deliberately overlap (or avoid) catalogue working sets.
//!
//! # Determinism
//!
//! Compilation derives every internal seed from the caller's seed, the
//! scenario seed, and the phase/member position, so a scenario cell is
//! exactly as reproducible as a catalogue workload: same file + same
//! seed → byte-identical stream. An explicit `seed` on a phase or
//! member pins that component regardless of position.

use std::path::Path;

use hopp_trace::patterns::{
    Chain, Interleaver, LadderStream, NoiseStream, RippleStream, SimpleStream,
};
use hopp_trace::AccessStream;
use hopp_types::rng::SplitMix64;
use hopp_types::{PageAccess, Pid, Vpn};
use hopp_workloads::{WorkloadKind, HEAP_BASE};

use crate::{catalogue_by_name, fnv1a64, ScnError, ScnResult};

/// Upper bound on any page count/address/drift magnitude in a scenario
/// file. Keeps every internal address computation overflow-free while
/// allowing footprints ~16 TB beyond anything the simulator runs.
pub const MAX_PAGES: u64 = 1 << 32;

/// A named, content-hashed scenario: the unit the sweep axis carries.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Display name (from `[scenario] name` or the file stem).
    pub name: String,
    /// The parsed specification.
    pub spec: ScenarioSpec,
    /// FNV-1a over the file bytes; cell-cache keys include it so
    /// editing the file invalidates cached results.
    pub content_hash: u64,
}

impl Scenario {
    /// Parses a scenario from text. `path` labels errors; `fallback`
    /// names the scenario when the file does not.
    ///
    /// # Errors
    ///
    /// Returns [`ScnError::Parse`] / [`ScnError::Invalid`] on bad input.
    pub fn from_text(text: &str, path: &str, fallback: &str) -> ScnResult<Self> {
        let (name, spec) = parse_spec(text, path)?;
        Ok(Scenario {
            name: name.unwrap_or_else(|| fallback.to_string()),
            spec,
            content_hash: fnv1a64(text.as_bytes()),
        })
    }

    /// Loads a scenario file (`.toml`).
    ///
    /// # Errors
    ///
    /// Returns [`ScnError::Io`] on filesystem failures plus everything
    /// [`Scenario::from_text`] returns.
    pub fn from_file(path: &Path) -> ScnResult<Self> {
        let shown = path.display().to_string();
        let text = std::fs::read_to_string(path).map_err(|e| ScnError::Io {
            path: shown.clone(),
            detail: e.to_string(),
        })?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_else(|| "scenario".to_string());
        Scenario::from_text(&text, &shown, &stem)
    }
}

/// Loads every `*.toml` under `dir`, sorted by file name so the sweep
/// grid order is stable across platforms.
///
/// # Errors
///
/// Returns [`ScnError::Io`] if the directory cannot be read and any
/// per-file parse error.
pub fn load_dir(dir: &Path) -> ScnResult<Vec<Scenario>> {
    let shown = dir.display().to_string();
    let io_err = |e: std::io::Error| ScnError::Io {
        path: shown.clone(),
        detail: e.to_string(),
    };
    let mut paths = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(io_err)? {
        let path = entry.map_err(io_err)?.path();
        if path.extension().is_some_and(|e| e == "toml") {
            paths.push(path);
        }
    }
    paths.sort();
    paths.iter().map(|p| Scenario::from_file(p)).collect()
}

/// A parsed scenario specification.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario seed, mixed with the caller's seed at build time.
    pub seed: u64,
    /// Pinned sweep footprint in pages, if any.
    pub footprint: Option<u64>,
    /// The phases, run back to back.
    pub phases: Vec<PhaseSpec>,
}

/// One phase of a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSpec {
    /// Phase label (defaults to `phase-N`).
    pub name: String,
    /// Pinned phase seed (default: derived from position).
    pub seed: Option<u64>,
    /// Cap on accesses emitted by this phase (default: run to
    /// exhaustion of every member).
    pub length: Option<u64>,
    /// Working-set drift: pages added to every address of this phase.
    pub drift: i64,
    /// The weighted members interleaved within the phase.
    pub members: Vec<MemberSpec>,
}

/// One weighted member of a phase mix.
#[derive(Clone, Debug, PartialEq)]
pub struct MemberSpec {
    /// Interleaving weight (>= 1).
    pub weight: u32,
    /// What the member generates.
    pub kind: MemberKind,
}

/// The stream a [`MemberSpec`] compiles to.
#[derive(Clone, Debug, PartialEq)]
pub enum MemberKind {
    /// A catalogue workload.
    Workload(WorkloadSpec),
    /// A raw pattern primitive.
    Pattern(PatternSpec),
    /// An object-granularity region scan.
    Region(RegionSpec),
}

/// A catalogue workload inside a mix.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Which application model.
    pub kind: WorkloadKind,
    /// Footprint override in pages (>= 256).
    pub footprint: Option<u64>,
    /// Pinned seed.
    pub seed: Option<u64>,
}

/// A `hopp_trace::patterns` primitive inside a mix. Addresses are in
/// pages relative to the workload heap base.
#[derive(Clone, Debug, PartialEq)]
pub enum PatternSpec {
    /// Fixed-stride stream ([`SimpleStream`]).
    Simple {
        /// First page.
        start: u64,
        /// Touches to emit.
        len: u64,
        /// Stride in pages (may be negative).
        stride: i64,
        /// Cachelines per touch (default: full page).
        lines: Option<u8>,
        /// Compute time per touch.
        think_ns: u32,
        /// Emit writes instead of reads.
        writes: bool,
    },
    /// Tread/rise ladder ([`LadderStream`]).
    Ladder {
        /// First page.
        start: u64,
        /// Rungs (repetitions of the stride cycle).
        rungs: u64,
        /// Tread strides.
        tread: Vec<i64>,
        /// Rise stride.
        rise: i64,
        /// Cachelines per touch.
        lines: Option<u8>,
        /// Compute time per touch.
        think_ns: u32,
    },
    /// Jittered near-sequential scan ([`RippleStream`]).
    Ripple {
        /// First page.
        start: u64,
        /// Pages scanned.
        len: u64,
        /// Adjacent-swap probability (0..=1).
        jitter: f64,
        /// Far-hop cadence (0 = never).
        hop_every: u64,
        /// Cachelines per touch.
        lines: Option<u8>,
        /// Compute time per touch.
        think_ns: u32,
        /// Pinned seed.
        seed: Option<u64>,
    },
    /// Uniform interference ([`NoiseStream`]).
    Noise {
        /// Low end of the page range.
        start: u64,
        /// Width of the page range (>= 1).
        span: u64,
        /// Touches to emit.
        len: u64,
        /// Cachelines per touch.
        lines: Option<u8>,
        /// Pinned seed.
        seed: Option<u64>,
    },
}

/// A DOLMA-style object region: `repeat` strided passes over a fixed
/// `pages`-sized object at `base`.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionSpec {
    /// Object label (documentation only).
    pub object: String,
    /// First page of the object, relative to the heap base.
    pub base: u64,
    /// Object size in pages (>= 1).
    pub pages: u64,
    /// Stride of each pass.
    pub stride: i64,
    /// Number of passes (>= 1).
    pub repeat: u64,
    /// Scan with writes.
    pub writes: bool,
    /// Cachelines per touch.
    pub lines: Option<u8>,
    /// Compute time per touch.
    pub think_ns: u32,
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

/// One SplitMix64 draw keyed by two values: the seed-derivation step
/// used for phases and members.
fn mix2(a: u64, b: u64) -> u64 {
    SplitMix64::seed_from_u64(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

fn page_vpn(at: u64) -> Vpn {
    Vpn::new(HEAP_BASE + at)
}

impl ScenarioSpec {
    /// Compiles the scenario into a deterministic stream named `name`.
    /// Mirrors [`WorkloadKind::build`]: `footprint_pages` is the
    /// default footprint for catalogue members without an override and
    /// `seed` is mixed into every derived seed.
    pub fn build(
        &self,
        name: &str,
        pid: Pid,
        footprint_pages: u64,
        seed: u64,
    ) -> Box<dyn AccessStream> {
        let scn_seed = self.seed ^ seed;
        let mut phases: Vec<Box<dyn AccessStream>> = Vec::with_capacity(self.phases.len());
        for (i, phase) in self.phases.iter().enumerate() {
            let phase_seed = mix2(scn_seed, phase.seed.unwrap_or(i as u64));
            let mut children: Vec<Box<dyn AccessStream>> = Vec::with_capacity(phase.members.len());
            let mut weights: Vec<u32> = Vec::with_capacity(phase.members.len());
            for (j, member) in phase.members.iter().enumerate() {
                let derived = mix2(phase_seed, j as u64 + 1);
                children.push(build_member(&member.kind, pid, footprint_pages, derived));
                weights.push(member.weight);
            }
            let mut stream: Box<dyn AccessStream> = if children.len() == 1 {
                children.remove(0)
            } else {
                Box::new(Interleaver::weighted(children, weights, phase_seed))
            };
            if let Some(cap) = phase.length {
                stream = Box::new(Take::new(stream, cap));
            }
            if phase.drift != 0 {
                stream = Box::new(Drift::new(stream, phase.drift));
            }
            phases.push(stream);
        }
        Box::new(Named::new(Chain::new(phases), name))
    }
}

fn build_member(
    kind: &MemberKind,
    pid: Pid,
    footprint_pages: u64,
    derived_seed: u64,
) -> Box<dyn AccessStream> {
    match kind {
        MemberKind::Workload(w) => {
            let fp = w.footprint.unwrap_or(footprint_pages).max(256);
            w.kind.build(pid, fp, w.seed.unwrap_or(derived_seed))
        }
        MemberKind::Pattern(PatternSpec::Simple {
            start,
            len,
            stride,
            lines,
            think_ns,
            writes,
        }) => {
            let mut s = SimpleStream::new(pid, page_vpn(*start), *stride, *len);
            if let Some(l) = lines {
                s = s.with_lines(*l);
            }
            s = s.with_think(*think_ns);
            if *writes {
                s = s.writes();
            }
            Box::new(s)
        }
        MemberKind::Pattern(PatternSpec::Ladder {
            start,
            rungs,
            tread,
            rise,
            lines,
            think_ns,
        }) => {
            let mut s = LadderStream::new(pid, page_vpn(*start), tread, *rise, *rungs);
            if let Some(l) = lines {
                s = s.with_lines(*l);
            }
            Box::new(s.with_think(*think_ns))
        }
        MemberKind::Pattern(PatternSpec::Ripple {
            start,
            len,
            jitter,
            hop_every,
            lines,
            think_ns,
            seed,
        }) => {
            let mut s = RippleStream::new(
                pid,
                page_vpn(*start),
                *len,
                *jitter,
                *hop_every,
                seed.unwrap_or(derived_seed),
            );
            if let Some(l) = lines {
                s = s.with_lines(*l);
            }
            Box::new(s.with_think(*think_ns))
        }
        MemberKind::Pattern(PatternSpec::Noise {
            start,
            span,
            len,
            lines,
            seed,
        }) => {
            let mut s = NoiseStream::new(
                pid,
                page_vpn(*start),
                page_vpn(start.saturating_add(*span)),
                *len,
                seed.unwrap_or(derived_seed),
            );
            if let Some(l) = lines {
                s = s.with_lines(*l);
            }
            Box::new(s)
        }
        MemberKind::Region(r) => {
            let mut passes: Vec<Box<dyn AccessStream>> = Vec::with_capacity(r.repeat as usize);
            for _ in 0..r.repeat {
                let mut s = SimpleStream::new(pid, page_vpn(r.base), r.stride, r.pages);
                if let Some(l) = r.lines {
                    s = s.with_lines(l);
                }
                s = s.with_think(r.think_ns);
                if r.writes {
                    s = s.writes();
                }
                passes.push(Box::new(s));
            }
            Box::new(Chain::new(passes))
        }
    }
}

/// Caps a stream at `remaining` accesses (phase `length`).
pub struct Take {
    inner: Box<dyn AccessStream>,
    remaining: u64,
}

impl Take {
    /// Wraps `inner`, emitting at most `cap` accesses.
    pub fn new(inner: Box<dyn AccessStream>, cap: u64) -> Self {
        Take {
            inner,
            remaining: cap,
        }
    }
}

impl AccessStream for Take {
    fn next_access(&mut self) -> Option<PageAccess> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.inner.next_access()
    }

    fn name(&self) -> &str {
        "take"
    }
}

/// Shifts every access of a stream by `delta` pages (working-set
/// drift), saturating at the address-space bounds.
pub struct Drift {
    inner: Box<dyn AccessStream>,
    delta: i64,
}

impl Drift {
    /// Wraps `inner`, drifting each access by `delta` pages.
    pub fn new(inner: Box<dyn AccessStream>, delta: i64) -> Self {
        Drift { inner, delta }
    }
}

impl AccessStream for Drift {
    fn next_access(&mut self) -> Option<PageAccess> {
        self.inner.next_access().map(|mut a| {
            a.vpn = a.vpn.offset_saturating(self.delta);
            a
        })
    }

    fn name(&self) -> &str {
        "drift"
    }
}

/// Gives a stream a stable display name (the scenario name).
pub struct Named {
    inner: Box<dyn AccessStream>,
    label: String,
}

impl Named {
    /// Wraps `inner` under `label`.
    pub fn new(inner: impl AccessStream + 'static, label: &str) -> Self {
        Named {
            inner: Box::new(inner),
            label: label.to_string(),
        }
    }
}

impl AccessStream for Named {
    fn next_access(&mut self) -> Option<PageAccess> {
        self.inner.next_access()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

// ---------------------------------------------------------------------
// Parsing (hand-rolled TOML subset: tables, arrays-of-tables, scalar
// and integer-array values, # comments)
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Int(i64),
    Float(f64),
    Bool(bool),
    Str(String),
    Ints(Vec<i64>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Ints(_) => "array",
        }
    }
}

struct Entry {
    key: String,
    val: Value,
    line: usize,
    used: bool,
}

/// One parsed table with typed, consumed-key-tracking accessors.
struct Tbl<'p> {
    label: &'static str,
    line: usize,
    path: &'p str,
    entries: Vec<Entry>,
}

impl<'p> Tbl<'p> {
    fn new(label: &'static str, line: usize, path: &'p str) -> Self {
        Tbl {
            label,
            line,
            path,
            entries: Vec::new(),
        }
    }

    fn err(&self, line: usize, detail: String) -> ScnError {
        ScnError::Parse {
            path: self.path.to_string(),
            line,
            detail,
        }
    }

    fn insert(&mut self, key: String, val: Value, line: usize) -> ScnResult<()> {
        if self.entries.iter().any(|e| e.key == key) {
            return Err(self.err(line, format!("duplicate key `{key}` in {}", self.label)));
        }
        self.entries.push(Entry {
            key,
            val,
            line,
            used: false,
        });
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        let e = self.entries.iter_mut().find(|e| e.key == key)?;
        e.used = true;
        Some((e.val.clone(), e.line))
    }

    fn type_err(&self, key: &str, want: &str, got: &Value, line: usize) -> ScnError {
        self.err(
            line,
            format!("`{key}` must be a {want}, got {}", got.type_name()),
        )
    }

    fn str(&mut self, key: &str) -> ScnResult<Option<String>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Str(s), _)) => Ok(Some(s)),
            Some((v, line)) => Err(self.type_err(key, "string", &v, line)),
        }
    }

    fn bool(&mut self, key: &str) -> ScnResult<Option<bool>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Bool(b), _)) => Ok(Some(b)),
            Some((v, line)) => Err(self.type_err(key, "boolean", &v, line)),
        }
    }

    fn i64(&mut self, key: &str) -> ScnResult<Option<i64>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Int(i), line)) => {
                if i.unsigned_abs() > MAX_PAGES {
                    return Err(self.err(line, format!("`{key}` exceeds {MAX_PAGES} pages")));
                }
                Ok(Some(i))
            }
            Some((v, line)) => Err(self.type_err(key, "integer", &v, line)),
        }
    }

    fn u64(&mut self, key: &str) -> ScnResult<Option<u64>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Int(i), line)) => {
                if i < 0 {
                    return Err(self.err(line, format!("`{key}` must be non-negative, got {i}")));
                }
                let v = i.unsigned_abs();
                if v > MAX_PAGES {
                    return Err(self.err(line, format!("`{key}` exceeds {MAX_PAGES} pages")));
                }
                Ok(Some(v))
            }
            Some((v, line)) => Err(self.type_err(key, "integer", &v, line)),
        }
    }

    /// Unbounded u64 (seeds are not page counts).
    fn seed(&mut self, key: &str) -> ScnResult<Option<u64>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Int(i), _)) => Ok(Some(u64::from_ne_bytes(i.to_ne_bytes()))),
            Some((v, line)) => Err(self.type_err(key, "integer", &v, line)),
        }
    }

    fn f64(&mut self, key: &str) -> ScnResult<Option<f64>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Float(f), _)) => Ok(Some(f)),
            Some((Value::Int(i), _)) => Ok(Some(i as f64)),
            Some((v, line)) => Err(self.type_err(key, "number", &v, line)),
        }
    }

    fn ints(&mut self, key: &str) -> ScnResult<Option<Vec<i64>>> {
        match self.take(key) {
            None => Ok(None),
            Some((Value::Ints(v), _)) => Ok(Some(v)),
            Some((Value::Int(i), _)) => Ok(Some(vec![i])),
            Some((v, line)) => Err(self.type_err(key, "integer array", &v, line)),
        }
    }

    fn lines_count(&mut self, key: &str) -> ScnResult<Option<u8>> {
        match self.u64(key)? {
            None => Ok(None),
            Some(v) => {
                if (1..=64).contains(&v) {
                    Ok(Some(v as u8))
                } else {
                    Err(self.err(self.line, format!("`{key}` must be in 1..=64, got {v}")))
                }
            }
        }
    }

    fn think(&mut self, key: &str) -> ScnResult<u32> {
        match self.u64(key)? {
            None => Ok(0),
            Some(v) => u32::try_from(v)
                .map_err(|_| self.err(self.line, format!("`{key}` must fit in 32 bits, got {v}"))),
        }
    }

    fn weight(&mut self) -> ScnResult<u32> {
        match self.u64("weight")? {
            None => Ok(1),
            Some(0) => Err(self.err(self.line, "`weight` must be >= 1".to_string())),
            Some(v) => u32::try_from(v)
                .map_err(|_| self.err(self.line, format!("`weight` too large: {v}"))),
        }
    }

    /// Errors on the first key nobody consumed (typo protection).
    fn finish(self) -> ScnResult<()> {
        if let Some(e) = self.entries.iter().find(|e| !e.used) {
            return Err(ScnError::Parse {
                path: self.path.to_string(),
                line: e.line,
                detail: format!("unknown key `{}` in {}", e.key, self.label),
            });
        }
        Ok(())
    }
}

/// Strips an inline `#` comment (respecting strings) and trims.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line[..i].trim(),
            _ => {}
        }
    }
    line.trim()
}

fn parse_value(raw: &str, path: &str, line: usize) -> ScnResult<Value> {
    let parse_err = |detail: String| ScnError::Parse {
        path: path.to_string(),
        line,
        detail,
    };
    if let Some(rest) = raw.strip_prefix('"') {
        return match rest.strip_suffix('"') {
            Some(inner) if !inner.contains('"') => Ok(Value::Str(inner.to_string())),
            _ => Err(parse_err(format!("malformed string {raw}"))),
        };
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(parse_err(format!("unterminated array {raw}")));
        };
        let mut out = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.parse::<i64>() {
                Ok(v) => out.push(v),
                Err(_) => {
                    return Err(parse_err(format!(
                        "array element `{part}` is not an integer"
                    )))
                }
            }
        }
        return Ok(Value::Ints(out));
    }
    if let Ok(v) = raw.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = raw.parse::<f64>() {
        if v.is_finite() {
            return Ok(Value::Float(v));
        }
    }
    Err(parse_err(format!("unparseable value `{raw}`")))
}

/// Raw parse product: the `[scenario]` table plus per-phase tables.
struct PhaseDoc<'p> {
    tbl: Tbl<'p>,
    mixes: Vec<Tbl<'p>>,
    regions: Vec<Tbl<'p>>,
}

fn parse_spec(text: &str, path: &str) -> ScnResult<(Option<String>, ScenarioSpec)> {
    let parse_err = |line: usize, detail: String| ScnError::Parse {
        path: path.to_string(),
        line,
        detail,
    };

    let mut scenario_tbl: Option<Tbl<'_>> = None;
    let mut phases: Vec<PhaseDoc<'_>> = Vec::new();
    // Which table the cursor is inside: the destination of `key = value`.
    enum Cursor {
        Nowhere,
        Scenario,
        Phase,
        Mix,
        Region,
    }
    let mut cursor = Cursor::Nowhere;

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line);
        if line.is_empty() {
            continue;
        }
        match line {
            "[scenario]" => {
                if scenario_tbl.is_some() {
                    return Err(parse_err(lineno, "duplicate [scenario] table".to_string()));
                }
                scenario_tbl = Some(Tbl::new("[scenario]", lineno, path));
                cursor = Cursor::Scenario;
            }
            "[[phase]]" => {
                phases.push(PhaseDoc {
                    tbl: Tbl::new("[[phase]]", lineno, path),
                    mixes: Vec::new(),
                    regions: Vec::new(),
                });
                cursor = Cursor::Phase;
            }
            "[[phase.mix]]" => {
                let Some(phase) = phases.last_mut() else {
                    return Err(parse_err(
                        lineno,
                        "[[phase.mix]] before any [[phase]]".to_string(),
                    ));
                };
                phase.mixes.push(Tbl::new("[[phase.mix]]", lineno, path));
                cursor = Cursor::Mix;
            }
            "[[phase.region]]" => {
                let Some(phase) = phases.last_mut() else {
                    return Err(parse_err(
                        lineno,
                        "[[phase.region]] before any [[phase]]".to_string(),
                    ));
                };
                phase
                    .regions
                    .push(Tbl::new("[[phase.region]]", lineno, path));
                cursor = Cursor::Region;
            }
            _ if line.starts_with('[') => {
                return Err(parse_err(
                    lineno,
                    format!(
                        "unknown table {line} (expected [scenario], [[phase]], \
                         [[phase.mix]] or [[phase.region]])"
                    ),
                ));
            }
            _ => {
                let Some(eq) = line.find('=') else {
                    return Err(parse_err(lineno, format!("expected `key = value`: {line}")));
                };
                let key = line[..eq].trim();
                if key.is_empty()
                    || !key
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    return Err(parse_err(lineno, format!("invalid key `{key}`")));
                }
                let val = parse_value(line[eq + 1..].trim(), path, lineno)?;
                let dest = match cursor {
                    Cursor::Nowhere => {
                        return Err(parse_err(
                            lineno,
                            format!("`{key}` outside any table; start with [scenario]"),
                        ))
                    }
                    Cursor::Scenario => scenario_tbl.as_mut(),
                    Cursor::Phase => phases.last_mut().map(|p| &mut p.tbl),
                    Cursor::Mix => phases.last_mut().and_then(|p| p.mixes.last_mut()),
                    Cursor::Region => phases.last_mut().and_then(|p| p.regions.last_mut()),
                };
                let Some(dest) = dest else {
                    return Err(parse_err(lineno, "internal cursor error".to_string()));
                };
                dest.insert(key.to_string(), val, lineno)?;
            }
        }
    }

    let invalid = |detail: String| ScnError::Invalid {
        path: path.to_string(),
        detail,
    };

    let (name, seed, footprint) = match scenario_tbl {
        None => (None, 0, None),
        Some(mut t) => {
            let name = t.str("name")?;
            let seed = t.seed("seed")?.unwrap_or(0);
            let footprint = t.u64("footprint")?;
            if let Some(f) = footprint {
                if f < 256 {
                    return Err(invalid(format!(
                        "scenario footprint must be >= 256, got {f}"
                    )));
                }
            }
            t.finish()?;
            (name, seed, footprint)
        }
    };

    if phases.is_empty() {
        return Err(invalid(
            "a scenario needs at least one [[phase]]".to_string(),
        ));
    }

    let mut out_phases = Vec::with_capacity(phases.len());
    for (i, mut doc) in phases.into_iter().enumerate() {
        let phase_line = doc.tbl.line;
        let name = doc.tbl.str("name")?.unwrap_or_else(|| format!("phase-{i}"));
        let seed = doc.tbl.seed("seed")?;
        let length = doc.tbl.u64("length")?;
        let drift = doc.tbl.i64("drift")?.unwrap_or(0);
        doc.tbl.finish()?;

        let mut members = Vec::new();
        for mut t in doc.mixes {
            let weight = t.weight()?;
            let kind = parse_mix_member(&mut t)?;
            t.finish()?;
            members.push(MemberSpec { weight, kind });
        }
        for mut t in doc.regions {
            let weight = t.weight()?;
            let kind = parse_region_member(&mut t)?;
            t.finish()?;
            members.push(MemberSpec { weight, kind });
        }
        if members.is_empty() {
            return Err(ScnError::Parse {
                path: path.to_string(),
                line: phase_line,
                detail: format!("phase `{name}` has no [[phase.mix]] or [[phase.region]]"),
            });
        }
        out_phases.push(PhaseSpec {
            name,
            seed,
            length,
            drift,
            members,
        });
    }

    Ok((
        name,
        ScenarioSpec {
            seed,
            footprint,
            phases: out_phases,
        },
    ))
}

fn parse_mix_member(t: &mut Tbl<'_>) -> ScnResult<MemberKind> {
    let workload = t.str("workload")?;
    let pattern = t.str("pattern")?;
    match (workload, pattern) {
        (Some(_), Some(_)) => Err(t.err(
            t.line,
            "a mix entry is either a `workload` or a `pattern`, not both".to_string(),
        )),
        (None, None) => Err(t.err(
            t.line,
            "a mix entry needs a `workload` or a `pattern`".to_string(),
        )),
        (Some(w), None) => {
            let Some(kind) = catalogue_by_name(&w) else {
                return Err(t.err(
                    t.line,
                    format!("unknown workload `{w}` (try `hoppsim --list`)"),
                ));
            };
            let footprint = t.u64("footprint")?;
            if let Some(f) = footprint {
                if f < 256 {
                    return Err(t.err(t.line, format!("mix footprint must be >= 256, got {f}")));
                }
            }
            let seed = t.seed("seed")?;
            Ok(MemberKind::Workload(WorkloadSpec {
                kind,
                footprint,
                seed,
            }))
        }
        (None, Some(p)) => parse_pattern(t, &p),
    }
}

fn parse_pattern(t: &mut Tbl<'_>, shape: &str) -> ScnResult<MemberKind> {
    let line = t.line;
    let path = t.path.to_string();
    let require = move |key: &str, v: Option<u64>| {
        v.ok_or_else(|| ScnError::Parse {
            path: path.clone(),
            line,
            detail: format!("{shape} pattern needs `{key}`"),
        })
    };
    let start = t.u64("start")?.unwrap_or(0);
    let lines = t.lines_count("lines")?;
    let think_ns = t.think("think")?;
    let spec = match shape {
        "simple" => {
            let len = require("len", t.u64("len")?)?;
            let stride = t.i64("stride")?.unwrap_or(1);
            let writes = t.bool("writes")?.unwrap_or(false);
            PatternSpec::Simple {
                start,
                len,
                stride,
                lines,
                think_ns,
                writes,
            }
        }
        "ladder" => {
            let rungs = require("rungs", t.u64("rungs")?)?;
            let rise = t
                .i64("rise")?
                .ok_or_else(|| t.err(line, "ladder pattern needs `rise`".to_string()))?;
            let tread = t.ints("tread")?.unwrap_or_else(|| vec![1]);
            if tread.is_empty() {
                return Err(t.err(line, "`tread` must not be empty".to_string()));
            }
            if tread.iter().any(|s| s.unsigned_abs() > MAX_PAGES) {
                return Err(t.err(line, format!("`tread` stride exceeds {MAX_PAGES} pages")));
            }
            PatternSpec::Ladder {
                start,
                rungs,
                tread,
                rise,
                lines,
                think_ns,
            }
        }
        "ripple" => {
            let len = require("len", t.u64("len")?)?;
            let jitter = t.f64("jitter")?.unwrap_or(0.2);
            if !(0.0..=1.0).contains(&jitter) {
                return Err(t.err(line, format!("`jitter` must be in 0..=1, got {jitter}")));
            }
            let hop_every = t.u64("hop_every")?.unwrap_or(0);
            let seed = t.seed("seed")?;
            PatternSpec::Ripple {
                start,
                len,
                jitter,
                hop_every,
                lines,
                think_ns,
                seed,
            }
        }
        "noise" => {
            let len = require("len", t.u64("len")?)?;
            let span = require("span", t.u64("span")?)?;
            if span == 0 {
                return Err(t.err(line, "`span` must be >= 1".to_string()));
            }
            let seed = t.seed("seed")?;
            PatternSpec::Noise {
                start,
                span,
                len,
                lines,
                seed,
            }
        }
        other => {
            return Err(t.err(
                line,
                format!("unknown pattern `{other}` (simple | ladder | ripple | noise)"),
            ))
        }
    };
    Ok(MemberKind::Pattern(spec))
}

fn parse_region_member(t: &mut Tbl<'_>) -> ScnResult<MemberKind> {
    let line = t.line;
    let object = t
        .str("object")?
        .ok_or_else(|| t.err(line, "a region needs an `object` label".to_string()))?;
    let base = t.u64("base")?.unwrap_or(0);
    let pages = t
        .u64("pages")?
        .ok_or_else(|| t.err(line, "a region needs `pages`".to_string()))?;
    if pages == 0 {
        return Err(t.err(line, "`pages` must be >= 1".to_string()));
    }
    let stride = t.i64("stride")?.unwrap_or(1);
    let repeat = t.u64("repeat")?.unwrap_or(1);
    if repeat == 0 {
        return Err(t.err(line, "`repeat` must be >= 1".to_string()));
    }
    let writes = t.bool("writes")?.unwrap_or(false);
    let lines = t.lines_count("lines")?;
    let think_ns = t.think("think")?;
    Ok(MemberKind::Region(RegionSpec {
        object,
        base,
        pages,
        stride,
        repeat,
        writes,
        lines,
        think_ns,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A kitchen-sink scenario exercising every table kind.
[scenario]
name = "kitchen-sink"
seed = 9
footprint = 1024

[[phase]]
name = "warmup"
length = 500
drift = 0

[[phase.mix]]
workload = "kmeans-omp"
weight = 3
footprint = 512

[[phase.mix]]
pattern = "simple"
start = 0
len = 300
stride = 2
writes = true
lines = 8
think = 10

[[phase]]
name = "steady"
drift = 128

[[phase.mix]]
pattern = "ripple"
start = 100
len = 400
jitter = 0.3
hop_every = 50

[[phase.mix]]
pattern = "noise"
start = 0
span = 2048
len = 100
weight = 2

[[phase.region]]
object = "hash-index"
base = 4096
pages = 32
repeat = 4
writes = true
weight = 2

[[phase]]
name = "drain"

[[phase.mix]]
pattern = "ladder"
start = 0
rungs = 50
tread = [2, 2, 2]
rise = 12
"#;

    fn collect(mut s: Box<dyn AccessStream>) -> Vec<PageAccess> {
        std::iter::from_fn(move || s.next_access()).collect()
    }

    #[test]
    fn kitchen_sink_parses_and_builds_deterministically() {
        let scn = Scenario::from_text(FULL, "test.toml", "fallback").unwrap();
        assert_eq!(scn.name, "kitchen-sink");
        assert_eq!(scn.spec.footprint, Some(1024));
        assert_eq!(scn.spec.phases.len(), 3);
        assert_eq!(scn.spec.phases[0].length, Some(500));
        assert_eq!(scn.spec.phases[1].members.len(), 3);

        let a = collect(scn.spec.build("kitchen-sink", Pid::new(1), 1024, 42));
        let b = collect(scn.spec.build("kitchen-sink", Pid::new(1), 1024, 42));
        assert_eq!(a, b, "same seed must give identical streams");
        let c = collect(scn.spec.build("kitchen-sink", Pid::new(1), 1024, 43));
        assert_ne!(a, c, "different seed must change the stream");
        assert!(!a.is_empty());
    }

    #[test]
    fn stream_is_named_after_the_scenario() {
        let scn = Scenario::from_text(FULL, "t.toml", "x").unwrap();
        let s = scn.spec.build("kitchen-sink", Pid::new(1), 1024, 1);
        assert_eq!(s.name(), "kitchen-sink");
    }

    #[test]
    fn phase_length_caps_accesses() {
        let text = "\n[[phase]]\nlength = 10\n[[phase.mix]]\npattern = \"simple\"\nlen = 100\n";
        let scn = Scenario::from_text(text, "t.toml", "capped").unwrap();
        assert_eq!(
            collect(scn.spec.build("capped", Pid::new(1), 1024, 1)).len(),
            10
        );
    }

    #[test]
    fn drift_shifts_the_working_set() {
        let base = "\n[[phase]]\n[[phase.mix]]\npattern = \"simple\"\nstart = 10\nlen = 5\n";
        let drifted =
            "\n[[phase]]\ndrift = 100\n[[phase.mix]]\npattern = \"simple\"\nstart = 10\nlen = 5\n";
        let a = collect(
            Scenario::from_text(base, "t.toml", "a")
                .unwrap()
                .spec
                .build("a", Pid::new(1), 1024, 1),
        );
        let b = collect(
            Scenario::from_text(drifted, "t.toml", "b")
                .unwrap()
                .spec
                .build("b", Pid::new(1), 1024, 1),
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(y.vpn.raw(), x.vpn.raw() + 100);
        }
    }

    #[test]
    fn region_repeats_passes() {
        let text =
            "\n[[phase]]\n[[phase.region]]\nobject = \"o\"\nbase = 0\npages = 4\nrepeat = 3\n";
        let scn = Scenario::from_text(text, "t.toml", "r").unwrap();
        let v = collect(scn.spec.build("r", Pid::new(1), 1024, 1));
        assert_eq!(v.len(), 12);
        assert_eq!(v[0].vpn, v[4].vpn);
        assert_eq!(v[0].vpn, v[8].vpn);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_key = "\n[scenario]\nwieght = 1\n";
        match Scenario::from_text(bad_key, "s.toml", "x") {
            Err(ScnError::Parse {
                line: 3, detail, ..
            }) => {
                assert!(detail.contains("wieght"), "{detail}");
            }
            other => panic!("want Parse at line 3, got {other:?}"),
        }

        let bad_table = "\n[nope]\n";
        assert!(matches!(
            Scenario::from_text(bad_table, "s.toml", "x"),
            Err(ScnError::Parse { line: 2, .. })
        ));

        let orphan_mix = "[[phase.mix]]\nworkload = \"kmeans\"\n";
        assert!(matches!(
            Scenario::from_text(orphan_mix, "s.toml", "x"),
            Err(ScnError::Parse { line: 1, .. })
        ));

        let no_phase = "[scenario]\nseed = 1\n";
        assert!(matches!(
            Scenario::from_text(no_phase, "s.toml", "x"),
            Err(ScnError::Invalid { .. })
        ));

        let empty_phase = "[[phase]]\nname = \"p\"\n";
        assert!(matches!(
            Scenario::from_text(empty_phase, "s.toml", "x"),
            Err(ScnError::Parse { line: 1, .. })
        ));

        let bad_jitter = "[[phase]]\n[[phase.mix]]\npattern = \"ripple\"\nlen = 10\njitter = 1.5\n";
        assert!(Scenario::from_text(bad_jitter, "s.toml", "x").is_err());

        let bad_workload = "[[phase]]\n[[phase.mix]]\nworkload = \"not-real\"\n";
        assert!(Scenario::from_text(bad_workload, "s.toml", "x").is_err());

        let zero_weight = "[[phase]]\n[[phase.mix]]\npattern = \"simple\"\nlen = 1\nweight = 0\n";
        assert!(Scenario::from_text(zero_weight, "s.toml", "x").is_err());
    }

    #[test]
    fn comments_and_unusual_whitespace_parse() {
        let text =
            "  [scenario]  # trailing\n  seed = 3 # note\n[[phase]]\n[[phase.mix]]\npattern = \"simple\" # shape\nlen = 1\n";
        let scn = Scenario::from_text(text, "t.toml", "ws").unwrap();
        assert_eq!(scn.spec.seed, 3);
    }

    #[test]
    fn content_hash_tracks_file_bytes() {
        let a = Scenario::from_text(FULL, "t.toml", "x").unwrap();
        let b = Scenario::from_text(&format!("{FULL}\n# touched"), "t.toml", "x").unwrap();
        assert_eq!(a.spec, b.spec, "a comment does not change the spec");
        assert_ne!(
            a.content_hash, b.content_hash,
            "…but it must re-key the cache"
        );
    }

    #[test]
    fn load_dir_sorts_by_file_name() {
        let dir = std::env::temp_dir().join(format!("hopp_scn_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let minimal = "[[phase]]\n[[phase.mix]]\npattern = \"simple\"\nlen = 1\n";
        std::fs::write(dir.join("b-second.toml"), minimal).unwrap();
        std::fs::write(dir.join("a-first.toml"), minimal).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a scenario").unwrap();
        let loaded = load_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(
            loaded.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["a-first", "b-second"]
        );
    }

    #[test]
    fn explicit_member_seed_pins_the_member() {
        let text =
            "[[phase]]\n[[phase.mix]]\npattern = \"noise\"\nlen = 20\nspan = 100\nseed = 5\n";
        let scn = Scenario::from_text(text, "t.toml", "pin").unwrap();
        let a = collect(scn.spec.build("pin", Pid::new(1), 1024, 1));
        let b = collect(scn.spec.build("pin", Pid::new(1), 1024, 2));
        assert_eq!(a, b, "pinned seed ignores the caller seed");
    }
}
