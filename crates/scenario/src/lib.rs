#![warn(missing_docs)]
//! hopp-scn: the workload scenario engine.
//!
//! Two ways to get past the fifteen-workload catalogue, both producing
//! the same [`AccessStream`] interface the generators use, so every
//! downstream consumer (the simulator, `experiments sweep`, the
//! quality scoreboard) treats them as just another workload:
//!
//! * **Trace record/replay** ([`hst`]): a versioned, delta-encoded
//!   on-disk trace format (`.hst`) with a streaming writer and replayer.
//!   Any run can be captured with `hoppsim --record-trace` and replayed
//!   bit-identically with `--replay-trace` — the HMTT idea (PID/VPN
//!   annotated traces that close the semantic gap) applied at page
//!   granularity.
//!
//! * **Scenario DSL** ([`dsl`]): a small declarative TOML config
//!   describing *phases*, weighted *workload mixes*, working-set
//!   *drift* and DOLMA-style object-granularity *regions*, compiled
//!   into one deterministic interleaved stream built from
//!   `hopp_trace::patterns` primitives and the workload catalogue.
//!   Dozens of scenarios are a `scenarios/` directory, not new crates.
//!
//! Everything here is deterministic: identical inputs (file bytes,
//! seeds) produce identical streams, so scenario cells are cacheable
//! and replayable like any other workload. All failures travel as
//! typed [`ScnError`] values — this crate is sim-critical and must not
//! panic on bad input.

pub mod dsl;
pub mod hst;

use std::fmt;

use hopp_trace::AccessStream;
use hopp_types::Pid;
use hopp_workloads::WorkloadKind;

pub use dsl::{load_dir, Scenario, ScenarioSpec};
pub use hst::{HstHeader, HstReader, HstStream, HstTrace, HstWriter};

/// Errors surfaced by the scenario engine. Every variant carries enough
/// context (path, byte offset or line number) to point at the offending
/// input, so CLI users see `file:line`-grade messages instead of
/// panics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScnError {
    /// An OS-level read or write failed.
    Io {
        /// The file involved (`<stream>` for in-memory readers).
        path: String,
        /// The OS error text.
        detail: String,
    },
    /// A `.hst` file is malformed.
    Format {
        /// The file involved (`<stream>` for in-memory readers).
        path: String,
        /// Byte offset of the malformed content.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A scenario file failed to parse.
    Parse {
        /// The scenario file.
        path: String,
        /// 1-based line of the offending input.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// A scenario parsed but is semantically invalid.
    Invalid {
        /// The scenario file.
        path: String,
        /// Which constraint was violated.
        detail: String,
    },
}

impl fmt::Display for ScnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScnError::Io { path, detail } => write!(f, "{path}: {detail}"),
            ScnError::Format {
                path,
                offset,
                detail,
            } => write!(f, "{path}: invalid .hst at byte {offset}: {detail}"),
            ScnError::Parse { path, line, detail } => {
                write!(f, "{path}:{line}: {detail}")
            }
            ScnError::Invalid { path, detail } => {
                write!(f, "{path}: invalid scenario: {detail}")
            }
        }
    }
}

impl std::error::Error for ScnError {}

/// Convenience alias used across this crate.
pub type ScnResult<T> = core::result::Result<T, ScnError>;

/// FNV-1a over `bytes` — the same stable hash the hopp-lab cell cache
/// uses, re-implemented here so `hopp-scn` stays dependency-light. Used
/// for the `.hst` header fingerprint and record checksum, and for
/// scenario-file content hashes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One entry on the sweep/experiment `workload` axis: either a
/// catalogue workload or a compiled scenario. Everything the grid
/// machinery needs — a display name, a footprint choice, a stream
/// builder, a cache-key tag — is answered uniformly here.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSource {
    /// One of the paper's fifteen application models.
    Catalogue(WorkloadKind),
    /// A scenario compiled from a DSL file.
    Scenario(Scenario),
}

impl WorkloadSource {
    /// Display name (catalogue name or scenario name).
    pub fn name(&self) -> &str {
        match self {
            WorkloadSource::Catalogue(k) => k.name(),
            WorkloadSource::Scenario(s) => &s.name,
        }
    }

    /// True for catalogue workloads that model JVM/Spark applications
    /// (scenarios choose their own footprint instead).
    pub fn is_jvm(&self) -> bool {
        match self {
            WorkloadSource::Catalogue(k) => k.is_jvm(),
            WorkloadSource::Scenario(_) => false,
        }
    }

    /// The footprint this source runs at, given the sweep's defaults
    /// for ordinary and JVM workloads. A scenario with a pinned
    /// `footprint` in its `[scenario]` table overrides both.
    pub fn footprint(&self, default: u64, spark_default: u64) -> u64 {
        match self {
            WorkloadSource::Catalogue(k) => {
                if k.is_jvm() {
                    spark_default
                } else {
                    default
                }
            }
            WorkloadSource::Scenario(s) => s.spec.footprint.unwrap_or(default),
        }
    }

    /// Builds the deterministic access stream, mirroring
    /// [`WorkloadKind::build`] semantics.
    pub fn build(&self, pid: Pid, footprint_pages: u64, seed: u64) -> Box<dyn AccessStream> {
        match self {
            WorkloadSource::Catalogue(k) => k.build(pid, footprint_pages, seed),
            WorkloadSource::Scenario(s) => s.spec.build(&s.name, pid, footprint_pages, seed),
        }
    }

    /// The tag the sweep cell cache keys on. Catalogue entries keep the
    /// bare name (so existing warm caches stay valid); scenarios append
    /// their file-content hash, so *editing* a scenario TOML invalidates
    /// every cached cell built from it.
    pub fn cache_tag(&self) -> String {
        match self {
            WorkloadSource::Catalogue(k) => k.name().to_string(),
            WorkloadSource::Scenario(s) => {
                format!("{}|content={:016x}", s.name, s.content_hash)
            }
        }
    }
}

/// Resolves a catalogue workload from a user-facing name: exact (the
/// Table IV name), slugged (`kmeans-omp`), or a unique lowercase prefix
/// (`quick` → Quicksort).
pub fn catalogue_by_name(input: &str) -> Option<WorkloadKind> {
    let want = normalize(input);
    if let Some(k) = WorkloadKind::ALL
        .iter()
        .find(|k| normalize(k.name()) == want)
    {
        return Some(*k);
    }
    let mut prefix_matches = WorkloadKind::ALL
        .iter()
        .filter(|k| normalize(k.name()).starts_with(&want));
    match (prefix_matches.next(), prefix_matches.next()) {
        (Some(k), None) => Some(*k),
        _ => None,
    }
}

/// Lowercases and maps every non-alphanumeric run to a single `-`.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn catalogue_lookup_accepts_names_slugs_and_prefixes() {
        assert_eq!(catalogue_by_name("Kmeans-OMP"), Some(WorkloadKind::Kmeans));
        assert_eq!(catalogue_by_name("kmeans-omp"), Some(WorkloadKind::Kmeans));
        assert_eq!(catalogue_by_name("quick"), Some(WorkloadKind::Quicksort));
        assert_eq!(catalogue_by_name("npb-mg"), Some(WorkloadKind::NpbMg));
        assert_eq!(catalogue_by_name("no-such-workload"), None);
    }

    #[test]
    fn catalogue_source_uses_jvm_footprint() {
        let k = WorkloadSource::Catalogue(WorkloadKind::Kmeans);
        assert_eq!(k.footprint(1024, 2048), 1024);
        assert!(!k.is_jvm());
        assert_eq!(k.cache_tag(), "Kmeans-OMP");
    }

    #[test]
    fn error_display_carries_location() {
        let e = ScnError::Parse {
            path: "scenarios/x.toml".into(),
            line: 7,
            detail: "unknown key `wieght`".into(),
        };
        assert_eq!(e.to_string(), "scenarios/x.toml:7: unknown key `wieght`");
        let f = ScnError::Format {
            path: "t.hst".into(),
            offset: 42,
            detail: "bad tag".into(),
        };
        assert!(f.to_string().contains("byte 42"));
    }
}
