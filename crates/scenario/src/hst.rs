//! The `.hst` on-disk trace format: versioned, delta-encoded page
//! accesses with a self-checking header and trailer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  "HOPPHST1"
//! version  u32      1
//! pid      u16      recording process id
//! footprnt u64      recorded footprint in pages (drives replay limits)
//! seed     u64      seed of the recorded run
//! source   u16+n    length-prefixed UTF-8 label of the recorded stream
//! fprint   u64      FNV-1a over the header bytes above (magic..label)
//! records  …        one variable-length record per access (below)
//! end tag  u8       0xFF
//! count    u64      number of records
//! checksum u64      FNV-1a over all record bytes
//! ```
//!
//! Each record is a *tag byte* plus only the fields that changed since
//! the previous record, followed by the VPN as a zigzag-LEB128 delta
//! from the previous VPN:
//!
//! ```text
//! bit 0  access is a write
//! bit 1  pid changed      → u16 follows
//! bit 2  lines changed    → u8 follows
//! bit 3  think_ns changed → u32 follows
//! ```
//!
//! Sequential single-process traces (the common case) cost 2 bytes per
//! access instead of the flat pagefile format's 16. The initial decoder
//! state is `vpn = 0, lines = 1, think_ns = 0` and the header's pid, so
//! encoder and decoder stay in lockstep without any seekable state —
//! both writer and reader are fully streaming.

use std::io::{self, Read, Write};
use std::path::Path;

use hopp_trace::AccessStream;
use hopp_types::{AccessKind, PageAccess, Pid, Vpn, LINES_PER_PAGE};

use crate::{fnv1a64, ScnError, ScnResult};

/// File magic: `HOPPHST1`.
pub const MAGIC: [u8; 8] = *b"HOPPHST1";
/// Current format version.
pub const VERSION: u32 = 1;

const TAG_WRITE: u8 = 0x01;
const TAG_PID: u8 = 0x02;
const TAG_LINES: u8 = 0x04;
const TAG_THINK: u8 = 0x08;
const TAG_ALL: u8 = TAG_WRITE | TAG_PID | TAG_LINES | TAG_THINK;
const TAG_END: u8 = 0xFF;

/// The decoder/encoder's shared initial state.
#[derive(Clone, Copy, Debug)]
struct Prev {
    pid: Pid,
    vpn: u64,
    lines: u8,
    think_ns: u32,
}

impl Prev {
    fn initial(pid: Pid) -> Self {
        Prev {
            pid,
            vpn: 0,
            lines: 1,
            think_ns: 0,
        }
    }
}

/// The `.hst` header: everything a replay needs to reproduce the
/// recorded run's shape (limits, seeds, labels) without re-deriving it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HstHeader {
    /// The recording process.
    pub pid: Pid,
    /// Footprint of the recorded workload in pages; replay uses it for
    /// the same cgroup-limit arithmetic as a live run.
    pub footprint_pages: u64,
    /// Seed of the recorded run (informational; replay needs no RNG).
    pub seed: u64,
    /// Label of the recorded stream (e.g. `Kmeans-OMP`).
    pub source: String,
}

impl HstHeader {
    /// Serializes the header (without magic/version), as fingerprinted.
    fn body_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.source.len());
        out.extend_from_slice(&self.pid.raw().to_le_bytes());
        out.extend_from_slice(&self.footprint_pages.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        let label = self.source.as_bytes();
        let len = u16::try_from(label.len().min(usize::from(u16::MAX))).unwrap_or(u16::MAX);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&label[..usize::from(len)]);
        out
    }

    fn fingerprint(&self) -> u64 {
        let mut all = Vec::new();
        all.extend_from_slice(&MAGIC);
        all.extend_from_slice(&VERSION.to_le_bytes());
        all.extend_from_slice(&self.body_bytes());
        fnv1a64(&all)
    }
}

fn zigzag_encode(delta: u64) -> u64 {
    // `delta` is the wrapping difference new - prev; reinterpret as a
    // signed magnitude so small backward steps stay small on disk.
    let signed = delta as i64;
    ((signed << 1) ^ (signed >> 63)) as u64
}

fn zigzag_decode(raw: u64) -> u64 {
    let signed = ((raw >> 1) as i64) ^ -((raw & 1) as i64);
    signed as u64
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Streaming `.hst` writer over any [`Write`] sink.
pub struct HstWriter<W: Write> {
    w: W,
    prev: Prev,
    count: u64,
    checksum: u64,
    buf: Vec<u8>,
}

impl<W: Write> HstWriter<W> {
    /// Writes the header and returns a writer ready for records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut w: W, header: &HstHeader) -> io::Result<Self> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&header.body_bytes())?;
        w.write_all(&header.fingerprint().to_le_bytes())?;
        Ok(HstWriter {
            w,
            prev: Prev::initial(header.pid),
            count: 0,
            checksum: 0xcbf2_9ce4_8422_2325,
            buf: Vec::with_capacity(16),
        })
    }

    /// Appends one access.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn push(&mut self, a: &PageAccess) -> io::Result<()> {
        self.buf.clear();
        let mut tag = 0u8;
        if a.kind == AccessKind::Write {
            tag |= TAG_WRITE;
        }
        if a.pid != self.prev.pid {
            tag |= TAG_PID;
        }
        if a.lines != self.prev.lines {
            tag |= TAG_LINES;
        }
        if a.think_ns != self.prev.think_ns {
            tag |= TAG_THINK;
        }
        self.buf.push(tag);
        if tag & TAG_PID != 0 {
            self.buf.extend_from_slice(&a.pid.raw().to_le_bytes());
        }
        if tag & TAG_LINES != 0 {
            self.buf.push(a.lines);
        }
        if tag & TAG_THINK != 0 {
            self.buf.extend_from_slice(&a.think_ns.to_le_bytes());
        }
        let delta = a.vpn.raw().wrapping_sub(self.prev.vpn);
        push_varint(&mut self.buf, zigzag_encode(delta));
        for &b in &self.buf {
            self.checksum ^= u64::from(b);
            self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.count += 1;
        self.prev = Prev {
            pid: a.pid,
            vpn: a.vpn.raw(),
            lines: a.lines,
            think_ns: a.think_ns,
        };
        self.w.write_all(&self.buf)
    }

    /// Writes the trailer (count + checksum) and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.write_all(&[TAG_END])?;
        self.w.write_all(&self.count.to_le_bytes())?;
        self.w.write_all(&self.checksum.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming `.hst` reader over any [`Read`] source. [`HstReader::next`]
/// yields typed errors; wrap in [`HstStream`] for the infallible
/// [`AccessStream`] interface.
pub struct HstReader<R: Read> {
    r: R,
    path: String,
    offset: u64,
    header: HstHeader,
    prev: Prev,
    count: u64,
    checksum: u64,
    finished: bool,
}

impl<R: Read> HstReader<R> {
    /// Reads and validates the header from an in-memory source.
    ///
    /// # Errors
    ///
    /// Returns [`ScnError::Format`] on bad magic/version/fingerprint
    /// and [`ScnError::Io`] on read failures.
    pub fn new(r: R) -> ScnResult<Self> {
        Self::with_path(r, "<stream>")
    }

    /// Like [`HstReader::new`], labelling errors with `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ScnError::Format`] on bad magic/version/fingerprint
    /// and [`ScnError::Io`] on read failures.
    pub fn with_path(r: R, path: &str) -> ScnResult<Self> {
        let mut rd = HstReader {
            r,
            path: path.to_string(),
            offset: 0,
            header: HstHeader {
                pid: Pid::KERNEL,
                footprint_pages: 0,
                seed: 0,
                source: String::new(),
            },
            prev: Prev::initial(Pid::KERNEL),
            count: 0,
            checksum: 0xcbf2_9ce4_8422_2325,
            finished: false,
        };
        let mut magic = [0u8; 8];
        rd.fill(&mut magic)?;
        if magic != MAGIC {
            return Err(rd.format_at(0, "not a .hst trace (bad magic)"));
        }
        let version = u32::from_le_bytes(rd.take()?);
        if version != VERSION {
            return Err(rd.format_at(8, format!("unsupported version {version} (want {VERSION})")));
        }
        let pid = Pid::new(u16::from_le_bytes(rd.take()?));
        let footprint_pages = u64::from_le_bytes(rd.take()?);
        let seed = u64::from_le_bytes(rd.take()?);
        let label_len = usize::from(u16::from_le_bytes(rd.take()?));
        let mut label = vec![0u8; label_len];
        rd.fill(&mut label)?;
        let source = match String::from_utf8(label) {
            Ok(s) => s,
            Err(_) => return Err(rd.format_here("source label is not UTF-8")),
        };
        rd.header = HstHeader {
            pid,
            footprint_pages,
            seed,
            source,
        };
        let stored = u64::from_le_bytes(rd.take()?);
        let expect = rd.header.fingerprint();
        if stored != expect {
            return Err(rd.format_here(format!(
                "header fingerprint mismatch (stored {stored:#018x}, computed {expect:#018x})"
            )));
        }
        rd.prev = Prev::initial(pid);
        Ok(rd)
    }

    /// The validated header.
    pub fn header(&self) -> &HstHeader {
        &self.header
    }

    /// Decodes the next access; `Ok(None)` after a valid trailer.
    ///
    /// # Errors
    ///
    /// Returns [`ScnError::Format`] on malformed records, a count or
    /// checksum mismatch, or truncation; [`ScnError::Io`] on read
    /// failures.
    // Not `Iterator`: decoding is fallible, so the signature is
    // `Result<Option<_>>` rather than `Option<Item>`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> ScnResult<Option<PageAccess>> {
        if self.finished {
            return Ok(None);
        }
        let at = self.offset;
        let [tag] = self.take::<1>()?;
        if tag == TAG_END {
            let count = u64::from_le_bytes(self.take()?);
            let checksum = u64::from_le_bytes(self.take()?);
            if count != self.count {
                return Err(self.format_at(
                    at,
                    format!(
                        "record count mismatch (trailer {count}, decoded {})",
                        self.count
                    ),
                ));
            }
            if checksum != self.checksum {
                return Err(self.format_at(at, "record checksum mismatch (corrupt trace)"));
            }
            self.finished = true;
            return Ok(None);
        }
        if tag & !TAG_ALL != 0 {
            return Err(self.format_at(at, format!("invalid record tag {tag:#04x}")));
        }
        self.hash(&[tag]);
        let pid = if tag & TAG_PID != 0 {
            let raw = self.take::<2>()?;
            self.hash(&raw);
            Pid::new(u16::from_le_bytes(raw))
        } else {
            self.prev.pid
        };
        let lines = if tag & TAG_LINES != 0 {
            let [l] = self.take::<1>()?;
            self.hash(&[l]);
            l
        } else {
            self.prev.lines
        };
        if lines == 0 || usize::from(lines) > LINES_PER_PAGE {
            return Err(self.format_at(at, format!("invalid line count {lines} (want 1..=64)")));
        }
        let think_ns = if tag & TAG_THINK != 0 {
            let raw = self.take::<4>()?;
            self.hash(&raw);
            u32::from_le_bytes(raw)
        } else {
            self.prev.think_ns
        };
        let delta = zigzag_decode(self.read_varint(at)?);
        let vpn = self.prev.vpn.wrapping_add(delta);
        self.prev = Prev {
            pid,
            vpn,
            lines,
            think_ns,
        };
        self.count += 1;
        Ok(Some(PageAccess {
            pid,
            vpn: Vpn::new(vpn),
            kind: if tag & TAG_WRITE != 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            lines,
            think_ns,
        }))
    }

    fn read_varint(&mut self, at: u64) -> ScnResult<u64> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let [byte] = self.take::<1>()?;
            self.hash(&[byte]);
            if shift >= 63 && byte > 1 {
                return Err(self.format_at(at, "VPN delta varint overflows 64 bits"));
            }
            out |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(self.format_at(at, "VPN delta varint longer than 10 bytes"));
            }
        }
    }

    fn hash(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.checksum ^= u64::from(b);
            self.checksum = self.checksum.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn take<const N: usize>(&mut self) -> ScnResult<[u8; N]> {
        let mut buf = [0u8; N];
        self.fill(&mut buf)?;
        Ok(buf)
    }

    fn fill(&mut self, buf: &mut [u8]) -> ScnResult<()> {
        match self.r.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                Err(self.format_here("unexpected end of file (truncated trace)"))
            }
            Err(e) => Err(ScnError::Io {
                path: self.path.clone(),
                detail: e.to_string(),
            }),
        }
    }

    fn format_at(&self, offset: u64, detail: impl Into<String>) -> ScnError {
        ScnError::Format {
            path: self.path.clone(),
            offset,
            detail: detail.into(),
        }
    }

    fn format_here(&self, detail: impl Into<String>) -> ScnError {
        self.format_at(self.offset, detail)
    }
}

/// Infallible [`AccessStream`] adapter over a streaming [`HstReader`]:
/// decode errors end the stream and are held for inspection via
/// [`HstStream::error`]. Prefer [`read_file`] + [`HstTrace::into_stream`]
/// when errors must surface before a run starts.
pub struct HstStream<R: Read> {
    reader: HstReader<R>,
    error: Option<ScnError>,
}

impl<R: Read> HstStream<R> {
    /// Wraps a reader.
    pub fn new(reader: HstReader<R>) -> Self {
        HstStream {
            reader,
            error: None,
        }
    }

    /// The decode error that ended the stream early, if any.
    pub fn error(&self) -> Option<&ScnError> {
        self.error.as_ref()
    }
}

impl<R: Read> AccessStream for HstStream<R> {
    fn next_access(&mut self) -> Option<PageAccess> {
        if self.error.is_some() {
            return None;
        }
        match self.reader.next() {
            Ok(acc) => acc,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }

    fn name(&self) -> &str {
        "hst-stream"
    }
}

/// A fully loaded and validated trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HstTrace {
    /// The file header.
    pub header: HstHeader,
    /// Every recorded access, in order.
    pub accesses: Vec<PageAccess>,
}

impl HstTrace {
    /// Consumes the trace into a replaying [`AccessStream`].
    pub fn into_stream(self) -> HstReplay {
        HstReplay {
            accesses: self.accesses.into_iter(),
        }
    }
}

/// Replays a validated [`HstTrace`] as an [`AccessStream`].
#[derive(Clone, Debug)]
pub struct HstReplay {
    accesses: std::vec::IntoIter<PageAccess>,
}

impl AccessStream for HstReplay {
    fn next_access(&mut self) -> Option<PageAccess> {
        self.accesses.next()
    }

    fn name(&self) -> &str {
        "hst-replay"
    }
}

/// Reads and fully validates a `.hst` file (header fingerprint, every
/// record, trailer count and checksum).
///
/// # Errors
///
/// Returns [`ScnError::Io`] on filesystem failures and
/// [`ScnError::Format`] on any malformed content.
pub fn read_file(path: &Path) -> ScnResult<HstTrace> {
    let shown = path.display().to_string();
    let file = std::fs::File::open(path).map_err(|e| ScnError::Io {
        path: shown.clone(),
        detail: e.to_string(),
    })?;
    let mut reader = HstReader::with_path(io::BufReader::new(file), &shown)?;
    let mut accesses = Vec::new();
    while let Some(acc) = reader.next()? {
        accesses.push(acc);
    }
    Ok(HstTrace {
        header: reader.header.clone(),
        accesses,
    })
}

/// Drains `stream` into a `.hst` file under `header`; returns the
/// record count.
///
/// # Errors
///
/// Returns [`ScnError::Io`] on filesystem failures.
pub fn record_file(
    path: &Path,
    header: &HstHeader,
    stream: &mut dyn AccessStream,
) -> ScnResult<u64> {
    let shown = path.display().to_string();
    let io_err = |e: io::Error| ScnError::Io {
        path: shown.clone(),
        detail: e.to_string(),
    };
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut writer = HstWriter::new(io::BufWriter::new(file), header).map_err(io_err)?;
    let mut count = 0;
    while let Some(acc) = stream.next_access() {
        writer.push(&acc).map_err(io_err)?;
        count += 1;
    }
    writer.finish().map_err(io_err)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> HstHeader {
        HstHeader {
            pid: Pid::new(1),
            footprint_pages: 1024,
            seed: 42,
            source: "Kmeans-OMP".to_string(),
        }
    }

    fn roundtrip(accesses: &[PageAccess]) -> Vec<PageAccess> {
        let mut w = HstWriter::new(Vec::new(), &header()).unwrap();
        for a in accesses {
            w.push(a).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = HstReader::new(&bytes[..]).unwrap();
        let mut out = Vec::new();
        while let Some(a) = r.next().unwrap() {
            out.push(a);
        }
        out
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn sequential_trace_is_two_bytes_per_record() {
        let accesses: Vec<PageAccess> = (0..1000)
            .map(|i| PageAccess::read(Pid::new(1), Vpn::new(1_000_000 + i)))
            .collect();
        let mut w = HstWriter::new(Vec::new(), &header()).unwrap();
        for a in &accesses {
            w.push(a).unwrap();
        }
        let bytes = w.finish().unwrap();
        // First record carries lines=64 (differs from initial 1) and a
        // 3-byte base-VPN delta; every later record is tag + 1-byte delta.
        let body = bytes.len() - (8 + 4 + 2 + 8 + 8 + 2 + 10 + 8) - (1 + 8 + 8);
        assert!(
            body <= 2 * accesses.len() + 8,
            "body {body} bytes for {} records",
            accesses.len()
        );
        assert_eq!(roundtrip(&accesses), accesses);
    }

    #[test]
    fn mixed_fields_roundtrip_exactly() {
        let accesses = vec![
            PageAccess::read(Pid::new(1), Vpn::new(100)),
            PageAccess::write(Pid::new(2), Vpn::new(50)).with_lines(3),
            PageAccess::read(Pid::new(1), Vpn::new(u64::MAX)).with_think(123_456),
            PageAccess::read(Pid::new(1), Vpn::new(0)),
            PageAccess::write(Pid::new(65535), Vpn::new(1)).with_lines(64),
        ];
        assert_eq!(roundtrip(&accesses), accesses);
    }

    #[test]
    fn bad_magic_version_and_truncation_are_typed_errors() {
        let mut w = HstWriter::new(Vec::new(), &header()).unwrap();
        w.push(&PageAccess::read(Pid::new(1), Vpn::new(7))).unwrap();
        let good = w.finish().unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            HstReader::new(&bad_magic[..]),
            Err(ScnError::Format { offset: 0, .. })
        ));

        let mut bad_version = good.clone();
        bad_version[8] = 9;
        assert!(matches!(
            HstReader::new(&bad_version[..]),
            Err(ScnError::Format { .. })
        ));

        let truncated = &good[..good.len() - 3];
        let mut r = HstReader::new(truncated).unwrap();
        let mut last = Ok(None);
        for _ in 0..4 {
            last = r.next();
            if last.is_err() {
                break;
            }
        }
        assert!(matches!(last, Err(ScnError::Format { .. })));
    }

    #[test]
    fn corrupt_record_fails_the_checksum() {
        let mut w = HstWriter::new(Vec::new(), &header()).unwrap();
        for i in 0..10 {
            w.push(&PageAccess::read(Pid::new(1), Vpn::new(100 + i)))
                .unwrap();
        }
        let mut bytes = w.finish().unwrap();
        // Flip a delta byte inside the record region (after the header,
        // before the 17-byte trailer).
        let idx = bytes.len() - 18;
        bytes[idx] ^= 0x01;
        let mut r = HstReader::new(&bytes[..]).unwrap();
        let mut err = None;
        loop {
            match r.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(ScnError::Format { .. })));
    }

    #[test]
    fn header_fingerprint_detects_tampering() {
        let w = HstWriter::new(Vec::new(), &header()).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[14] ^= 0xFF; // footprint byte
        assert!(matches!(
            HstReader::new(&bytes[..]),
            Err(ScnError::Format { .. })
        ));
    }

    #[test]
    fn hst_stream_adapter_replays_and_holds_errors() {
        let mut w = HstWriter::new(Vec::new(), &header()).unwrap();
        w.push(&PageAccess::read(Pid::new(1), Vpn::new(9))).unwrap();
        let bytes = w.finish().unwrap();
        let mut s = HstStream::new(HstReader::new(&bytes[..]).unwrap());
        assert_eq!(s.next_access().map(|a| a.vpn), Some(Vpn::new(9)));
        assert_eq!(s.next_access(), None);
        assert!(s.error().is_none());

        let truncated = &bytes[..bytes.len() - 1];
        let mut s = HstStream::new(HstReader::new(truncated).unwrap());
        while s.next_access().is_some() {}
        assert!(s.error().is_some());
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let path = std::env::temp_dir().join(format!("hopp_scn_{}.hst", std::process::id()));
        let mut src = hopp_trace::patterns::SimpleStream::new(Pid::new(4), Vpn::new(77), -3, 20);
        let n = record_file(&path, &header(), &mut src).unwrap();
        assert_eq!(n, 20);
        let trace = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace.header, header());
        assert_eq!(trace.accesses.len(), 20);
        let mut replay = trace.into_stream();
        assert_eq!(replay.name(), "hst-replay");
        assert_eq!(replay.next_access().map(|a| a.vpn), Some(Vpn::new(77)));
    }
}
