//! Property-style tests: the `.hst` encoder/decoder round-trips
//! arbitrary access sequences losslessly.
//!
//! The workspace has no proptest dependency, so "arbitrary" means
//! SplitMix64-driven generation over many fixed seeds — deterministic,
//! replayable, and wide enough to hit every encoder path: zigzag VPN
//! deltas of every sign and magnitude, pid switches, line-count and
//! think-time changes in every combination, plus the 8-bit-style
//! wrap-around sequences an HMTT-grade hardware tracer emits.

use hopp_scn::{HstHeader, HstReader, HstWriter};
use hopp_types::rng::SplitMix64;
use hopp_types::{PageAccess, Pid, Vpn};

fn header(seed: u64) -> HstHeader {
    HstHeader {
        pid: Pid::new(7),
        footprint_pages: 4_096,
        seed,
        source: format!("prop-{seed}"),
    }
}

/// Encodes `accesses` to an in-memory `.hst` and decodes it back.
fn roundtrip(head: &HstHeader, accesses: &[PageAccess]) -> Vec<PageAccess> {
    let mut writer = HstWriter::new(Vec::new(), head).expect("write header");
    for a in accesses {
        writer.push(a).expect("encode record");
    }
    let bytes = writer.finish().expect("finish trace");
    let mut reader = HstReader::new(bytes.as_slice()).expect("read header");
    assert_eq!(reader.header(), head, "header survives the roundtrip");
    let mut out = Vec::new();
    while let Some(a) = reader.next().expect("decode record") {
        out.push(a);
    }
    out
}

/// One arbitrary access. Magnitudes are chosen to cross every zigzag
/// LEB128 width class (1 through 10 bytes) and both delta signs.
fn arbitrary_access(rng: &mut SplitMix64, prev_vpn: u64) -> PageAccess {
    let pid = Pid::new((rng.next_u64() % 5) as u16 + 1);
    let vpn = match rng.next_u64() % 6 {
        // Small forward/backward steps: the common 1-byte delta.
        0 => prev_vpn.wrapping_add(rng.next_u64() % 4),
        1 => prev_vpn.saturating_sub(rng.next_u64() % 4),
        // Mid-range jumps.
        2 => prev_vpn.wrapping_add(rng.next_u64() % (1 << 20)),
        3 => prev_vpn.saturating_sub(rng.next_u64() % (1 << 20)),
        // Anywhere in the 52-bit VPN space, including huge deltas.
        _ => rng.next_u64() >> 12,
    };
    let mut a = if rng.gen_bool(0.3) {
        PageAccess::write(pid, Vpn::new(vpn))
    } else {
        PageAccess::read(pid, Vpn::new(vpn))
    };
    if rng.gen_bool(0.4) {
        a = a.with_lines((rng.next_u64() % 64) as u8 + 1);
    }
    if rng.gen_bool(0.4) {
        a = a.with_think((rng.next_u64() % 100_000) as u32);
    }
    a
}

#[test]
fn arbitrary_sequences_roundtrip_losslessly() {
    for seed in 0..32 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let len = (rng.next_u64() % 500) as usize;
        let mut accesses = Vec::with_capacity(len);
        let mut prev = 0u64;
        for _ in 0..len {
            let a = arbitrary_access(&mut rng, prev);
            prev = a.vpn.raw();
            accesses.push(a);
        }
        let decoded = roundtrip(&header(seed), &accesses);
        assert_eq!(decoded, accesses, "seed {seed}: lossless roundtrip");
    }
}

#[test]
fn empty_trace_roundtrips() {
    assert!(roundtrip(&header(0), &[]).is_empty());
}

/// The shapes an HMTT-style hardware tracer produces: its on-the-wire
/// sequence numbers and timestamps are 8-bit counters, so a software
/// decoder sees them wrap every 256 events and must reconstruct the
/// widened values. Our `.hst` records carry the *reconstructed* stream;
/// this test pins down that periods of exactly 256 (and off-by-one
/// neighbours) survive encoding — the wrap cadence must not alias with
/// the delta encoder's state resets.
#[test]
fn hmtt_style_wrapping_counters_roundtrip() {
    for period in [255u64, 256, 257] {
        let mut accesses = Vec::new();
        for tick in 0..(3 * period + 7) {
            // A think time that wraps like an 8-bit timestamp counter,
            // and a VPN that snaps back to base every `period` ticks
            // like a wrapped sequence number replayed in order.
            let wrapped = tick % period;
            let a = PageAccess::read(Pid::new(1), Vpn::new(1_000 + wrapped))
                .with_think((wrapped % 256) as u32)
                .with_lines((wrapped % 64) as u8 + 1);
            accesses.push(a);
        }
        let decoded = roundtrip(&header(period), &accesses);
        assert_eq!(decoded, accesses, "period {period}: wraps survive");
    }
}

/// Consecutive duplicates, alternating pids, and a monotone ramp that
/// crosses u32/u53 boundaries — the encoder's "everything changed" and
/// "nothing changed" extremes.
#[test]
fn degenerate_sequences_roundtrip() {
    let dup = vec![PageAccess::read(Pid::new(2), Vpn::new(42)); 300];
    assert_eq!(roundtrip(&header(1), &dup), dup);

    let mut alternating = Vec::new();
    for i in 0..257u64 {
        let pid = Pid::new(if i % 2 == 0 { 1 } else { 2 });
        alternating.push(PageAccess::write(pid, Vpn::new(i * 3)));
    }
    assert_eq!(roundtrip(&header(2), &alternating), alternating);

    let ramp: Vec<PageAccess> = (0..40)
        .map(|i| PageAccess::read(Pid::new(3), Vpn::new(1u64 << i)))
        .collect();
    assert_eq!(roundtrip(&header(3), &ramp), ramp);
}
