//! `hoppsim` — run a disaggregated-memory simulation from the command
//! line.
//!
//! ```text
//! hoppsim --workload kmeans --system hopp --ratio 0.5
//! hoppsim --workload npb-mg --system depth-32 --footprint 8192
//! hoppsim --workload microbench --system hopp --intensity 2 --channels 4
//! hoppsim --workload kmeans --system hopp --trace-out t.json --metrics-json m.json
//! hoppsim --scenario scenarios/drifting-mix.toml --system hopp
//! hoppsim --workload kmeans --record-trace k.hst --metrics-json a.json
//! hoppsim --replay-trace k.hst --metrics-json b.json   # a.json == b.json
//! hoppsim --list
//! ```

use std::path::Path;

use hopp_core::policy::{HugeBatchConfig, PolicyConfig};
use hopp_core::{HoppConfig, MarkovConfig, TrainerKind};
use hopp_obs::{events_to_chrome_trace_with_extra, ObsLevel};
use hopp_scn::{hst, HstHeader, Scenario};
use hopp_sim::{
    run_stream_with, run_workload_with, run_workload_with_faults, BaselineKind, FabricConfig,
    FaultScript, PlacementKind, SimConfig, SimReport, SystemConfig,
};
use hopp_trace::AccessStream;
use hopp_workloads::WorkloadKind;

/// Count heap allocations per thread so `--prof-json` spans can report
/// allocation churn alongside wall time (allocators are per-binary).
#[global_allocator]
static ALLOC: hopp_prof::alloc::CountingAlloc = hopp_prof::alloc::CountingAlloc;

#[derive(Debug)]
struct Args {
    workload: WorkloadKind,
    system: String,
    ratio: f64,
    footprint: u64,
    seed: u64,
    channels: usize,
    llc_kb: Option<usize>,
    llc_hit_ns: Option<u64>,
    hpd_threshold: Option<u32>,
    rpt_kb: Option<usize>,
    slack_frames: Option<usize>,
    reclaim_cost_ns: Option<u64>,
    direct_reclaim: bool,
    intensity: u32,
    huge_batch: bool,
    markov: bool,
    fixed_offset: Option<f64>,
    record: Option<String>,
    replay: Option<String>,
    scenario: Option<String>,
    record_trace: Option<String>,
    replay_trace: Option<String>,
    volatile: bool,
    mem_nodes: usize,
    placement: PlacementKind,
    replication: usize,
    fault_script: Option<FaultScript>,
    imprecise_lru: bool,
    reclaim_window_ms: Option<u64>,
    remote_capacity: Option<usize>,
    timeline: Option<u64>,
    obs_level: Option<ObsLevel>,
    trace_out: Option<String>,
    metrics_json: Option<String>,
    timeline_out: Option<String>,
    prof_json: Option<String>,
    prof_folded: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: WorkloadKind::Kmeans,
            system: "hopp".to_string(),
            ratio: 0.5,
            footprint: 4_096,
            seed: 42,
            channels: 1,
            llc_kb: None,
            llc_hit_ns: None,
            hpd_threshold: None,
            rpt_kb: None,
            slack_frames: None,
            reclaim_cost_ns: None,
            direct_reclaim: false,
            intensity: 1,
            huge_batch: false,
            markov: false,
            fixed_offset: None,
            record: None,
            replay: None,
            scenario: None,
            record_trace: None,
            replay_trace: None,
            volatile: false,
            mem_nodes: 1,
            placement: PlacementKind::default(),
            replication: 1,
            fault_script: None,
            imprecise_lru: false,
            reclaim_window_ms: None,
            remote_capacity: None,
            timeline: None,
            obs_level: None,
            trace_out: None,
            metrics_json: None,
            timeline_out: None,
            prof_json: None,
            prof_folded: None,
        }
    }
}

fn workload_by_name(name: &str) -> Option<WorkloadKind> {
    let exact = WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name) || slug(k.name()) == slug(name));
    if exact.is_some() {
        return exact;
    }
    // The paper's shorthand for the OMP variant.
    if slug(name) == "kmeans" {
        return Some(WorkloadKind::Kmeans);
    }
    // Fall back to a unique prefix ("quick" → "quicksort").
    let mut hits = WorkloadKind::ALL
        .into_iter()
        .filter(|k| slug(k.name()).starts_with(&slug(name)));
    let first = hits.next()?;
    hits.next().is_none().then_some(first)
}

fn slug(s: &str) -> String {
    s.to_ascii_lowercase().replace(['-', '_'], "")
}

fn usage() -> ! {
    eprintln!(
        "usage: hoppsim [options]\n\
         \n  --workload <name>    one of the 15 paper workloads (--list)\
         \n  --system <name>      hopp | fastswap | leap | vma | no-prefetch | depth-<N>\
         \n  --ratio <f>          local memory / footprint (default 0.5)\
         \n  --footprint <pages>  heap size in 4 KB pages (default 4096)\
         \n  --seed <n>           workload RNG seed (default 42)\
         \n  --channels <n>       interleaved memory channels (default 1)\
         \n  --llc-kb <n>         LLC capacity in KiB (default 2048)\
         \n  --llc-hit-ns <n>     LLC hit cost in ns (default 1)\
         \n  --hpd-threshold <n>  HPD hot-page threshold N (default 16)\
         \n  --rpt-kb <n>         RPT cache capacity in KiB (default 64)\
         \n  --slack-frames <n>   frame headroom beyond cgroup limits (default 512)\
         \n  --reclaim-cost-ns <n> per-page reclaim cost in ns (default 3000)\
         \n  --direct-reclaim     charge reclaim to the faulting path (pre-v5.8)\
         \n  --intensity <n>      pages per hot page (hopp only, default 1)\
         \n  --offset <i>         pin the prefetch offset (hopp only)\
         \n  --huge-batch         enable 2 MB batched prefetch (hopp only)\
         \n  --markov             use the Markov trainer (hopp only)\
         \n  --record <file>      dump the workload's page trace and exit\
         \n  --replay <file>      run the simulation from a recorded trace\
         \n  --scenario <file>    run a scenario DSL file instead of --workload (docs/scenarios.md)\
         \n  --record-trace <file> capture the run's accesses as a .hst trace, then run normally\
         \n  --replay-trace <file> replay a .hst trace bit-identically (ignores --workload)\
         \n  --volatile           periodic 8x network congestion bursts\
         \n  --jitter <mode>      bursty | off (same as --volatile, default off)\
         \n  --mem-nodes <n>      memory nodes in the remote pool (default 1)\
         \n  --placement <p>      hash | rr | stream page placement (default hash)\
         \n  --replication <r>    replicas per page, 1..=nodes (default 1)\
         \n  --fault-script <s>   scripted node faults, e.g. \"5:0:slow:4,20:1:down\"\
         \n  --imprecise-lru      fault-order LRU (no accessed-bit scans)\
         \n  --reclaim-window <ms> trace-assisted reclaim hot window\
         \n  --remote-capacity <pages> cap the remote memory node\
         \n  --timeline <accesses> print fault counts per window of N accesses\
         \n  --obs-level <l>      off | counters | full (default counters)\
         \n  --trace-out <file>   write a Chrome/Perfetto trace (implies full)\
         \n  --metrics-json <file> write counters + latency percentiles as JSON\
         \n  --timeline-out <file> write timeline samples as CSV\
         \n  --prof-json <file>   write the host self-profile (time + allocs per span) as JSON\
         \n  --prof-folded <file> write the host self-profile as collapsed stacks (flamegraph input)\
         \n  --list               list workloads and exit\
         \n  --help               show this message"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--workload" => {
                let v = value("--workload");
                args.workload = workload_by_name(&v).unwrap_or_else(|| {
                    eprintln!("unknown workload {v:?} (try --list)");
                    usage()
                });
            }
            "--system" => args.system = value("--system"),
            "--ratio" => args.ratio = value("--ratio").parse().unwrap_or_else(|_| usage()),
            "--footprint" => {
                args.footprint = value("--footprint").parse().unwrap_or_else(|_| usage());
            }
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--channels" => args.channels = value("--channels").parse().unwrap_or_else(|_| usage()),
            "--llc-kb" => {
                args.llc_kb = Some(value("--llc-kb").parse().unwrap_or_else(|_| usage()));
            }
            "--llc-hit-ns" => {
                args.llc_hit_ns = Some(value("--llc-hit-ns").parse().unwrap_or_else(|_| usage()));
            }
            "--hpd-threshold" => {
                args.hpd_threshold =
                    Some(value("--hpd-threshold").parse().unwrap_or_else(|_| usage()));
            }
            "--rpt-kb" => args.rpt_kb = Some(value("--rpt-kb").parse().unwrap_or_else(|_| usage())),
            "--slack-frames" => {
                args.slack_frames =
                    Some(value("--slack-frames").parse().unwrap_or_else(|_| usage()));
            }
            "--reclaim-cost-ns" => {
                args.reclaim_cost_ns = Some(
                    value("--reclaim-cost-ns")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--direct-reclaim" => args.direct_reclaim = true,
            "--intensity" => {
                args.intensity = value("--intensity").parse().unwrap_or_else(|_| usage());
            }
            "--offset" => {
                args.fixed_offset = Some(value("--offset").parse().unwrap_or_else(|_| usage()));
            }
            "--huge-batch" => args.huge_batch = true,
            "--markov" => args.markov = true,
            "--record" => args.record = Some(value("--record")),
            "--replay" => args.replay = Some(value("--replay")),
            "--scenario" => args.scenario = Some(value("--scenario")),
            "--record-trace" => args.record_trace = Some(value("--record-trace")),
            "--replay-trace" => args.replay_trace = Some(value("--replay-trace")),
            "--volatile" => args.volatile = true,
            "--jitter" => {
                let v = value("--jitter");
                args.volatile = match v.as_str() {
                    "bursty" => true,
                    "off" => false,
                    _ => {
                        eprintln!("unknown jitter mode {v:?} (bursty | off)");
                        usage();
                    }
                };
            }
            "--mem-nodes" => {
                args.mem_nodes = value("--mem-nodes").parse().unwrap_or_else(|_| usage());
            }
            "--placement" => {
                let v = value("--placement");
                args.placement = PlacementKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown placement {v:?} (hash | rr | stream)");
                    usage()
                });
            }
            "--replication" => {
                args.replication = value("--replication").parse().unwrap_or_else(|_| usage());
            }
            "--fault-script" => {
                let v = value("--fault-script");
                args.fault_script = Some(FaultScript::parse(&v).unwrap_or_else(|e| {
                    eprintln!("bad fault script: {e}");
                    usage()
                }));
            }
            "--imprecise-lru" => args.imprecise_lru = true,
            "--reclaim-window" => {
                args.reclaim_window_ms = Some(
                    value("--reclaim-window")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--remote-capacity" => {
                args.remote_capacity = Some(
                    value("--remote-capacity")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                );
            }
            "--timeline" => {
                args.timeline = Some(value("--timeline").parse().unwrap_or_else(|_| usage()));
            }
            "--obs-level" => {
                let v = value("--obs-level");
                args.obs_level = Some(ObsLevel::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown obs level {v:?} (off | counters | full)");
                    usage()
                }));
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--metrics-json" => args.metrics_json = Some(value("--metrics-json")),
            "--timeline-out" => args.timeline_out = Some(value("--timeline-out")),
            "--prof-json" => args.prof_json = Some(value("--prof-json")),
            "--prof-folded" => args.prof_folded = Some(value("--prof-folded")),
            "--list" => {
                println!("{:<13} {:>6} {:>5}  model", "workload", "GB", "cores");
                for k in WorkloadKind::ALL {
                    println!(
                        "{:<13} {:>6} {:>5}  {}",
                        k.name(),
                        k.paper_footprint_gb(),
                        k.paper_cores(),
                        k.description()
                    );
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn system_of(args: &Args) -> SystemConfig {
    if let Some(depth) = args.system.strip_prefix("depth-") {
        let n: usize = depth.parse().unwrap_or_else(|_| usage());
        return SystemConfig::Baseline(BaselineKind::DepthN(n));
    }
    match args.system.as_str() {
        "fastswap" => SystemConfig::Baseline(BaselineKind::Fastswap),
        "leap" => SystemConfig::Baseline(BaselineKind::Leap),
        "vma" => SystemConfig::Baseline(BaselineKind::Vma),
        "no-prefetch" | "none" => SystemConfig::Baseline(BaselineKind::NoPrefetch),
        "hopp" => {
            let policy = PolicyConfig {
                intensity: args.intensity,
                fixed_offset: args.fixed_offset,
                huge_batch: args.huge_batch.then(HugeBatchConfig::default),
                ..PolicyConfig::default()
            };
            let trainer = if args.markov {
                TrainerKind::Markov(MarkovConfig::default())
            } else {
                TrainerKind::ThreeTier
            };
            SystemConfig::hopp_with(HoppConfig {
                policy,
                trainer,
                ..HoppConfig::default()
            })
        }
        other => {
            eprintln!("unknown system {other:?}");
            usage();
        }
    }
}

/// A fatal run error (lost page, exhausted pool) ends the CLI with the
/// error's full context on stderr and a non-zero exit code. Takes the
/// error by value to slot into `unwrap_or_else` directly.
#[allow(clippy::needless_pass_by_value)]
fn fail_run(e: hopp_types::Error) -> SimReport {
    eprintln!("run failed: {e}");
    std::process::exit(1);
}

fn print_report(args: &Args, label: &str, local_ns: f64, r: &SimReport) {
    let normalized = local_ns / r.completion.as_nanos() as f64;
    println!("workload          {label}");
    println!(
        "system            {} ({:.0}% local)",
        r.system,
        args.ratio * 100.0
    );
    println!("completion        {}", r.completion);
    println!("normalized perf   {normalized:.3}");
    let c = &r.counters;
    println!(
        "faults            {} major, {} prefetch-hit, {} first-touch, {} in-flight waits",
        c.major_faults, c.minor_faults, c.first_touches, c.inflight_waits
    );
    println!(
        "prefetching       accuracy {:.1}%  coverage {:.1}%  (fault-path {:.1}% + hopp-injected {:.1}%)",
        r.accuracy() * 100.0,
        r.coverage() * 100.0,
        r.coverage_swapcache() * 100.0,
        r.coverage_injected() * 100.0
    );
    println!(
        "network           {} reads, {} writebacks, {} MB moved",
        r.rdma.reads,
        r.rdma.writes,
        r.rdma.bytes / (1024 * 1024)
    );
    if let Some(f) = &r.fabric {
        println!(
            "memory pool       {} nodes, {} placement, replication {}, {} failovers, {} failed writes",
            f.nodes.len(),
            f.placement,
            f.replication,
            f.failovers,
            f.failed_writes
        );
        for n in &f.nodes {
            println!(
                "  {}           {} reads, {} writes, {} placed, {} retries, {} timeouts{}",
                n.node,
                n.link.reads,
                n.link.writes,
                n.placed,
                n.retries,
                n.timeouts,
                if n.lost { ", LOST" } else { "" }
            );
        }
    }
    println!(
        "hardware          {} hot pages ({:.2}% of misses), RPT hit rate {:.1}%, HPD bw {:.3}%",
        r.hpd.hot_pages,
        r.hpd.hot_ratio() * 100.0,
        r.rpt.hit_rate() * 100.0,
        r.ledger.hpd_overhead_percent()
    );
    if let Some(h) = &r.hopp {
        println!(
            "hopp data path    {} injected, {} DRAM-hits, mean timeliness {}",
            h.prefetched, h.prefetch_hits, h.mean_timeliness
        );
    }
    if let Some(t) = &r.tier_stats {
        println!(
            "tier mix          SSP {}  LSP {}  RSP {}  unclassified {}",
            t.simple, t.ladder, t.ripple, t.unclassified
        );
    }
    if r.obs.level.histograms() {
        let l = &r.obs.latency;
        let fmt = |s: &hopp_obs::HistogramSummary| {
            format!(
                "p50 {} p99 {} max {} ({} samples)",
                hopp_types::Nanos::from_nanos(s.p50),
                hopp_types::Nanos::from_nanos(s.p99),
                hopp_types::Nanos::from_nanos(s.max),
                s.count
            )
        };
        println!("major-fault lat   {}", fmt(&l.major_fault));
        println!("timeliness        {}", fmt(&l.timeliness));
        println!("inflight wait     {}", fmt(&l.inflight_wait));
        println!("rdma read         {}", fmt(&l.rdma_read));
        if l.rdma_write.count > 0 {
            println!("rdma write        {}", fmt(&l.rdma_write));
        }
    }
    if !r.timeline.is_empty() {
        println!("\ntimeline (per-window major faults / prefetch-hits):");
        let mut prev = (0u64, 0u64);
        for (i, s) in r.timeline.iter().enumerate() {
            println!(
                "  w{:<3} @{:<12} major {:<6} p-hit {:<6}",
                i + 1,
                format!("{}", s.at),
                s.major_faults - prev.0,
                s.minor_faults - prev.1,
            );
            prev = (s.major_faults, s.minor_faults);
        }
    }
}

/// True when the run should carry the host self-profiler.
fn profiling(args: &Args) -> bool {
    args.prof_json.is_some() || args.prof_folded.is_some()
}

/// Arms the profiler for the measured run (a no-op when no `--prof-*`
/// flag was given). Span events — needed only to merge host spans onto
/// the Chrome trace — are retained only when a trace is requested.
fn prof_begin(args: &Args, workload: &str) {
    if profiling(args) {
        hopp_prof::enable(args.trace_out.is_some());
        hopp_prof::set_key(workload, &args.system, "run");
    }
}

/// Writes the side outputs (`--trace-out`, `--metrics-json`,
/// `--timeline-out`, `--prof-json`, `--prof-folded`) after a run.
fn write_outputs(args: &Args, r: &SimReport, prof: Option<&hopp_prof::ProfReport>) {
    let write = |path: &str, contents: String, what: &str| {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("writing {what} to {path}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.trace_out {
        // Host profiler spans ride along as a second process ("host")
        // next to the simulated-time tracks.
        let extra = prof.map(hopp_prof::ProfReport::chrome_trace_fragment);
        let trace =
            events_to_chrome_trace_with_extra(&r.obs.events, extra.as_deref().unwrap_or(""));
        write(path, trace, "trace");
        println!(
            "\ntrace             {} events -> {path} ({} dropped; open in Perfetto)",
            r.obs.events.len(),
            r.obs.dropped_events
        );
    }
    if let Some(path) = &args.metrics_json {
        write(path, r.metrics_json(), "metrics");
        println!("metrics           -> {path}");
    }
    if let Some(path) = &args.timeline_out {
        write(path, r.timeline_csv(), "timeline");
        println!("timeline          {} samples -> {path}", r.timeline.len());
    }
    if let Some(p) = prof {
        if let Some(path) = &args.prof_json {
            write(path, p.to_json(), "profile");
            println!(
                "profile           {} spans, {} of host time -> {path}",
                p.nodes.len(),
                hopp_types::Nanos::from_nanos(p.attributed_ns())
            );
        }
        if let Some(path) = &args.prof_folded {
            write(path, p.to_folded(), "folded profile");
            println!("folded profile    -> {path} (feed to flamegraph.pl / inferno)");
        }
    }
}

use hopp_sim::runner::SOLO_PID;

/// Builds a fresh copy of the run's access stream (catalogue workload
/// or `--scenario`); streams are deterministic, so every instance
/// yields the same sequence.
fn build_stream(args: &Args, scenario: Option<&Scenario>, footprint: u64) -> Box<dyn AccessStream> {
    match scenario {
        Some(s) => s.spec.build(&s.name, SOLO_PID, footprint, args.seed),
        None => args.workload.build(SOLO_PID, args.footprint, args.seed),
    }
}

fn main() {
    let args = parse_args();

    let scenario = args.scenario.as_ref().map(|p| {
        Scenario::from_file(Path::new(p)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    let source_footprint = scenario
        .as_ref()
        .and_then(|s| s.spec.footprint)
        .unwrap_or(args.footprint);

    if let Some(path) = &args.record {
        let mut stream = build_stream(&args, scenario.as_ref(), source_footprint);
        let count = hopp_trace::pagefile::save_stream(path, &mut stream).unwrap_or_else(|e| {
            eprintln!("record failed: {e}");
            std::process::exit(1);
        });
        println!("recorded {count} page accesses to {path}");
        return;
    }

    let system = system_of(&args);
    // --trace-out needs the event stream: upgrade to `full` unless the
    // user explicitly picked a level that already records events.
    let mut obs_level = args.obs_level.unwrap_or_default();
    if args.trace_out.is_some() && !obs_level.events() {
        obs_level = ObsLevel::Full;
    }
    // --timeline-out needs samples: default to one per 1000 accesses.
    let timeline_every = match args.timeline {
        Some(n) => n,
        None if args.timeline_out.is_some() => 1_000,
        None => 0,
    };
    let mut config = SimConfig {
        channels: args.channels,
        rdma: if args.volatile {
            hopp_net::RdmaConfig::volatile()
        } else {
            hopp_net::RdmaConfig::default()
        },
        fabric: FabricConfig {
            nodes: args.mem_nodes,
            placement: args.placement,
            replication: args.replication,
            ..FabricConfig::default()
        },
        precise_lru: !args.imprecise_lru,
        trace_assisted_reclaim: args.reclaim_window_ms.map(hopp_types::Nanos::from_millis),
        remote_capacity_pages: args.remote_capacity,
        timeline_every,
        obs_level,
        reclaim_in_advance: !args.direct_reclaim,
        ..SimConfig::with_system(system)
    };
    if let Some(kb) = args.llc_kb {
        config.llc.capacity_bytes = kb * 1024;
    }
    if let Some(ns) = args.llc_hit_ns {
        config.llc_hit = hopp_types::Nanos::from_nanos(ns);
    }
    if let Some(n) = args.hpd_threshold {
        config.hpd = hopp_hw::HpdConfig::with_threshold(n);
    }
    if let Some(kb) = args.rpt_kb {
        config.rpt = hopp_hw::RptCacheConfig::with_kib(kb);
    }
    if let Some(n) = args.slack_frames {
        config.slack_frames = n;
    }
    if let Some(ns) = args.reclaim_cost_ns {
        config.latency.reclaim_per_page = hopp_types::Nanos::from_nanos(ns);
    }

    if let Some(path) = &args.replay {
        let accesses = hopp_trace::pagefile::load_file(path).unwrap_or_else(|e| {
            eprintln!("replay failed: {e}");
            std::process::exit(1);
        });
        let distinct: std::collections::BTreeSet<u64> =
            accesses.iter().map(|a| a.vpn.raw()).collect();
        let pid = accesses
            .first()
            .map(|a| a.pid)
            .unwrap_or(hopp_types::Pid::new(1));
        let limit = ((distinct.len() as f64 * args.ratio).ceil() as usize).max(64);
        println!(
            "replaying {} accesses over {} distinct pages from {path}\n",
            accesses.len(),
            distinct.len()
        );
        let app = hopp_sim::AppSpec {
            pid,
            stream: Box::new(hopp_trace::TraceFileStream::new(accesses)),
            limit_pages: limit,
        };
        let mut sim = hopp_sim::Simulator::new(config, vec![app]).unwrap_or_else(|e| {
            eprintln!("bad configuration: {e}");
            std::process::exit(2);
        });
        if let Some(script) = &args.fault_script {
            sim.set_fault_script(script).unwrap_or_else(|e| {
                eprintln!("bad fault script: {e}");
                std::process::exit(2);
            });
        }
        prof_begin(&args, "replay");
        let report = sim.run().unwrap_or_else(fail_run);
        let prof = hopp_prof::disable();
        // Normalized against an all-local replay of the same trace.
        let local_app = hopp_sim::AppSpec {
            pid,
            stream: Box::new(hopp_trace::TraceFileStream::open(path).unwrap_or_else(|e| {
                eprintln!("replay failed: {e}");
                std::process::exit(1);
            })),
            limit_pages: distinct.len() + 64,
        };
        let local = hopp_sim::Simulator::new(
            SimConfig::with_system(hopp_sim::SystemConfig::Baseline(
                hopp_sim::BaselineKind::NoPrefetch,
            )),
            vec![local_app],
        )
        .unwrap_or_else(|e| {
            eprintln!("bad configuration: {e}");
            std::process::exit(2);
        })
        .run()
        .unwrap_or_else(fail_run);
        let label = format!("replay of {path}");
        print_report(&args, &label, local.completion.as_nanos() as f64, &report);
        write_outputs(&args, &report, prof.as_ref());
        return;
    }

    // --replay-trace: run a recorded .hst bit-identically. The header
    // carries the recorded pid/footprint, so the cgroup-limit math and
    // the all-local normalization run match the recording session and
    // the metrics JSON comes out byte-for-byte equal.
    if let Some(path) = &args.replay_trace {
        let load = || {
            hst::read_file(Path::new(path)).unwrap_or_else(|e| {
                eprintln!("replay-trace failed: {e}");
                std::process::exit(1);
            })
        };
        let trace = load();
        let header = trace.header.clone();
        println!(
            "replaying {} accesses ({} recorded from {} at {} pages, seed {})\n",
            trace.accesses.len(),
            path,
            header.source,
            header.footprint_pages,
            header.seed
        );
        prof_begin(&args, "replay-trace");
        let report = run_stream_with(
            config,
            header.pid,
            Box::new(trace.into_stream()),
            header.footprint_pages,
            args.ratio,
        )
        .unwrap_or_else(fail_run);
        let prof = hopp_prof::disable();
        let local = run_stream_with(
            SimConfig::with_system(SystemConfig::Baseline(BaselineKind::NoPrefetch)),
            header.pid,
            Box::new(load().into_stream()),
            header.footprint_pages,
            1.25,
        )
        .unwrap_or_else(fail_run);
        let label = format!(
            "replay of {path} ({}, {} pages, seed {})",
            header.source, header.footprint_pages, header.seed
        );
        print_report(&args, &label, local.completion.as_nanos() as f64, &report);
        write_outputs(&args, &report, prof.as_ref());
        return;
    }

    let (label, source_name, footprint) = match &scenario {
        Some(s) => (
            format!(
                "{} (scenario, {} pages, seed {})",
                s.name, source_footprint, args.seed
            ),
            s.name.clone(),
            source_footprint,
        ),
        None => (
            format!(
                "{} ({} pages, seed {})",
                args.workload.name(),
                args.footprint,
                args.seed
            ),
            args.workload.name().to_string(),
            args.footprint,
        ),
    };

    // --record-trace: capture a fresh copy of the access stream to disk,
    // then fall through to the normal run. Streams are deterministic, so
    // draining a second instance records exactly what the run consumes.
    if let Some(path) = &args.record_trace {
        let header = HstHeader {
            pid: SOLO_PID,
            footprint_pages: footprint,
            seed: args.seed,
            source: source_name.clone(),
        };
        let mut stream = build_stream(&args, scenario.as_ref(), footprint);
        let n = hst::record_file(Path::new(path), &header, &mut *stream).unwrap_or_else(|e| {
            eprintln!("record-trace failed: {e}");
            std::process::exit(1);
        });
        println!("recorded {n} accesses to {path} (.hst)\n");
    }

    let local = run_stream_with(
        SimConfig::with_system(SystemConfig::Baseline(BaselineKind::NoPrefetch)),
        SOLO_PID,
        build_stream(&args, scenario.as_ref(), footprint),
        footprint,
        1.25,
    )
    .unwrap_or_else(fail_run);
    // Profile only the measured run, not the all-local normalization run.
    prof_begin(&args, &source_name);
    let report = match (&scenario, &args.fault_script) {
        (None, Some(script)) => run_workload_with_faults(
            config,
            args.workload,
            args.footprint,
            args.seed,
            args.ratio,
            script,
        ),
        (None, None) => {
            run_workload_with(config, args.workload, args.footprint, args.seed, args.ratio)
        }
        (Some(_), script) => {
            if script.is_some() {
                eprintln!("--fault-script is not supported with --scenario");
                std::process::exit(2);
            }
            run_stream_with(
                config,
                SOLO_PID,
                build_stream(&args, scenario.as_ref(), footprint),
                footprint,
                args.ratio,
            )
        }
    }
    .unwrap_or_else(fail_run);
    let prof = hopp_prof::disable();
    print_report(&args, &label, local.completion.as_nanos() as f64, &report);
    write_outputs(&args, &report, prof.as_ref());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_resolve_with_any_casing() {
        assert_eq!(workload_by_name("kmeans-omp"), Some(WorkloadKind::Kmeans));
        assert_eq!(workload_by_name("KMEANS_OMP"), Some(WorkloadKind::Kmeans));
        assert_eq!(workload_by_name("npb-mg"), Some(WorkloadKind::NpbMg));
        assert_eq!(workload_by_name("npbmg"), Some(WorkloadKind::NpbMg));
        assert_eq!(workload_by_name("GraphX-PR"), Some(WorkloadKind::GraphPr));
        assert_eq!(workload_by_name("nope"), None);
    }

    #[test]
    fn unique_prefixes_resolve_ambiguous_ones_do_not() {
        assert_eq!(workload_by_name("kmeans"), Some(WorkloadKind::Kmeans));
        // "npb" prefixes several NPB workloads: ambiguous.
        assert_eq!(workload_by_name("npb"), None);
    }

    #[test]
    fn every_catalogue_name_resolves_to_itself() {
        for k in WorkloadKind::ALL {
            assert_eq!(workload_by_name(k.name()), Some(k), "{}", k.name());
        }
    }

    #[test]
    fn system_parsing_covers_depth_variants() {
        let mut args = Args {
            system: "depth-16".to_string(),
            ..Args::default()
        };
        assert!(matches!(
            system_of(&args),
            SystemConfig::Baseline(BaselineKind::DepthN(16))
        ));
        args.system = "fastswap".to_string();
        assert!(matches!(
            system_of(&args),
            SystemConfig::Baseline(BaselineKind::Fastswap)
        ));
        args.system = "hopp".to_string();
        assert!(matches!(system_of(&args), SystemConfig::Hopp { .. }));
    }
}
