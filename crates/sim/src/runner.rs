//! Convenience runners implementing the paper's measurement protocol.
//!
//! §VI-A: *normalized performance* is `CT_local / CT_system`, where
//! `CT_local` is the completion time with the whole working set in
//! local memory; *speedup* (§VI-D) is `1 − CT_system / CT_Fastswap`.

use hopp_fabric::FaultScript;
use hopp_trace::AccessStream;
use hopp_types::{Pid, Result};
use hopp_workloads::WorkloadKind;

use crate::config::{AppSpec, BaselineKind, SimConfig, SystemConfig};
use crate::report::SimReport;
use crate::simulator::Simulator;

/// The PID used for single-workload runs.
pub const SOLO_PID: Pid = Pid::new(1);

/// Runs `kind` with its local memory limited to `mem_ratio` of the
/// footprint under the given system.
///
/// # Errors
///
/// Returns configuration validation errors and fatal run errors (lost
/// pages, exhausted pools).
///
/// # Panics
///
/// Panics if `mem_ratio` is not within `(0, +∞)` (a programming error
/// in experiment code).
pub fn run_workload(
    kind: WorkloadKind,
    footprint_pages: u64,
    seed: u64,
    system: SystemConfig,
    mem_ratio: f64,
) -> Result<SimReport> {
    run_workload_with(
        SimConfig::with_system(system),
        kind,
        footprint_pages,
        seed,
        mem_ratio,
    )
}

/// [`run_workload`] with full control over the machine configuration.
///
/// # Errors
///
/// Returns configuration validation errors and fatal run errors.
///
/// # Panics
///
/// Panics if `mem_ratio` is not positive (experiment-code bug).
pub fn run_workload_with(
    config: SimConfig,
    kind: WorkloadKind,
    footprint_pages: u64,
    seed: u64,
    mem_ratio: f64,
) -> Result<SimReport> {
    run_stream_with(
        config,
        SOLO_PID,
        kind.build(SOLO_PID, footprint_pages, seed),
        footprint_pages,
        mem_ratio,
    )
}

/// Runs an arbitrary pre-built access stream — a replayed `.hst` trace,
/// a compiled scenario, or anything else implementing [`AccessStream`]
/// — under the same measurement protocol as [`run_workload_with`]:
/// `pid` must match the PID the stream emits, and the local-memory
/// limit is `ceil(footprint_pages * mem_ratio)` clamped to ≥ 64 pages.
///
/// # Errors
///
/// Returns configuration validation errors and fatal run errors.
///
/// # Panics
///
/// Panics if `mem_ratio` is not positive (experiment-code bug).
pub fn run_stream_with(
    config: SimConfig,
    pid: Pid,
    stream: Box<dyn AccessStream>,
    footprint_pages: u64,
    mem_ratio: f64,
) -> Result<SimReport> {
    assert!(mem_ratio > 0.0, "memory ratio must be positive");
    let limit = ((footprint_pages as f64 * mem_ratio).ceil() as usize).max(64);
    let app = AppSpec {
        pid,
        stream,
        limit_pages: limit,
    };
    Simulator::new(config, vec![app])?.run()
}

/// [`run_workload_with`] plus a deterministic [`FaultScript`] attached
/// to the memory pool before the run starts: the same script against
/// the same seed replays byte-identically.
///
/// # Errors
///
/// Returns configuration validation errors, a script naming a node
/// outside the pool, and fatal run errors — a fault-injection run that
/// loses every replica of a page reports
/// [`hopp_types::Error::PageUnreachable`] with the page and node
/// context instead of panicking.
///
/// # Panics
///
/// Panics if `mem_ratio` is not positive (experiment-code bug).
pub fn run_workload_with_faults(
    config: SimConfig,
    kind: WorkloadKind,
    footprint_pages: u64,
    seed: u64,
    mem_ratio: f64,
    script: &FaultScript,
) -> Result<SimReport> {
    assert!(mem_ratio > 0.0, "memory ratio must be positive");
    let limit = ((footprint_pages as f64 * mem_ratio).ceil() as usize).max(64);
    let app = AppSpec {
        pid: SOLO_PID,
        stream: kind.build(SOLO_PID, footprint_pages, seed),
        limit_pages: limit,
    };
    let mut sim = Simulator::new(config, vec![app])?;
    sim.set_fault_script(script)?;
    sim.run()
}

/// The all-local reference run (`CT_local`): limit ≥ footprint, no
/// prefetching.
///
/// # Errors
///
/// Returns configuration validation errors and fatal run errors.
pub fn run_local(kind: WorkloadKind, footprint_pages: u64, seed: u64) -> Result<SimReport> {
    run_workload(
        kind,
        footprint_pages,
        seed,
        SystemConfig::Baseline(BaselineKind::NoPrefetch),
        1.25,
    )
}

/// Normalized performance `CT_local / CT_system` for one configuration.
///
/// # Errors
///
/// Returns configuration validation errors and fatal run errors from
/// either run.
pub fn normalized_performance(
    kind: WorkloadKind,
    footprint_pages: u64,
    seed: u64,
    system: SystemConfig,
    mem_ratio: f64,
) -> Result<f64> {
    let local = run_local(kind, footprint_pages, seed)?;
    let sys = run_workload(kind, footprint_pages, seed, system, mem_ratio)?;
    Ok(local.completion.as_nanos() as f64 / sys.completion.as_nanos() as f64)
}

/// Completion-time speedup of `system` over a reference system
/// (`1 − CT_system / CT_reference`, §VI-D; positive is faster).
///
/// # Errors
///
/// Returns configuration validation errors and fatal run errors from
/// either run.
pub fn speedup_over(
    kind: WorkloadKind,
    footprint_pages: u64,
    seed: u64,
    system: SystemConfig,
    reference: SystemConfig,
    mem_ratio: f64,
) -> Result<f64> {
    let sys = run_workload(kind, footprint_pages, seed, system, mem_ratio)?;
    let base = run_workload(kind, footprint_pages, seed, reference, mem_ratio)?;
    Ok(1.0 - sys.completion.as_nanos() as f64 / base.completion.as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_performance_is_in_unit_range_for_streams() {
        let np = normalized_performance(
            WorkloadKind::Kmeans,
            1_024,
            3,
            SystemConfig::Baseline(BaselineKind::Fastswap),
            0.5,
        )
        .unwrap();
        assert!(np > 0.0 && np <= 1.0, "np = {np}");
    }

    #[test]
    fn local_run_is_full_speed() {
        let r = run_local(WorkloadKind::Kmeans, 1_024, 3).unwrap();
        assert_eq!(r.counters.major_faults, 0);
    }

    #[test]
    fn hopp_speedup_over_fastswap_is_positive_on_kmeans() {
        let s = speedup_over(
            WorkloadKind::Kmeans,
            2_048,
            3,
            SystemConfig::hopp_default(),
            SystemConfig::Baseline(BaselineKind::Fastswap),
            0.5,
        )
        .unwrap();
        assert!(s > 0.0, "speedup {s}");
    }
}
