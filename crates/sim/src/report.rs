//! Run results: counters, per-app completion and the paper's metrics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hopp_core::metrics::MetricsReport;
use hopp_core::three_tier::TierStats;
use hopp_fabric::FabricReport;
use hopp_hw::{BandwidthLedger, HpdStats, RptStats};
use hopp_net::RdmaStats;
use hopp_obs::{LatencySummaries, ObsLevel, TimedEvent};
use hopp_trace::llc::LlcStats;
use hopp_types::{Nanos, Pid};

/// Event counters accumulated over a run.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Counters {
    /// Page accesses executed.
    pub accesses: u64,
    /// Major faults (synchronous remote reads).
    pub major_faults: u64,
    /// Swapcache hits (prefetch-hits, 2.3 µs each).
    pub minor_faults: u64,
    /// First touches (zero-fill, no remote traffic).
    pub first_touches: u64,
    /// Accesses served directly from DRAM (PTE present).
    pub dram_hits: u64,
    /// Demand faults that found their page already in flight and only
    /// had to wait for it.
    pub inflight_waits: u64,
    /// Pages reclaimed (swapped out or dropped from the swapcache).
    pub reclaimed: u64,
    /// Dirty pages written back over RDMA during reclaim.
    pub writebacks: u64,
    /// Pages prefetched by the fault-path (baseline) prefetcher.
    pub baseline_prefetches: u64,
    /// Pages prefetched by HoPP's separate data path.
    pub hopp_prefetches: u64,
}

impl Counters {
    /// Total page faults of any kind.
    pub fn faults(&self) -> u64 {
        self.major_faults + self.minor_faults + self.first_touches + self.inflight_waits
    }
}

/// One timeline sample: the counters' state at a point in simulated
/// time (taken every `SimConfig::timeline_every` accesses).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimelineSample {
    /// Simulated time of the sample.
    pub at: Nanos,
    /// Accesses executed so far.
    pub accesses: u64,
    /// Major faults so far.
    pub major_faults: u64,
    /// Prefetch-hits (minor faults) so far.
    pub minor_faults: u64,
    /// HoPP pages injected so far.
    pub hopp_injected: u64,
}

/// Per-application results.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AppReport {
    /// When the app's access stream completed.
    pub finished_at: Nanos,
    /// Accesses the app executed.
    pub accesses: u64,
    /// Its major faults.
    pub major_faults: u64,
    /// Its prefetch-hits.
    pub minor_faults: u64,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Name of the system under test.
    pub system: &'static str,
    /// Completion time of the whole run (last app finishes).
    pub completion: Nanos,
    /// Per-app completions and fault counts, keyed by PID.
    pub per_app: BTreeMap<Pid, AppReport>,
    /// Global event counters.
    pub counters: Counters,
    /// Fault-path prefetcher metrics (swapcache-based accuracy and
    /// coverage). For Depth-N this covers its injected pages.
    pub baseline: MetricsReport,
    /// HoPP's separate-data-path metrics, when HoPP was enabled.
    pub hopp: Option<MetricsReport>,
    /// HoPP per-tier metrics (SSP, LSP, RSP), when enabled.
    pub hopp_tiers: Option<[MetricsReport; 3]>,
    /// Tier classification counters, when enabled.
    pub tier_stats: Option<TierStats>,
    /// Hot page detection counters (Table II's ratio).
    pub hpd: HpdStats,
    /// RPT counters (Table III's hit rate).
    pub rpt: RptStats,
    /// DRAM bandwidth overhead ledger (Table V).
    pub ledger: BandwidthLedger,
    /// LLC counters.
    pub llc: LlcStats,
    /// RDMA link counters (summed over pool nodes).
    pub rdma: RdmaStats,
    /// Memory-pool detail: placement, failovers and per-node traffic.
    /// `None` for the degenerate 1-node fault-free pool (the paper's
    /// testbed), keeping legacy reports byte-identical.
    pub fabric: Option<FabricReport>,
    /// Periodic counter samples (empty unless
    /// `SimConfig::timeline_every > 0`).
    pub timeline: Vec<TimelineSample>,
    /// Observability: latency histograms and (at `full` level) the
    /// typed event stream.
    pub obs: ObsReport,
}

/// Observability output of a run.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// The level the run was recorded at.
    pub level: ObsLevel,
    /// Latency percentile summaries (zeroed at level `off`).
    pub latency: LatencySummaries,
    /// The typed event stream (empty below level `full`).
    pub events: Vec<TimedEvent>,
    /// Events the ring buffer had to drop (oldest-first) to stay
    /// within capacity.
    pub dropped_events: u64,
}

impl SimReport {
    /// Remote page *reads* (demand + prefetch), the Fig 17 metric.
    pub fn remote_reads(&self) -> u64 {
        self.rdma.reads
    }

    /// Combined prefetch accuracy across the fault path and HoPP's
    /// data path.
    pub fn accuracy(&self) -> f64 {
        let prefetched = self.baseline.prefetched + self.hopp.map_or(0, |h| h.prefetched);
        let hits = self.baseline.prefetch_hits + self.hopp.map_or(0, |h| h.prefetch_hits);
        if prefetched == 0 {
            1.0
        } else {
            hits as f64 / prefetched as f64
        }
    }

    /// Combined coverage: all prefetch hits over all remote demand
    /// requests plus hits (§VI-A). The swapcache-hit and DRAM-hit parts
    /// of Fig 11 are [`SimReport::coverage_swapcache`] and
    /// [`SimReport::coverage_injected`]; this is their sum.
    pub fn coverage(&self) -> f64 {
        self.coverage_swapcache() + self.coverage_injected()
    }

    /// The coverage contributed by fault-path prefetches (hits still
    /// pay the 2.3 µs prefetch-hit cost).
    pub fn coverage_swapcache(&self) -> f64 {
        let denom = self.coverage_denominator();
        if denom == 0 {
            0.0
        } else {
            self.baseline.prefetch_hits as f64 / denom as f64
        }
    }

    /// The coverage contributed by HoPP's injected pages (hits are
    /// plain DRAM hits).
    pub fn coverage_injected(&self) -> f64 {
        let denom = self.coverage_denominator();
        if denom == 0 {
            0.0
        } else {
            self.hopp.map_or(0, |h| h.prefetch_hits) as f64 / denom as f64
        }
    }

    fn coverage_denominator(&self) -> u64 {
        self.counters.major_faults
            + self.baseline.prefetch_hits
            + self.hopp.map_or(0, |h| h.prefetch_hits)
    }

    /// Completion time of one app.
    pub fn app_completion(&self, pid: Pid) -> Option<Nanos> {
        self.per_app.get(&pid).map(|a| a.finished_at)
    }

    /// Renders the report as a self-contained JSON document (the
    /// `hoppsim --metrics-json` payload): counters, combined and
    /// per-path prefetch metrics with full timeliness distributions,
    /// and the latency percentile summaries. Hand-rolled, numeric-only
    /// JSON — byte-stable for a given seed and config.
    pub fn metrics_json(&self) -> String {
        let mut o = String::with_capacity(2048);
        o.push('{');
        let _ = write!(o, "\"system\":\"{}\"", self.system);
        let _ = write!(o, ",\"completion_ns\":{}", self.completion.as_nanos());
        let c = &self.counters;
        let _ = write!(
            o,
            ",\"counters\":{{\"accesses\":{},\"major_faults\":{},\"minor_faults\":{},\
             \"first_touches\":{},\"dram_hits\":{},\"inflight_waits\":{},\"reclaimed\":{},\
             \"writebacks\":{},\"baseline_prefetches\":{},\"hopp_prefetches\":{}}}",
            c.accesses,
            c.major_faults,
            c.minor_faults,
            c.first_touches,
            c.dram_hits,
            c.inflight_waits,
            c.reclaimed,
            c.writebacks,
            c.baseline_prefetches,
            c.hopp_prefetches
        );
        let _ = write!(
            o,
            ",\"accuracy\":{:.6},\"coverage\":{:.6}",
            self.accuracy(),
            self.coverage()
        );
        o.push_str(",\"baseline\":");
        write_metrics_json(&mut o, &self.baseline);
        if let Some(h) = &self.hopp {
            o.push_str(",\"hopp\":");
            write_metrics_json(&mut o, h);
        }
        if let Some(tiers) = &self.hopp_tiers {
            o.push_str(",\"hopp_tiers\":{");
            for (i, (name, t)) in ["ssp", "lsp", "rsp"].iter().zip(tiers).enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let _ = write!(o, "\"{name}\":");
                write_metrics_json(&mut o, t);
            }
            o.push('}');
        }
        let _ = write!(
            o,
            ",\"rdma\":{{\"reads\":{},\"writes\":{},\"bytes\":{},\"queueing_ns\":{}}}",
            self.rdma.reads,
            self.rdma.writes,
            self.rdma.bytes,
            self.rdma.queueing.as_nanos()
        );
        if let Some(f) = &self.fabric {
            let _ = write!(
                o,
                ",\"fabric\":{{\"placement\":\"{}\",\"replication\":{},\"failovers\":{},\
                 \"failed_writes\":{},\"nodes\":[",
                f.placement, f.replication, f.failovers, f.failed_writes
            );
            for (i, n) in f.nodes.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                let _ = write!(
                    o,
                    "{{\"node\":{},\"reads\":{},\"writes\":{},\"bytes\":{},\"queueing_ns\":{},\
                     \"placed\":{},\"retries\":{},\"timeouts\":{},\"lost\":{},\"read_latency\":",
                    n.node.raw(),
                    n.link.reads,
                    n.link.writes,
                    n.link.bytes,
                    n.link.queueing.as_nanos(),
                    n.placed,
                    n.retries,
                    n.timeouts,
                    n.lost
                );
                n.latency.read.write_json(&mut o);
                o.push_str(",\"write_latency\":");
                n.latency.write.write_json(&mut o);
                o.push('}');
            }
            o.push_str("]}");
        }
        let _ = write!(o, ",\"obs_level\":\"{}\"", self.obs.level.label());
        o.push_str(",\"latency\":{");
        for (i, (name, h)) in [
            ("major_fault", &self.obs.latency.major_fault),
            ("prefetch_timeliness", &self.obs.latency.timeliness),
            ("inflight_wait", &self.obs.latency.inflight_wait),
            ("rdma_read", &self.obs.latency.rdma_read),
            ("rdma_write", &self.obs.latency.rdma_write),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "\"{name}\":");
            h.write_json(&mut o);
        }
        o.push('}');
        let _ = write!(
            o,
            ",\"events\":{},\"dropped_events\":{}",
            self.obs.events.len(),
            self.obs.dropped_events
        );
        o.push('}');
        o
    }

    /// Renders the timeline samples as CSV (the `hoppsim
    /// --timeline-out` payload), one row per sample plus a header.
    pub fn timeline_csv(&self) -> String {
        let mut o = String::with_capacity(64 + self.timeline.len() * 48);
        o.push_str("at_ns,accesses,major_faults,minor_faults,hopp_injected\n");
        for s in &self.timeline {
            let _ = writeln!(
                o,
                "{},{},{},{},{}",
                s.at.as_nanos(),
                s.accesses,
                s.major_faults,
                s.minor_faults,
                s.hopp_injected
            );
        }
        o
    }
}

/// Writes one [`MetricsReport`] as a JSON object.
fn write_metrics_json(o: &mut String, m: &MetricsReport) {
    let _ = write!(
        o,
        "{{\"prefetched\":{},\"prefetch_hits\":{},\"demand_remote\":{},\"wasted\":{},\
         \"accuracy\":{:.6},\"coverage\":{:.6},\"mean_timeliness_ns\":{},\"timeliness\":",
        m.prefetched,
        m.prefetch_hits,
        m.demand_remote,
        m.wasted,
        m.accuracy,
        m.coverage,
        m.mean_timeliness.as_nanos()
    );
    m.timeliness.write_json(o);
    o.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_obs::HistogramSummary;

    fn empty_report() -> SimReport {
        SimReport {
            system: "test",
            completion: Nanos::ZERO,
            per_app: BTreeMap::new(),
            counters: Counters::default(),
            baseline: MetricsReport {
                prefetched: 0,
                prefetch_hits: 0,
                demand_remote: 0,
                wasted: 0,
                accuracy: 1.0,
                coverage: 0.0,
                mean_timeliness: Nanos::ZERO,
                timeliness: HistogramSummary::default(),
            },
            hopp: None,
            hopp_tiers: None,
            tier_stats: None,
            hpd: HpdStats::default(),
            rpt: RptStats::default(),
            ledger: BandwidthLedger::default(),
            llc: LlcStats::default(),
            rdma: RdmaStats::default(),
            fabric: None,
            timeline: Vec::new(),
            obs: ObsReport::default(),
        }
    }

    #[test]
    fn empty_report_metrics_are_benign() {
        let r = empty_report();
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.remote_reads(), 0);
        assert_eq!(r.counters.faults(), 0);
    }

    #[test]
    fn coverage_splits_sum() {
        let mut r = empty_report();
        r.counters.major_faults = 10;
        r.baseline = MetricsReport {
            prefetched: 20,
            prefetch_hits: 5,
            demand_remote: 10,
            wasted: 0,
            accuracy: 0.25,
            coverage: 0.0,
            mean_timeliness: Nanos::ZERO,
            timeliness: HistogramSummary::default(),
        };
        r.hopp = Some(MetricsReport {
            prefetched: 40,
            prefetch_hits: 35,
            demand_remote: 10,
            wasted: 0,
            accuracy: 0.875,
            coverage: 0.0,
            mean_timeliness: Nanos::ZERO,
            timeliness: HistogramSummary::default(),
        });
        // denom = 10 + 5 + 35 = 50
        assert!((r.coverage_swapcache() - 0.1).abs() < 1e-12);
        assert!((r.coverage_injected() - 0.7).abs() < 1e-12);
        assert!((r.coverage() - 0.8).abs() < 1e-12);
        // accuracy = 40 hits / 60 prefetched
        assert!((r.accuracy() - 40.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_json_has_percentile_keys() {
        let j = empty_report().metrics_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"major_fault\":",
            "\"prefetch_timeliness\":",
            "\"p50_ns\":",
            "\"p90_ns\":",
            "\"p99_ns\":",
            "\"baseline\":",
            "\"counters\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn timeline_csv_has_header_and_rows() {
        let mut r = empty_report();
        r.timeline.push(TimelineSample {
            at: Nanos::from_nanos(500),
            accesses: 10,
            major_faults: 2,
            minor_faults: 1,
            hopp_injected: 3,
        });
        let csv = r.timeline_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("at_ns,accesses,major_faults,minor_faults,hopp_injected")
        );
        assert_eq!(lines.next(), Some("500,10,2,1,3"));
        assert_eq!(lines.next(), None);
    }
}
