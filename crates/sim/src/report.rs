//! Run results: counters, per-app completion and the paper's metrics.

use std::collections::BTreeMap;

use hopp_core::metrics::MetricsReport;
use hopp_core::three_tier::TierStats;
use hopp_hw::{BandwidthLedger, HpdStats, RptStats};
use hopp_net::RdmaStats;
use hopp_trace::llc::LlcStats;
use hopp_types::{Nanos, Pid};

/// Event counters accumulated over a run.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Counters {
    /// Page accesses executed.
    pub accesses: u64,
    /// Major faults (synchronous remote reads).
    pub major_faults: u64,
    /// Swapcache hits (prefetch-hits, 2.3 µs each).
    pub minor_faults: u64,
    /// First touches (zero-fill, no remote traffic).
    pub first_touches: u64,
    /// Accesses served directly from DRAM (PTE present).
    pub dram_hits: u64,
    /// Demand faults that found their page already in flight and only
    /// had to wait for it.
    pub inflight_waits: u64,
    /// Pages reclaimed (swapped out or dropped from the swapcache).
    pub reclaimed: u64,
    /// Dirty pages written back over RDMA during reclaim.
    pub writebacks: u64,
    /// Pages prefetched by the fault-path (baseline) prefetcher.
    pub baseline_prefetches: u64,
    /// Pages prefetched by HoPP's separate data path.
    pub hopp_prefetches: u64,
}

impl Counters {
    /// Total page faults of any kind.
    pub fn faults(&self) -> u64 {
        self.major_faults + self.minor_faults + self.first_touches + self.inflight_waits
    }
}

/// One timeline sample: the counters' state at a point in simulated
/// time (taken every `SimConfig::timeline_every` accesses).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimelineSample {
    /// Simulated time of the sample.
    pub at: Nanos,
    /// Accesses executed so far.
    pub accesses: u64,
    /// Major faults so far.
    pub major_faults: u64,
    /// Prefetch-hits (minor faults) so far.
    pub minor_faults: u64,
    /// HoPP pages injected so far.
    pub hopp_injected: u64,
}

/// Per-application results.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AppReport {
    /// When the app's access stream completed.
    pub finished_at: Nanos,
    /// Accesses the app executed.
    pub accesses: u64,
    /// Its major faults.
    pub major_faults: u64,
    /// Its prefetch-hits.
    pub minor_faults: u64,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Name of the system under test.
    pub system: &'static str,
    /// Completion time of the whole run (last app finishes).
    pub completion: Nanos,
    /// Per-app completions and fault counts, keyed by PID.
    pub per_app: BTreeMap<Pid, AppReport>,
    /// Global event counters.
    pub counters: Counters,
    /// Fault-path prefetcher metrics (swapcache-based accuracy and
    /// coverage). For Depth-N this covers its injected pages.
    pub baseline: MetricsReport,
    /// HoPP's separate-data-path metrics, when HoPP was enabled.
    pub hopp: Option<MetricsReport>,
    /// HoPP per-tier metrics (SSP, LSP, RSP), when enabled.
    pub hopp_tiers: Option<[MetricsReport; 3]>,
    /// Tier classification counters, when enabled.
    pub tier_stats: Option<TierStats>,
    /// Hot page detection counters (Table II's ratio).
    pub hpd: HpdStats,
    /// RPT counters (Table III's hit rate).
    pub rpt: RptStats,
    /// DRAM bandwidth overhead ledger (Table V).
    pub ledger: BandwidthLedger,
    /// LLC counters.
    pub llc: LlcStats,
    /// RDMA link counters.
    pub rdma: RdmaStats,
    /// Periodic counter samples (empty unless
    /// `SimConfig::timeline_every > 0`).
    pub timeline: Vec<TimelineSample>,
}

impl SimReport {
    /// Remote page *reads* (demand + prefetch), the Fig 17 metric.
    pub fn remote_reads(&self) -> u64 {
        self.rdma.reads
    }

    /// Combined prefetch accuracy across the fault path and HoPP's
    /// data path.
    pub fn accuracy(&self) -> f64 {
        let prefetched = self.baseline.prefetched + self.hopp.map_or(0, |h| h.prefetched);
        let hits = self.baseline.prefetch_hits + self.hopp.map_or(0, |h| h.prefetch_hits);
        if prefetched == 0 {
            1.0
        } else {
            hits as f64 / prefetched as f64
        }
    }

    /// Combined coverage: all prefetch hits over all remote demand
    /// requests plus hits (§VI-A). The swapcache-hit and DRAM-hit parts
    /// of Fig 11 are [`SimReport::coverage_swapcache`] and
    /// [`SimReport::coverage_injected`]; this is their sum.
    pub fn coverage(&self) -> f64 {
        self.coverage_swapcache() + self.coverage_injected()
    }

    /// The coverage contributed by fault-path prefetches (hits still
    /// pay the 2.3 µs prefetch-hit cost).
    pub fn coverage_swapcache(&self) -> f64 {
        let denom = self.coverage_denominator();
        if denom == 0 {
            0.0
        } else {
            self.baseline.prefetch_hits as f64 / denom as f64
        }
    }

    /// The coverage contributed by HoPP's injected pages (hits are
    /// plain DRAM hits).
    pub fn coverage_injected(&self) -> f64 {
        let denom = self.coverage_denominator();
        if denom == 0 {
            0.0
        } else {
            self.hopp.map_or(0, |h| h.prefetch_hits) as f64 / denom as f64
        }
    }

    fn coverage_denominator(&self) -> u64 {
        self.counters.major_faults
            + self.baseline.prefetch_hits
            + self.hopp.map_or(0, |h| h.prefetch_hits)
    }

    /// Completion time of one app.
    pub fn app_completion(&self, pid: Pid) -> Option<Nanos> {
        self.per_app.get(&pid).map(|a| a.finished_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> SimReport {
        SimReport {
            system: "test",
            completion: Nanos::ZERO,
            per_app: BTreeMap::new(),
            counters: Counters::default(),
            baseline: MetricsReport {
                prefetched: 0,
                prefetch_hits: 0,
                demand_remote: 0,
                accuracy: 1.0,
                coverage: 0.0,
                mean_timeliness: Nanos::ZERO,
            },
            hopp: None,
            hopp_tiers: None,
            tier_stats: None,
            hpd: HpdStats::default(),
            rpt: RptStats::default(),
            ledger: BandwidthLedger::default(),
            llc: LlcStats::default(),
            rdma: RdmaStats::default(),
            timeline: Vec::new(),
        }
    }

    #[test]
    fn empty_report_metrics_are_benign() {
        let r = empty_report();
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.remote_reads(), 0);
        assert_eq!(r.counters.faults(), 0);
    }

    #[test]
    fn coverage_splits_sum() {
        let mut r = empty_report();
        r.counters.major_faults = 10;
        r.baseline = MetricsReport {
            prefetched: 20,
            prefetch_hits: 5,
            demand_remote: 10,
            accuracy: 0.25,
            coverage: 0.0,
            mean_timeliness: Nanos::ZERO,
        };
        r.hopp = Some(MetricsReport {
            prefetched: 40,
            prefetch_hits: 35,
            demand_remote: 10,
            accuracy: 0.875,
            coverage: 0.0,
            mean_timeliness: Nanos::ZERO,
        });
        // denom = 10 + 5 + 35 = 50
        assert!((r.coverage_swapcache() - 0.1).abs() < 1e-12);
        assert!((r.coverage_injected() - 0.7).abs() < 1e-12);
        assert!((r.coverage() - 0.8).abs() < 1e-12);
        // accuracy = 40 hits / 60 prefetched
        assert!((r.accuracy() - 40.0 / 60.0).abs() < 1e-12);
    }
}
