//! The event loop: one simulated compute node, its kernel, the MC
//! hardware pipeline and a remote memory node behind an RDMA link.

use std::collections::BTreeMap;

use hopp_core::exec::ExecutionEngine;
use hopp_core::metrics::PrefetchMetrics;
use hopp_core::three_tier::Tier;
use hopp_core::HoppEngine;
use hopp_ds::{DetMap, PageMap};
use hopp_fabric::{FaultScript, MemoryPool, RemotePool, REGION_SHIFT};
use hopp_hw::McPipeline;
use hopp_kernel::swapcache::CacheFill;
use hopp_kernel::{Cgroup, FaultInfo, LruLists, LruTier, Prefetcher, SwapCache, SwapDevice};
use hopp_mem::{AddressSpace, FrameAllocator, Mapping};
use hopp_net::CompletionQueue;
use hopp_obs::{Event, LatencyHistograms, ObsRecorder, Recorder};
use hopp_trace::patterns::AccessStream;
use hopp_trace::LastLevelCache;
use hopp_types::{Error, Nanos, PageAccess, Pid, Ppn, Result, Vpn};

use crate::config::{AppSpec, SimConfig, SystemConfig};
use crate::report::{AppReport, Counters, ObsReport, SimReport, TimelineSample};

/// A fault-path prefetch in flight.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct BaseArrival {
    pid: Pid,
    vpn: Vpn,
    inject: bool,
}

/// HoPP's runtime state (present only when the system includes HoPP).
struct HoppRuntime {
    engine: HoppEngine,
    exec: ExecutionEngine,
    /// Injected pages awaiting their first hit: routes timeliness
    /// feedback and per-tier accounting.
    injected: DetMap<(Pid, Vpn), (hopp_core::StreamId, Tier)>,
    metrics: PrefetchMetrics,
    tier_metrics: [PrefetchMetrics; 3],
}

fn tier_index(tier: Tier) -> usize {
    match tier {
        Tier::Simple => 0,
        Tier::Ladder => 1,
        Tier::Ripple => 2,
    }
}

struct AppRuntime {
    stream: Box<dyn AccessStream>,
    finished_at: Option<Nanos>,
    accesses: u64,
    major_faults: u64,
    minor_faults: u64,
}

/// The simulator. Construct with [`Simulator::new`], consume with
/// [`Simulator::run`].
pub struct Simulator {
    config: SimConfig,
    clock: Nanos,
    llc: LastLevelCache,
    mc: McPipeline,
    frames: FrameAllocator,
    spaces: BTreeMap<Pid, AddressSpace>,
    lrus: BTreeMap<Pid, LruLists>,
    cgroups: BTreeMap<Pid, Cgroup>,
    swapcache: SwapCache,
    swapdev: SwapDevice,
    /// The remote side: a single link in the paper's configuration, a
    /// sharded multi-node pool beyond it.
    pool: MemoryPool,
    /// Per-region stream identity for stream-aware placement, harvested
    /// from HoPP prefetch orders. Maintained only when the placement
    /// policy asks for hints.
    stream_hints: DetMap<(Pid, u64), u64>,
    baseline: Box<dyn Prefetcher>,
    /// Uncharged swapcache pages, reclaimed first under global
    /// pressure (the kernel's inactive file/anon behaviour).
    sc_lru: LruLists,
    base_metrics: PrefetchMetrics,
    base_inflight: DetMap<(Pid, Vpn), Nanos>,
    base_cq: CompletionQueue<BaseArrival>,
    hopp: Option<HoppRuntime>,
    hopp_inflight: DetMap<(Pid, Vpn), Nanos>,
    apps: Vec<(Pid, AppRuntime)>,
    counters: Counters,
    prefetch_buf: Vec<hopp_kernel::PrefetchRequest>,
    /// Reused HoPP completion buffer (see [`Self::drain_completions`]).
    completion_buf: Vec<hopp_core::Completion>,
    /// Last time each resident frame was reported hot by the MC
    /// (consulted by trace-assisted reclaim, §IV).
    last_hot: PageMap<Ppn, Nanos>,
    timeline: Vec<TimelineSample>,
    /// Event recorder (`Off` below [`hopp_obs::ObsLevel::Full`]).
    /// Stored by value so instrumented callees can borrow it disjointly
    /// from the components they belong to.
    recorder: ObsRecorder,
    /// Latency histograms, fed when `config.obs_level.histograms()`.
    hists: LatencyHistograms,
    /// Cached `config.obs_level.histograms()` for the hot path.
    obs_hists: bool,
}

impl Simulator {
    /// Builds a simulator for the given apps.
    ///
    /// The physical frame pool is sized as the sum of all cgroup limits
    /// plus `slack_frames` (headroom for uncharged swapcache pages).
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors, or
    /// [`Error::UnknownProcess`] if two apps share a PID or use the
    /// kernel PID.
    pub fn new(config: SimConfig, apps: Vec<AppSpec>) -> Result<Self> {
        let llc = LastLevelCache::new(config.llc)?;
        let mc = McPipeline::with_channels(config.hpd, config.rpt, config.channels)?;
        let mut spaces = BTreeMap::new();
        let mut mapped_lru = BTreeMap::new();
        let mut cgroups = BTreeMap::new();
        let mut runtimes = Vec::new();
        let mut total_limit = 0usize;
        for app in apps {
            if app.pid == Pid::KERNEL || spaces.contains_key(&app.pid) {
                return Err(Error::UnknownProcess { pid: app.pid });
            }
            total_limit += app.limit_pages;
            spaces.insert(app.pid, AddressSpace::new(app.pid));
            mapped_lru.insert(app.pid, LruLists::new());
            cgroups.insert(app.pid, Cgroup::with_limit(app.limit_pages)?);
            runtimes.push((
                app.pid,
                AppRuntime {
                    stream: app.stream,
                    finished_at: None,
                    accesses: 0,
                    major_faults: 0,
                    minor_faults: 0,
                },
            ));
        }
        let hopp = match config.system {
            SystemConfig::Baseline(_) => None,
            SystemConfig::Hopp { config, .. } => Some(HoppRuntime {
                engine: HoppEngine::try_new(config)?,
                exec: ExecutionEngine::new(),
                injected: DetMap::new(),
                metrics: PrefetchMetrics::new(),
                tier_metrics: [
                    PrefetchMetrics::new(),
                    PrefetchMetrics::new(),
                    PrefetchMetrics::new(),
                ],
            }),
        };
        let baseline = match config.system {
            SystemConfig::Baseline(b) => b.build(),
            SystemConfig::Hopp { host, .. } => host.build(),
        };
        Ok(Simulator {
            clock: Nanos::ZERO,
            llc,
            mc,
            frames: FrameAllocator::new(total_limit + config.slack_frames),
            spaces,
            lrus: mapped_lru,
            cgroups,
            swapcache: SwapCache::new(),
            swapdev: match config.remote_capacity_pages {
                Some(cap) => SwapDevice::with_capacity(cap),
                None => SwapDevice::new(),
            },
            pool: MemoryPool::new(config.rdma, config.fabric)?,
            stream_hints: DetMap::new(),
            baseline,
            sc_lru: LruLists::new(),
            base_metrics: PrefetchMetrics::new(),
            base_inflight: DetMap::new(),
            base_cq: CompletionQueue::with_capacity(64),
            hopp,
            hopp_inflight: DetMap::new(),
            apps: runtimes,
            counters: Counters::default(),
            prefetch_buf: Vec::with_capacity(64),
            completion_buf: Vec::with_capacity(64),
            last_hot: PageMap::new(),
            timeline: Vec::new(),
            recorder: ObsRecorder::for_level(config.obs_level),
            hists: LatencyHistograms::default(),
            obs_hists: config.obs_level.histograms(),
            config,
        })
    }

    /// Swaps in a custom fault-path prefetcher (e.g. a differently
    /// tuned baseline) before running. The system's name in the report
    /// still reflects the original configuration.
    pub fn replace_baseline(&mut self, prefetcher: Box<dyn Prefetcher>) {
        self.baseline = prefetcher;
    }

    /// Attaches a deterministic fault script to the memory pool before
    /// running. Scripts make the pool non-degenerate, so the report
    /// gains a fabric section.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the script names a node the
    /// pool does not have.
    pub fn set_fault_script(&mut self, script: &FaultScript) -> Result<()> {
        self.pool.set_fault_script(script)
    }

    /// Runs every app to completion and reports.
    ///
    /// # Errors
    ///
    /// Propagates fatal simulation errors: a page whose every replica
    /// was lost ([`Error::PageUnreachable`]), an exhausted pool or
    /// remote node, or an internal bookkeeping violation. Fault
    /// injection runs surface here instead of panicking.
    pub fn run(mut self) -> Result<SimReport> {
        // Host-side profiling root; inert unless the harness called
        // `hopp_prof::enable` (never feeds back into simulated state).
        let _prof = hopp_prof::span("sim/run");
        // Round-robin across apps at access granularity: the
        // single-node interleaving that makes streams intertwine.
        let mut live: Vec<usize> = (0..self.apps.len()).collect();
        let mut cursor = 0usize;
        while !live.is_empty() {
            cursor %= live.len();
            let app_idx = live[cursor];
            let next = {
                let _prof = hopp_prof::span("trace/stream");
                self.apps[app_idx].1.stream.next_access()
            };
            match next {
                Some(access) => {
                    self.step(app_idx, access)?;
                    cursor += 1;
                }
                None => {
                    self.apps[app_idx].1.finished_at = Some(self.clock);
                    live.remove(cursor);
                }
            }
        }
        Ok(self.report())
    }

    /// Executes one page access.
    fn step(&mut self, app_idx: usize, access: PageAccess) -> Result<()> {
        let _prof = hopp_prof::span("sim/step");
        self.clock += Nanos::from_nanos(u64::from(access.think_ns));
        self.drain_completions()?;
        self.counters.accesses += 1;
        self.apps[app_idx].1.accesses += 1;
        if self.config.timeline_every > 0
            && self
                .counters
                .accesses
                .is_multiple_of(self.config.timeline_every)
        {
            self.timeline.push(TimelineSample {
                at: self.clock,
                accesses: self.counters.accesses,
                major_faults: self.counters.major_faults,
                minor_faults: self.counters.minor_faults,
                hopp_injected: self.hopp.as_ref().map_or(0, |h| h.metrics.prefetched()),
            });
        }

        let pid = access.pid;
        let vpn = access.vpn;
        let key = (pid, vpn);

        // A demand access to an in-flight prefetch waits for the data
        // (the kernel blocks on the page's IO) and then proceeds.
        let inflight_due = self
            .base_inflight
            .get(&key)
            .copied()
            .or_else(|| self.hopp_inflight.get(&key).copied());
        if let Some(due) = inflight_due {
            let wait = due.saturating_since(self.clock);
            if due > self.clock {
                self.clock = due;
            }
            self.counters.inflight_waits += 1;
            if self.obs_hists {
                self.hists.inflight_wait.record_nanos(wait);
            }
            if self.recorder.is_enabled() {
                self.recorder
                    .record(self.clock, Event::InflightWait { pid, vpn, wait });
            }
            self.drain_completions()?;
        }

        let mapping = self
            .spaces
            .get(&pid)
            .ok_or(Error::UnknownProcess { pid })?
            .lookup(vpn);
        match mapping {
            Some(Mapping::Present(pte)) => {
                self.counters.dram_hits += 1;
                self.on_present_access(pid, vpn, pte.ppn, &access)?;
            }
            Some(Mapping::Swapped(slot)) => {
                if self.swapcache.contains(pid, vpn) {
                    self.minor_fault(app_idx, pid, vpn, &access)?;
                } else {
                    self.major_fault(app_idx, pid, vpn, slot, &access)?;
                }
            }
            None => {
                self.first_touch(pid, vpn, &access)?;
            }
        }
        Ok(())
    }

    /// An access whose PTE is present: pure memory-system cost.
    fn on_present_access(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        ppn: Ppn,
        access: &PageAccess,
    ) -> Result<()> {
        // A real kernel only learns about these accesses via accessed-bit
        // scans; precise_lru = false models a kernel that never scans.
        if self.config.precise_lru {
            if let Some(lru) = self.lrus.get_mut(&pid) {
                lru.touch(ppn);
            }
        }
        if !access.kind.is_read() {
            self.spaces
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .mark_dirty(vpn);
        }
        self.record_first_hit(pid, vpn);
        self.line_loop(pid, vpn, ppn, access)
    }

    /// First application access to a prefetched page: metrics +
    /// timeliness feedback.
    fn record_first_hit(&mut self, pid: Pid, vpn: Vpn) {
        let mut timeliness = None;
        if let Some(h) = &mut self.hopp {
            if let Some(t) = h.metrics.on_first_access(pid, vpn, self.clock) {
                timeliness = Some(t);
                if let Some((stream, tier)) = h.injected.remove(&(pid, vpn)) {
                    h.engine.on_timeliness(stream, t);
                    h.tier_metrics[tier_index(tier)].on_first_access(pid, vpn, self.clock);
                }
            }
        }
        // Depth-N's injected pages live in the baseline metrics.
        if let Some(t) = self.base_metrics.on_first_access(pid, vpn, self.clock) {
            timeliness = Some(t);
        }
        if let Some(t) = timeliness {
            self.on_prefetch_hit(pid, vpn, t);
        }
    }

    /// Observability for a prefetched page's first touch: the
    /// timeliness histogram and (at `full`) a [`Event::PrefetchHit`].
    fn on_prefetch_hit(&mut self, pid: Pid, vpn: Vpn, timeliness: Nanos) {
        if self.obs_hists {
            self.hists.timeliness.record_nanos(timeliness);
        }
        if self.recorder.is_enabled() {
            self.recorder.record(
                self.clock,
                Event::PrefetchHit {
                    pid,
                    vpn,
                    timeliness,
                },
            );
        }
    }

    /// Swapcache hit: a minor fault (*prefetch-hit*, 2.3 µs).
    fn minor_fault(
        &mut self,
        app_idx: usize,
        pid: Pid,
        vpn: Vpn,
        access: &PageAccess,
    ) -> Result<()> {
        let _prof = hopp_prof::span("kernel/minor_fault");
        self.clock += self.config.latency.prefetch_hit();
        self.counters.minor_faults += 1;
        self.apps[app_idx].1.minor_faults += 1;

        let entry = self
            .swapcache
            .take(pid, vpn)
            .ok_or(Error::UnmappedPage { pid, vpn })?;
        if let Some(t) = self.base_metrics.on_first_access(pid, vpn, self.clock) {
            self.on_prefetch_hit(pid, vpn, t);
        }
        if self.recorder.is_enabled() {
            self.recorder
                .record(self.clock, Event::MinorFault { pid, vpn });
        }
        if let Some(slot) = entry.slot {
            self.swapdev.free(slot);
            self.pool.release(pid, vpn);
        }
        self.sc_lru.remove(entry.ppn);
        self.map_page(pid, vpn, entry.ppn)?;
        if !access.kind.is_read() {
            self.spaces
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .mark_dirty(vpn);
        }

        self.notify_baseline(FaultInfo {
            pid,
            vpn,
            now: self.clock,
            hit_swapcache: true,
            slot: None,
        })?;
        self.line_loop(pid, vpn, entry.ppn, access)
    }

    /// Major fault: synchronous remote read plus the kernel fault path.
    fn major_fault(
        &mut self,
        app_idx: usize,
        pid: Pid,
        vpn: Vpn,
        slot: hopp_types::SwapSlot,
        access: &PageAccess,
    ) -> Result<()> {
        let _prof = hopp_prof::span("kernel/major_fault");
        self.counters.major_faults += 1;
        self.apps[app_idx].1.major_faults += 1;
        self.base_metrics.on_demand_remote();
        if let Some(h) = &mut self.hopp {
            h.metrics.on_demand_remote();
        }

        let started = self.clock;
        let done = self
            .pool
            .read_page(pid, vpn, self.clock, &mut self.recorder)?;
        self.clock = done + self.config.latency.major_fault_cpu();
        let latency = self.clock.saturating_since(started);
        if self.obs_hists {
            self.hists.major_fault.record_nanos(latency);
            self.hists
                .rdma_read
                .record_nanos(done.saturating_since(started));
        }
        if self.recorder.is_enabled() {
            self.recorder
                .record(self.clock, Event::MajorFault { pid, vpn, latency });
        }

        let ppn = self.ensure_frame(pid, vpn)?;
        self.swapdev.free(slot);
        self.pool.release(pid, vpn);
        self.map_page(pid, vpn, ppn)?;
        if !access.kind.is_read() {
            self.spaces
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .mark_dirty(vpn);
        }

        self.notify_baseline(FaultInfo {
            pid,
            vpn,
            now: self.clock,
            hit_swapcache: false,
            slot: Some(slot),
        })?;
        self.drain_completions()?;
        self.line_loop(pid, vpn, ppn, access)
    }

    /// First touch: zero-fill, no remote traffic.
    fn first_touch(&mut self, pid: Pid, vpn: Vpn, access: &PageAccess) -> Result<()> {
        let _prof = hopp_prof::span("kernel/first_touch");
        self.clock += self.config.latency.context_switch + self.config.latency.pte_establish;
        self.counters.first_touches += 1;
        if self.recorder.is_enabled() {
            self.recorder
                .record(self.clock, Event::FirstTouch { pid, vpn });
        }
        let ppn = self.ensure_frame(pid, vpn)?;
        self.map_page(pid, vpn, ppn)?;
        if !access.kind.is_read() {
            self.spaces
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .mark_dirty(vpn);
        }
        self.line_loop(pid, vpn, ppn, access)
    }

    /// Installs a PTE, charges the cgroup and reclaims if over limit.
    fn map_page(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) -> Result<()> {
        let displaced = self
            .spaces
            .get_mut(&pid)
            .ok_or(Error::UnknownProcess { pid })?
            .map_present(vpn, ppn, &mut self.mc);
        let lru = self
            .lrus
            .get_mut(&pid)
            .ok_or(Error::UnknownProcess { pid })?;
        lru.insert(ppn, LruTier::Active);
        if let Some(prev) = displaced {
            // The page was already present (a double map). None of the
            // current fault paths produce one, but if a future path
            // does, the displaced frame must be released — it used to
            // leak silently in release builds — and the cgroup charge
            // already covers this page, so don't charge again.
            lru.remove(prev.ppn);
            self.last_hot.remove(prev.ppn);
            self.frames.free(prev.ppn)?;
            self.llc.invalidate_page(prev.ppn);
            self.mc.on_page_reclaimed(prev.ppn);
            return Ok(());
        }
        let over = self
            .cgroups
            .get_mut(&pid)
            .ok_or(Error::UnknownProcess { pid })?
            .charge();
        if over {
            self.reclaim_over_limit(pid)?;
        }
        Ok(())
    }

    /// The per-cacheline memory-system walk of one page touch.
    fn line_loop(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn, access: &PageAccess) -> Result<()> {
        let _prof = hopp_prof::span("llc/loop");
        for line in 0..access.lines {
            let addr = ppn.line(line);
            if self.llc.access(addr, access.kind) {
                self.clock += self.config.llc_hit;
            } else {
                self.clock += self.config.latency.dram_miss;
                if let Some(hot) =
                    self.mc
                        .on_llc_miss_rec(addr, access.kind, self.clock, &mut self.recorder)
                {
                    if self.config.trace_assisted_reclaim.is_some() {
                        self.last_hot.insert(ppn, self.clock);
                    }
                    self.on_hot_page(hot)?;
                }
            }
        }
        let _ = (pid, vpn);
        Ok(())
    }

    /// Hot page from the MC: feed HoPP's training stack and issue the
    /// resulting orders on the separate data path.
    fn on_hot_page(&mut self, hot: hopp_types::HotPage) -> Result<()> {
        let Some(h) = &mut self.hopp else {
            return Ok(());
        };
        let orders = h.engine.on_hot_page_rec(&hot, &mut self.recorder);
        for order in orders {
            let key = (order.pid, order.vpn);
            // Only pages that actually live remotely are fetchable.
            let swapped = matches!(
                self.spaces
                    .get(&order.pid)
                    .and_then(|s| s.lookup(order.vpn)),
                Some(Mapping::Swapped(_))
            );
            if !swapped
                || self.swapcache.contains(order.pid, order.vpn)
                || self.base_inflight.contains_key(&key)
            {
                continue;
            }
            // Huge batches move the whole span over the wire; only worth
            // it when most of the span actually lives remotely.
            if order.span > 1 {
                let swapped_in_span = (0..u64::from(order.span))
                    .filter_map(|k| order.vpn.offset(k as i64))
                    .filter(|vpn| {
                        matches!(
                            self.spaces.get(&order.pid).and_then(|sp| sp.lookup(*vpn)),
                            Some(Mapping::Swapped(_))
                        ) && !self.hopp_inflight.contains_key(&(order.pid, *vpn))
                    })
                    .count() as u32;
                if swapped_in_span * 4 < order.span * 3 {
                    continue;
                }
            }
            // Stream-aware placement learns which stream owns which
            // regions from the orders flowing past.
            if self.pool.wants_hints() {
                let stream_key =
                    order.stream.slot() as u64 | (u64::from(order.stream.generation()) << 16);
                let first = order.vpn.raw() >> REGION_SHIFT;
                let last = order
                    .vpn
                    .offset_saturating(i64::from(order.span.max(1)) - 1)
                    .raw()
                    >> REGION_SHIFT;
                for region in first..=last {
                    self.stream_hints.insert((order.pid, region), stream_key);
                }
            }
            if let Some(due) = h.exec.request_span_rec(
                order.pid,
                order.vpn,
                order.span,
                order.stream,
                order.tier,
                self.clock,
                &mut self.pool,
                &mut self.recorder,
            )? {
                if self.obs_hists {
                    self.hists
                        .rdma_read
                        .record_nanos(due.saturating_since(self.clock));
                }
                // Mark every (currently remote) page of the span as in
                // flight so demand faults wait instead of re-fetching.
                for k in 0..u64::from(order.span) {
                    let Some(vpn) = order.vpn.offset(k as i64) else {
                        break;
                    };
                    if matches!(
                        self.spaces.get(&order.pid).and_then(|sp| sp.lookup(vpn)),
                        Some(Mapping::Swapped(_))
                    ) {
                        self.hopp_inflight.insert((order.pid, vpn), due);
                        self.counters.hopp_prefetches += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the fault-path prefetcher and issues its requests.
    fn notify_baseline(&mut self, fault: FaultInfo) -> Result<()> {
        let _prof = hopp_prof::span("kernel/readahead");
        let mut reqs = std::mem::take(&mut self.prefetch_buf);
        reqs.clear();
        self.baseline.on_fault(&fault, &self.swapdev, &mut reqs);
        hopp_kernel::prefetcher::record_baseline_requests(self.clock, &reqs, &mut self.recorder);
        let mut outcome = Ok(());
        for req in &reqs {
            outcome = self.issue_baseline_prefetch(*req);
            if outcome.is_err() {
                break;
            }
        }
        self.prefetch_buf = reqs;
        outcome
    }

    fn issue_baseline_prefetch(&mut self, req: hopp_kernel::PrefetchRequest) -> Result<()> {
        let key = (req.pid, req.vpn);
        let swapped = matches!(
            self.spaces.get(&req.pid).and_then(|s| s.lookup(req.vpn)),
            Some(Mapping::Swapped(_))
        );
        if !swapped
            || self.swapcache.contains(req.pid, req.vpn)
            || self.base_inflight.contains_key(&key)
            || self.hopp_inflight.contains_key(&key)
        {
            return Ok(());
        }
        let done = self
            .pool
            .read_page(req.pid, req.vpn, self.clock, &mut self.recorder)?;
        if self.obs_hists {
            self.hists
                .rdma_read
                .record_nanos(done.saturating_since(self.clock));
        }
        self.base_inflight.insert(key, done);
        self.base_cq.push(
            done,
            BaseArrival {
                pid: req.pid,
                vpn: req.vpn,
                inject: req.inject,
            },
        );
        self.counters.baseline_prefetches += 1;
        Ok(())
    }

    /// Processes every async arrival due by the current clock.
    fn drain_completions(&mut self) -> Result<()> {
        let _prof = hopp_prof::span("sim/drain");
        while let Some((done, arrival)) = self.base_cq.pop_due(self.clock) {
            self.handle_base_arrival(arrival, done)?;
        }
        // The completion buffer is taken, refilled in place each round
        // and restored afterwards, so the steady state allocates nothing
        // per tick. (The borrow of `self.hopp` must still end before
        // `handle_hopp_completion` runs, hence the poll/handle split.)
        let mut completions = std::mem::take(&mut self.completion_buf);
        let mut outcome = Ok(());
        'drain: loop {
            completions.clear();
            match &mut self.hopp {
                Some(h) => {
                    if h.exec.poll_into(self.clock, &mut completions) == 0 {
                        break;
                    }
                }
                None => break,
            }
            for c in completions.drain(..) {
                if let Err(e) = self.handle_hopp_completion(c) {
                    outcome = Err(e);
                    break 'drain;
                }
            }
        }
        self.completion_buf = completions;
        outcome
    }

    fn handle_base_arrival(&mut self, arrival: BaseArrival, done: Nanos) -> Result<()> {
        let key = (arrival.pid, arrival.vpn);
        if self.base_inflight.remove(&key).is_none() {
            return Ok(()); // superseded
        }
        let Some(Mapping::Swapped(slot)) = self
            .spaces
            .get(&arrival.pid)
            .and_then(|s| s.lookup(arrival.vpn))
        else {
            return Ok(()); // page no longer remote; drop the data
        };
        let ppn = self.ensure_frame(arrival.pid, arrival.vpn)?;
        self.base_metrics
            .on_prefetch_arrival(arrival.pid, arrival.vpn, done);
        if self.recorder.is_enabled() {
            self.recorder.record(
                done,
                Event::PrefetchArrived {
                    pid: arrival.pid,
                    vpn: arrival.vpn,
                    span: 1,
                },
            );
        }
        if arrival.inject {
            // Depth-N semantics: eager PTE injection, page charged and
            // on the *active* list (§II-C).
            self.swapdev.free(slot);
            self.pool.release(arrival.pid, arrival.vpn);
            self.map_page(arrival.pid, arrival.vpn, ppn)?;
        } else {
            self.swapcache.insert(
                arrival.pid,
                arrival.vpn,
                ppn,
                Some(slot),
                CacheFill::Prefetch,
                done,
            );
            // Unproven page: inactive list, *not* charged to the cgroup
            // (the Fastswap/Leap accounting gap).
            self.sc_lru.insert(ppn, LruTier::Inactive);
        }
        Ok(())
    }

    fn handle_hopp_completion(&mut self, c: hopp_core::Completion) -> Result<()> {
        if self.recorder.is_enabled() {
            self.recorder.record(
                c.done_at,
                Event::PrefetchArrived {
                    pid: c.pid,
                    vpn: c.vpn,
                    span: c.span,
                },
            );
        }
        // A span-1 completion injects one page; a huge-page batch (§IV)
        // injects every page of the range that is still remote.
        for k in 0..u64::from(c.span) {
            let Some(vpn) = c.vpn.offset(k as i64) else {
                break;
            };
            let key = (c.pid, vpn);
            self.hopp_inflight.remove(&key);
            let Some(Mapping::Swapped(slot)) = self.spaces.get(&c.pid).and_then(|s| s.lookup(vpn))
            else {
                continue;
            };
            let ppn = self.ensure_frame(c.pid, vpn)?;
            self.swapdev.free(slot);
            self.pool.release(c.pid, vpn);
            self.map_page(c.pid, vpn, ppn)?;
            let Some(h) = self.hopp.as_mut() else {
                continue; // unreachable: completions only exist with hopp
            };
            h.metrics.on_prefetch_arrival(c.pid, vpn, c.done_at);
            h.tier_metrics[tier_index(c.tier)].on_prefetch_arrival(c.pid, vpn, c.done_at);
            h.injected.insert(key, (c.stream, c.tier));
        }
        Ok(())
    }

    /// Allocates a frame, reclaiming if the pool is exhausted.
    fn ensure_frame(&mut self, pid: Pid, vpn: Vpn) -> Result<Ppn> {
        loop {
            match self.frames.alloc(pid, vpn) {
                Ok(ppn) => return Ok(ppn),
                Err(_) => {
                    if !self.evict_one(pid)? {
                        return Err(Error::OutOfFrames);
                    }
                }
            }
        }
    }

    /// Evicts one page under global frame pressure: unconsumed
    /// swapcache pages first (they are uncharged and cheap to drop),
    /// then the preferring pid's mapped pages, then the largest
    /// process's.
    fn evict_one(&mut self, prefer: Pid) -> Result<bool> {
        if let Some(ppn) = self.sc_lru.pop_evict() {
            self.evict_frame(ppn)?;
            return Ok(true);
        }
        let victim_pid = if self.lrus.get(&prefer).is_some_and(|l| !l.is_empty()) {
            prefer
        } else {
            match self
                .lrus
                .iter()
                .filter(|(_, l)| !l.is_empty())
                .max_by_key(|(_, l)| l.len())
                .map(|(p, _)| *p)
            {
                Some(p) => p,
                None => return Ok(false),
            }
        };
        let Some(ppn) = self.pop_mapped_victim(victim_pid)? else {
            return Ok(false);
        };
        self.evict_frame(ppn)?;
        Ok(true)
    }

    /// Reclaims the given frame: swapcache pages are dropped, mapped
    /// pages are swapped out (dirty ones written back over RDMA).
    ///
    /// With `reclaim_in_advance = false` (pre-v5.8 kernels) the per-page
    /// reclaim cost lands on the current fault's critical path.
    fn evict_frame(&mut self, ppn: Ppn) -> Result<()> {
        let _prof = hopp_prof::span("kernel/reclaim");
        if !self.config.reclaim_in_advance {
            self.clock += self.config.latency.reclaim_per_page;
        }
        let (pid, vpn) = self.frames.owner(ppn).ok_or(Error::FrameNotOwned { ppn })?;
        self.counters.reclaimed += 1;
        // For the Reclaim event: which list the frame came off, captured
        // before the removals below lose that information.
        let active = self
            .sc_lru
            .tier_of(ppn)
            .or_else(|| self.lrus.get(&pid).and_then(|l| l.tier_of(ppn)))
            == Some(LruTier::Active);
        self.sc_lru.remove(ppn);
        if let Some(lru) = self.lrus.get_mut(&pid) {
            lru.remove(ppn);
        }
        let dirty;
        let mut wasted;
        if self.swapcache.peek(pid, vpn).is_some_and(|e| e.ppn == ppn) {
            // An unconsumed prefetch: drop it; the swap copy remains
            // valid at its slot.
            self.swapcache.evict(pid, vpn);
            wasted = self.base_metrics.on_evicted_unused(pid, vpn);
            dirty = false;
        } else {
            let slot = self
                .swapdev
                .alloc_rec(pid, vpn, self.clock, &mut self.recorder)?;
            let pte = self
                .spaces
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .swap_out(vpn, slot, &mut self.mc)
                .ok_or(Error::UnmappedPage { pid, vpn })?;
            debug_assert_eq!(pte.ppn, ppn);
            let hint = if self.pool.wants_hints() {
                self.stream_hints
                    .get(&(pid, vpn.raw() >> REGION_SHIFT))
                    .copied()
            } else {
                None
            };
            self.pool
                .place(pid, vpn, hint, self.clock, &mut self.recorder)?;
            dirty = pte.dirty;
            if pte.dirty {
                // Writeback happens off the critical path but occupies
                // the shared link.
                let done = self
                    .pool
                    .write_page(pid, vpn, self.clock, &mut self.recorder);
                if self.obs_hists {
                    self.hists
                        .rdma_write
                        .record_nanos(done.saturating_since(self.clock));
                }
                self.counters.writebacks += 1;
            }
            self.cgroups
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .uncharge();
            // Injected-but-never-used prefetches die here.
            wasted = false;
            if let Some(h) = &mut self.hopp {
                if let Some((_, tier)) = h.injected.remove(&(pid, vpn)) {
                    wasted |= h.metrics.on_evicted_unused(pid, vpn);
                    h.tier_metrics[tier_index(tier)].on_evicted_unused(pid, vpn);
                }
            }
            wasted |= self.base_metrics.on_evicted_unused(pid, vpn);
        }
        if self.recorder.is_enabled() {
            self.recorder
                .record(self.clock, Event::Reclaim { ppn, active, dirty });
            if wasted {
                self.recorder
                    .record(self.clock, Event::PrefetchWasted { pid, vpn });
            }
        }
        self.last_hot.remove(ppn);
        self.frames.free(ppn)?;
        self.llc.invalidate_page(ppn);
        self.mc.on_page_reclaimed(ppn);
        Ok(())
    }

    /// Direct reclaim for a cgroup that exceeded its limit.
    fn reclaim_over_limit(&mut self, pid: Pid) -> Result<()> {
        while self
            .cgroups
            .get(&pid)
            .ok_or(Error::UnknownProcess { pid })?
            .over_limit()
        {
            let Some(ppn) = self.pop_mapped_victim(pid)? else {
                break;
            };
            self.evict_frame(ppn)?;
        }
        Ok(())
    }

    /// Pops the next eviction victim from a cgroup's mapped LRU. With
    /// trace-assisted reclaim enabled (§IV), pages the MC reported hot
    /// within the configured window get a second chance (re-inserted at
    /// the active head), bounded to a few rotations.
    fn pop_mapped_victim(&mut self, pid: Pid) -> Result<Option<Ppn>> {
        let Some(window) = self.config.trace_assisted_reclaim else {
            return Ok(self
                .lrus
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .pop_evict());
        };
        for _ in 0..4 {
            let Some(ppn) = self
                .lrus
                .get_mut(&pid)
                .ok_or(Error::UnknownProcess { pid })?
                .pop_evict()
            else {
                return Ok(None);
            };
            let hot_recently = self
                .last_hot
                .get(ppn)
                .is_some_and(|t| self.clock.saturating_since(*t) < window);
            if hot_recently {
                self.lrus
                    .get_mut(&pid)
                    .ok_or(Error::UnknownProcess { pid })?
                    .insert(ppn, LruTier::Active);
            } else {
                return Ok(Some(ppn));
            }
        }
        Ok(self
            .lrus
            .get_mut(&pid)
            .ok_or(Error::UnknownProcess { pid })?
            .pop_evict())
    }

    fn report(mut self) -> SimReport {
        let mut per_app = BTreeMap::new();
        let mut completion = Nanos::ZERO;
        for (pid, rt) in &self.apps {
            let finished = rt.finished_at.unwrap_or(self.clock);
            completion = completion.max(finished);
            per_app.insert(
                *pid,
                AppReport {
                    finished_at: finished,
                    accesses: rt.accesses,
                    major_faults: rt.major_faults,
                    minor_faults: rt.minor_faults,
                },
            );
        }
        let (hopp_report, tier_reports, tier_stats) = match &self.hopp {
            Some(h) => (
                Some(h.metrics.report()),
                Some([
                    h.tier_metrics[0].report(),
                    h.tier_metrics[1].report(),
                    h.tier_metrics[2].report(),
                ]),
                Some(h.engine.tier_stats()),
            ),
            None => (None, None, None),
        };
        SimReport {
            system: self.config.system.name(),
            completion,
            per_app,
            counters: self.counters,
            baseline: self.base_metrics.report(),
            hopp: hopp_report,
            hopp_tiers: tier_reports,
            tier_stats,
            hpd: self.mc.hpd_stats(),
            rpt: self.mc.rpt().stats(),
            ledger: self.mc.ledger(),
            llc: self.llc.stats(),
            rdma: self.pool.stats(),
            fabric: if self.pool.is_degenerate() {
                None
            } else {
                Some(self.pool.report(self.clock))
            },
            timeline: self.timeline,
            obs: ObsReport {
                level: self.config.obs_level,
                latency: if self.config.obs_level.histograms() {
                    self.hists.summaries()
                } else {
                    Default::default()
                },
                dropped_events: self.recorder.dropped(),
                events: std::mem::take(&mut self.recorder).into_events(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppSpec, BaselineKind};
    use hopp_trace::patterns::SimpleStream;

    fn scan_app(pid: u16, pages: u64, passes: usize, limit: usize) -> AppSpec {
        let passes: Vec<Box<dyn AccessStream>> = (0..passes)
            .map(|_| {
                Box::new(SimpleStream::new(
                    Pid::new(pid),
                    Vpn::new(1 << 20),
                    1,
                    pages,
                )) as Box<dyn AccessStream>
            })
            .collect();
        AppSpec {
            pid: Pid::new(pid),
            stream: Box::new(hopp_trace::patterns::Chain::new(passes)),
            limit_pages: limit,
        }
    }

    fn run(system: SystemConfig, app: AppSpec) -> SimReport {
        Simulator::new(SimConfig::with_system(system), vec![app])
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn local_run_has_no_remote_traffic() {
        let r = run(
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
            scan_app(1, 1_000, 2, 1_200),
        );
        assert_eq!(r.counters.major_faults, 0);
        assert_eq!(r.counters.minor_faults, 0);
        assert_eq!(r.counters.first_touches, 1_000);
        assert_eq!(r.remote_reads(), 0);
        assert_eq!(r.counters.accesses, 2_000);
    }

    #[test]
    fn constrained_run_faults_on_the_second_pass() {
        let r = run(
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
            scan_app(1, 1_000, 2, 500),
        );
        // Pass 1: first touches + evictions. Pass 2: LRU worst case —
        // every page was evicted before its re-access.
        assert_eq!(r.counters.first_touches, 1_000);
        assert_eq!(r.counters.major_faults, 1_000);
        assert!(r.counters.reclaimed >= 1_000);
        assert!(r.remote_reads() >= 1_000);
    }

    #[test]
    fn fastswap_readahead_converts_major_to_minor() {
        let r = run(
            SystemConfig::Baseline(BaselineKind::Fastswap),
            scan_app(1, 1_000, 2, 500),
        );
        assert!(
            r.counters.minor_faults + r.counters.inflight_waits > 500,
            "readahead should serve most re-accesses: {:?}",
            r.counters
        );
        assert!(r.counters.major_faults < 500);
        assert!(
            r.baseline.accuracy > 0.8,
            "sequential readahead is accurate"
        );
    }

    #[test]
    fn fastswap_beats_no_prefetch_on_streams() {
        let no = run(
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
            scan_app(1, 1_000, 2, 500),
        );
        let fs = run(
            SystemConfig::Baseline(BaselineKind::Fastswap),
            scan_app(1, 1_000, 2, 500),
        );
        assert!(fs.completion < no.completion);
    }

    #[test]
    fn hopp_injects_and_beats_fastswap() {
        let fs = run(
            SystemConfig::Baseline(BaselineKind::Fastswap),
            scan_app(1, 2_000, 3, 1_000),
        );
        let hp = run(SystemConfig::hopp_default(), scan_app(1, 2_000, 3, 1_000));
        assert!(hp.counters.hopp_prefetches > 0, "hopp issued prefetches");
        let hopp_metrics = hp.hopp.unwrap();
        assert!(hopp_metrics.prefetch_hits > 0, "injected pages were hit");
        assert!(
            hp.completion < fs.completion,
            "hopp {} vs fastswap {}",
            hp.completion,
            fs.completion
        );
    }

    #[test]
    fn dirty_pages_are_written_back() {
        let app = AppSpec {
            pid: Pid::new(1),
            stream: Box::new(SimpleStream::new(Pid::new(1), Vpn::new(1 << 20), 1, 1_000).writes()),
            limit_pages: 400,
        };
        let r = run(SystemConfig::Baseline(BaselineKind::NoPrefetch), app);
        assert!(r.counters.writebacks > 0);
        assert!(r.rdma.writes > 0);
    }

    #[test]
    fn multi_app_isolation_by_cgroup() {
        let apps = vec![scan_app(1, 800, 2, 400), scan_app(2, 800, 2, 400)];
        let r = Simulator::new(
            SimConfig::with_system(SystemConfig::Baseline(BaselineKind::NoPrefetch)),
            apps,
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(r.per_app.len(), 2);
        let a = r.per_app[&Pid::new(1)];
        let b = r.per_app[&Pid::new(2)];
        assert_eq!(a.accesses, 1_600);
        assert_eq!(b.accesses, 1_600);
        // Both apps fault comparably under equal limits.
        let ratio = a.major_faults as f64 / b.major_faults.max(1) as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn duplicate_pids_are_rejected() {
        let apps = vec![scan_app(1, 300, 1, 300), scan_app(1, 300, 1, 300)];
        assert!(Simulator::new(SimConfig::default(), apps).is_err());
    }

    #[test]
    fn kernel_pid_is_rejected() {
        let apps = vec![scan_app(0, 300, 1, 300)];
        assert!(Simulator::new(SimConfig::default(), apps).is_err());
    }

    #[test]
    fn hpd_sees_traffic_even_without_hopp() {
        let r = run(
            SystemConfig::Baseline(BaselineKind::Fastswap),
            scan_app(1, 1_000, 2, 500),
        );
        assert!(r.hpd.hot_pages > 0, "the MC pipeline is always on");
        assert!(r.ledger.hpd_overhead_percent() > 0.0);
    }

    #[test]
    fn huge_batching_collapses_remote_reads() {
        use hopp_core::policy::{HugeBatchConfig, PolicyConfig};
        use hopp_core::HoppConfig;
        let page_by_page = run(SystemConfig::hopp_default(), scan_app(1, 4_000, 3, 2_000));
        // The batch must stay small relative to the scaled working set
        // (512 pages is 2 MB against the paper's multi-GB footprints).
        let batched = run(
            SystemConfig::hopp_with(HoppConfig {
                policy: PolicyConfig {
                    huge_batch: Some(HugeBatchConfig {
                        min_confirmations: 64,
                        batch_pages: 64,
                    }),
                    ..PolicyConfig::default()
                },
                ..HoppConfig::default()
            }),
            scan_app(1, 4_000, 3, 2_000),
        );
        // One 2 MB read replaces up to 512 page reads.
        assert!(
            batched.rdma.reads * 4 < page_by_page.rdma.reads,
            "batched {} vs page-by-page {}",
            batched.rdma.reads,
            page_by_page.rdma.reads
        );
        // And it must not be slower.
        assert!(batched.completion <= page_by_page.completion.scale(1.05));
        let m = batched.hopp.unwrap();
        assert!(m.prefetch_hits > 1_000);
    }

    #[test]
    fn timeline_samples_accumulate_monotonically() {
        let config = SimConfig {
            timeline_every: 100,
            ..SimConfig::with_system(SystemConfig::hopp_default())
        };
        let r = Simulator::new(config, vec![scan_app(1, 1_000, 2, 500)])
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.timeline.len(), 20, "2000 accesses / 100");
        for w in r.timeline.windows(2) {
            assert!(w[1].at >= w[0].at);
            assert!(w[1].major_faults >= w[0].major_faults);
            assert!(w[1].accesses == w[0].accesses + 100);
        }
        // Warmup (§VI-E's "sluggish at start"): pass 1 (samples 0..10)
        // is all first touches; re-access faulting starts at sample 10.
        // The start of pass 2 faults harder than its end, once HoPP's
        // training catches up.
        let early = r.timeline[11].major_faults - r.timeline[9].major_faults;
        let late = r.timeline[19].major_faults - r.timeline[17].major_faults;
        assert!(
            late < early,
            "late window {late} vs early window {early}: no warmup visible"
        );
    }

    #[test]
    fn direct_reclaim_charges_the_critical_path() {
        let advance = run(
            SystemConfig::Baseline(BaselineKind::NoPrefetch),
            scan_app(1, 1_000, 2, 500),
        );
        let direct = Simulator::new(
            SimConfig {
                reclaim_in_advance: false,
                ..SimConfig::with_system(SystemConfig::Baseline(BaselineKind::NoPrefetch))
            },
            vec![scan_app(1, 1_000, 2, 500)],
        )
        .unwrap()
        .run()
        .unwrap();
        // ~1000 reclaims x 3 us land on the fault path: the pre-v5.8
        // worst case of §II-A.
        let extra = direct.completion.saturating_since(advance.completion);
        assert!(
            extra >= Nanos::from_micros(2_500),
            "direct reclaim cost {extra} should approach reclaims x 3us"
        );
        assert_eq!(direct.counters.major_faults, advance.counters.major_faults);
    }

    #[test]
    fn dynamic_offset_beats_pinned_offset_under_volatility() {
        use hopp_core::{HoppConfig, PolicyConfig};
        use hopp_net::RdmaConfig;
        let volatile = |system: SystemConfig| SimConfig {
            rdma: RdmaConfig::volatile(),
            ..SimConfig::with_system(system)
        };
        let app = || scan_app(1, 3_000, 3, 1_500);
        let pinned = Simulator::new(
            volatile(SystemConfig::hopp_with(HoppConfig {
                policy: PolicyConfig::fixed_offset(1.0),
                ..HoppConfig::default()
            })),
            vec![app()],
        )
        .unwrap()
        .run()
        .unwrap();
        let dynamic = Simulator::new(volatile(SystemConfig::hopp_default()), vec![app()])
            .unwrap()
            .run()
            .unwrap();
        // §III-E: the timeliness controller pushes the offset out during
        // bursts; a pinned offset of 1 keeps stalling on late pages.
        assert!(
            dynamic.completion < pinned.completion,
            "dynamic {} !< pinned {}",
            dynamic.completion,
            pinned.completion
        );
    }

    #[test]
    fn obs_level_never_changes_simulated_behaviour() {
        use hopp_obs::ObsLevel;
        let run_at = |level: ObsLevel| {
            let config = SimConfig {
                obs_level: level,
                ..SimConfig::with_system(SystemConfig::hopp_default())
            };
            Simulator::new(config, vec![scan_app(1, 1_000, 2, 500)])
                .unwrap()
                .run()
                .unwrap()
        };
        let off = run_at(ObsLevel::Off);
        let counters = run_at(ObsLevel::Counters);
        let full = run_at(ObsLevel::Full);
        // The observability layer must be a pure observer: every counter
        // and the completion time are bit-identical across levels.
        assert_eq!(off.counters, counters.counters);
        assert_eq!(off.counters, full.counters);
        assert_eq!(off.completion, counters.completion);
        assert_eq!(off.completion, full.completion);
        assert_eq!(off.rdma, full.rdma);
        // And each level collects exactly what it promises.
        assert_eq!(off.obs.latency.major_fault.count, 0);
        assert!(off.obs.events.is_empty());
        assert!(counters.obs.latency.major_fault.count > 0);
        assert!(counters.obs.events.is_empty());
        assert!(full.obs.latency.major_fault.count > 0);
        assert!(!full.obs.events.is_empty());
        assert_eq!(full.obs.dropped_events, 0);
    }

    #[test]
    fn depth_n_injects_without_swapcache() {
        let r = run(
            SystemConfig::Baseline(BaselineKind::DepthN(16)),
            scan_app(1, 1_000, 2, 500),
        );
        // Depth-N's prefetches are injected: hits show up as neither
        // minor faults nor swapcache hits.
        assert!(r.baseline.prefetched > 0);
        assert!(r.baseline.prefetch_hits > 0);
        assert!(r.counters.minor_faults == 0);
    }
}
