//! Simulation configuration: machine geometry, latency constants and
//! the prefetching system under test.

use hopp_baselines::{DepthN, FastswapReadahead, LeapPrefetcher, VmaReadahead};
use hopp_core::HoppConfig;
use hopp_fabric::FabricConfig;
use hopp_hw::{HpdConfig, RptCacheConfig};
use hopp_kernel::{FaultLatencyModel, NoPrefetch, Prefetcher};
use hopp_net::RdmaConfig;
use hopp_obs::ObsLevel;
use hopp_trace::llc::LlcConfig;
use hopp_trace::AccessStream;
use hopp_types::{Nanos, Pid};

/// The fault-path (kernel readahead) policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineKind {
    /// No prefetching at all (the Fig 17 normalization baseline).
    NoPrefetch,
    /// Fastswap's swap-slot readahead.
    Fastswap,
    /// Leap's majority-based stride prefetching.
    Leap,
    /// Linux 5.4's VMA-based readahead.
    Vma,
    /// Depth-N with the given depth (early PTE injection, no feedback).
    DepthN(usize),
}

impl BaselineKind {
    /// Instantiates the prefetcher.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            BaselineKind::NoPrefetch => Box::new(NoPrefetch),
            BaselineKind::Fastswap => Box::new(FastswapReadahead::new()),
            BaselineKind::Leap => Box::new(LeapPrefetcher::default()),
            BaselineKind::Vma => Box::new(VmaReadahead::new()),
            BaselineKind::DepthN(n) => Box::new(DepthN::new(n)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::NoPrefetch => "no-prefetch",
            BaselineKind::Fastswap => "fastswap",
            BaselineKind::Leap => "leap",
            BaselineKind::Vma => "vma",
            BaselineKind::DepthN(_) => "depth-n",
        }
    }
}

/// The complete system under test.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SystemConfig {
    /// A kernel-based system alone.
    Baseline(BaselineKind),
    /// HoPP's separate data path layered on a kernel-based host system
    /// (the paper integrates HoPP with Fastswap, §V).
    Hopp {
        /// The fault-path system HoPP complements.
        host: BaselineKind,
        /// HoPP's software configuration.
        config: HoppConfig,
    },
}

impl SystemConfig {
    /// The paper's default deployment: HoPP on top of Fastswap.
    pub fn hopp_default() -> Self {
        SystemConfig::Hopp {
            host: BaselineKind::Fastswap,
            config: HoppConfig::default(),
        }
    }

    /// HoPP with a custom software configuration (still on Fastswap).
    pub fn hopp_with(config: HoppConfig) -> Self {
        SystemConfig::Hopp {
            host: BaselineKind::Fastswap,
            config,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemConfig::Baseline(b) => b.name(),
            SystemConfig::Hopp { .. } => "hopp",
        }
    }
}

/// Machine + system configuration for one run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SimConfig {
    /// LLC geometry. The default is deliberately small (2 MB) relative
    /// to workload footprints so capacity misses reach the MC, exactly
    /// as multi-GB footprints dwarf a real 16 MB LLC.
    pub llc: LlcConfig,
    /// HPD table geometry and threshold.
    pub hpd: HpdConfig,
    /// RPT cache geometry.
    pub rpt: RptCacheConfig,
    /// RDMA link parameters (per pool node).
    pub rdma: RdmaConfig,
    /// Memory-pool geometry: node count, placement policy, replication
    /// and retry behaviour. The default single-node pool reproduces the
    /// paper's one-server testbed bit-for-bit; fault scripts attach via
    /// [`Simulator::set_fault_script`](crate::Simulator::set_fault_script).
    pub fabric: FabricConfig,
    /// Kernel fault-path latency constants.
    pub latency: FaultLatencyModel,
    /// The prefetching system under test.
    pub system: SystemConfig,
    /// Extra physical frames beyond the sum of cgroup limits. This is
    /// the headroom un-charged swapcache pages (Fastswap/Leap
    /// prefetches) can occupy — the accounting gap §I points out.
    pub slack_frames: usize,
    /// Cost of an LLC hit (kept tiny; it exists so hit loops are not
    /// free).
    pub llc_hit: Nanos,
    /// Interleaved memory channels (§III-B). Each channel runs its own
    /// HPD table with a proportionally reduced threshold; duplicate
    /// extractions are de-duplicated by the training framework.
    pub channels: usize,
    /// §IV extension: reclaim consults the hot-page trace and gives
    /// pages that were hot within this window a second chance before
    /// eviction. `None` disables it (the paper's prototype behaviour).
    pub trace_assisted_reclaim: Option<Nanos>,
    /// Take a [`TimelineSample`] every this many accesses (0 = off).
    /// Used for warmup / coverage-over-time analyses.
    ///
    /// [`TimelineSample`]: crate::report::TimelineSample
    pub timeline_every: u64,
    /// `true` (default, Linux ≥ v5.8): reclaim runs ahead of faults and
    /// its 2–5 µs/page cost stays off the critical path. `false`
    /// (pre-v5.8): direct reclaim charges `reclaim_per_page` to the
    /// fault that triggered it — the paper's 8.3–11.3 µs worst case.
    pub reclaim_in_advance: bool,
    /// Remote memory node capacity in pages (`None` = unbounded, the
    /// default). The paper's node offers 48 GB; a run that evicts more
    /// than this panics with a clear message.
    pub remote_capacity_pages: Option<usize>,
    /// `true` (default): the mapped-page LRU sees every access — an
    /// idealized kernel whose accessed-bit scanning is perfect. `false`:
    /// LRU order is fault-in order only, as for a kernel that never
    /// scans accessed bits; this is the regime where trace-assisted
    /// reclaim has real information to add.
    pub precise_lru: bool,
    /// How much observability the run collects: `Off` (nothing, the
    /// provably-free path), `Counters` (latency histograms, the
    /// default) or `Full` (histograms plus the typed event stream).
    /// Never changes simulated behaviour — only what the report holds.
    pub obs_level: ObsLevel,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            llc: LlcConfig {
                capacity_bytes: 2 * 1024 * 1024,
                ways: 16,
            },
            hpd: HpdConfig::default(),
            rpt: RptCacheConfig::default(),
            rdma: RdmaConfig::default(),
            fabric: FabricConfig::default(),
            latency: FaultLatencyModel::default(),
            system: SystemConfig::Baseline(BaselineKind::Fastswap),
            slack_frames: 512,
            llc_hit: Nanos::from_nanos(1),
            channels: 1,
            trace_assisted_reclaim: None,
            timeline_every: 0,
            reclaim_in_advance: true,
            remote_capacity_pages: None,
            precise_lru: true,
            obs_level: ObsLevel::default(),
        }
    }
}

impl SimConfig {
    /// Default machine with the given system.
    pub fn with_system(system: SystemConfig) -> Self {
        SimConfig {
            system,
            ..Default::default()
        }
    }

    /// Canonical content fingerprint of this configuration.
    ///
    /// `SimConfig` is a tree of `Copy` value types, so the derived
    /// `Debug` rendering is a pure function of every knob's value —
    /// stable across runs, thread counts and platforms. The hopp-lab
    /// sweep engine hashes this string (plus the workload/seed/ratio
    /// of the cell) to key its on-disk result cache: two runs share a
    /// cache entry iff every configuration knob matches.
    pub fn fingerprint(&self) -> String {
        format!("{self:?}")
    }
}

/// One application in a run.
pub struct AppSpec {
    /// The process id (must be unique within a run and non-kernel).
    pub pid: Pid,
    /// Its access stream.
    pub stream: Box<dyn AccessStream>,
    /// Its cgroup's local-memory limit, in pages.
    pub limit_pages: usize,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("pid", &self.pid)
            .field("limit_pages", &self.limit_pages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_kinds_build() {
        for b in [
            BaselineKind::NoPrefetch,
            BaselineKind::Fastswap,
            BaselineKind::Leap,
            BaselineKind::Vma,
            BaselineKind::DepthN(16),
        ] {
            let p = b.build();
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn default_config_is_valid() {
        let c = SimConfig::default();
        assert!(c.llc.sets().is_ok());
        assert!(c.hpd.validate().is_ok());
        assert!(c.rpt.sets().is_ok());
    }

    #[test]
    fn system_names() {
        assert_eq!(SystemConfig::hopp_default().name(), "hopp");
        assert_eq!(SystemConfig::Baseline(BaselineKind::Leap).name(), "leap");
    }
}
