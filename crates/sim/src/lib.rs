#![warn(missing_docs)]
//! The integrated disaggregated-memory simulator.
//!
//! This crate wires every substrate together into the full system of
//! the paper's Figure 4 and runs workloads through it:
//!
//! * application page accesses come from `hopp-workloads` streams;
//! * address translation, frames and PTEs from `hopp-mem`;
//! * the LLC model filters accesses into the off-chip miss stream
//!   (`hopp-trace`), which feeds the MC pipeline (`hopp-hw`);
//! * the kernel side (swapcache, LRU reclaim, cgroup limits, fault
//!   costs) comes from `hopp-kernel`, with baseline prefetchers from
//!   `hopp-baselines` on the fault path;
//! * HoPP's training/policy/execution engines (`hopp-core`) run on the
//!   hot-page stream as a separate data path and inject PTEs on
//!   completion;
//! * all remote traffic flows through a remote-memory pool
//!   (`hopp-fabric`): one RDMA link per node (`hopp-net`), sharded
//!   placement, optional replication and scripted faults. The default
//!   single-node pool is the paper's testbed, bit-for-bit.
//!
//! Simulated time advances with each access: compute (think time), LLC
//! hits/misses, fault handling and synchronous network waits, per the
//! latency model of §II-A. [`SimReport`] carries completion time,
//! fault/traffic counters and the paper's accuracy/coverage/timeliness
//! metrics for whichever prefetching system was configured.
//!
//! # Example
//!
//! ```
//! use hopp_sim::{run_workload, BaselineKind, SystemConfig};
//! use hopp_workloads::WorkloadKind;
//!
//! # fn main() -> hopp_types::Result<()> {
//! // K-means with half its footprint remote, under Fastswap vs HoPP.
//! let fs = run_workload(WorkloadKind::Kmeans, 1_024, 7,
//!                       SystemConfig::Baseline(BaselineKind::Fastswap), 0.5)?;
//! let hopp = run_workload(WorkloadKind::Kmeans, 1_024, 7,
//!                         SystemConfig::hopp_default(), 0.5)?;
//! assert!(hopp.completion <= fs.completion);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod report;
pub mod runner;
pub mod simulator;

pub use config::{AppSpec, BaselineKind, SimConfig, SystemConfig};
pub use hopp_fabric::{FabricConfig, FabricReport, FaultScript, PlacementKind};
pub use report::{AppReport, Counters, ObsReport, SimReport};
pub use runner::{
    normalized_performance, run_local, run_stream_with, run_workload, run_workload_with,
    run_workload_with_faults, speedup_over,
};
pub use simulator::Simulator;
