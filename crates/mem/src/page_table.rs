//! Per-process page tables and the PTE-update hook interface.

use hopp_ds::PageMap;
use hopp_types::{Pid, Ppn, SwapSlot, Vpn};

/// A present page-table entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pte {
    /// The frame this virtual page maps to.
    pub ppn: Ppn,
    /// Set when the page has been written since it was faulted in; dirty
    /// pages must be written back to the remote node on reclaim.
    pub dirty: bool,
}

/// The state of a virtual page that the process has touched at least
/// once.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mapping {
    /// Present in local DRAM.
    Present(Pte),
    /// Swapped out to the remote node at the given slot.
    Swapped(SwapSlot),
}

/// Observer of PTE installs and clears.
///
/// The paper keeps the reverse page table current by hooking
/// `set_pte_at` and `pte_clear` (§V). Any component that needs the same
/// visibility implements this trait and is threaded through the mapping
/// calls. The unit type implements it as a no-op for callers that do not
/// care.
pub trait PteListener {
    /// A PTE for `(pid, vpn) → ppn` was installed.
    fn pte_set(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn);
    /// The PTE for `(pid, vpn) → ppn` was removed.
    fn pte_clear(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn);
}

/// No-op listener.
impl PteListener for () {
    fn pte_set(&mut self, _: Pid, _: Vpn, _: Ppn) {}
    fn pte_clear(&mut self, _: Pid, _: Vpn, _: Ppn) {}
}

impl<L: PteListener + ?Sized> PteListener for &mut L {
    fn pte_set(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
        (**self).pte_set(pid, vpn, ppn);
    }
    fn pte_clear(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
        (**self).pte_clear(pid, vpn, ppn);
    }
}

/// One process's page table.
///
/// Pages the process has never touched have no entry at all; a demand
/// fault on such a page is a *first touch* (zero-fill) rather than a
/// remote fetch.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    pid: Pid,
    map: PageMap<Vpn, Mapping>,
    resident: usize,
}

impl AddressSpace {
    /// Creates an empty address space for `pid`.
    pub fn new(pid: Pid) -> Self {
        AddressSpace {
            pid,
            map: PageMap::new(),
            resident: 0,
        }
    }

    /// The owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Looks up the state of a virtual page.
    pub fn lookup(&self, vpn: Vpn) -> Option<Mapping> {
        self.map.get(vpn).copied()
    }

    /// Installs a present PTE, notifying `listener`.
    ///
    /// Returns the PTE that was displaced if the page was **already
    /// present** (a double map): the caller must free the returned
    /// frame or it leaks. The displaced mapping's `pte_clear` fires
    /// before the new mapping's `pte_set`, in both build profiles —
    /// this used to be a `debug_assert!`, so release builds silently
    /// overwrote the mapping and leaked its frame.
    #[must_use = "a displaced PTE's frame must be freed by the caller"]
    pub fn map_present<L: PteListener>(
        &mut self,
        vpn: Vpn,
        ppn: Ppn,
        listener: &mut L,
    ) -> Option<Pte> {
        let prev = self
            .map
            .insert(vpn, Mapping::Present(Pte { ppn, dirty: false }));
        let displaced = match prev {
            Some(Mapping::Present(pte)) => {
                listener.pte_clear(self.pid, vpn, pte.ppn);
                Some(pte)
            }
            _ => {
                self.resident += 1;
                None
            }
        };
        listener.pte_set(self.pid, vpn, ppn);
        displaced
    }

    /// Marks a present page dirty (a store hit). No-op for non-present
    /// pages.
    pub fn mark_dirty(&mut self, vpn: Vpn) {
        if let Some(Mapping::Present(pte)) = self.map.get_mut(vpn) {
            pte.dirty = true;
        }
    }

    /// Clears the PTE and records the page as swapped out to `slot`.
    ///
    /// Returns the PTE that was present, so the caller can free/writeback
    /// the frame. Returns `None` (and changes nothing) if the page was
    /// not present.
    pub fn swap_out<L: PteListener>(
        &mut self,
        vpn: Vpn,
        slot: SwapSlot,
        listener: &mut L,
    ) -> Option<Pte> {
        match self.map.get(vpn).copied() {
            Some(Mapping::Present(pte)) => {
                self.map.insert(vpn, Mapping::Swapped(slot));
                self.resident -= 1;
                listener.pte_clear(self.pid, vpn, pte.ppn);
                Some(pte)
            }
            _ => None,
        }
    }

    /// Removes a page entirely (process exit / unmap). Returns the frame
    /// if one was present.
    pub fn unmap<L: PteListener>(&mut self, vpn: Vpn, listener: &mut L) -> Option<Ppn> {
        match self.map.remove(vpn) {
            Some(Mapping::Present(pte)) => {
                self.resident -= 1;
                listener.pte_clear(self.pid, vpn, pte.ppn);
                Some(pte.ppn)
            }
            _ => None,
        }
    }

    /// Number of pages currently present in DRAM.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Number of pages the process has ever touched (present + swapped).
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Iterates over present pages in ascending `Vpn` order.
    pub fn iter_present(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.map.iter().filter_map(|(vpn, m)| match m {
            Mapping::Present(pte) => Some((vpn, *pte)),
            Mapping::Swapped(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records hook invocations for verification.
    #[derive(Default)]
    struct Recorder {
        sets: Vec<(Pid, Vpn, Ppn)>,
        clears: Vec<(Pid, Vpn, Ppn)>,
    }

    impl PteListener for Recorder {
        fn pte_set(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
            self.sets.push((pid, vpn, ppn));
        }
        fn pte_clear(&mut self, pid: Pid, vpn: Vpn, ppn: Ppn) {
            self.clears.push((pid, vpn, ppn));
        }
    }

    #[test]
    fn map_lookup_swap_cycle() {
        let mut rec = Recorder::default();
        let mut space = AddressSpace::new(Pid::new(3));
        let vpn = Vpn::new(0x42);
        let ppn = Ppn::new(7);

        assert_eq!(space.lookup(vpn), None);
        assert!(space.map_present(vpn, ppn, &mut rec).is_none());
        assert_eq!(space.resident_pages(), 1);
        assert!(matches!(space.lookup(vpn), Some(Mapping::Present(p)) if p.ppn == ppn));

        let pte = space.swap_out(vpn, SwapSlot::new(9), &mut rec).unwrap();
        assert_eq!(pte.ppn, ppn);
        assert_eq!(space.resident_pages(), 0);
        assert_eq!(space.mapped_pages(), 1);
        assert!(matches!(
            space.lookup(vpn),
            Some(Mapping::Swapped(s)) if s == SwapSlot::new(9)
        ));

        assert_eq!(rec.sets, vec![(Pid::new(3), vpn, ppn)]);
        assert_eq!(rec.clears, vec![(Pid::new(3), vpn, ppn)]);
    }

    #[test]
    fn remap_returns_displaced_pte_in_every_profile() {
        let mut rec = Recorder::default();
        let mut space = AddressSpace::new(Pid::new(1));
        let vpn = Vpn::new(7);
        assert!(space.map_present(vpn, Ppn::new(1), &mut rec).is_none());
        space.mark_dirty(vpn);
        // Double map: the displaced PTE comes back (dirty bit intact)
        // so the caller can free or write back its frame. This holds in
        // debug *and* release builds — the old debug_assert! guard
        // compiled to nothing in release and the frame leaked silently.
        let prev = space
            .map_present(vpn, Ppn::new(2), &mut rec)
            .expect("displaced PTE");
        assert_eq!(prev.ppn, Ppn::new(1));
        assert!(prev.dirty);
        assert_eq!(
            space.resident_pages(),
            1,
            "a remap must not double-count residency"
        );
        assert_eq!(rec.clears, vec![(Pid::new(1), vpn, Ppn::new(1))]);
        assert_eq!(
            rec.sets,
            vec![
                (Pid::new(1), vpn, Ppn::new(1)),
                (Pid::new(1), vpn, Ppn::new(2))
            ]
        );
        assert!(matches!(
            space.lookup(vpn),
            Some(Mapping::Present(p)) if p.ppn == Ppn::new(2) && !p.dirty
        ));
    }

    #[test]
    fn swap_out_of_absent_page_is_none() {
        let mut space = AddressSpace::new(Pid::new(1));
        assert!(space
            .swap_out(Vpn::new(1), SwapSlot::new(0), &mut ())
            .is_none());
    }

    #[test]
    fn dirty_tracking() {
        let mut space = AddressSpace::new(Pid::new(1));
        let vpn = Vpn::new(5);
        assert!(space.map_present(vpn, Ppn::new(1), &mut ()).is_none());
        space.mark_dirty(vpn);
        let pte = space.swap_out(vpn, SwapSlot::new(0), &mut ()).unwrap();
        assert!(pte.dirty);
    }

    #[test]
    fn mark_dirty_on_swapped_page_is_noop() {
        let mut space = AddressSpace::new(Pid::new(1));
        let vpn = Vpn::new(5);
        assert!(space.map_present(vpn, Ppn::new(1), &mut ()).is_none());
        space.swap_out(vpn, SwapSlot::new(0), &mut ()).unwrap();
        space.mark_dirty(vpn); // must not panic or resurrect the mapping
        assert!(matches!(space.lookup(vpn), Some(Mapping::Swapped(_))));
    }

    #[test]
    fn unmap_notifies_and_forgets() {
        let mut rec = Recorder::default();
        let mut space = AddressSpace::new(Pid::new(2));
        let vpn = Vpn::new(8);
        assert!(space.map_present(vpn, Ppn::new(3), &mut rec).is_none());
        assert_eq!(space.unmap(vpn, &mut rec), Some(Ppn::new(3)));
        assert_eq!(space.lookup(vpn), None);
        assert_eq!(space.mapped_pages(), 0);
        assert_eq!(rec.clears.len(), 1);
    }

    #[test]
    fn iter_present_skips_swapped() {
        let mut space = AddressSpace::new(Pid::new(1));
        assert!(space
            .map_present(Vpn::new(1), Ppn::new(1), &mut ())
            .is_none());
        assert!(space
            .map_present(Vpn::new(2), Ppn::new(2), &mut ())
            .is_none());
        space.swap_out(Vpn::new(1), SwapSlot::new(0), &mut ());
        let present: Vec<_> = space.iter_present().map(|(v, _)| v).collect();
        assert_eq!(present, vec![Vpn::new(2)]);
    }
}
