#![warn(missing_docs)]
//! Physical memory and page-table substrate.
//!
//! This crate models the machine-level memory state the kernel and the
//! HoPP hardware both observe:
//!
//! * [`frames::FrameAllocator`] — the pool of local DRAM frames, with an
//!   owner table (`Ppn → (Pid, Vpn)`) that doubles as the ground truth
//!   the reverse page table is built from.
//! * [`page_table::AddressSpace`] — one per process: `Vpn → Mapping`,
//!   where a mapping is either *present* (a PTE pointing at a frame) or
//!   *swapped* (a slot on the remote swap device).
//! * [`page_table::PteListener`] — the hook interface the paper installs
//!   into `set_pte_at`/`pte_clear` (§V) so the RPT cache stays current.
//!
//! # Example
//!
//! ```
//! use hopp_mem::{AddressSpace, FrameAllocator, Mapping};
//! use hopp_types::{Pid, Vpn};
//!
//! let mut frames = FrameAllocator::new(128);
//! let mut space = AddressSpace::new(Pid::new(1));
//! let ppn = frames.alloc(Pid::new(1), Vpn::new(7)).unwrap();
//! assert!(space.map_present(Vpn::new(7), ppn, &mut ()).is_none());
//! assert!(matches!(space.lookup(Vpn::new(7)), Some(Mapping::Present(p)) if p.ppn == ppn));
//! ```

pub mod frames;
pub mod page_table;

pub use frames::FrameAllocator;
pub use page_table::{AddressSpace, Mapping, Pte, PteListener};
