//! Local DRAM frame allocation and ownership tracking.

use hopp_ds::PageMap;
use hopp_types::{Error, Pid, Ppn, Result, Vpn};

/// The pool of local physical frames.
///
/// Besides allocation, the allocator records which `(Pid, Vpn)` owns
/// each frame. That owner table is exactly the information the paper's
/// reverse page table stores, and it is what the RPT is initialized from
/// when HoPP starts (§III-C: "it traverses all existing page tables,
/// builds the mappings from PPN to the PID+VPN combo").
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    /// Free frame indices (LIFO: recently freed frames are reused first,
    /// which mimics the kernel's per-cpu page caches well enough).
    free: Vec<Ppn>,
    /// `owner[ppn] = (pid, vpn)` for allocated frames.
    owner: PageMap<Ppn, (Pid, Vpn)>,
    /// Total frames managed (frame indices `0..total`).
    total: usize,
}

impl FrameAllocator {
    /// Creates an allocator managing `total` frames (frame indices
    /// `0..total`).
    pub fn new(total: usize) -> Self {
        FrameAllocator {
            // Reverse so that frame 0 is handed out first.
            free: (0..total as u64).rev().map(Ppn::new).collect(),
            owner: PageMap::with_capacity_pages(total),
            total,
        }
    }

    /// Total number of frames managed.
    pub fn capacity(&self) -> usize {
        self.total
    }

    /// Number of frames currently allocated.
    pub fn in_use(&self) -> usize {
        self.capacity() - self.free.len()
    }

    /// Number of frames currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Allocates a frame for `(pid, vpn)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfFrames`] when every frame is in use — the
    /// caller (the kernel) is expected to reclaim first.
    pub fn alloc(&mut self, pid: Pid, vpn: Vpn) -> Result<Ppn> {
        let ppn = self.free.pop().ok_or(Error::OutOfFrames)?;
        self.owner.insert(ppn, (pid, vpn));
        Ok(ppn)
    }

    /// Releases a frame back to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::FrameNotOwned`] if the frame was not allocated.
    pub fn free(&mut self, ppn: Ppn) -> Result<()> {
        if self.owner.remove(ppn).is_none() {
            return Err(Error::FrameNotOwned { ppn });
        }
        self.free.push(ppn);
        Ok(())
    }

    /// The `(pid, vpn)` that owns `ppn`, if allocated.
    pub fn owner(&self, ppn: Ppn) -> Option<(Pid, Vpn)> {
        self.owner.get(ppn).copied()
    }

    /// Iterates over all allocated frames and their owners, in frame
    /// order. Used to build the initial RPT.
    pub fn iter_owned(&self) -> impl Iterator<Item = (Ppn, Pid, Vpn)> + '_ {
        self.owner.iter().map(|(ppn, &(pid, vpn))| (ppn, pid, vpn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut fa = FrameAllocator::new(2);
        assert_eq!(fa.capacity(), 2);
        let a = fa.alloc(Pid::new(1), Vpn::new(10)).unwrap();
        let b = fa.alloc(Pid::new(1), Vpn::new(11)).unwrap();
        assert_ne!(a, b);
        assert_eq!(fa.in_use(), 2);
        assert!(matches!(
            fa.alloc(Pid::new(1), Vpn::new(12)),
            Err(Error::OutOfFrames)
        ));
        fa.free(a).unwrap();
        assert_eq!(fa.available(), 1);
        let c = fa.alloc(Pid::new(2), Vpn::new(20)).unwrap();
        assert_eq!(c, a, "LIFO reuse of the freed frame");
        assert_eq!(fa.owner(c), Some((Pid::new(2), Vpn::new(20))));
    }

    #[test]
    fn double_free_is_an_error() {
        let mut fa = FrameAllocator::new(1);
        let a = fa.alloc(Pid::new(1), Vpn::new(1)).unwrap();
        fa.free(a).unwrap();
        assert!(matches!(fa.free(a), Err(Error::FrameNotOwned { .. })));
    }

    #[test]
    fn free_of_out_of_range_frame_is_an_error() {
        let mut fa = FrameAllocator::new(1);
        assert!(fa.free(Ppn::new(99)).is_err());
    }

    #[test]
    fn owner_table_tracks_allocations() {
        let mut fa = FrameAllocator::new(4);
        let p0 = fa.alloc(Pid::new(1), Vpn::new(100)).unwrap();
        let p1 = fa.alloc(Pid::new(2), Vpn::new(200)).unwrap();
        assert_eq!(fa.owner(p0), Some((Pid::new(1), Vpn::new(100))));
        assert_eq!(fa.owner(p1), Some((Pid::new(2), Vpn::new(200))));
        let owned: Vec<_> = fa.iter_owned().collect();
        assert_eq!(owned.len(), 2);
        fa.free(p0).unwrap();
        assert_eq!(fa.owner(p0), None);
        assert_eq!(fa.iter_owned().count(), 1);
    }

    #[test]
    fn frame_zero_is_handed_out_first() {
        let mut fa = FrameAllocator::new(3);
        assert_eq!(fa.alloc(Pid::new(1), Vpn::new(0)).unwrap(), Ppn::new(0));
        assert_eq!(fa.alloc(Pid::new(1), Vpn::new(1)).unwrap(), Ppn::new(1));
    }
}
