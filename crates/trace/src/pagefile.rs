//! On-disk page-access traces: record a workload's access stream once,
//! replay it under any system configuration.
//!
//! This is the page-granular sibling of the HMTT line-granular format
//! ([`crate::hmtt::file`]): where HMTT captures what the *memory bus*
//! saw, a page trace captures what the *application* did, so the same
//! sequence can be replayed against different prefetchers, memory
//! ratios or machine models (`hoppsim --record` / `--replay`). It is
//! also the import path for externally captured traces.
//!
//! Format: an 8-byte magic, then 16-byte little-endian records
//! `[pid:u16][kind:u8][lines:u8][think_ns:u32][vpn:u64]`.

use std::io::{self, Read, Write};
use std::path::Path;

use hopp_types::{AccessKind, PageAccess, Pid, Vpn, LINES_PER_PAGE};

use crate::patterns::AccessStream;

/// File magic: `HOPPPGA1`.
pub const MAGIC: [u8; 8] = *b"HOPPPGA1";

/// Bytes per record.
pub const RECORD_BYTES: usize = 16;

fn encode(acc: &PageAccess) -> [u8; RECORD_BYTES] {
    let mut buf = [0u8; RECORD_BYTES];
    buf[0..2].copy_from_slice(&acc.pid.raw().to_le_bytes());
    buf[2] = u8::from(matches!(acc.kind, AccessKind::Write));
    buf[3] = acc.lines;
    buf[4..8].copy_from_slice(&acc.think_ns.to_le_bytes());
    buf[8..16].copy_from_slice(&acc.vpn.raw().to_le_bytes());
    buf
}

fn decode(buf: &[u8; RECORD_BYTES]) -> io::Result<PageAccess> {
    let lines = buf[3];
    if lines == 0 || lines as usize > LINES_PER_PAGE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "page record with invalid line count",
        ));
    }
    Ok(PageAccess {
        pid: Pid::new(u16::from_le_bytes([buf[0], buf[1]])),
        kind: if buf[2] == 0 {
            AccessKind::Read
        } else {
            AccessKind::Write
        },
        lines,
        think_ns: u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
        vpn: Vpn::new(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"))),
    })
}

/// Drains `stream` into `writer` in the on-disk format; returns the
/// record count.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn record<W: Write>(mut writer: W, stream: &mut dyn AccessStream) -> io::Result<u64> {
    writer.write_all(&MAGIC)?;
    let mut count = 0;
    while let Some(acc) = stream.next_access() {
        writer.write_all(&encode(&acc))?;
        count += 1;
    }
    Ok(count)
}

/// Loads a full trace from `reader`.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic, a truncated record or an
/// invalid line count; propagates I/O errors.
pub fn load<R: Read>(mut reader: R) -> io::Result<Vec<PageAccess>> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a hopp page-trace file",
        ));
    }
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    if !body.len().is_multiple_of(RECORD_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "truncated page record",
        ));
    }
    body.chunks_exact(RECORD_BYTES)
        .map(|c| decode(c.try_into().expect("16 bytes")))
        .collect()
}

/// Records a stream to a file; returns the record count.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_stream<P: AsRef<Path>>(path: P, stream: &mut dyn AccessStream) -> io::Result<u64> {
    record(std::fs::File::create(path)?, stream)
}

/// Loads a trace from a file.
///
/// # Errors
///
/// Propagates filesystem and format errors.
pub fn load_file<P: AsRef<Path>>(path: P) -> io::Result<Vec<PageAccess>> {
    load(io::BufReader::new(std::fs::File::open(path)?))
}

/// Replays a loaded trace as an [`AccessStream`].
#[derive(Clone, Debug)]
pub struct TraceFileStream {
    accesses: std::vec::IntoIter<PageAccess>,
}

impl TraceFileStream {
    /// Wraps a loaded trace.
    pub fn new(accesses: Vec<PageAccess>) -> Self {
        TraceFileStream {
            accesses: accesses.into_iter(),
        }
    }

    /// Loads and wraps a trace file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(load_file(path)?))
    }
}

impl AccessStream for TraceFileStream {
    fn next_access(&mut self) -> Option<PageAccess> {
        self.accesses.next()
    }

    fn name(&self) -> &str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::SimpleStream;

    #[test]
    fn record_load_roundtrip_preserves_everything() {
        let mut stream = SimpleStream::new(Pid::new(3), Vpn::new(100), 2, 50)
            .with_lines(24)
            .with_think(777);
        let mut buf = Vec::new();
        let count = record(&mut buf, &mut stream).unwrap();
        assert_eq!(count, 50);
        assert_eq!(buf.len(), 8 + 50 * RECORD_BYTES);

        let accesses = load(&buf[..]).unwrap();
        let mut replay = TraceFileStream::new(accesses);
        let mut original = SimpleStream::new(Pid::new(3), Vpn::new(100), 2, 50)
            .with_lines(24)
            .with_think(777);
        loop {
            match (original.next_access(), replay.next_access()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn writes_survive_the_roundtrip() {
        let mut stream = SimpleStream::new(Pid::new(1), Vpn::new(5), 1, 3).writes();
        let mut buf = Vec::new();
        record(&mut buf, &mut stream).unwrap();
        let accesses = load(&buf[..]).unwrap();
        assert!(accesses.iter().all(|a| a.kind == AccessKind::Write));
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        assert!(load(&b"WRONGMAG"[..]).is_err());
        let mut stream = SimpleStream::new(Pid::new(1), Vpn::new(5), 1, 1);
        let mut buf = Vec::new();
        record(&mut buf, &mut stream).unwrap();
        buf.pop();
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn corrupt_line_count_is_rejected() {
        let mut stream = SimpleStream::new(Pid::new(1), Vpn::new(5), 1, 1);
        let mut buf = Vec::new();
        record(&mut buf, &mut stream).unwrap();
        buf[8 + 3] = 0; // lines = 0
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let path =
            std::env::temp_dir().join(format!("hopp_page_trace_{}.trace", std::process::id()));
        let mut stream = SimpleStream::new(Pid::new(2), Vpn::new(9), 3, 10);
        save_stream(&path, &mut stream).unwrap();
        let replayed = load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replayed.len(), 10);
        assert_eq!(replayed[9].vpn, Vpn::new(9 + 27));
    }
}
