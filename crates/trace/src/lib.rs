#![warn(missing_docs)]
//! Memory-access trace substrate: LLC model, HMTT emulation and
//! synthetic access-pattern generators.
//!
//! The HoPP paper captures full off-chip memory traces with HMTT, a
//! DIMM-snooping hardware tracer, and feeds the LLC-miss stream to the
//! hot page detection logic. Neither the tracer nor the testbed exists
//! here, so this crate provides the equivalent software substrate:
//!
//! * [`llc::LastLevelCache`] — a set-associative, physically-indexed
//!   cache model. Application cacheline accesses that hit in it never
//!   reach the memory controller, exactly like the real machine; the
//!   misses form the off-chip trace.
//! * [`hmtt`] — the HMTT trace-record format (8-bit sequence number,
//!   8-bit timestamp, R/W bit, 29-bit physical address) with an encoder
//!   and a wrap-reconstructing decoder, plus the reserved-DRAM ring
//!   buffer the prototype stores records in.
//! * [`patterns`] — generators for the three stream shapes the paper
//!   identifies (§II-B): simple streams, ladder streams and ripple
//!   streams, plus interference pages and a stream interleaver. The
//!   workload models in `hopp-workloads` are composed from these.
//!
//! # Example
//!
//! ```
//! use hopp_trace::patterns::{SimpleStream, AccessStream};
//! use hopp_types::{Pid, Vpn};
//!
//! let mut s = SimpleStream::new(Pid::new(1), Vpn::new(0), 2, 5);
//! let pages: Vec<u64> = std::iter::from_fn(|| s.next_access())
//!     .map(|a| a.vpn.raw())
//!     .collect();
//! assert_eq!(pages, vec![0, 2, 4, 6, 8]);
//! ```

pub mod hmtt;
pub mod llc;
pub mod pagefile;
pub mod patterns;

pub use hmtt::{HmttDecoder, HmttRecord, TraceRing};
pub use llc::{LastLevelCache, LlcConfig, LlcStats};
pub use pagefile::TraceFileStream;
pub use patterns::{
    AccessStream, Chain, Interleaver, LadderStream, NoiseStream, RippleStream, SimpleStream,
};
