//! A set-associative last-level cache model.
//!
//! The memory controller — and therefore HoPP's hot page detection —
//! only sees accesses that *miss* in the LLC (§II-D: "MC processes
//! LLC-misses, which automatically reduces the access volume by
//! filtering out those in-LLC accesses"). This model reproduces that
//! filtering: the simulator pushes every cacheline access through
//! [`LastLevelCache::access`]; hits are absorbed, misses are forwarded
//! to the MC model.
//!
//! The cache is physically indexed (the simulator translates VPN→PPN
//! before touching it) and uses true-LRU replacement within each set,
//! which is accurate enough at the page-stream granularity HoPP cares
//! about.

use hopp_types::{AccessKind, Error, LineAddr, Ppn, Result, LINES_PER_PAGE};

/// Geometry of the modelled LLC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (lines per set).
    pub ways: usize,
}

impl LlcConfig {
    /// A 16 MB, 16-way LLC — representative of the 14-core Xeons in the
    /// paper's testbed.
    pub const fn default_server() -> Self {
        LlcConfig {
            capacity_bytes: 16 * 1024 * 1024,
            ways: 16,
        }
    }

    /// A small 256 KB, 8-way cache, useful in tests where eviction
    /// behaviour must be exercised quickly.
    pub const fn tiny() -> Self {
        LlcConfig {
            capacity_bytes: 256 * 1024,
            ways: 8,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the geometry does not divide
    /// into a power-of-two number of non-empty sets.
    pub fn sets(&self) -> Result<usize> {
        let lines = self.capacity_bytes / hopp_types::LINE_SIZE;
        if self.ways == 0 || lines == 0 || !lines.is_multiple_of(self.ways) {
            return Err(Error::InvalidConfig {
                what: "llc geometry",
                constraint: "capacity must be a multiple of ways * 64B",
            });
        }
        let sets = lines / self.ways;
        if !sets.is_power_of_two() {
            return Err(Error::InvalidConfig {
                what: "llc sets",
                constraint: "set count must be a power of two",
            });
        }
        Ok(sets)
    }
}

/// Hit/miss counters for the cache model.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct LlcStats {
    /// Accesses that hit in the cache.
    pub hits: u64,
    /// Accesses that missed and went to memory.
    pub misses: u64,
    /// Lines invalidated because their page left DRAM.
    pub invalidations: u64,
}

impl LlcStats {
    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that hit (0 when no accesses were made).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// One cache way: the stored tag plus an LRU stamp.
#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative, physically-indexed LLC with true-LRU replacement.
///
/// # Example
///
/// ```
/// use hopp_trace::llc::{LastLevelCache, LlcConfig};
/// use hopp_types::{AccessKind, Ppn};
///
/// let mut llc = LastLevelCache::new(LlcConfig::tiny())?;
/// let line = Ppn::new(1).line(0);
/// assert!(!llc.access(line, AccessKind::Read)); // cold miss
/// assert!(llc.access(line, AccessKind::Read));  // now a hit
/// # Ok::<(), hopp_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct LastLevelCache {
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    clock: u64,
    stats: LlcStats,
}

impl LastLevelCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the geometry is invalid (see
    /// [`LlcConfig::sets`]).
    pub fn new(config: LlcConfig) -> Result<Self> {
        let sets = config.sets()?;
        Ok(LastLevelCache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        lru: 0
                    };
                    config.ways
                ];
                sets
            ],
            set_mask: sets as u64 - 1,
            clock: 0,
            stats: LlcStats::default(),
        })
    }

    /// Performs one cacheline access; returns `true` on a hit.
    ///
    /// On a miss the line is installed, evicting the LRU way of its set.
    /// Writes allocate just like reads (write-allocate policy), matching
    /// the "write miss first appears as a read on the bus" behaviour the
    /// paper leans on.
    pub fn access(&mut self, line: LineAddr, _kind: AccessKind) -> bool {
        self.clock += 1;
        let set_idx = (line.raw() & self.set_mask) as usize;
        let tag = line.raw() >> self.set_mask.trailing_ones();
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.clock;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        // Install, preferring an invalid way, else the LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("ways >= 1 by construction");
        victim.tag = tag;
        victim.valid = true;
        victim.lru = self.clock;
        false
    }

    /// Drops every line belonging to `ppn`.
    ///
    /// Called when a page is reclaimed to remote memory: its cached lines
    /// must not keep serving hits for data that is no longer local.
    pub fn invalidate_page(&mut self, ppn: Ppn) {
        for line in 0..LINES_PER_PAGE as u8 {
            let addr = ppn.line(line);
            let set_idx = (addr.raw() & self.set_mask) as usize;
            let tag = addr.raw() >> self.set_mask.trailing_ones();
            for way in &mut self.sets[set_idx] {
                if way.valid && way.tag == tag {
                    way.valid = false;
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Clears the counters (the cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopp_types::LINE_SIZE;

    fn cache() -> LastLevelCache {
        LastLevelCache::new(LlcConfig::tiny()).unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(LlcConfig {
            capacity_bytes: 0,
            ways: 8
        }
        .sets()
        .is_err());
        assert!(LlcConfig {
            capacity_bytes: 1024,
            ways: 0
        }
        .sets()
        .is_err());
        // 3 sets: not a power of two.
        assert!(LlcConfig {
            capacity_bytes: 3 * 8 * LINE_SIZE,
            ways: 8
        }
        .sets()
        .is_err());
        assert_eq!(LlcConfig::tiny().sets().unwrap(), 512);
        assert_eq!(LlcConfig::default_server().sets().unwrap(), 16384);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut llc = cache();
        let line = Ppn::new(42).line(3);
        assert!(!llc.access(line, AccessKind::Read));
        assert!(llc.access(line, AccessKind::Read));
        assert_eq!(llc.stats().hits, 1);
        assert_eq!(llc.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut llc = cache();
        // Fill one set: lines that share the low set-index bits. tiny() has
        // 512 sets, 8 ways; construct 9 lines mapping to set 0.
        let lines: Vec<LineAddr> = (0..9u64).map(|i| LineAddr::new(i * 512)).collect();
        for l in &lines[..8] {
            assert!(!llc.access(*l, AccessKind::Read));
        }
        // Touch line 0 so line 1 becomes the LRU victim.
        assert!(llc.access(lines[0], AccessKind::Read));
        assert!(!llc.access(lines[8], AccessKind::Read)); // evicts lines[1]
        assert!(llc.access(lines[0], AccessKind::Read)); // still resident
        assert!(!llc.access(lines[1], AccessKind::Read)); // was evicted
    }

    #[test]
    fn invalidate_page_drops_all_its_lines() {
        let mut llc = cache();
        let ppn = Ppn::new(7);
        for line in 0..LINES_PER_PAGE as u8 {
            llc.access(ppn.line(line), AccessKind::Read);
        }
        llc.invalidate_page(ppn);
        assert_eq!(llc.stats().invalidations, LINES_PER_PAGE as u64);
        assert!(!llc.access(ppn.line(0), AccessKind::Read));
    }

    #[test]
    fn hit_rate_reporting() {
        let mut llc = cache();
        assert_eq!(llc.stats().hit_rate(), 0.0);
        let line = Ppn::new(1).line(1);
        llc.access(line, AccessKind::Read);
        llc.access(line, AccessKind::Read);
        llc.access(line, AccessKind::Read);
        let s = llc.stats();
        assert_eq!(s.total(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        llc.reset_stats();
        assert_eq!(llc.stats().total(), 0);
    }

    #[test]
    fn writes_allocate_like_reads() {
        let mut llc = cache();
        let line = Ppn::new(9).line(9);
        assert!(!llc.access(line, AccessKind::Write));
        assert!(llc.access(line, AccessKind::Read));
    }
}
